#!/usr/bin/env bash
# Compares the dyn-compose hot path against the recorded pre-PR baseline
# and writes BENCH_PR4.json (median + p99 per benchmark, plus deltas).
#
# The baseline block below was recorded on this host at commit 70d7ff3
# (pre "contention-proportional hot path" PR), with the same bench
# shapes: `handle()` then resolved to the generic enum-dispatch tier,
# the read indicator was a single shared word, and node counters used
# fetch_add. The criterion-lite runner did not yet report p99, so
# baseline p99 entries are null.
#
# Usage: scripts/bench_compare.sh [output.json]
#        scripts/bench_compare.sh --obs [output.json]
#        scripts/bench_compare.sh --profile [output.json]
#        scripts/bench_compare.sh --park [output.json]
#        scripts/bench_compare.sh --deadline [output.json]
#   CLOF_BENCH_MIN_MS / CLOF_BENCH_SAMPLES tune run length (defaults
#   60 ms × 15 samples — long enough for stable medians on small hosts).
#
# `--obs` mode quantifies the observability tax instead: the dyn-pair
# benches run three ways — default build (obs compiled out), obs
# compiled in but idle, and obs compiled in while a sidecar client
# scrapes /metrics at 1 Hz (CLOF_BENCH_SCRAPE_MS) — and the report
# (default BENCH_PR7.json) records all three against the BENCH_PR4.json
# noise bands. The acceptance gate is that the *default* build's
# contended medians stay inside those bands: compiling obs out must
# remain free.
#
# `--park` mode measures the spin-then-park waiting layer into
# BENCH_PR9.json: the dyn pairs plus the oversubscription matrix
# (threads = 1x/2x/4x cores) on the spin-only build and again with
# `--features park`. Gates: at 2x oversubscription the park build's
# headline contended cell (oversub/mcs-clh-tkt/2x) is at least 2x
# faster than spin-only, and at 1x the contended dyn medians stay
# inside the BENCH_PR4.json noise bands on BOTH builds — park must be
# zero-cost when disabled and free of 1x regressions when enabled.
#
# `--deadline` mode prices deadline-bounded acquisition into
# BENCH_PR10.json: the dyn pairs run on the default build (deadline
# compiled out) and again with `--features deadline` — blocking
# `acquire()` only, since that is the path every existing caller pays
# for. Gate: at 1x load the contended dyn medians stay inside the
# BENCH_PR4.json noise bands on BOTH builds — compiling the deadline
# layer out must be free, and compiling it in must not tax callers who
# never pass a deadline.
#
# `--profile` mode prices the contention profiler the same way into
# BENCH_PR8.json: default build (profiler compiled out), obs build with
# the profiler recording but unread, and obs build while a sidecar
# scrapes /profile at 1 Hz. Gates: the default build's contended
# medians stay inside the PR4 noise bands, and the scraped-profile
# medians stay within 5% of idle telemetry — reading the profiler must
# cost nothing measurable on the lock hot path.
set -euo pipefail
cd "$(dirname "$0")/.."

export CLOF_BENCH_MIN_MS=${CLOF_BENCH_MIN_MS:-60}
export CLOF_BENCH_SAMPLES=${CLOF_BENCH_SAMPLES:-15}

if [ "${1:-}" = "--obs" ]; then
    shift
    OUT=${1:-BENCH_PR7.json}

    echo ">>> [1/3] dyn pairs, default build (obs compiled out)" >&2
    RAW_OFF=$(cargo bench -p clof-bench --bench locks_micro --features criterion 2>/dev/null \
        | grep -E '^dyn/')
    echo "$RAW_OFF" >&2

    echo ">>> [2/3] dyn pairs, obs compiled in (idle)" >&2
    RAW_ON=$(cargo bench -p clof-bench --bench locks_micro --features criterion,obs 2>/dev/null \
        | grep -E '^dyn/')
    echo "$RAW_ON" >&2

    echo ">>> [3/3] dyn pairs, obs compiled in + 1 Hz /metrics scraper" >&2
    RAW_SCRAPE=$(CLOF_BENCH_SCRAPE_MS=${CLOF_BENCH_SCRAPE_MS:-1000} \
        cargo bench -p clof-bench --bench locks_micro --features criterion,obs 2>/dev/null \
        | grep -E '^dyn/')
    echo "$RAW_SCRAPE" >&2

    RAW_OFF="$RAW_OFF" RAW_ON="$RAW_ON" RAW_SCRAPE="$RAW_SCRAPE" \
        python3 - "$OUT" <<'PYEOF'
import json, os, re, sys

LINE = re.compile(
    r"^(\S+)\s+([\d.]+) ns/iter\s+\(min ([\d.]+), p99 ([\d.]+), "
    r"max ([\d.]+), (\d+) it/sample\)"
)

def parse(raw):
    out = {}
    for line in raw.splitlines():
        m = LINE.match(line.strip())
        if m:
            name, med, mn, p99, mx, iters = m.groups()
            out[name] = {
                "median_ns": float(med),
                "min_ns": float(mn),
                "p99_ns": float(p99),
                "max_ns": float(mx),
                "iters_per_sample": int(iters),
            }
    return out

configs = {
    "obs_off": parse(os.environ["RAW_OFF"]),
    "obs_on_idle": parse(os.environ["RAW_ON"]),
    "obs_on_scraped_1hz": parse(os.environ["RAW_SCRAPE"]),
}

with open("BENCH_PR4.json") as f:
    pr4 = json.load(f)["after"]

report = {
    "benchmark": "locks_micro: dyn-pair observability tax",
    "note": (
        "Same dyn-pair shapes as BENCH_PR4.json, run three ways: default "
        "build (obs compiled out), obs compiled in but idle, and obs "
        "compiled in while a sidecar scrapes /metrics at 1 Hz. Gate: the "
        "default build's contended medians stay inside the PR4 noise "
        "bands (min..max, +15% host slack) — compiling obs out is free."
    ),
    "pr4_noise_bands": {
        name: {"min_ns": m["min_ns"], "median_ns": m["median_ns"], "max_ns": m["max_ns"]}
        for name, m in pr4.items()
        if name.startswith("dyn/")
    },
    "configs": configs,
    "obs_tax_median_pct": {},
}

failures = []
for name, off in configs["obs_off"].items():
    if not name.endswith("/contended"):
        continue
    on = configs["obs_on_idle"].get(name)
    scraped = configs["obs_on_scraped_1hz"].get(name)
    if on is None or scraped is None:
        failures.append(f"missing obs-on measurement for {name}")
        continue
    report["obs_tax_median_pct"][name] = {
        "obs_on_idle": round(100.0 * (on["median_ns"] - off["median_ns"]) / off["median_ns"], 1),
        "obs_on_scraped_1hz": round(
            100.0 * (scraped["median_ns"] - off["median_ns"]) / off["median_ns"], 1
        ),
    }
    band = pr4.get(name)
    if band is None:
        failures.append(f"{name}: no PR4 noise band recorded")
        continue
    lo, hi = band["min_ns"] * 0.85, band["max_ns"] * 1.15
    if not (lo <= off["median_ns"] <= hi):
        failures.append(
            f"{name}: default-build median {off['median_ns']:.1f} ns outside "
            f"PR4 noise band [{lo:.1f}, {hi:.1f}]"
        )

out = sys.argv[1]
with open(out, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f">>> wrote {out}", file=sys.stderr)
for name, tax in sorted(report["obs_tax_median_pct"].items()):
    print(
        f"    {name:<36} idle {tax['obs_on_idle']:+6.1f}%   "
        f"scraped {tax['obs_on_scraped_1hz']:+6.1f}%",
        file=sys.stderr,
    )
if failures:
    print(">>> FAILED acceptance gate:", file=sys.stderr)
    for f_ in failures:
        print(f"    {f_}", file=sys.stderr)
    sys.exit(1)
print(
    ">>> acceptance gate passed (default-build contended medians inside PR4 noise bands)",
    file=sys.stderr,
)
PYEOF
    exit 0
fi

if [ "${1:-}" = "--park" ]; then
    shift
    OUT=${1:-BENCH_PR9.json}

    # Many short samples instead of few long ones: each reported sample
    # is a *mean* over its iterations, so a 60 ms sample on a shared
    # host always absorbs scheduler preemption spikes and the
    # cross-sample median cannot reject them. With 15 ms samples a
    # spike lands in one or two samples out of 31 and the median
    # discards them — what is left is the cost of the code under test,
    # which is the thing the PR4 noise bands are about.
    export CLOF_BENCH_MIN_MS=15 CLOF_BENCH_SAMPLES=31

    echo ">>> [1/2] dyn pairs + oversub matrix, spin-only build (park compiled out)" >&2
    RAW_SPIN=$(cargo bench -p clof-bench --bench locks_micro --features criterion 2>/dev/null \
        | grep -E '^(dyn|oversub)/')
    echo "$RAW_SPIN" >&2

    echo ">>> [2/2] dyn pairs + oversub matrix, park build (spin-then-park waiting)" >&2
    RAW_PARK=$(cargo bench -p clof-bench --bench locks_micro --features criterion,park 2>/dev/null \
        | grep -E '^(dyn|oversub)/')
    echo "$RAW_PARK" >&2

    RAW_SPIN="$RAW_SPIN" RAW_PARK="$RAW_PARK" \
        python3 - "$OUT" <<'PYEOF'
import json, os, re, sys

LINE = re.compile(
    r"^(\S+)\s+([\d.]+) ns/iter\s+\(min ([\d.]+), p99 ([\d.]+), "
    r"max ([\d.]+), (\d+) it/sample\)"
)

def parse(raw):
    out = {}
    for line in raw.splitlines():
        m = LINE.match(line.strip())
        if m:
            name, med, mn, p99, mx, iters = m.groups()
            out[name] = {
                "median_ns": float(med),
                "min_ns": float(mn),
                "p99_ns": float(p99),
                "max_ns": float(mx),
                "iters_per_sample": int(iters),
            }
    return out

configs = {
    "spin_only": parse(os.environ["RAW_SPIN"]),
    "park": parse(os.environ["RAW_PARK"]),
}

with open("BENCH_PR4.json") as f:
    pr4 = json.load(f)["after"]

report = {
    "benchmark": "locks_micro: spin-then-park under oversubscription",
    "note": (
        "Dyn pairs plus the oversubscription matrix (threads = 1x/2x/4x "
        "cores, same composed shapes) on the spin-only build and with "
        "--features park. Gates: oversub/mcs-clh-tkt/2x at least 2x "
        "faster with park, and contended dyn medians inside the PR4 "
        "noise bands (min..max, +15% host slack) on both builds."
    ),
    "pr4_noise_bands": {
        name: {"min_ns": m["min_ns"], "median_ns": m["median_ns"], "max_ns": m["max_ns"]}
        for name, m in pr4.items()
        if name.startswith("dyn/")
    },
    "configs": configs,
    "park_speedup": {},
}

failures = []

# Oversubscription speedups (spin median / park median, >1 = park wins).
for name, spin in sorted(configs["spin_only"].items()):
    if not name.startswith("oversub/"):
        continue
    parkm = configs["park"].get(name)
    if parkm is None:
        failures.append(f"missing park measurement for {name}")
        continue
    report["park_speedup"][name] = round(spin["median_ns"] / parkm["median_ns"], 2)

headline = "oversub/mcs-clh-tkt/2x"
speedup = report["park_speedup"].get(headline)
if speedup is None:
    failures.append(f"missing headline cell {headline}")
elif speedup < 2.0:
    failures.append(
        f"{headline}: park speedup {speedup:.2f}x (gate: >= 2x over spin-only)"
    )

# 1x gates: contended dyn medians inside the PR4 noise bands, both builds.
for config in ("spin_only", "park"):
    for name, m in configs[config].items():
        if not (name.startswith("dyn/") and name.endswith("/contended")):
            continue
        band = pr4.get(name)
        if band is None:
            failures.append(f"{name}: no PR4 noise band recorded")
            continue
        lo, hi = band["min_ns"] * 0.85, band["max_ns"] * 1.15
        if not (lo <= m["median_ns"] <= hi):
            failures.append(
                f"{name} [{config}]: median {m['median_ns']:.1f} ns outside "
                f"PR4 noise band [{lo:.1f}, {hi:.1f}]"
            )

out = sys.argv[1]
with open(out, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f">>> wrote {out}", file=sys.stderr)
for name, s in sorted(report["park_speedup"].items()):
    print(f"    {name:<32} park speedup {s:6.2f}x", file=sys.stderr)
if failures:
    print(">>> FAILED acceptance gate:", file=sys.stderr)
    for f_ in failures:
        print(f"    {f_}", file=sys.stderr)
    sys.exit(1)
print(
    ">>> acceptance gate passed (2x-oversubscribed headline >= 2x; 1x medians inside PR4 bands)",
    file=sys.stderr,
)
PYEOF
    exit 0
fi

if [ "${1:-}" = "--deadline" ]; then
    shift
    OUT=${1:-BENCH_PR10.json}

    # Short samples for the same reason as --park: the cross-sample
    # median can only reject a preemption spike if the spike fits in a
    # minority of samples.
    export CLOF_BENCH_MIN_MS=15 CLOF_BENCH_SAMPLES=31

    echo ">>> [1/2] dyn pairs, default build (deadline compiled out)" >&2
    RAW_OFF=$(cargo bench -p clof-bench --bench locks_micro --features criterion 2>/dev/null \
        | grep -E '^dyn/')
    echo "$RAW_OFF" >&2

    echo ">>> [2/2] dyn pairs, deadline build (bounded acquisition compiled in)" >&2
    RAW_DL=$(cargo bench -p clof-bench --bench locks_micro --features criterion,deadline 2>/dev/null \
        | grep -E '^dyn/')
    echo "$RAW_DL" >&2

    RAW_OFF="$RAW_OFF" RAW_DL="$RAW_DL" \
        python3 - "$OUT" <<'PYEOF'
import json, os, re, sys

LINE = re.compile(
    r"^(\S+)\s+([\d.]+) ns/iter\s+\(min ([\d.]+), p99 ([\d.]+), "
    r"max ([\d.]+), (\d+) it/sample\)"
)

def parse(raw):
    out = {}
    for line in raw.splitlines():
        m = LINE.match(line.strip())
        if m:
            name, med, mn, p99, mx, iters = m.groups()
            out[name] = {
                "median_ns": float(med),
                "min_ns": float(mn),
                "p99_ns": float(p99),
                "max_ns": float(mx),
                "iters_per_sample": int(iters),
            }
    return out

configs = {
    "deadline_off": parse(os.environ["RAW_OFF"]),
    "deadline_on": parse(os.environ["RAW_DL"]),
}

with open("BENCH_PR4.json") as f:
    pr4 = json.load(f)["after"]

report = {
    "benchmark": "locks_micro: dyn-pair deadline-layer tax",
    "note": (
        "Same dyn-pair shapes as BENCH_PR4.json, run on the default "
        "build (deadline compiled out) and with --features deadline. "
        "Both runs use blocking acquire() only — the path every "
        "existing caller pays for. Gate: at 1x load the contended dyn "
        "medians stay inside the PR4 noise bands (min..max, +15% host "
        "slack) on BOTH builds — compiling the deadline layer out is "
        "free, and compiling it in costs nothing on the blocking path."
    ),
    "pr4_noise_bands": {
        name: {"min_ns": m["min_ns"], "median_ns": m["median_ns"], "max_ns": m["max_ns"]}
        for name, m in pr4.items()
        if name.startswith("dyn/")
    },
    "configs": configs,
    "deadline_tax_median_pct": {},
}

failures = []
for name, off in configs["deadline_off"].items():
    if not name.endswith("/contended"):
        continue
    on = configs["deadline_on"].get(name)
    if on is None:
        failures.append(f"missing deadline-build measurement for {name}")
        continue
    report["deadline_tax_median_pct"][name] = round(
        100.0 * (on["median_ns"] - off["median_ns"]) / off["median_ns"], 1
    )

# 1x gates: contended dyn medians inside the PR4 noise bands, both builds.
for config in ("deadline_off", "deadline_on"):
    for name, m in configs[config].items():
        if not (name.startswith("dyn/") and name.endswith("/contended")):
            continue
        band = pr4.get(name)
        if band is None:
            failures.append(f"{name}: no PR4 noise band recorded")
            continue
        lo, hi = band["min_ns"] * 0.85, band["max_ns"] * 1.15
        if not (lo <= m["median_ns"] <= hi):
            failures.append(
                f"{name} [{config}]: median {m['median_ns']:.1f} ns outside "
                f"PR4 noise band [{lo:.1f}, {hi:.1f}]"
            )

out = sys.argv[1]
with open(out, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f">>> wrote {out}", file=sys.stderr)
for name, tax in sorted(report["deadline_tax_median_pct"].items()):
    print(f"    {name:<36} deadline-on vs off {tax:+6.1f}%", file=sys.stderr)
if failures:
    print(">>> FAILED acceptance gate:", file=sys.stderr)
    for f_ in failures:
        print(f"    {f_}", file=sys.stderr)
    sys.exit(1)
print(
    ">>> acceptance gate passed (contended medians inside PR4 bands on both builds)",
    file=sys.stderr,
)
PYEOF
    exit 0
fi

if [ "${1:-}" = "--profile" ]; then
    shift
    OUT=${1:-BENCH_PR8.json}

    echo ">>> [1/3] dyn pairs, default build (profiler compiled out)" >&2
    RAW_OFF=$(cargo bench -p clof-bench --bench locks_micro --features criterion 2>/dev/null \
        | grep -E '^dyn/')
    echo "$RAW_OFF" >&2

    echo ">>> [2/3] dyn pairs, obs build (profiler recording, unread)" >&2
    RAW_IDLE=$(cargo bench -p clof-bench --bench locks_micro --features criterion,obs 2>/dev/null \
        | grep -E '^dyn/')
    echo "$RAW_IDLE" >&2

    echo ">>> [3/3] dyn pairs, obs build + 1 Hz /profile scraper" >&2
    RAW_SCRAPE=$(CLOF_BENCH_SCRAPE_MS=${CLOF_BENCH_SCRAPE_MS:-1000} \
        CLOF_BENCH_SCRAPE_PATH=/profile \
        cargo bench -p clof-bench --bench locks_micro --features criterion,obs 2>/dev/null \
        | grep -E '^dyn/')
    echo "$RAW_SCRAPE" >&2

    RAW_OFF="$RAW_OFF" RAW_IDLE="$RAW_IDLE" RAW_SCRAPE="$RAW_SCRAPE" \
        python3 - "$OUT" <<'PYEOF'
import json, os, re, sys

LINE = re.compile(
    r"^(\S+)\s+([\d.]+) ns/iter\s+\(min ([\d.]+), p99 ([\d.]+), "
    r"max ([\d.]+), (\d+) it/sample\)"
)

def parse(raw):
    out = {}
    for line in raw.splitlines():
        m = LINE.match(line.strip())
        if m:
            name, med, mn, p99, mx, iters = m.groups()
            out[name] = {
                "median_ns": float(med),
                "min_ns": float(mn),
                "p99_ns": float(p99),
                "max_ns": float(mx),
                "iters_per_sample": int(iters),
            }
    return out

configs = {
    "profiler_off": parse(os.environ["RAW_OFF"]),
    "obs_idle_telemetry": parse(os.environ["RAW_IDLE"]),
    "profile_scraped_1hz": parse(os.environ["RAW_SCRAPE"]),
}

with open("BENCH_PR4.json") as f:
    pr4 = json.load(f)["after"]

report = {
    "benchmark": "locks_micro: dyn-pair contention-profiler tax",
    "note": (
        "Same dyn-pair shapes as BENCH_PR4.json, run three ways: default "
        "build (profiler compiled out), obs build with the profiler "
        "recording but never read, and obs build while a sidecar scrapes "
        "/profile at 1 Hz. Gates: default-build contended medians inside "
        "the PR4 noise bands (min..max, +15% host slack), and scraping "
        "the profiler within 5% of idle telemetry."
    ),
    "pr4_noise_bands": {
        name: {"min_ns": m["min_ns"], "median_ns": m["median_ns"], "max_ns": m["max_ns"]}
        for name, m in pr4.items()
        if name.startswith("dyn/")
    },
    "configs": configs,
    "profiler_tax_median_pct": {},
}

failures = []
for name, off in configs["profiler_off"].items():
    if not name.endswith("/contended"):
        continue
    idle = configs["obs_idle_telemetry"].get(name)
    scraped = configs["profile_scraped_1hz"].get(name)
    if idle is None or scraped is None:
        failures.append(f"missing obs measurement for {name}")
        continue
    scraped_over_idle = 100.0 * (scraped["median_ns"] - idle["median_ns"]) / idle["median_ns"]
    report["profiler_tax_median_pct"][name] = {
        "obs_idle_over_default": round(
            100.0 * (idle["median_ns"] - off["median_ns"]) / off["median_ns"], 1
        ),
        "scraped_over_idle": round(scraped_over_idle, 1),
    }
    band = pr4.get(name)
    if band is None:
        failures.append(f"{name}: no PR4 noise band recorded")
        continue
    lo, hi = band["min_ns"] * 0.85, band["max_ns"] * 1.15
    if not (lo <= off["median_ns"] <= hi):
        failures.append(
            f"{name}: default-build median {off['median_ns']:.1f} ns outside "
            f"PR4 noise band [{lo:.1f}, {hi:.1f}]"
        )
    if scraped_over_idle > 5.0:
        failures.append(
            f"{name}: scraping /profile costs {scraped_over_idle:+.1f}% over "
            f"idle telemetry (gate: <= +5%)"
        )

out = sys.argv[1]
with open(out, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f">>> wrote {out}", file=sys.stderr)
for name, tax in sorted(report["profiler_tax_median_pct"].items()):
    print(
        f"    {name:<36} idle-vs-default {tax['obs_idle_over_default']:+6.1f}%   "
        f"scraped-vs-idle {tax['scraped_over_idle']:+6.1f}%",
        file=sys.stderr,
    )
if failures:
    print(">>> FAILED acceptance gate:", file=sys.stderr)
    for f_ in failures:
        print(f"    {f_}", file=sys.stderr)
    sys.exit(1)
print(
    ">>> acceptance gate passed (default inside PR4 bands; profile scrape <= 5% over idle)",
    file=sys.stderr,
)
PYEOF
    exit 0
fi

OUT=${1:-BENCH_PR4.json}

echo ">>> running locks_micro (dyn pairs) with min_ms=$CLOF_BENCH_MIN_MS samples=$CLOF_BENCH_SAMPLES" >&2
RAW=$(cargo bench -p clof-bench --bench locks_micro --features criterion 2>/dev/null \
    | grep -E '^(dyn|compose)/')
echo "$RAW" >&2

RAW="$RAW" python3 - "$OUT" <<'PYEOF'
import json, os, re, sys

BASELINE = {
    # name: (median_ns, min_ns, max_ns) — recorded pre-PR at 70d7ff3.
    "compose/dyn/mcs-clh-tkt":      (108.0, 104.6, 114.1),
    "dyn/mcs-clh-tkt/uncontended":  (110.7, 100.3, 121.5),
    "dyn/mcs-clh-tkt/contended":    (109.8, 106.7, 114.5),
    "dyn/clh-clh-tkt/uncontended":  (104.1,  98.7, 111.9),
    "dyn/clh-clh-tkt/contended":    (105.8, 101.9, 108.3),
    "dyn/tkt-tkt-tkt/uncontended":  (101.3,  95.5, 114.1),
    "dyn/tkt-tkt-tkt/contended":    (101.2,  94.3, 102.5),
}

LINE = re.compile(
    r"^(\S+)\s+([\d.]+) ns/iter\s+\(min ([\d.]+), p99 ([\d.]+), "
    r"max ([\d.]+), (\d+) it/sample\)"
)

after = {}
for line in os.environ["RAW"].splitlines():
    m = LINE.match(line.strip())
    if m:
        name, med, mn, p99, mx, iters = m.groups()
        after[name] = {
            "median_ns": float(med),
            "min_ns": float(mn),
            "p99_ns": float(p99),
            "max_ns": float(mx),
            "iters_per_sample": int(iters),
        }

report = {
    "benchmark": "locks_micro: dyn-compose hot-path pairs",
    "baseline_commit": "70d7ff3",
    "note": (
        "Baseline: generic enum dispatch, single-word read indicator, "
        "fetch_add node counters. After: monomorphized finalist tier, "
        "striped cache-line-isolated indicator, owner-only counters. "
        "Same host, same bench shapes."
    ),
    "baseline": {
        name: {"median_ns": med, "min_ns": mn, "p99_ns": None, "max_ns": mx}
        for name, (med, mn, mx) in BASELINE.items()
    },
    "after": after,
    "delta_median_pct": {},
}

failures = []
for name, base in BASELINE.items():
    if name not in after:
        failures.append(f"missing after-measurement for {name}")
        continue
    delta = 100.0 * (after[name]["median_ns"] - base[0]) / base[0]
    report["delta_median_pct"][name] = round(delta, 1)

# Acceptance gate: contended finalists must improve >= 15% median.
for name, delta in report["delta_median_pct"].items():
    if name.endswith("/contended") and delta > -15.0:
        failures.append(f"{name}: {delta:+.1f}% (needs <= -15%)")

out = sys.argv[1]
with open(out, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f">>> wrote {out}", file=sys.stderr)
for name, delta in sorted(report["delta_median_pct"].items()):
    print(f"    {name:<36} {delta:+6.1f}%", file=sys.stderr)
if failures:
    print(">>> FAILED acceptance gate:", file=sys.stderr)
    for f_ in failures:
        print(f"    {f_}", file=sys.stderr)
    sys.exit(1)
print(">>> acceptance gate passed (contended medians improved >= 15%)", file=sys.stderr)
PYEOF
