#!/usr/bin/env sh
# Offline CI gate for the CLoF workspace.
#
# Runs, in order:
#   1. tier-1: `cargo build --release && cargo test -q` (root package);
#   2. the clof-testkit unit suite (property engine + oracle self-tests);
#   3. a 16-seed smoke subset of the schedule-fuzzing stress oracle;
#   4. the obs phase: telemetry release build, the telemetry-vs-oracle
#      suite, a 16-seed oracle smoke with telemetry on, and the
#      zero-cost assertion that the default dependency graph carries no
#      clof-obs at all.
#
# Everything builds from vendored/in-repo code only — no network, no
# external dev-dependencies — so this is safe for air-gapped runners.
# Each phase runs under a hard timeout so a livelocked lock (the exact
# bug class the oracle hunts) fails the build instead of hanging it.
#
# Env knobs:
#   CI_TIMEOUT_SECS   per-phase timeout (default 1800)
#   CLOF_TESTKIT_SEED override the property-engine base seed for replay

set -eu

cd "$(dirname "$0")/.."

TIMEOUT_SECS="${CI_TIMEOUT_SECS:-1800}"

# Portable-ish hard timeout: use coreutils `timeout` when present,
# otherwise run unguarded (busybox-only hosts still get the gate).
if command -v timeout >/dev/null 2>&1; then
    RUN="timeout $TIMEOUT_SECS"
else
    echo "ci.sh: no 'timeout' binary; running without a hard timeout" >&2
    RUN=""
fi

phase() {
    echo
    echo "==== ci: $1 ===="
    shift
    # shellcheck disable=SC2086 # RUN is intentionally word-split
    $RUN "$@"
}

phase "tier-1 release build" cargo build --release
phase "tier-1 test suite" cargo test -q
phase "testkit unit suite" cargo test -q -p clof-testkit

# Smoke subset of the stress oracle: the broken-lock acceptance test is
# itself a 16-seed fuzz run, plus one fair-composition matrix slice.
phase "stress-oracle smoke (16 seeds)" \
    cargo test -q --test stress_oracle -- \
    broken_lock_is_caught_with_replayable_seed \
    fair_composition_gap_is_bounded \
    oracle_matrix_ticket

# Telemetry phase: everything above must also hold with `obs` compiled
# in, and the default build must not even link clof-obs (zero-cost when
# disabled — checked on the dependency graph, where it is structural).
phase "obs release build" cargo build --release --features obs
phase "obs unit suite (clof-obs)" cargo test -q -p clof-obs
phase "obs telemetry-vs-oracle suite" \
    cargo test -q --features obs --test obs_stats
phase "obs oracle smoke (16 seeds)" \
    cargo test -q --features obs --test stress_oracle -- \
    broken_lock_is_caught_with_replayable_seed \
    oracle_matrix_ticket
phase "obs zero-cost dependency check" \
    sh -c 'if cargo tree -e normal | grep -q clof-obs; then
               echo "clof-obs leaked into the default dependency graph" >&2
               exit 1
           fi'

echo
echo "==== ci: all phases green ===="
