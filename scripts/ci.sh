#!/usr/bin/env sh
# Offline CI gate for the CLoF workspace.
#
# Runs, in order:
#   1. tier-1: `cargo build --release && cargo test -q` (root package);
#   2. the clof-testkit unit suite (property engine + oracle self-tests);
#   3. a 16-seed smoke subset of the schedule-fuzzing stress oracle;
#   4. the default-build `clof` binary, asserted free of tracer symbols
#      (the "traceEvents" exporter string only exists behind `obs`) —
#      checked before any obs build can overwrite the binary;
#   5. the obs phase: telemetry release build, the telemetry-vs-oracle
#      suite, the trace-vs-oracle and histogram property suites, the
#      server e2e scrape and SLO burn-rate property suites, a 16-seed
#      oracle smoke with telemetry on, kvstore windowed stats, a
#      `clof top --once` smoke, a `clof serve --once` self-scrape
#      smoke, a `clof trace` export/analyze round-trip, the contention
#      profiler (marker present in the obs binary and absent from the
#      default one, `clof profile --once` clean-run smoke, injected
#      deadlock/inversion detected with non-zero exit, registry
#      lifecycle suite), and the zero-cost assertion that the default
#      dependency graph (root and clof-bench) carries no clof-obs;
#   6. the adapt phase: `adapt,obs` release build, a forced-migration
#      swap smoke (cross-tier 8 seeds + fairness-across-swaps), the
#      handover mutant-kill campaign, the kvstore hot-swap suite, a
#      `clof adapt --once` smoke against the real binary, and the
#      zero-cost assertions that the default binary carries no
#      "clof-adapt" marker and the default dependency graph enables
#      the `adapt` feature nowhere;
#   7. the park phase: `park` release build, the locks/core park unit
#      suites, the oversubscribed stress-oracle smoke (forced-park
#      liveness, parked gap bound, budget plumbing), the deleted-wake
#      mutant-kill test, the same oracle smoke with `park,obs`
#      instrumentation compiled in, and the zero-cost assertions that
#      the default binary carries no "clof-park" marker and the default
#      dependency graph enables the `park` feature nowhere;
#   8. the deadline phase: `deadline` release build, the locks/core/
#      kvstore deadline unit suites, the 64-seed timeout/abandonment
#      oracle matrix (plus its park and adapt companion cells), the
#      deleted-abandoned-skip mutant-kill test, a `clof deadline --once`
#      smoke against the real binary (marker present), and the
#      zero-cost assertions that the default binary carries no
#      "clof-deadline" marker and the default dependency graph enables
#      the `deadline` feature nowhere.
#
# Everything builds from vendored/in-repo code only — no network, no
# external dev-dependencies — so this is safe for air-gapped runners.
# Each phase runs under a hard timeout so a livelocked lock (the exact
# bug class the oracle hunts) fails the build instead of hanging it.
#
# Env knobs:
#   CI_TIMEOUT_SECS   per-phase timeout (default 1800)
#   CLOF_TESTKIT_SEED override the property-engine base seed for replay

set -eu

cd "$(dirname "$0")/.."

TIMEOUT_SECS="${CI_TIMEOUT_SECS:-1800}"

# Portable-ish hard timeout: use coreutils `timeout` when present,
# otherwise run unguarded (busybox-only hosts still get the gate).
if command -v timeout >/dev/null 2>&1; then
    RUN="timeout $TIMEOUT_SECS"
else
    echo "ci.sh: no 'timeout' binary; running without a hard timeout" >&2
    RUN=""
fi

phase() {
    echo
    echo "==== ci: $1 ===="
    shift
    # shellcheck disable=SC2086 # RUN is intentionally word-split
    $RUN "$@"
}

phase "tier-1 release build" cargo build --release
phase "tier-1 test suite" cargo test -q
phase "testkit unit suite" cargo test -q -p clof-testkit

# Memory-layout assertions are `const _: () = assert!(...)` blocks in
# clof-locks (CachePadded, lock-word padding) and clof-core (LevelMeta
# stripe/owner isolation): they fail these *builds*, not a test run, so
# compiling the crates under every feature mix is the whole check.
phase "memory-layout const assertions (default)" \
    cargo build -p clof-locks -p clof-core
phase "memory-layout const assertions (obs,testkit)" \
    cargo build -p clof-core --features obs,testkit

# Striped read-indicator oracle + fast-tier/mixed-tier smoke: the
# indicator must never false-negative a parked waiter, and the
# monomorphized dispatch tier must uphold the stress-oracle invariants.
phase "striped-indicator oracle" cargo test -q --test striped_indicator
phase "fast-tier oracle smoke" \
    cargo test -q --test stress_oracle -- \
    oracle_matrix_monomorphized_finalists \
    oracle_mixed_tier_handles_on_one_lock \
    keep_local_owner_only_counter_respects_h_bound

# Smoke subset of the stress oracle: the broken-lock acceptance test is
# itself a 16-seed fuzz run, plus one fair-composition matrix slice.
phase "stress-oracle smoke (16 seeds)" \
    cargo test -q --test stress_oracle -- \
    broken_lock_is_caught_with_replayable_seed \
    fair_composition_gap_is_bounded \
    oracle_matrix_ticket

# Default-build binary check: the tracer's exporter is the only code
# that emits the literal "traceEvents", so its absence from the default
# `clof` binary proves no tracer code was compiled in. This must run
# before the obs phases, which overwrite target/release/clof.
phase "default clof binary build" cargo build --release -p clof-bench
phase "default binary carries no tracer symbols" \
    sh -c 'if grep -qa traceEvents target/release/clof; then
               echo "tracer export symbols leaked into the default clof binary" >&2
               exit 1
           fi'
# The "clof-adapt" literal only exists in the adaptation layer (CLI
# output lines and the testkit stall-bound panic), so its absence proves
# the default binary compiled none of it.
phase "default binary carries no adapt symbols" \
    sh -c 'if grep -qa clof-adapt target/release/clof; then
               echo "adaptation symbols leaked into the default clof binary" >&2
               exit 1
           fi'
# The "clof-obs-serve" literal is the telemetry server's Server: header
# (sent on every HTTP response), so its absence proves the default
# binary compiled none of the serving layer.
phase "default binary carries no telemetry-server symbols" \
    sh -c 'if grep -qa clof-obs-serve target/release/clof; then
               echo "telemetry-server symbols leaked into the default clof binary" >&2
               exit 1
           fi'
# The "clof-profile-v1" literal is the contention profiler's format
# marker (printed in every profile header and JSON export), so its
# absence proves the default binary compiled none of the profiler.
phase "default binary carries no profiler symbols" \
    sh -c 'if grep -qa clof-profile-v1 target/release/clof; then
               echo "profiler symbols leaked into the default clof binary" >&2
               exit 1
           fi'
# The "clof-park-v1" literal is the waiting layer's futex marker (woven
# into its syscall-failure panics), so its absence proves the default
# binary compiled no spin-then-park/futex code.
phase "default binary carries no park symbols" \
    sh -c 'if grep -qa clof-park target/release/clof; then
               echo "spin-then-park symbols leaked into the default clof binary" >&2
               exit 1
           fi'
# The "clof-deadline-v1" literal is the deadline layer's format marker
# (printed in the `clof deadline` banner), so its absence proves the
# default binary compiled no bounded-acquisition/poisoning code.
phase "default binary carries no deadline symbols" \
    sh -c 'if grep -qa clof-deadline target/release/clof; then
               echo "deadline symbols leaked into the default clof binary" >&2
               exit 1
           fi'

# Telemetry phase: everything above must also hold with `obs` compiled
# in, and the default build must not even link clof-obs (zero-cost when
# disabled — checked on the dependency graph, where it is structural).
phase "obs release build" cargo build --release --features obs
phase "obs unit suite (clof-obs)" cargo test -q -p clof-obs
phase "obs telemetry-vs-oracle suite" \
    cargo test -q --features obs --test obs_stats
phase "obs trace-vs-oracle + histogram properties" \
    cargo test -q --features obs --test trace_oracle --test obs_hist_props
phase "obs server e2e scrape + SLO burn-rate properties" \
    cargo test -q -p clof-obs --test serve_e2e --test slo_props
phase "obs kvstore windowed stats" \
    cargo test -q -p clof-kvstore --features obs
phase "obs oracle smoke (16 seeds)" \
    cargo test -q --features obs --test stress_oracle -- \
    broken_lock_is_caught_with_replayable_seed \
    oracle_matrix_ticket

# Live telemetry smoke: build the obs-enabled CLI once, prove the tracer
# marker is now present, take one `top` window, and round-trip a span
# trace through the Chrome exporter and the analyzer (the trace command
# itself fails if the keep-local chain bound is violated).
phase "obs clof binary build" cargo build --release -p clof-bench --features obs
phase "obs binary carries tracer symbols" \
    grep -qa traceEvents target/release/clof
phase "obs binary carries the telemetry-server marker" \
    grep -qa clof-obs-serve target/release/clof
phase "clof top --once smoke" \
    ./target/release/clof top --machine armv8 --levels 3 --lock tkt-clh-tkt \
    --threads 4 --interval-ms 200 --once
# `serve --once` binds an ephemeral port, runs one sampling window, and
# self-scrapes all four endpoints through a real socket (it exits
# non-zero unless every endpoint answers 200).
phase "clof serve --once self-scrape smoke" \
    ./target/release/clof serve --machine armv8 --levels 3 --lock tkt-clh-tkt \
    --threads 4 --interval-ms 200 --once
phase "clof trace export/analyze round-trip" \
    sh -c 'out="${TMPDIR:-/tmp}/clof-ci-trace.json"
           ./target/release/clof trace --machine armv8 --levels 3 \
               --lock tkt-clh-tkt --threads 4 --iters 2000 --out "$out"
           grep -q "traceEvents" "$out"
           grep -q "\"ph\":\"X\"" "$out"
           rm -f "$out"'

# Contention-profiler phase: the obs binary must carry the profiler
# marker, a clean contended run must exit 0 with folded stacks, and the
# injected deadlock/inversion must be detected (non-zero exit) — the
# whole detector path from WaitTable to process exit code.
phase "obs binary carries the profiler marker" \
    grep -qa clof-profile-v1 target/release/clof
phase "clof profile --once smoke (clean run)" \
    sh -c 'out=$(./target/release/clof profile --machine armv8 --levels 3 \
                     --lock tkt-clh-tkt --threads 4 --once)
           echo "$out" | grep -q "clof-profile-v1"
           echo "$out" | grep -q "tkt-clh-tkt;L"
           echo "$out" | grep -q "verdict: clean"'
phase "clof profile detects an injected deadlock" \
    sh -c 'if ./target/release/clof profile --machine armv8 --levels 3 \
                  --lock tkt-clh-tkt --threads 4 --once --inject-deadlock \
                  >/dev/null 2>&1; then
               echo "injected 2-cycle was not detected (exit 0)" >&2
               exit 1
           fi'
phase "clof profile detects an injected H-bound inversion" \
    sh -c 'if ./target/release/clof profile --machine armv8 --levels 3 \
                  --lock tkt-clh-tkt --threads 4 --once --inject-inversion \
                  >/dev/null 2>&1; then
               echo "injected inversion was not detected (exit 0)" >&2
               exit 1
           fi'
phase "obs registry lifecycle suite" \
    cargo test -q --features obs --test profile_registry

phase "obs zero-cost dependency check" \
    sh -c 'if cargo tree -e normal | grep -q clof-obs; then
               echo "clof-obs leaked into the default dependency graph" >&2
               exit 1
           fi
           if cargo tree -e normal -p clof-bench | grep -q clof-obs; then
               echo "clof-obs leaked into the default clof-bench graph" >&2
               exit 1
           fi'

# Adaptation phase: the hot-swap layer must build and hold the oracle's
# invariants under forced migrations, its deleted-step mutants must die,
# and the default build must carry none of it (symbol and dependency
# checks). Swap-stress tests live in the root test crate, where feature
# unification via clof-testkit already compiles `adapt` into dev builds.
phase "adapt release build (adapt,obs)" cargo build --release --features adapt,obs
phase "adapt swap smoke (forced migrations)" \
    cargo test -q --test stress_oracle -- \
    migration_oracle_cross_tier \
    migration_keeps_the_gap_bounded
phase "adapt handover mutant-kill" \
    cargo test -q -p clof-verify --test mutant_kill -- handover
phase "adapt kvstore hot-swap suite" \
    cargo test -q -p clof-kvstore --features adapt,obs
# Migrations must leave their trail in the audit ring (the /snapshot
# export `clof serve` and the audit tail render from).
phase "adapt audit-ring migration records" \
    cargo test -q -p clof-core --features adapt,obs \
    completed_swap_is_recorded_in_the_audit_ring
# Site identity must survive hot-swaps: the 64-seed swap matrix asserts
# stable site ids, zero registry leaks, and rollback on failed swaps.
phase "adapt registry swap-matrix (site stability)" \
    cargo test -q --features adapt,obs --test profile_registry
phase "adapt clof binary build" \
    cargo build --release -p clof-bench --features adapt,obs
phase "adapt binary carries the adapt marker" \
    grep -qa clof-adapt target/release/clof
phase "clof adapt --once smoke" \
    ./target/release/clof adapt --machine armv8 --levels 3 --threads 4 --once
phase "adapt zero-cost dependency check" \
    sh -c 'if cargo tree -e normal -f "{p} {f}" | grep -qw adapt; then
               echo "the adapt feature leaked into the default dependency graph" >&2
               exit 1
           fi
           if cargo tree -e normal -f "{p} {f}" -p clof-bench | grep -qw adapt; then
               echo "the adapt feature leaked into the default clof-bench graph" >&2
               exit 1
           fi'

# Spin-then-park phase: the waiting layer must build and hold the
# oracle's invariants under 2x/4x oversubscription, its deleted-wake
# mutant must die by the stall panic, the park/wake instrumentation
# must compose with obs, and the default build must carry none of it.
phase "park release build" cargo build --release --features park
phase "park locks unit suite" cargo test -q -p clof-locks --features park
phase "park core suite" cargo test -q -p clof-core --features park
phase "park kvstore suite" cargo test -q -p clof-kvstore --features park
phase "park oversubscribed oracle smoke" \
    cargo test -q --features park --test park_oracle -- \
    forced_park_liveness_no_lost_wakeups \
    gap_bound_holds_across_park_wake_edges \
    budgets_are_leaf_biased_and_runtime_tunable
phase "park mutant-kill (deleted releaser wake)" \
    cargo test -q --features park --test park_mutant
phase "park+obs instrumentation oracle smoke" \
    cargo test -q --features park,obs --test park_oracle -- \
    forced_park_liveness_no_lost_wakeups
phase "park clof binary build" cargo build --release -p clof-bench --features park
phase "park binary carries the park marker" \
    grep -qa clof-park target/release/clof
phase "park zero-cost dependency check" \
    sh -c 'if cargo tree -e normal -f "{p} {f}" | grep -qw park; then
               echo "the park feature leaked into the default dependency graph" >&2
               exit 1
           fi
           if cargo tree -e normal -f "{p} {f}" -p clof-bench | grep -qw park; then
               echo "the park feature leaked into the default clof-bench graph" >&2
               exit 1
           fi'

# Deadline phase: bounded acquisition must build on every base lock,
# the 64-seed timeout/abandonment oracle matrix (plus its park and
# adapt companion cells) must hold mutual exclusion and leak nothing,
# the deleted-abandoned-skip mutant must wedge and be caught, the real
# binary must run the demo, and the default build must carry none of it.
phase "deadline release build" cargo build --release --features deadline
phase "deadline locks unit suite" cargo test -q -p clof-locks --features deadline
phase "deadline core suite" cargo test -q -p clof-core --features deadline
phase "deadline kvstore suite" cargo test -q -p clof-kvstore --features deadline
phase "deadline testkit suite (forced-timeout injection)" \
    cargo test -q -p clof-testkit --features deadline
phase "deadline timeout/abandon oracle matrix" \
    cargo test -q --features deadline --test deadline_oracle
phase "deadline+park oracle (abandonment next to parked waiters)" \
    cargo test -q --features deadline,park --test deadline_oracle -- \
    abandonment_with_parked_neighbours_loses_no_wakeups
phase "deadline+adapt oracle (abandonment across hot-swaps)" \
    cargo test -q --features deadline,adapt --test deadline_oracle -- \
    abandonment_mid_migration_keeps_swaps_and_counts
phase "deadline mutant-kill (deleted abandoned-node skip)" \
    cargo test -q --features deadline --test deadline_mutant
phase "deadline clof binary build" \
    cargo build --release -p clof-bench --features deadline
phase "deadline binary carries the deadline marker" \
    grep -qa clof-deadline target/release/clof
phase "clof deadline --once smoke" \
    ./target/release/clof deadline --machine armv8 --levels 3 --once
phase "deadline zero-cost dependency check" \
    sh -c 'if cargo tree -e normal -f "{p} {f}" | grep -qw deadline; then
               echo "the deadline feature leaked into the default dependency graph" >&2
               exit 1
           fi
           if cargo tree -e normal -f "{p} {f}" -p clof-bench | grep -qw deadline; then
               echo "the deadline feature leaked into the default clof-bench graph" >&2
               exit 1
           fi'

echo
echo "==== ci: all phases green ===="
