#!/usr/bin/env sh
# Offline CI gate for the CLoF workspace.
#
# Runs, in order:
#   1. tier-1: `cargo build --release && cargo test -q` (root package);
#   2. the clof-testkit unit suite (property engine + oracle self-tests);
#   3. a 16-seed smoke subset of the schedule-fuzzing stress oracle.
#
# Everything builds from vendored/in-repo code only — no network, no
# external dev-dependencies — so this is safe for air-gapped runners.
# Each phase runs under a hard timeout so a livelocked lock (the exact
# bug class the oracle hunts) fails the build instead of hanging it.
#
# Env knobs:
#   CI_TIMEOUT_SECS   per-phase timeout (default 1800)
#   CLOF_TESTKIT_SEED override the property-engine base seed for replay

set -eu

cd "$(dirname "$0")/.."

TIMEOUT_SECS="${CI_TIMEOUT_SECS:-1800}"

# Portable-ish hard timeout: use coreutils `timeout` when present,
# otherwise run unguarded (busybox-only hosts still get the gate).
if command -v timeout >/dev/null 2>&1; then
    RUN="timeout $TIMEOUT_SECS"
else
    echo "ci.sh: no 'timeout' binary; running without a hard timeout" >&2
    RUN=""
fi

phase() {
    echo
    echo "==== ci: $1 ===="
    shift
    # shellcheck disable=SC2086 # RUN is intentionally word-split
    $RUN "$@"
}

phase "tier-1 release build" cargo build --release
phase "tier-1 test suite" cargo test -q
phase "testkit unit suite" cargo test -q -p clof-testkit

# Smoke subset of the stress oracle: the broken-lock acceptance test is
# itself a 16-seed fuzz run, plus one fair-composition matrix slice.
phase "stress-oracle smoke (16 seeds)" \
    cargo test -q --test stress_oracle -- \
    broken_lock_is_caught_with_replayable_seed \
    fair_composition_gap_is_bounded \
    oracle_matrix_ticket

echo
echo "==== ci: all phases green ===="
