//! Umbrella crate of the CLoF reproduction: re-exports every component
//! crate and hosts the cross-crate integration tests (`tests/`) and the
//! runnable examples (`examples/`).
//!
//! Start with `examples/quickstart.rs`, then `README.md` for the map.

#![warn(missing_docs)]

pub use clof;
pub use clof_baselines as baselines;
pub use clof_kvstore as kvstore;
pub use clof_locks as locks;
pub use clof_sim as sim;
pub use clof_topology as topology;
pub use clof_verify as verify;
