//! End-to-end demo of the schedule-fuzzing lock oracle: a correct
//! ticket lock sails through, a deliberately broken lock (no atomic
//! read-modify-write) is caught within the default seed budget, and the
//! failure report names a replayable seed — which we then replay.
//!
//! ```text
//! cargo run -p clof-testkit --example oracle_demo
//! ```

use std::sync::Arc;

use clof_locks::TicketLock;
use clof_testkit::oracle::mutants::BrokenTas;
use clof_testkit::{fuzz_seeds, run_stress, seed_batch, RawHandle, StressOptions};

fn main() {
    let opts = StressOptions {
        threads: 4,
        iters: 40,
        label: "demo".into(),
        ..StressOptions::default()
    };

    // 1. A correct lock passes every seed.
    let good = Arc::new(TicketLock::default());
    let outcome = fuzz_seeds(&opts, &seed_batch(0xD0_0D1E, 8), |_s, _t| {
        RawHandle::new(&good)
    });
    println!(
        "ticket lock: {} seeds, {} acquisitions, failures: {}",
        outcome.seeds_run,
        outcome.total_acquisitions,
        outcome.failure.is_some()
    );
    assert!(outcome.failure.is_none(), "a ticket lock must pass");

    // 2. A broken lock is caught, and the report names its seed.
    let bad = Arc::new(BrokenTas::default());
    let outcome = fuzz_seeds(&opts, &seed_batch(0xD0_0D1E, 16), |_s, _t| {
        RawHandle::new(&bad)
    });
    let report = outcome.failure.expect("BrokenTas must be caught");
    println!("\n{}", report.render());

    // 3. Replay that exact seed: the violation reproduces.
    let replay_opts = StressOptions {
        seed: report.seed,
        ..opts
    };
    let bad = Arc::new(BrokenTas::default());
    let replay = run_stress(&replay_opts, |_t| RawHandle::new(&bad));
    println!(
        "\nreplay of seed {:#018x}: passed = {}",
        report.seed,
        replay.passed()
    );
    assert!(!replay.passed(), "the failing seed must reproduce");
}
