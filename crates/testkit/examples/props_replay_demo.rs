//! Shows what a property failure looks like: the report carries the
//! case seed, the shrunk counterexample, and a copy-pasteable replay
//! command line.
//!
//! ```text
//! cargo run -p clof-testkit --example props_replay_demo
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};

use clof_testkit::gen::vec_of;
use clof_testkit::{check_with, Config, Gen};

fn main() {
    let cfg = Config {
        cases: 64,
        ..Config::default()
    };
    // Deliberately false property: "no vector sums past 100".
    let err = catch_unwind(AssertUnwindSafe(|| {
        check_with(
            &cfg,
            "demo_sum_below_100",
            &vec_of(Gen::<u32>::int_range(0, 50), 0, 12),
            |xs: &Vec<u32>| {
                let sum: u32 = xs.iter().sum();
                if sum > 100 {
                    Err(format!("sum {sum} exceeds 100"))
                } else {
                    Ok(())
                }
            },
        )
    }))
    .expect_err("the property is false and must fail");

    let report = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic>".into());
    println!("--- failure report ---\n{report}");
    assert!(report.contains("replay: CLOF_TESTKIT_SEED="));
    assert!(report.contains("shrunk input"));
}
