//! Forced-timeout schedule driver for deadline-bounded acquisition
//! (`--features deadline`).
//!
//! Real clocks almost never expire a deadline *inside* a lock's
//! interesting race windows — the grant-vs-abandon edge where a waiter
//! gives up exactly as the releaser hands it the lock. The locks crate
//! exposes a seeded injection stream
//! ([`clof_locks::deadline::forced`]) that makes any wait round pretend
//! its deadline expired; this module drives that stream the way the
//! oracle drives [`clof_locks::chaos`]:
//!
//! * [`with_forced_timeouts`] — configures the stream for one seeded
//!   run and reports how many timeouts were forced. Injection state is
//!   process-global, so runs are serialized behind a module mutex.
//! * [`TimedHandle`] — wraps any [`DeadlineHandle`] so the stress
//!   oracle's *blocking* `acquire` becomes a retry loop of seeded,
//!   microsecond-scale `try_acquire_until` attempts. Every failed
//!   attempt walks the full abandonment protocol (queue-node abandon,
//!   level unwind, waiter-count bracket), then the next attempt proves
//!   the lock survived it — all under the oracle's mutual-exclusion and
//!   context-invariant checks.
//! * [`BlockingOrTimed`] — mixes timed and blocking waiters in one run,
//!   so abandonment is fuzzed against waiters that spin (or, under the
//!   `park` feature, block in the kernel) indefinitely.
//! * [`ForcedTimeoutPlan`] + [`ForcedTimeoutPlan::gen`] — a shrinkable
//!   generator of injection schedules for the property runner: a
//!   failing (seed, denom, budget) triple shrinks toward the least
//!   aggressive schedule that still fails.
//!
//! Determinism mirrors the chaos caveat: forced-fire decisions are a
//! pure function of seed and global poll order, so a seed replays a
//! failure *class*, not an exact interleaving.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use clof_locks::deadline::forced;

use crate::gen::Gen;
use crate::oracle::{run_stress, OracleHandle, StressOptions, StressReport};
use crate::rng::TestRng;

/// Anything the timed driver can bound: an [`OracleHandle`] that also
/// offers a deadline-bounded acquire.
pub trait DeadlineHandle: OracleHandle {
    /// Attempts to acquire until `deadline`; `false` means the attempt
    /// timed out and fully unwound (no queue position, no held level).
    fn try_acquire_until(&mut self, deadline: Instant) -> bool;
}

impl DeadlineHandle for clof::DynHandle {
    fn try_acquire_until(&mut self, deadline: Instant) -> bool {
        clof::DynHandle::try_acquire_until(self, deadline)
    }
}

impl DeadlineHandle for clof::adapt::AdaptHandle {
    fn try_acquire_until(&mut self, deadline: Instant) -> bool {
        clof::adapt::AdaptHandle::try_acquire_until(self, deadline)
    }
}

/// Serializes forced-timeout runs: the injection stream is
/// process-global. Lock ordering with the oracle's own chaos guard is
/// forced-then-chaos (this guard is taken first, `run_stress` takes the
/// chaos guard inside the body), and nothing takes them the other way.
fn forced_guard() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Runs `body` with the forced-timeout stream configured from
/// `(seed, denom)` — each deadline poll fires with probability
/// `1/denom` — and returns the body's result plus the number of
/// timeouts actually forced during the run.
pub fn with_forced_timeouts<R>(seed: u64, denom: u32, body: impl FnOnce() -> R) -> (R, u64) {
    let _guard = forced_guard();
    forced::configure(seed, denom);
    let out = body();
    let fires = forced::fires();
    forced::disable();
    (out, fires)
}

/// Drives a [`DeadlineHandle`] through the blocking-oracle interface as
/// a retry loop of seeded bounded attempts.
///
/// Each `acquire` draws a per-attempt budget from
/// `[budget_micros / 2, budget_micros]` and retries until an attempt
/// wins, counting every timeout into a shared counter. Under forced
/// injection most "timeouts" land mid-wait rather than at the budget's
/// natural expiry, which is the point.
pub struct TimedHandle<H: DeadlineHandle> {
    inner: H,
    rng: TestRng,
    budget_micros: u64,
    timeouts: Arc<AtomicU64>,
}

impl<H: DeadlineHandle> TimedHandle<H> {
    /// Wraps `inner`; `seed` differentiates per-thread budget streams,
    /// `timeouts` accumulates this handle's abandoned attempts.
    pub fn new(inner: H, seed: u64, budget_micros: u64, timeouts: Arc<AtomicU64>) -> Self {
        TimedHandle {
            inner,
            rng: TestRng::new(seed ^ 0xDEAD_11DE_DEAD_11DE),
            budget_micros: budget_micros.max(2),
            timeouts,
        }
    }
}

impl<H: DeadlineHandle> OracleHandle for TimedHandle<H> {
    fn acquire(&mut self) {
        loop {
            let lo = self.budget_micros / 2;
            let us = lo + self.rng.below(self.budget_micros - lo + 1);
            let deadline = Instant::now() + Duration::from_micros(us);
            if self.inner.try_acquire_until(deadline) {
                return;
            }
            self.timeouts.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn release(&mut self) {
        self.inner.release()
    }
}

/// A worker that either blocks (plain `acquire`, parking under the
/// `park` feature) or runs bounded attempts — for runs that fuzz
/// abandonment against indefinitely-waiting neighbours.
pub enum BlockingOrTimed<H: DeadlineHandle> {
    /// Plain blocking waiter.
    Blocking(H),
    /// Deadline-bounded retry waiter.
    Timed(TimedHandle<H>),
}

impl<H: DeadlineHandle> OracleHandle for BlockingOrTimed<H> {
    fn acquire(&mut self) {
        match self {
            BlockingOrTimed::Blocking(h) => h.acquire(),
            BlockingOrTimed::Timed(h) => h.acquire(),
        }
    }

    fn release(&mut self) {
        match self {
            BlockingOrTimed::Blocking(h) => h.release(),
            BlockingOrTimed::Timed(h) => h.release(),
        }
    }
}

/// One forced-timeout injection schedule, the generated input of the
/// deadline property tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForcedTimeoutPlan {
    /// Seed of the forced stream (and of per-thread budget streams).
    pub seed: u64,
    /// A deadline poll fires with probability `1/denom`.
    pub denom: u32,
    /// Upper bound of the per-attempt budget drawn by [`TimedHandle`].
    pub budget_micros: u64,
}

impl ForcedTimeoutPlan {
    /// Generator over schedules: `denom` in `[1, 64]`, budgets in
    /// `[20µs, 520µs]`. Shrinks toward the *least* aggressive schedule
    /// (rarest injection, longest budget, seed 0), so a shrunk failure
    /// is the mildest schedule that still breaks the lock.
    pub fn gen() -> Gen<ForcedTimeoutPlan> {
        Gen::from_fn(|rng| ForcedTimeoutPlan {
            seed: rng.next_u64(),
            denom: 1 + rng.below(64) as u32,
            budget_micros: 20 + rng.below(501),
        })
        .with_shrink(|p| {
            let mut out = Vec::new();
            // Mildest first: no injection pressure beyond the clock.
            if p.denom < 64 {
                out.push(ForcedTimeoutPlan { denom: 64, ..p.clone() });
                let mid = (p.denom + 64) / 2;
                if mid != 64 && mid != p.denom {
                    out.push(ForcedTimeoutPlan { denom: mid, ..p.clone() });
                }
            }
            if p.budget_micros < 520 {
                out.push(ForcedTimeoutPlan {
                    budget_micros: 520,
                    ..p.clone()
                });
            }
            if p.seed != 0 {
                out.push(ForcedTimeoutPlan { seed: 0, ..p.clone() });
                out.push(ForcedTimeoutPlan {
                    seed: p.seed / 2,
                    ..p.clone()
                });
            }
            out.dedup();
            out
        })
    }
}

/// Outcome of a multi-seed forced-timeout fuzz campaign.
#[derive(Debug, Clone)]
pub struct TimeoutFuzzOutcome {
    /// Seeds actually executed (stops at the first failure).
    pub seeds_run: usize,
    /// First failing report, if any.
    pub failure: Option<StressReport>,
    /// Critical sections completed across all runs.
    pub total_acquisitions: u64,
    /// Bounded attempts that timed out and retried, across all runs.
    pub total_timeouts: u64,
    /// Timeouts the injection stream forced, across all runs.
    pub total_forced_fires: u64,
}

impl TimeoutFuzzOutcome {
    /// Whether every seed passed.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }

    /// Panics with the failing report (replayable seed included) if any
    /// seed failed.
    pub fn assert_passed(&self) {
        if let Some(report) = &self.failure {
            panic!(
                "deadline oracle failed after {} seed(s), {} timeout(s):\n{}",
                self.seeds_run,
                self.total_timeouts,
                report.render()
            );
        }
    }
}

/// Runs the stress oracle once per seed with forced-timeout injection
/// at `1/denom`, stopping at the first failure.
///
/// `factory(seed, tid, timeouts)` builds the per-thread handle —
/// typically a [`TimedHandle`] or [`BlockingOrTimed`] fed the same
/// `timeouts` counter, so the outcome can report how many abandonments
/// the campaign actually exercised.
pub fn fuzz_timeout_seeds<H, F>(
    opts: &StressOptions,
    seeds: &[u64],
    denom: u32,
    factory: F,
) -> TimeoutFuzzOutcome
where
    H: OracleHandle,
    F: Fn(u64, usize, &Arc<AtomicU64>) -> H + Sync,
{
    let mut total = 0u64;
    let mut total_timeouts = 0u64;
    let mut total_fires = 0u64;
    for (i, &seed) in seeds.iter().enumerate() {
        let timeouts = Arc::new(AtomicU64::new(0));
        let run_opts = StressOptions {
            seed,
            ..opts.clone()
        };
        let (report, fires) = with_forced_timeouts(seed, denom, || {
            run_stress(&run_opts, |tid| factory(seed, tid, &timeouts))
        });
        total += report.total_acquisitions;
        total_timeouts += timeouts.load(Ordering::Relaxed);
        total_fires += fires;
        if !report.passed() {
            return TimeoutFuzzOutcome {
                seeds_run: i + 1,
                failure: Some(report),
                total_acquisitions: total,
                total_timeouts,
                total_forced_fires: total_fires,
            };
        }
    }
    TimeoutFuzzOutcome {
        seeds_run: seeds.len(),
        failure: None,
        total_acquisitions: total,
        total_timeouts,
        total_forced_fires: total_fires,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::seed_batch;
    use crate::strategies::build_regular;
    use clof::{DynClofLock, LockKind};

    #[test]
    fn plan_gen_shrinks_toward_mildest_schedule() {
        let g = ForcedTimeoutPlan::gen();
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let p = g.sample(&mut rng);
            assert!((1..=64).contains(&p.denom));
            assert!((20..=520).contains(&p.budget_micros));
        }
        let aggressive = ForcedTimeoutPlan {
            seed: 99,
            denom: 2,
            budget_micros: 30,
        };
        let candidates = g.shrink(&aggressive);
        assert_eq!(candidates[0].denom, 64, "mildest denom first");
        assert!(candidates.iter().any(|c| c.budget_micros == 520));
        assert!(candidates.iter().any(|c| c.seed == 0));
        // The mildest schedule is a fixed point.
        let mild = ForcedTimeoutPlan {
            seed: 0,
            denom: 64,
            budget_micros: 520,
        };
        assert!(g.shrink(&mild).is_empty());
    }

    #[test]
    fn forced_timeouts_fire_and_reset() {
        let ((), fires) = with_forced_timeouts(0x5EED, 1, || {
            let lock = DynClofLock::build(
                &build_regular(&[2]),
                &[LockKind::Ticket, LockKind::Ticket],
            )
            .expect("builds");
            let mut h = lock.handle(0);
            // Uncontended bounded acquires still poll the deadline when
            // the fast CAS path is bypassed by contention; force polls
            // by timing out against a held lock.
            let mut holder = lock.handle(1);
            holder.acquire();
            let won = h.try_acquire_until(Instant::now() + Duration::from_millis(50));
            assert!(!won, "lock is held; denom 1 forces instant expiry");
            holder.release();
        });
        assert!(fires > 0, "denom 1 must force at least one timeout");
        assert!(!forced::is_enabled(), "stream disabled after the run");
    }

    #[test]
    fn timed_handles_survive_forced_injection_on_a_tree() {
        let hierarchy = build_regular(&[2, 2]);
        let lock = std::sync::Arc::new(
            DynClofLock::build(
                &hierarchy,
                &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket],
            )
            .expect("builds"),
        );
        let seeds = seed_batch(0x7E0_D1ED, 2);
        let opts = StressOptions {
            threads: 4,
            iters: 12,
            chaos_denom: 0, // forced timeouts are this run's perturbation
            label: "timed mcs-clh-tkt".into(),
            ..StressOptions::default()
        };
        let lock2 = std::sync::Arc::clone(&lock);
        let outcome = fuzz_timeout_seeds(&opts, &seeds, 3, |seed, tid, timeouts| {
            TimedHandle::new(
                lock2.handle(tid % hierarchy_ncpus(&hierarchy)),
                seed ^ tid as u64,
                120,
                std::sync::Arc::clone(timeouts),
            )
        });
        outcome.assert_passed();
        assert_eq!(
            outcome.total_acquisitions,
            2 * 4 * 12,
            "every timed acquire must eventually win"
        );
        assert!(outcome.total_timeouts > 0, "injection must force abandons");
        assert_eq!(lock.queue_depth_hint(), 0, "no waiter-count leak");
    }

    fn hierarchy_ncpus(h: &clof_topology::Hierarchy) -> usize {
        h.ncpus()
    }
}
