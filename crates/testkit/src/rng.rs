//! Deterministic pseudo-random source: SplitMix64.
//!
//! SplitMix64 (Steele, Lea & Flood's `splittable` mix, the stream used to
//! seed xoshiro generators) is tiny, passes BigCrush on its output
//! function, and — unlike `std`'s hasher-based randomness — is a pure
//! function of its 64-bit seed, which is the whole point: every generated
//! test case can be replayed from one printed number.

/// A seeded SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream; equal seeds yield equal streams forever.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    ///
    /// Uses the widening-multiply trick (Lemire); the slight modulo bias
    /// of the fallback path is irrelevant at test-case scale.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw from `[lo, hi)` over `i128`-safe integer ranges.
    pub fn in_range(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo < hi, "empty range");
        let span = (hi - lo) as u128;
        let draw = if span > u64::MAX as u128 {
            ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span
        } else {
            self.below(span as u64) as u128
        };
        lo + draw as i128
    }

    /// True with probability `1/denom`.
    pub fn chance(&mut self, denom: u64) -> bool {
        self.below(denom.max(1)) == 0
    }

    /// Derives an independent stream (for per-thread or per-case seeds).
    pub fn fork(&mut self) -> TestRng {
        TestRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::new(99);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn in_range_covers_extremes() {
        let mut rng = TestRng::new(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = rng.in_range(-2, 3);
            assert!((-2..3).contains(&v));
            seen_lo |= v == -2;
            seen_hi |= v == 2;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut a = TestRng::new(5);
        let mut f = a.fork();
        assert_ne!(a.next_u64(), f.next_u64());
    }
}
