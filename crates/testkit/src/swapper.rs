//! Forced-migration driver: runs a body (typically the stress oracle)
//! while a background thread hot-swaps an [`AdaptiveLock`] between
//! compositions on a seeded schedule.
//!
//! The migration oracle needs swaps to land *mid-contention* — while
//! workers are queued on the outgoing tree, inside their critical
//! sections, and on the release→acquire hand-off edge. A fixed-period
//! timer would sync up with the workers' own cadence; instead the
//! swapper sleeps a seeded, jittered number of scheduler yields between
//! swaps, so across a seed batch the flip lands in every phase of the
//! workers' loop.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use clof::adapt::{AdaptHandle, AdaptiveLock};
use clof::kind::LockKind;

use crate::oracle::{run_stress, OracleHandle, StressOptions, StressReport};
use crate::rng::TestRng;

impl OracleHandle for AdaptHandle {
    fn acquire(&mut self) {
        AdaptHandle::acquire(self)
    }
    fn release(&mut self) {
        AdaptHandle::release(self)
    }
}

/// A schedule of forced migrations.
#[derive(Debug, Clone)]
pub struct SwapPlan {
    /// Compositions to cycle through, in order. Swapping to the shape
    /// already active is a (counted-as-nothing) no-op, so listing the
    /// starting shape is fine.
    pub shapes: Vec<Vec<LockKind>>,
    /// Upper bound on the seeded number of `yield_now` calls between
    /// consecutive swaps (the actual pause is `1 + rng.below(this)`).
    pub pause_yields: u64,
    /// Stop after this many *completed* migrations; `0` means unlimited
    /// (the swapper then runs until the body finishes).
    pub max_swaps: usize,
}

impl SwapPlan {
    /// A plan cycling through `shapes` with the default jitter and no
    /// swap cap.
    pub fn cycling(shapes: &[&[LockKind]]) -> Self {
        SwapPlan {
            shapes: shapes.iter().map(|s| s.to_vec()).collect(),
            pause_yields: 32,
            max_swaps: 0,
        }
    }
}

/// Runs `body` while a swapper thread migrates `lock` per `plan`;
/// returns the body's result and the number of completed migrations.
///
/// The swapper stops when the body returns (or the plan's `max_swaps`
/// is reached). Swap attempts that fail to build (bad shape) are
/// skipped; attempts targeting the already-active shape don't count.
pub fn with_forced_swaps<R>(
    lock: &Arc<AdaptiveLock>,
    seed: u64,
    plan: &SwapPlan,
    body: impl FnOnce() -> R,
) -> (R, u64) {
    assert!(!plan.shapes.is_empty(), "swap plan needs at least one shape");
    let stop = Arc::new(AtomicBool::new(false));
    let swaps = Arc::new(AtomicU64::new(0));
    let swapper = {
        let lock = Arc::clone(lock);
        let stop = Arc::clone(&stop);
        let swaps = Arc::clone(&swaps);
        let plan = plan.clone();
        std::thread::spawn(move || {
            let mut rng = TestRng::new(seed ^ 0x5AAB_5AAB_5AAB_5AAB);
            let mut next = 0usize;
            'swapping: while !stop.load(Ordering::Acquire)
                && (plan.max_swaps == 0
                    || (swaps.load(Ordering::Relaxed) as usize) < plan.max_swaps)
            {
                for _ in 0..=rng.below(plan.pause_yields.max(1)) {
                    if stop.load(Ordering::Acquire) {
                        break 'swapping;
                    }
                    std::thread::yield_now();
                }
                let shape = &plan.shapes[next % plan.shapes.len()];
                next += 1;
                if let Ok(true) = lock.swap_to(shape) {
                    swaps.fetch_add(1, Ordering::Relaxed);
                }
            }
        })
    };
    let out = body();
    stop.store(true, Ordering::Release);
    swapper.join().expect("swapper thread panicked");
    (out, swaps.load(Ordering::Relaxed))
}

/// Outcome of a multi-seed forced-migration fuzz campaign.
#[derive(Debug, Clone)]
pub struct SwapFuzzOutcome {
    /// Seeds actually executed (stops at the first failure).
    pub seeds_run: usize,
    /// First failing report, if any.
    pub failure: Option<StressReport>,
    /// Critical sections completed across all runs.
    pub total_acquisitions: u64,
    /// Migrations completed across all runs.
    pub total_swaps: u64,
}

impl SwapFuzzOutcome {
    /// Whether every seed passed.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }

    /// Panics with the failing report (replayable seed included) if any
    /// seed failed.
    pub fn assert_passed(&self) {
        if let Some(report) = &self.failure {
            panic!(
                "migration oracle failed after {} seed(s), {} swap(s):\n{}",
                self.seeds_run,
                self.total_swaps,
                report.render()
            );
        }
    }
}

/// Runs the stress oracle once per seed with forced migrations: a fresh
/// lock from `lock_factory(seed)` each run (a wedged lock must not leak
/// into the next seed), worker `tid` pinned to `cpu_for(seed, tid)`,
/// and the swapper cycling `plan` throughout. Stops at the first
/// failing seed.
pub fn fuzz_swap_seeds<L, C>(
    opts: &StressOptions,
    seeds: &[u64],
    plan: &SwapPlan,
    lock_factory: L,
    cpu_for: C,
) -> SwapFuzzOutcome
where
    L: Fn(u64) -> Arc<AdaptiveLock>,
    C: Fn(u64, usize) -> usize + Sync,
{
    let mut total = 0u64;
    let mut total_swaps = 0u64;
    for (i, &seed) in seeds.iter().enumerate() {
        let lock = lock_factory(seed);
        let run_opts = StressOptions {
            seed,
            ..opts.clone()
        };
        let (report, swaps) = with_forced_swaps(&lock, seed, plan, || {
            run_stress(&run_opts, |tid| lock.handle(cpu_for(seed, tid)))
        });
        total += report.total_acquisitions;
        total_swaps += swaps;
        if !report.passed() {
            return SwapFuzzOutcome {
                seeds_run: i + 1,
                failure: Some(report),
                total_acquisitions: total,
                total_swaps,
            };
        }
    }
    SwapFuzzOutcome {
        seeds_run: seeds.len(),
        failure: None,
        total_acquisitions: total,
        total_swaps,
    }
}
