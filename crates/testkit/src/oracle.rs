//! The lock oracle: a schedule-fuzzing stress harness that drives any
//! lock through contended critical sections and checks the properties a
//! lock must provide.
//!
//! Checks, per run:
//!
//! * **Mutual exclusion** — an owner cell (`swap` on entry/exit) plus a
//!   *non-atomically-updated* counter pair: each critical section reads
//!   both counters, checks they agree, writes `+1` to the first, dawdles,
//!   then writes `+1` to the second. Any overlap between two critical
//!   sections shows up as a counter disagreement, a lost update against
//!   the atomic total, or a foreign owner in the cell.
//! * **Context invariant** (paper §4.1) — `clof-core`'s `LevelMeta`
//!   carries a `ctx_busy` detector under the `testkit` feature; a
//!   concurrent use of a high-lock context panics inside acquire/release,
//!   and the harness converts that panic into a violation.
//! * **Fairness** — per-acquisition *gap* (number of acquisitions by
//!   other threads between two consecutive acquisitions of one thread)
//!   is histogrammed; an optional bound turns excessive gaps into
//!   violations. CLoF's `keep_local` threshold admits gaps up to roughly
//!   `H × threads`, so bounds must be generous.
//!
//! Schedules are perturbed two ways, both derived from one seed: the
//! harness yields/spins inside and around critical sections, and
//! `clof_locks::chaos` injects delays at the marked race windows *inside*
//! the lock algorithms. Chaos state is process-global, so runs are
//! serialized behind a module mutex; seeds make every run replayable.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use clof_locks::{chaos, RawLock};

use crate::rng::TestRng;

/// Sentinel for "no thread owns the lock".
const FREE: usize = usize::MAX;

/// Number of power-of-two buckets in the gap histogram.
pub const GAP_BUCKETS: usize = 16;

/// Anything the oracle can drive: one per-thread handle of some lock.
///
/// Implemented for `clof::DynHandle` and for any [`RawLock`] via
/// [`RawHandle`]; implement it for custom harness types as needed.
pub trait OracleHandle {
    /// Blocks until the lock is held by this handle.
    fn acquire(&mut self);
    /// Releases the lock; only called while held.
    fn release(&mut self);
}

impl OracleHandle for clof::DynHandle {
    fn acquire(&mut self) {
        clof::DynHandle::acquire(self)
    }
    fn release(&mut self) {
        clof::DynHandle::release(self)
    }
}

/// Adapter driving a bare [`RawLock`] through the oracle.
pub struct RawHandle<L: RawLock> {
    lock: Arc<L>,
    ctx: L::Context,
}

impl<L: RawLock> RawHandle<L> {
    /// A handle on `lock` with a fresh context.
    pub fn new(lock: &Arc<L>) -> Self {
        RawHandle {
            lock: Arc::clone(lock),
            ctx: L::Context::default(),
        }
    }
}

impl<L: RawLock> OracleHandle for RawHandle<L> {
    fn acquire(&mut self) {
        self.lock.acquire(&mut self.ctx)
    }
    fn release(&mut self) {
        self.lock.release(&mut self.ctx)
    }
}

/// Stress-run parameters.
#[derive(Debug, Clone)]
pub struct StressOptions {
    /// Worker thread count.
    pub threads: usize,
    /// Lock acquisitions per thread.
    pub iters: u64,
    /// Seed for harness scheduling *and* in-lock chaos injection.
    pub seed: u64,
    /// Chaos probability denominator for the in-lock injection points
    /// (a point fires with probability `1/denom`); `0` disables chaos.
    pub chaos_denom: u32,
    /// Upper bound for chaos spin bursts.
    pub chaos_max_spin: u32,
    /// Fail if any acquisition gap exceeds this many foreign
    /// acquisitions; `None` disables the check (required for unfair
    /// locks, which have no gap bound at all).
    pub max_gap: Option<u64>,
    /// Label carried into the report (e.g. the composition name).
    pub label: String,
}

impl Default for StressOptions {
    fn default() -> Self {
        StressOptions {
            threads: 4,
            iters: 40,
            seed: 0xFACE_0FF5,
            chaos_denom: 3,
            chaos_max_spin: 48,
            max_gap: None,
            label: String::new(),
        }
    }
}

/// One property violation observed during a stress run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two threads were inside the critical section at once (owner cell).
    MutualExclusion {
        /// Thread that found the cell occupied.
        thread: usize,
        /// Thread that occupied it.
        other: usize,
    },
    /// The non-atomic counter pair disagreed inside a critical section —
    /// another critical section is mid-flight.
    TornCounters {
        /// Observing thread.
        thread: usize,
        /// First counter.
        c1: u64,
        /// Second counter.
        c2: u64,
    },
    /// Final counters disagree with the atomic total: updates were lost
    /// to overlapping critical sections.
    LostUpdates {
        /// Final first counter.
        c1: u64,
        /// Final second counter.
        c2: u64,
        /// Atomic ground-truth total.
        total: u64,
    },
    /// A high-lock context was used by two overlapping operations
    /// (paper §4.1's context invariant), detected by `LevelMeta`.
    ContextInvariant {
        /// Panic message from the detector.
        detail: String,
    },
    /// A thread's acquisition gap exceeded the configured bound.
    UnfairGap {
        /// Starved thread.
        thread: usize,
        /// Foreign acquisitions between two of its own.
        gap: u64,
        /// Configured bound.
        bound: u64,
    },
    /// A worker panicked for any other reason.
    ThreadPanic {
        /// Panicking thread.
        thread: usize,
        /// Panic message.
        detail: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::MutualExclusion { thread, other } => {
                if *other == FREE {
                    // The owner cell was already FREE at release time:
                    // some overlapping thread reset it first.
                    write!(
                        f,
                        "mutual exclusion: thread {thread} released a lock nobody held \
                         (a racing thread reset the owner cell first)"
                    )
                } else {
                    write!(
                        f,
                        "mutual exclusion: thread {thread} entered while thread {other} \
                         held the lock"
                    )
                }
            }
            Violation::TornCounters { thread, c1, c2 } => write!(
                f,
                "torn counters: thread {thread} read c1={c1} c2={c2} inside its critical section"
            ),
            Violation::LostUpdates { c1, c2, total } => write!(
                f,
                "lost updates: final c1={c1} c2={c2} but {total} critical sections ran"
            ),
            Violation::ContextInvariant { detail } => {
                write!(f, "context invariant: {detail}")
            }
            Violation::UnfairGap { thread, gap, bound } => write!(
                f,
                "unfair gap: thread {thread} waited through {gap} foreign acquisitions (bound {bound})"
            ),
            Violation::ThreadPanic { thread, detail } => {
                write!(f, "thread {thread} panicked: {detail}")
            }
        }
    }
}

/// Outcome of one stress run.
#[derive(Debug, Clone)]
pub struct StressReport {
    /// Seed the run (and any failure) replays from.
    pub seed: u64,
    /// Label from the options.
    pub label: String,
    /// Thread count.
    pub threads: usize,
    /// Total critical sections completed.
    pub total_acquisitions: u64,
    /// All violations, in observation order (capped per category).
    pub violations: Vec<Violation>,
    /// Largest acquisition gap seen by any thread.
    pub max_gap: u64,
    /// Gap histogram: bucket `i` counts gaps in `[2^(i-1), 2^i)`
    /// (bucket 0 counts gap 0).
    pub gap_histogram: [u64; GAP_BUCKETS],
    /// Number of in-lock chaos injections that fired.
    pub chaos_hits: u64,
}

impl StressReport {
    /// Whether the lock survived the run.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable report; includes the replayable seed on failure.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let verdict = if self.passed() { "PASS" } else { "FAIL" };
        let _ = writeln!(
            out,
            "[{verdict}] {label} — {threads} threads, {total} acquisitions, seed 0x{seed:016x}",
            label = if self.label.is_empty() { "<lock>" } else { &self.label },
            threads = self.threads,
            total = self.total_acquisitions,
            seed = self.seed,
        );
        let _ = writeln!(
            out,
            "  max gap {mg}, chaos hits {ch}, gap histogram {hist:?}",
            mg = self.max_gap,
            ch = self.chaos_hits,
            hist = &self.gap_histogram[..used_buckets(&self.gap_histogram)],
        );
        for v in &self.violations {
            let _ = writeln!(out, "  violation: {v}");
        }
        if !self.passed() {
            let _ = writeln!(out, "  replay with seed 0x{:016x}", self.seed);
        }
        out
    }
}

fn used_buckets(hist: &[u64; GAP_BUCKETS]) -> usize {
    hist.iter()
        .rposition(|&c| c > 0)
        .map(|i| i + 1)
        .unwrap_or(1)
}

fn gap_bucket(gap: u64) -> usize {
    if gap == 0 {
        0
    } else {
        ((64 - gap.leading_zeros()) as usize).min(GAP_BUCKETS - 1)
    }
}

/// Shared oracle state for one run.
struct Shared {
    owner: AtomicUsize,
    // Counter pair updated with separate Relaxed load/store (deliberately
    // NOT read-modify-write): overlap loses updates and tears the pair,
    // without introducing undefined behaviour when the lock is broken.
    c1: AtomicU64,
    c2: AtomicU64,
    total: AtomicU64,
    acq_index: AtomicU64,
    max_gap: AtomicU64,
    histogram: [AtomicU64; GAP_BUCKETS],
    violations: Mutex<Vec<Violation>>,
}

impl Shared {
    fn new() -> Self {
        Shared {
            owner: AtomicUsize::new(FREE),
            c1: AtomicU64::new(0),
            c2: AtomicU64::new(0),
            total: AtomicU64::new(0),
            acq_index: AtomicU64::new(0),
            max_gap: AtomicU64::new(0),
            histogram: std::array::from_fn(|_| AtomicU64::new(0)),
            violations: Mutex::new(Vec::new()),
        }
    }

    fn record(&self, v: Violation) {
        let mut vs = self.violations.lock().unwrap_or_else(|p| p.into_inner());
        // Cap: a badly broken lock produces thousands of identical hits.
        if vs.len() < 32 {
            vs.push(v);
        }
    }
}

/// Serializes chaos-enabled runs: the injection state is process-global.
fn chaos_guard() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Runs the stress oracle: `opts.threads` workers, each constructed a
/// handle via `factory(thread_index)` *on its own thread*, each looping
/// `opts.iters` times through acquire → oracle checks → release.
///
/// Deterministic given the seed on a fixed machine up to OS scheduling;
/// every perturbation (harness yields, in-lock chaos) derives from
/// `opts.seed`, so failing seeds reproduce with high probability.
pub fn run_stress<H, F>(opts: &StressOptions, factory: F) -> StressReport
where
    H: OracleHandle,
    F: Fn(usize) -> H + Sync,
{
    let guard = chaos_guard();
    if opts.chaos_denom > 0 {
        // configure() zeroes the hit counter, so hits() after the run is
        // exactly this run's injection count.
        chaos::configure(opts.seed, opts.chaos_denom, opts.chaos_max_spin.max(1));
    } else {
        chaos::disable();
    }

    let shared = Shared::new();
    let bound = opts.max_gap;

    std::thread::scope(|scope| {
        for tid in 0..opts.threads {
            let shared = &shared;
            let factory = &factory;
            let opts = &*opts;
            scope.spawn(move || {
                let body = AssertUnwindSafe(|| {
                    let mut handle = factory(tid);
                    let mut rng = TestRng::new(opts.seed ^ (tid as u64).wrapping_mul(0x9E37));
                    let mut prev_index: Option<u64> = None;
                    for _ in 0..opts.iters {
                        handle.acquire();
                        // ---- inside the critical section ----
                        let prev_owner = shared.owner.swap(tid, Ordering::SeqCst);
                        if prev_owner != FREE {
                            shared.record(Violation::MutualExclusion {
                                thread: tid,
                                other: prev_owner,
                            });
                        }
                        let idx = shared.acq_index.fetch_add(1, Ordering::SeqCst);
                        if let Some(p) = prev_index {
                            let gap = idx - p - 1;
                            shared.max_gap.fetch_max(gap, Ordering::Relaxed);
                            shared.histogram[gap_bucket(gap)].fetch_add(1, Ordering::Relaxed);
                            if let Some(b) = bound {
                                if gap > b {
                                    shared.record(Violation::UnfairGap {
                                        thread: tid,
                                        gap,
                                        bound: b,
                                    });
                                }
                            }
                        }
                        prev_index = Some(idx);

                        let a = shared.c1.load(Ordering::Relaxed);
                        let b = shared.c2.load(Ordering::Relaxed);
                        if a != b {
                            shared.record(Violation::TornCounters { thread: tid, c1: a, c2: b });
                        }
                        shared.c1.store(a + 1, Ordering::Relaxed);
                        // Dawdle between the two writes: this is the window
                        // an interloper tears.
                        if rng.chance(2) {
                            std::thread::yield_now();
                        } else {
                            for _ in 0..rng.below(24) {
                                std::hint::spin_loop();
                            }
                        }
                        shared.c2.store(a + 1, Ordering::Relaxed);
                        shared.total.fetch_add(1, Ordering::SeqCst);

                        let left_by = shared.owner.swap(FREE, Ordering::SeqCst);
                        if left_by != tid {
                            shared.record(Violation::MutualExclusion {
                                thread: tid,
                                other: left_by,
                            });
                        }
                        // ---- leave the critical section ----
                        handle.release();
                        if rng.chance(3) {
                            std::thread::yield_now();
                        }
                    }
                });
                if let Err(payload) = catch_unwind(body) {
                    let detail = panic_message(&payload);
                    if detail.contains("context invariant") {
                        shared.record(Violation::ContextInvariant { detail });
                    } else {
                        shared.record(Violation::ThreadPanic { thread: tid, detail });
                    }
                }
            });
        }
    });

    let chaos_hits = if opts.chaos_denom > 0 { chaos::hits() } else { 0 };
    chaos::disable();
    drop(guard);

    let c1 = shared.c1.load(Ordering::SeqCst);
    let c2 = shared.c2.load(Ordering::SeqCst);
    let total = shared.total.load(Ordering::SeqCst);
    if c1 != total || c2 != total {
        shared.record(Violation::LostUpdates { c1, c2, total });
    }

    StressReport {
        seed: opts.seed,
        label: opts.label.clone(),
        threads: opts.threads,
        total_acquisitions: total,
        violations: shared.violations.into_inner().unwrap_or_else(|p| p.into_inner()),
        max_gap: shared.max_gap.load(Ordering::Relaxed),
        gap_histogram: std::array::from_fn(|i| shared.histogram[i].load(Ordering::Relaxed)),
        chaos_hits,
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Outcome of a multi-seed fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Seeds actually executed (stops at the first failure).
    pub seeds_run: usize,
    /// First failing report, if any.
    pub failure: Option<StressReport>,
    /// Critical sections completed across all runs.
    pub total_acquisitions: u64,
}

impl FuzzOutcome {
    /// Whether every seed passed.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }

    /// Panics with the failing report (replayable seed included) if any
    /// seed failed.
    pub fn assert_passed(&self) {
        if let Some(report) = &self.failure {
            panic!(
                "lock oracle failed after {} seed(s):\n{}",
                self.seeds_run,
                report.render()
            );
        }
    }
}

/// Derives `n` fuzz seeds from a base seed.
pub fn seed_batch(base: u64, n: usize) -> Vec<u64> {
    let mut rng = TestRng::new(base);
    (0..n).map(|_| rng.next_u64()).collect()
}

/// Runs the oracle once per seed, stopping at the first failure.
///
/// `factory(seed, thread_index)` builds the per-thread handle; it is
/// called on the worker threads, after chaos is configured for `seed`.
pub fn fuzz_seeds<H, F>(opts: &StressOptions, seeds: &[u64], factory: F) -> FuzzOutcome
where
    H: OracleHandle,
    F: Fn(u64, usize) -> H + Sync,
{
    let mut total = 0u64;
    for (i, &seed) in seeds.iter().enumerate() {
        let run_opts = StressOptions {
            seed,
            ..opts.clone()
        };
        let report = run_stress(&run_opts, |tid| factory(seed, tid));
        total += report.total_acquisitions;
        if !report.passed() {
            return FuzzOutcome {
                seeds_run: i + 1,
                failure: Some(report),
                total_acquisitions: total,
            };
        }
    }
    FuzzOutcome {
        seeds_run: seeds.len(),
        failure: None,
        total_acquisitions: total,
    }
}

/// Deliberately broken locks: ground truth that the oracle *detects*
/// violations, not just that correct locks pass. Each implements
/// [`RawLock`] so it flows through the exact plumbing real locks use.
pub mod mutants {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    use clof_locks::{LockInfo, NoContext, RawLock};

    /// A test-**then**-set "lock" with no atomic read-modify-write: two
    /// threads can both observe `held == false`, both store `true`, and
    /// both enter. The deliberate yield inside the window makes the race
    /// near-certain even on a single CPU.
    #[derive(Debug, Default)]
    pub struct BrokenTas {
        held: AtomicBool,
    }

    impl RawLock for BrokenTas {
        type Context = NoContext;

        const INFO: LockInfo = LockInfo {
            name: "broken-tas",
            full_name: "Broken test-then-set (racy, for oracle validation)",
            fair: false,
            local_spinning: false,
            needs_context: false,
            waiter_hint: false,
        };

        fn acquire(&self, _ctx: &mut NoContext) {
            loop {
                if !self.held.load(Ordering::Acquire) {
                    // The bug: the check and the store are not one atomic
                    // step. Yielding here hands the window to another
                    // thread deterministically on small machines.
                    std::thread::yield_now();
                    self.held.store(true, Ordering::Release);
                    return;
                }
                std::thread::yield_now();
            }
        }

        fn release(&self, _ctx: &mut NoContext) {
            self.held.store(false, Ordering::Release);
        }
    }

    /// A ticket lock whose release grants **two** tickets on every fourth
    /// release, admitting two waiters at once from then on.
    #[derive(Debug, Default)]
    pub struct DoubleGrantTicket {
        next: AtomicU64,
        grant: AtomicU64,
        releases: AtomicU64,
    }

    impl RawLock for DoubleGrantTicket {
        type Context = NoContext;

        const INFO: LockInfo = LockInfo {
            name: "double-grant-tkt",
            full_name: "Ticketlock granting two tickets per fourth release",
            fair: true,
            local_spinning: false,
            needs_context: false,
            waiter_hint: false,
        };

        fn acquire(&self, _ctx: &mut NoContext) {
            let ticket = self.next.fetch_add(1, Ordering::Relaxed);
            while self.grant.load(Ordering::Acquire) < ticket {
                std::thread::yield_now();
            }
        }

        fn release(&self, _ctx: &mut NoContext) {
            let n = self.releases.fetch_add(1, Ordering::Relaxed) + 1;
            let step = if n % 4 == 0 { 2 } else { 1 };
            self.grant.fetch_add(step, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::mutants::{BrokenTas, DoubleGrantTicket};
    use super::*;
    use clof_locks::TicketLock;
    use std::sync::Arc;

    #[test]
    fn correct_ticket_lock_passes() {
        let lock = Arc::new(TicketLock::default());
        let opts = StressOptions {
            threads: 4,
            iters: 60,
            seed: 0xA11CE,
            label: "tkt".into(),
            ..StressOptions::default()
        };
        let report = run_stress(&opts, |_| RawHandle::new(&lock));
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.total_acquisitions, 4 * 60);
    }

    #[test]
    fn broken_tas_is_caught_with_replayable_seed() {
        let seeds = seed_batch(0xBAD_5EED, 16);
        let opts = StressOptions {
            threads: 4,
            iters: 50,
            label: "broken-tas".into(),
            ..StressOptions::default()
        };
        let lock = Arc::new(BrokenTas::default());
        let outcome = fuzz_seeds(&opts, &seeds, |_seed, _tid| RawHandle::new(&lock));
        let report = outcome.failure.expect("oracle must catch the broken lock");
        assert!(!report.passed());
        assert!(
            report.render().contains("replay with seed 0x"),
            "report names a replay seed:\n{}",
            report.render()
        );
        // The named seed reproduces the class of failure on its own.
        let again = run_stress(
            &StressOptions {
                seed: report.seed,
                ..opts.clone()
            },
            |_| RawHandle::new(&lock),
        );
        assert!(!again.passed(), "replay seed did not reproduce");
    }

    #[test]
    fn double_grant_ticket_is_caught() {
        let lock = Arc::new(DoubleGrantTicket::default());
        let opts = StressOptions {
            threads: 4,
            iters: 50,
            seed: 0xD0B1E,
            label: "double-grant".into(),
            ..StressOptions::default()
        };
        let report = run_stress(&opts, |_| RawHandle::new(&lock));
        assert!(!report.passed(), "oracle must catch the double-grant mutant");
    }

    #[test]
    fn gap_bound_mechanism_fires_and_relaxes() {
        // Note the gap is end-to-end (it includes time *outside* the
        // queue), so even FIFO locks exceed `threads - 1`; bounds are a
        // starvation tripwire, not a FIFO proof. With bound 0, any
        // alternation at all must be flagged...
        let lock = Arc::new(TicketLock::default());
        let opts = StressOptions {
            threads: 2,
            iters: 50,
            seed: 0xFA1,
            max_gap: Some(0),
            label: "tkt-gap-0".into(),
            ..StressOptions::default()
        };
        let report = run_stress(&opts, |_| RawHandle::new(&lock));
        let flagged = report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::UnfairGap { .. }));
        assert!(
            flagged || report.max_gap == 0,
            "alternation without an UnfairGap violation:\n{}",
            report.render()
        );
        // ...and with a generous bound the same lock passes clean.
        let relaxed = run_stress(
            &StressOptions {
                max_gap: Some(10_000),
                label: "tkt-gap-loose".into(),
                ..opts
            },
            |_| RawHandle::new(&lock),
        );
        assert!(relaxed.passed(), "{}", relaxed.render());
    }

    #[test]
    fn gap_bucketing_is_monotone() {
        assert_eq!(gap_bucket(0), 0);
        assert_eq!(gap_bucket(1), 1);
        assert_eq!(gap_bucket(2), 2);
        assert_eq!(gap_bucket(3), 2);
        assert_eq!(gap_bucket(4), 3);
        assert!(gap_bucket(u64::MAX) < GAP_BUCKETS);
    }
}
