//! # clof-testkit — deterministic in-repo test harness
//!
//! The workspace's testing infrastructure, with **zero external
//! dependencies** so the whole suite builds and runs offline:
//!
//! * [`rng`] — [`TestRng`](rng::TestRng), a SplitMix64 stream: every
//!   generated case is a pure function of one replayable 64-bit seed.
//! * [`gen`] — [`Gen<T>`](gen::Gen) composable generators with greedy
//!   shrinking (the proptest generate/shrink split, minimally).
//! * [`check`] — the property runner ([`check`](check::check) /
//!   [`check_with`](check::check_with)) and the [`props!`] macro;
//!   failures print a seed and `CLOF_TESTKIT_SEED=… CLOF_TESTKIT_CASES=1`
//!   replays them.
//! * [`strategies`] — domain generators: regular [`Hierarchy`]s, fair
//!   [`LockKind`]s, per-level compositions.
//! * [`oracle`] — the schedule-fuzzing lock oracle: drives any
//!   [`RawLock`] or `DynClofLock` handle through contended critical
//!   sections, checking mutual exclusion (owner cell + torn-counter
//!   pair), the paper's §4.1 context invariant (via `clof-core`'s
//!   `testkit`-gated detector), and fairness gap bounds, while
//!   `clof_locks::chaos` perturbs schedules inside the locks' own race
//!   windows. [`oracle::mutants`] holds deliberately broken locks that
//!   prove the oracle detects what it claims to.
//! * [`bench`] — criterion-lite micro-benchmark runner with drop-in
//!   [`criterion_group!`]/[`criterion_main!`] macros for the workspace's
//!   bench targets.
//! * [`obscheck`] — quiescent-counter invariants for lock telemetry
//!   ([`assert_stats_consistent`](obscheck::assert_stats_consistent)),
//!   stated over plain numbers so they apply under any feature set.
//! * [`swapper`] — forced-migration driver for `clof::adapt`: runs the
//!   oracle while a seeded background thread hot-swaps the lock between
//!   compositions, so the handover protocol is fuzzed mid-contention.
//! * [`deadline`] (`--features deadline`) — forced-timeout schedule
//!   driver: turns the oracle's blocking acquires into seeded bounded
//!   retries and injects deterministic deadline expiries inside the
//!   locks' wait loops, so abandonment races are opened on schedule.
//!
//! Determinism story: generators and the fuzzer's *decisions* are pure
//! functions of seeds; actual thread interleavings still belong to the
//! OS scheduler. A printed seed therefore replays a failing *case*
//! exactly and a failing *schedule class* with high probability.
//!
//! [`Hierarchy`]: clof_topology::Hierarchy
//! [`LockKind`]: clof::LockKind
//! [`RawLock`]: clof_locks::RawLock

#![warn(missing_docs)]

pub mod bench;
pub mod check;
#[cfg(feature = "deadline")]
pub mod deadline;
pub mod gen;
pub mod obscheck;
pub mod oracle;
pub mod rng;
pub mod strategies;
pub mod swapper;

pub use check::{check, check_with, Config};
#[cfg(feature = "deadline")]
pub use deadline::{
    fuzz_timeout_seeds, with_forced_timeouts, BlockingOrTimed, DeadlineHandle, ForcedTimeoutPlan,
    TimedHandle, TimeoutFuzzOutcome,
};
pub use obscheck::{assert_stats_consistent, assert_total_order, LevelTally};
pub use gen::Gen;
pub use oracle::{
    fuzz_seeds, run_stress, seed_batch, FuzzOutcome, OracleHandle, RawHandle, StressOptions,
    StressReport, Violation,
};
pub use rng::TestRng;
pub use swapper::{fuzz_swap_seeds, with_forced_swaps, SwapFuzzOutcome, SwapPlan};
