//! Criterion-lite: a tiny micro-benchmark runner with a drop-in subset
//! of the criterion API (`Criterion::bench_function`, `Bencher::iter`,
//! [`criterion_group!`]/[`criterion_main!`]), so the workspace's bench
//! targets build and run with zero external dependencies.
//!
//! Methodology is deliberately simple: calibrate an iteration count until
//! one sample exceeds a minimum duration, then take a fixed number of
//! samples at that count and report the median, minimum and maximum
//! nanoseconds per iteration. That is enough to compare lock algorithms
//! on one host; it does not try to match criterion's outlier analysis.
//!
//! [`criterion_group!`]: crate::criterion_group
//! [`criterion_main!`]: crate::criterion_main

use std::time::{Duration, Instant};

/// One measurement: median/min/max ns per iteration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark id as passed to `bench_function`.
    pub name: String,
    /// Median ns/iter across samples.
    pub median_ns: f64,
    /// Fastest sample, ns/iter.
    pub min_ns: f64,
    /// Slowest sample, ns/iter.
    pub max_ns: f64,
    /// 99th-percentile sample, ns/iter (nearest-rank over the sample
    /// set; with few samples this is the max — it becomes informative
    /// when `samples` is raised, e.g. by comparison scripts chasing
    /// tail latency).
    pub p99_ns: f64,
    /// Iterations per sample after calibration.
    pub iters: u64,
}

/// The benchmark driver; collects and prints measurements.
pub struct Criterion {
    /// Minimum duration one calibrated sample must reach.
    pub min_sample: Duration,
    /// Samples taken per benchmark after calibration.
    pub samples: u32,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        // CLOF_BENCH_MIN_MS shortens runs for smoke-testing bench targets.
        let min_ms = std::env::var("CLOF_BENCH_MIN_MS")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(20);
        // CLOF_BENCH_SAMPLES raises the sample count when the p99 matters
        // (comparison scripts); the default keeps smoke runs fast.
        let samples = std::env::var("CLOF_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.trim().parse::<u32>().ok())
            .unwrap_or(7);
        Criterion {
            min_sample: Duration::from_millis(min_ms.max(1)),
            samples: samples.max(1),
            results: Vec::new(),
        }
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the sample's iteration count, timing the whole batch.
    /// The return value is passed through [`std::hint::black_box`] so the
    /// measured work is not optimized away.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

impl Criterion {
    /// Measures `f` and prints one summary line, criterion-style.
    pub fn bench_function(
        &mut self,
        name: &str,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        // Calibrate: grow the batch until one sample is long enough to
        // dominate timer overhead.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= self.min_sample || iters >= 1 << 30 {
                break;
            }
            // Jump roughly to the target, never more than 64x at once.
            let ratio = self.min_sample.as_nanos() as f64
                / b.elapsed.as_nanos().max(1) as f64;
            let factor = (ratio * 1.2).clamp(2.0, 64.0);
            iters = ((iters as f64) * factor) as u64;
        }

        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        // Nearest-rank p99 over the per-sample distribution.
        let p99_idx = ((per_iter.len() as f64 * 0.99).ceil() as usize)
            .clamp(1, per_iter.len())
            - 1;
        let m = Measurement {
            name: name.to_string(),
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
            p99_ns: per_iter[p99_idx],
            iters,
        };
        println!(
            "{name:<44} {median:>10.1} ns/iter  (min {min:.1}, p99 {p99:.1}, max {max:.1}, {iters} it/sample)",
            name = m.name,
            median = m.median_ns,
            min = m.min_ns,
            p99 = m.p99_ns,
            max = m.max_ns,
            iters = m.iters,
        );
        self.results.push(m);
        self
    }

    /// All measurements taken so far, in execution order.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

/// Bundles benchmark functions (each `fn(&mut Criterion)`) into one
/// group runner, mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::bench::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion {
            min_sample: Duration::from_micros(200),
            samples: 3,
            results: Vec::new(),
        };
        let mut acc = 0u64;
        c.bench_function("noop-ish", |b| {
            b.iter(|| {
                acc = acc.wrapping_add(1);
                acc
            })
        });
        let m = &c.results()[0];
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.max_ns);
        assert!(m.median_ns <= m.p99_ns && m.p99_ns <= m.max_ns);
        assert!(m.iters >= 1);
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        fn bench_one(c: &mut Criterion) {
            c.bench_function("macro-smoke", |b| b.iter(|| 1 + 1));
        }
        criterion_group!(smoke_group, bench_one);
        smoke_group();
    }
}
