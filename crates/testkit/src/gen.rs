//! Composable deterministic value generators with greedy shrinking.
//!
//! A [`Gen<T>`] bundles two pure functions: *generate* (a function of a
//! [`TestRng`] stream) and *shrink* (smaller candidate inputs for a
//! failing value). This is the proptest/QuickCheck split in its simplest
//! form — no registry dependency, no macros required, values are plain
//! `Clone + Debug` types.
//!
//! Shrinking is **greedy**: the runner walks the candidate list in order
//! and restarts from the first candidate that still fails, so combinators
//! put their "most aggressively smaller" candidates first (halving before
//! decrementing, dropping half a vector before single elements).
//! Combinators that map through arbitrary functions ([`Gen::map`],
//! [`one_of`]) cannot shrink through the function and return no
//! candidates — range, vector, element and tuple generators carry the
//! shrinking weight, which in practice is where it matters.

use std::fmt::Debug;
use std::rc::Rc;

use crate::rng::TestRng;

/// A deterministic generator of `T` values plus a shrinker.
pub struct Gen<T> {
    run: Rc<dyn Fn(&mut TestRng) -> T>,
    shrink: Rc<dyn Fn(&T) -> Vec<T>>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            run: Rc::clone(&self.run),
            shrink: Rc::clone(&self.shrink),
        }
    }
}

impl<T: Clone + 'static> Gen<T> {
    /// A generator from a raw sampling function; no shrinking.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        Gen {
            run: Rc::new(f),
            shrink: Rc::new(|_| Vec::new()),
        }
    }

    /// Always produces `value`.
    pub fn constant(value: T) -> Self {
        Gen::from_fn(move |_| value.clone())
    }

    /// Replaces the shrinker.
    pub fn with_shrink(self, f: impl Fn(&T) -> Vec<T> + 'static) -> Self {
        Gen {
            run: self.run,
            shrink: Rc::new(f),
        }
    }

    /// Samples one value.
    pub fn sample(&self, rng: &mut TestRng) -> T {
        (self.run)(rng)
    }

    /// Shrink candidates for `value`, most aggressive first.
    pub fn shrink(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }

    /// Maps generated values through `f`. Shrinking does not survive the
    /// mapping (there is no inverse); map late, shrink early.
    pub fn map<U: Clone + 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let run = self.run;
        Gen {
            run: Rc::new(move |rng| f((run)(rng))),
            shrink: Rc::new(|_| Vec::new()),
        }
    }
}

macro_rules! int_gen {
    ($($ty:ty),*) => {$(
        impl Gen<$ty> {
            /// Uniform generator over `lo..hi` (half-open), shrinking
            /// toward `lo` by halving the distance.
            pub fn int_range(lo: $ty, hi: $ty) -> Gen<$ty> {
                assert!(lo < hi, "empty range {lo}..{hi}");
                let g = Gen::from_fn(move |rng| {
                    rng.in_range(lo as i128, hi as i128) as $ty
                });
                g.with_shrink(move |&v| {
                    let mut out = Vec::new();
                    let mut dist = (v as i128) - (lo as i128);
                    // lo first (most aggressive), then geometric approach.
                    while dist > 0 {
                        out.push(((v as i128) - dist) as $ty);
                        dist /= 2;
                    }
                    out.dedup();
                    out
                })
            }
        }
    )*};
}

int_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform `u64` over the full domain (the `any::<u64>()` workhorse for
/// seeds), shrinking toward 0.
pub fn any_u64() -> Gen<u64> {
    Gen::from_fn(|rng| rng.next_u64()).with_shrink(|&v| {
        let mut out = Vec::new();
        let mut d = v;
        while d > 0 {
            out.push(v - d);
            d /= 2;
        }
        out.dedup();
        out
    })
}

/// Uniform `u8` over the full domain, shrinking toward 0.
pub fn any_u8() -> Gen<u8> {
    Gen::from_fn(|rng| rng.next_u64() as u8).with_shrink(|&v| {
        let mut out = Vec::new();
        let mut d = v;
        while d > 0 {
            out.push(v - d);
            d /= 2;
        }
        out.dedup();
        out
    })
}

/// Picks uniformly among generators. No cross-choice shrinking.
pub fn one_of<T: Clone + 'static>(choices: Vec<Gen<T>>) -> Gen<T> {
    assert!(!choices.is_empty(), "one_of of nothing");
    Gen::from_fn(move |rng| {
        let i = rng.below(choices.len() as u64) as usize;
        choices[i].sample(rng)
    })
}

/// Picks uniformly among concrete values, shrinking toward earlier
/// entries (order your list simplest-first).
pub fn element_of<T: Clone + PartialEq + 'static>(values: Vec<T>) -> Gen<T> {
    assert!(!values.is_empty(), "element_of of nothing");
    let pool = values.clone();
    Gen::from_fn(move |rng| {
        let i = rng.below(values.len() as u64) as usize;
        values[i].clone()
    })
    .with_shrink(move |v| {
        match pool.iter().position(|p| p == v) {
            Some(i) => pool[..i].to_vec(),
            None => Vec::new(),
        }
    })
}

/// Vectors of `elem` with length in `min_len..max_len` (half-open).
///
/// Shrinks by dropping the back half, dropping single elements (front
/// first), then shrinking individual elements — in that order, respecting
/// `min_len`.
pub fn vec_of<T: Clone + 'static>(elem: Gen<T>, min_len: usize, max_len: usize) -> Gen<Vec<T>> {
    assert!(min_len < max_len, "empty length range");
    let sampler = elem.clone();
    Gen::from_fn(move |rng| {
        let len = rng.in_range(min_len as i128, max_len as i128) as usize;
        (0..len).map(|_| sampler.sample(rng)).collect()
    })
    .with_shrink(move |v: &Vec<T>| {
        let mut out: Vec<Vec<T>> = Vec::new();
        // Halve.
        if v.len() / 2 >= min_len && v.len() > min_len {
            out.push(v[..v.len() / 2].to_vec());
        }
        // Drop one element at a time (cap the fan-out on long vectors).
        if v.len() > min_len {
            for i in 0..v.len().min(8) {
                let mut smaller = v.clone();
                smaller.remove(i);
                out.push(smaller);
            }
        }
        // Shrink elements in place (first candidate per position).
        for i in 0..v.len().min(8) {
            if let Some(smaller) = elem.shrink(&v[i]).into_iter().next() {
                let mut copy = v.clone();
                copy[i] = smaller;
                out.push(copy);
            }
        }
        out
    })
}

/// Pairs two generators; shrinks each side while holding the other.
pub fn zip<A: Clone + 'static, B: Clone + 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    let (sa, sb) = (a.clone(), b.clone());
    Gen::from_fn(move |rng| (sa.sample(rng), sb.sample(rng))).with_shrink(move |(va, vb)| {
        let mut out: Vec<(A, B)> = a
            .shrink(va)
            .into_iter()
            .map(|na| (na, vb.clone()))
            .collect();
        out.extend(b.shrink(vb).into_iter().map(|nb| (va.clone(), nb)));
        out
    })
}

/// Shrink-search driver: starting from a failing `value`, repeatedly
/// replaces it with the first shrink candidate that still fails, up to
/// `budget` prop evaluations. Returns the final value and the number of
/// successful shrink steps.
pub fn shrink_to_minimal<T: Clone + Debug + 'static>(
    gen: &Gen<T>,
    mut value: T,
    budget: u32,
    still_fails: &mut dyn FnMut(&T) -> bool,
) -> (T, u32) {
    let mut steps = 0u32;
    let mut evals = 0u32;
    'outer: loop {
        for candidate in gen.shrink(&value) {
            evals += 1;
            if evals > budget {
                break 'outer;
            }
            if still_fails(&candidate) {
                value = candidate;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(0xDEAD_BEEF)
    }

    #[test]
    fn int_range_stays_in_bounds_and_shrinks_toward_lo() {
        let g = Gen::<u32>::int_range(10, 50);
        let mut r = rng();
        for _ in 0..500 {
            let v = g.sample(&mut r);
            assert!((10..50).contains(&v));
        }
        let candidates = g.shrink(&40);
        assert_eq!(candidates.first(), Some(&10));
        assert!(candidates.iter().all(|&c| (10..40).contains(&c)));
    }

    #[test]
    fn vec_of_respects_length_and_shrinks_shorter() {
        let g = vec_of(Gen::<u8>::int_range(0, 10), 2, 6);
        let mut r = rng();
        for _ in 0..200 {
            let v = g.sample(&mut r);
            assert!((2..6).contains(&v.len()));
        }
        let candidates = g.shrink(&vec![5, 5, 5, 5]);
        assert!(candidates.iter().any(|c| c.len() == 2)); // halved
        assert!(candidates.iter().all(|c| c.len() >= 2));
    }

    #[test]
    fn element_of_shrinks_to_earlier_entries() {
        let g = element_of(vec!["a", "b", "c"]);
        assert_eq!(g.shrink(&"c"), vec!["a", "b"]);
        assert!(g.shrink(&"a").is_empty());
    }

    #[test]
    fn zip_shrinks_componentwise() {
        let g = zip(Gen::<u8>::int_range(0, 10), Gen::<u8>::int_range(0, 10));
        let candidates = g.shrink(&(4, 6));
        assert!(candidates.contains(&(0, 6)));
        assert!(candidates.contains(&(4, 0)));
    }

    #[test]
    fn shrink_to_minimal_reaches_boundary() {
        // Failing predicate: v >= 7. Minimal failing value is 7.
        let g = Gen::<u32>::int_range(0, 100);
        let (min, steps) = shrink_to_minimal(&g, 93, 1000, &mut |&v| v >= 7);
        assert_eq!(min, 7);
        assert!(steps > 0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let g = vec_of(Gen::<u64>::int_range(0, 1 << 40), 1, 10);
        let a = g.sample(&mut TestRng::new(11));
        let b = g.sample(&mut TestRng::new(11));
        assert_eq!(a, b);
    }
}
