//! Consistency checker for lock-telemetry snapshots.
//!
//! The composition protocol's counters obey arithmetic invariants *at
//! quiescence* (no thread mid-acquire): every pass is consumed by
//! exactly one successor, every upward release feeds one acquisition of
//! the level above, and histograms count what the counters count. This
//! module states them once, over **plain numbers** — `clof-testkit`
//! deliberately does not depend on `clof-obs` (the root crate cannot
//! apply features to dev-dependencies), so callers copy their snapshot
//! into [`LevelTally`] and get the same checks under any feature set.

/// Plain-data copy of one level's telemetry (mirror of `clof-obs`'s
/// `LevelSnapshot`, fields by hand).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelTally {
    /// Low-lock acquisitions at this level.
    pub acquires: u64,
    /// Acquisitions that inherited a passed high lock.
    pub contended_acquires: u64,
    /// Release decisions that passed within the cohort.
    pub passes_taken: u64,
    /// Release decisions that surrendered the high lock upward.
    pub passes_declined: u64,
    /// Upward releases forced by the keep_local threshold.
    pub keep_local_resets: u64,
    /// Samples in this level's acquire-latency histogram.
    pub hist_count: u64,
}

/// Asserts the quiescent-counter invariants for a composed lock.
///
/// `levels` is innermost first; `total_acquisitions` is the externally
/// counted number of lock round-trips (e.g. the stress oracle's total).
///
/// Invariants checked:
///
/// 1. Level 0 acquires equal the external total — every round-trip wins
///    the innermost low lock exactly once.
/// 2. At every non-root level, `acquires == passes_taken +
///    passes_declined`: each acquisition ends in exactly one release
///    decision.
/// 3. At every non-root level, `contended_acquires == passes_taken`:
///    each pass is consumed by exactly one successor, and nothing else
///    sets the pass flag.
/// 4. `keep_local_resets <= passes_declined`: resets are a subset of
///    declines.
/// 5. `acquires[l+1] == passes_declined[l]`: the level above is entered
///    exactly when this level surrenders (the first acquire included —
///    the initial climb happens with the pass flag clear).
/// 6. When a histogram was recorded (`hist_count != 0`), its sample
///    count equals the level's acquires.
///
/// # Panics
///
/// Panics with a labelled message on the first violated invariant.
pub fn assert_stats_consistent(levels: &[LevelTally], total_acquisitions: u64) {
    assert!(!levels.is_empty(), "telemetry must cover at least one level");
    assert_eq!(
        levels[0].acquires, total_acquisitions,
        "level 0 acquires != external acquisition total"
    );
    let last = levels.len() - 1;
    for (l, t) in levels.iter().enumerate() {
        if l < last {
            assert_eq!(
                t.acquires,
                t.passes_taken + t.passes_declined,
                "level {l}: acquires != passes_taken + passes_declined"
            );
            assert_eq!(
                t.contended_acquires, t.passes_taken,
                "level {l}: every pass must be consumed by exactly one successor"
            );
            assert_eq!(
                levels[l + 1].acquires,
                t.passes_declined,
                "level {}: acquires != level {l} passes_declined",
                l + 1
            );
        } else {
            assert_eq!(
                t.passes_taken + t.passes_declined,
                0,
                "root level {l} takes no pass decision"
            );
            assert_eq!(
                t.contended_acquires, 0,
                "root level {l} never inherits a pass"
            );
        }
        assert!(
            t.keep_local_resets <= t.passes_declined,
            "level {l}: keep_local resets exceed declined passes"
        );
        if t.hist_count != 0 {
            assert_eq!(
                t.hist_count, t.acquires,
                "level {l}: histogram count != acquires"
            );
        }
    }
}

/// Asserts that `intervals` (as `(start, end)` pairs, any order) form a
/// total order: each interval well-formed (`start <= end`) and no two
/// intervals overlapping. This is the mutual-exclusion shape of an
/// ownership timeline reconstructed from a span trace — stated over
/// plain numbers for the same reason as [`assert_stats_consistent`].
///
/// Intervals may share endpoints (`end == next.start`): a hand-off at
/// the same timestamp tick is legal on coarse clocks.
///
/// # Panics
///
/// Panics with the offending pair on the first violation.
pub fn assert_total_order(intervals: &[(u64, u64)]) {
    let mut sorted: Vec<(u64, u64)> = intervals.to_vec();
    sorted.sort_unstable();
    for (i, iv) in sorted.iter().enumerate() {
        assert!(
            iv.0 <= iv.1,
            "interval {i} is ill-formed: start {} > end {}",
            iv.0,
            iv.1
        );
        if i > 0 {
            let prev = sorted[i - 1];
            assert!(
                prev.1 <= iv.0,
                "intervals overlap: [{}, {}] and [{}, {}]",
                prev.0,
                prev.1,
                iv.0,
                iv.1
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_level(total: u64, passes: u64) -> Vec<LevelTally> {
        vec![
            LevelTally {
                acquires: total,
                contended_acquires: passes,
                passes_taken: passes,
                passes_declined: total - passes,
                keep_local_resets: 0,
                hist_count: total,
            },
            LevelTally {
                acquires: total - passes,
                hist_count: total - passes,
                ..Default::default()
            },
        ]
    }

    #[test]
    fn consistent_tallies_pass() {
        assert_stats_consistent(&two_level(100, 40), 100);
    }

    #[test]
    #[should_panic(expected = "external acquisition total")]
    fn total_mismatch_is_caught() {
        assert_stats_consistent(&two_level(100, 40), 99);
    }

    #[test]
    #[should_panic(expected = "consumed by exactly one successor")]
    fn unconsumed_pass_is_caught() {
        let mut t = two_level(100, 40);
        t[0].contended_acquires = 39;
        assert_stats_consistent(&t, 100);
    }

    #[test]
    #[should_panic(expected = "passes_declined")]
    fn upper_level_leak_is_caught() {
        let mut t = two_level(100, 40);
        t[1].acquires = 61;
        t[1].hist_count = 0;
        assert_stats_consistent(&t, 100);
    }

    #[test]
    #[should_panic(expected = "histogram count")]
    fn histogram_drift_is_caught() {
        let mut t = two_level(100, 40);
        t[0].hist_count = 99;
        assert_stats_consistent(&t, 100);
    }

    #[test]
    #[should_panic(expected = "root level")]
    fn root_decisions_are_caught() {
        let mut t = two_level(100, 40);
        t[1].passes_taken = 1;
        assert_stats_consistent(&t, 100);
    }

    #[test]
    fn disjoint_intervals_are_a_total_order() {
        // Unsorted on purpose; touching endpoints allowed.
        assert_total_order(&[(10, 20), (0, 10), (25, 25), (20, 24)]);
        assert_total_order(&[]);
    }

    #[test]
    #[should_panic(expected = "intervals overlap")]
    fn overlapping_intervals_are_caught() {
        assert_total_order(&[(0, 10), (9, 15)]);
    }

    #[test]
    #[should_panic(expected = "ill-formed")]
    fn inverted_interval_is_caught() {
        assert_total_order(&[(5, 3)]);
    }
}
