//! The property runner: seeded cases, greedy shrinking, replayable
//! failure reports.
//!
//! Every case is generated from a 64-bit *case seed* derived from the
//! base seed, so a failure report names exactly one number to replay:
//!
//! ```text
//! property `composed_lock_mutual_exclusion` failed
//!   case 17/24, seed 0x9ae16a3b2f90404f
//!   ...
//!   replay: CLOF_TESTKIT_SEED=0x9ae16a3b2f90404f CLOF_TESTKIT_CASES=1 cargo test <name>
//! ```
//!
//! Setting `CLOF_TESTKIT_SEED` (hex with optional `0x`, or decimal)
//! overrides the base seed; `CLOF_TESTKIT_CASES` overrides the case
//! count. With `CASES=1` the first case *is* the failing case, because
//! case seeds come from a SplitMix64 stream over the base seed.

use std::fmt::Debug;

use crate::gen::{shrink_to_minimal, Gen};
use crate::rng::TestRng;

/// Default base seed; stable across runs unless overridden by env.
pub const DEFAULT_SEED: u64 = 0xC10F_5EED_0000_0001;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Base seed for the case-seed stream.
    pub seed: u64,
    /// Maximum property evaluations spent shrinking a failure.
    pub max_shrink_evals: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 32,
            seed: DEFAULT_SEED,
            max_shrink_evals: 512,
        }
        .overridden_by_env()
    }
}

impl Config {
    /// Default config with a different case count (env still wins).
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            seed: DEFAULT_SEED,
            max_shrink_evals: 512,
        }
        .overridden_by_env()
    }

    fn overridden_by_env(mut self) -> Self {
        // Setting either variable means "replay this exact run": an
        // unparsable value must fail loudly, or a typo'd seed would
        // silently replay the default run and report a spurious pass.
        if let Ok(s) = std::env::var("CLOF_TESTKIT_SEED") {
            match parse_seed(&s) {
                Some(seed) => self.seed = seed,
                None => panic!(
                    "CLOF_TESTKIT_SEED={s:?} is not a seed \
                     (expected hex like 0xc10f5eed or a decimal u64)"
                ),
            }
        }
        if let Ok(s) = std::env::var("CLOF_TESTKIT_CASES") {
            match s.trim().parse::<u32>() {
                Ok(cases) => self.cases = cases.max(1),
                Err(_) => panic!("CLOF_TESTKIT_CASES={s:?} is not a case count (expected a u32)"),
            }
        }
        self
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let t = s.trim();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        t.parse::<u64>()
            .ok()
            .or_else(|| u64::from_str_radix(t, 16).ok())
    }
}

/// Checks `prop` over `cfg.cases` generated inputs with the default
/// config; see [`check_with`].
pub fn check<T: Clone + Debug + 'static>(
    name: &str,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    check_with(&Config::default(), name, gen, prop)
}

/// Checks `prop` over generated inputs; panics with a replayable report
/// on the first failure, after greedily shrinking it.
pub fn check_with<T: Clone + Debug + 'static>(
    cfg: &Config,
    name: &str,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    let mut seed_stream = TestRng::new(cfg.seed);
    for case in 0..cfg.cases {
        let case_seed = seed_stream.next_u64();
        let value = gen.sample(&mut TestRng::new(case_seed));
        let Err(error) = prop(&value) else {
            continue;
        };
        // Shrink greedily; re-run the property to qualify candidates.
        let mut last_error = error.clone();
        let (minimal, steps) = shrink_to_minimal(
            gen,
            value.clone(),
            cfg.max_shrink_evals,
            &mut |candidate| match prop(candidate) {
                Ok(()) => false,
                Err(e) => {
                    last_error = e;
                    true
                }
            },
        );
        panic!(
            "property `{name}` failed\n  \
             case {case_num}/{total}, seed 0x{case_seed:016x}\n  \
             original input: {value:?}\n  \
             shrunk input ({steps} steps): {minimal:?}\n  \
             error: {last_error}\n  \
             replay: CLOF_TESTKIT_SEED=0x{case_seed:016x} CLOF_TESTKIT_CASES=1 cargo test {name}",
            case_num = case + 1,
            total = cfg.cases,
        );
    }
}

/// Defines `#[test]` functions over generated inputs, proptest-style.
///
/// ```ignore
/// clof_testkit::props! {
///     config: Config::with_cases(24);
///
///     fn sum_commutes(a in Gen::<u32>::int_range(0, 100), b in Gen::<u32>::int_range(0, 100)) {
///         tk_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// Bodies run once per generated case; use [`tk_assert!`],
/// [`tk_assert_eq!`], [`tk_assert_ne!`] (which report instead of
/// panicking, so shrinking works) and `return Err(..)` for custom
/// failures. Arguments are bound by value (cloned per case).
#[macro_export]
macro_rules! props {
    // Entry: optional config, then a list of fns.
    (config: $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let cfg = $cfg;
                let gen = $crate::props!(@gen $($gen),+);
                $crate::check::check_with(&cfg, stringify!($name), &gen, |tuple| {
                    let $crate::props!(@pat $($arg),+) = tuple.clone();
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block)*) => {
        $crate::props! { config: $crate::check::Config::default(); $($(#[$meta])* fn $name($($arg in $gen),+) $body)* }
    };
    // Build nested zip pairs from a gen list.
    (@gen $g:expr) => { $g };
    (@gen $g:expr, $($rest:expr),+) => { $crate::gen::zip($g, $crate::props!(@gen $($rest),+)) };
    // Matching nested tuple pattern.
    (@pat $a:ident) => { $a };
    (@pat $a:ident, $($rest:ident),+) => { ($a, $crate::props!(@pat $($rest),+)) };
}

/// `assert!` that reports a property failure instead of panicking.
#[macro_export]
macro_rules! tk_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports a property failure instead of panicking.
#[macro_export]
macro_rules! tk_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{} == {}`\n    left: {:?}\n   right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{} == {}`: {}\n    left: {:?}\n   right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r
            ));
        }
    }};
}

/// `assert_ne!` that reports a property failure instead of panicking.
#[macro_export]
macro_rules! tk_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: `{} != {}`\n    both: {:?}",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: `{} != {}`: {}\n    both: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::vec_of;

    #[test]
    fn passing_property_completes() {
        let g = Gen::<u32>::int_range(0, 100);
        check_with(&Config::with_cases(50), "lt_100", &g, |&v| {
            if v < 100 {
                Ok(())
            } else {
                Err("out of range".into())
            }
        });
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let g = Gen::<u32>::int_range(0, 1000);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            check_with(&Config::with_cases(100), "lt_10", &g, |&v| {
                if v < 10 {
                    Ok(())
                } else {
                    Err(format!("{v} >= 10"))
                }
            });
        }));
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("seed 0x"), "{msg}");
        assert!(msg.contains("replay: CLOF_TESTKIT_SEED=0x"), "{msg}");
        // Greedy shrink over a dense failure set must reach the boundary.
        assert!(msg.contains("shrunk input"), "{msg}");
        assert!(msg.contains(": 10\n"), "shrunk to minimum: {msg}");
    }

    #[test]
    fn reported_seed_replays_the_same_input() {
        let g = vec_of(Gen::<u8>::int_range(0, 50), 1, 8);
        // Find the first failing case seed the way the runner does.
        let cfg = Config {
            cases: 64,
            seed: 12345,
            max_shrink_evals: 0,
        };
        let mut stream = TestRng::new(cfg.seed);
        let mut failing = None;
        for _ in 0..cfg.cases {
            let s = stream.next_u64();
            let v = g.sample(&mut TestRng::new(s));
            if v.iter().any(|&x| x > 40) {
                failing = Some((s, v));
                break;
            }
        }
        let (seed, input) = failing.expect("some case exceeds 40");
        // Replaying with base seed = case seed, cases = 1 regenerates it.
        let mut replay_stream = TestRng::new(seed);
        let _first_case_seed = replay_stream.next_u64();
        // The runner derives case seeds from the stream; with CASES=1 the
        // first derived seed must map to the same input when the base
        // seed *is* the case seed... so verify the direct construction:
        let again = g.sample(&mut TestRng::new(seed));
        assert_eq!(input, again);
    }

    props! {
        config: Config::with_cases(16);

        fn props_macro_single_arg(v in Gen::<u32>::int_range(0, 5)) {
            tk_assert!(v < 5);
        }

        fn props_macro_multi_arg(
            a in Gen::<u8>::int_range(0, 10),
            b in Gen::<u8>::int_range(0, 10),
            c in Gen::<u8>::int_range(1, 4),
        ) {
            tk_assert_eq!(a as u32 + b as u32, b as u32 + a as u32);
            tk_assert_ne!(c, 0);
        }
    }
}
