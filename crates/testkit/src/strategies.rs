//! Domain generators for CLoF structures: hierarchies, lock kinds, and
//! composed-lock shapes.
//!
//! These mirror the strategies previously embedded in individual test
//! files so every crate draws the *same* distribution of hierarchies and
//! compositions, and a seed printed by one suite reproduces in another.

use clof::LockKind;
use clof_topology::Hierarchy;

use crate::gen::{element_of, vec_of, zip, Gen};

/// A regular hierarchy with 1–3 non-system levels over up to 72 CPUs,
/// expressed as nested group sizes, shrinking toward fewer/smaller
/// levels.
pub fn regular_hierarchy() -> Gen<Hierarchy> {
    // Factors multiply innermost-outward; ncpus = product * 2. Same shape
    // family the old proptest strategy drew from.
    let depth = Gen::<usize>::int_range(1, 4);
    let f0 = Gen::<usize>::int_range(2, 5);
    let f1 = Gen::<usize>::int_range(1, 3);
    let f2 = Gen::<usize>::int_range(1, 3);
    zip(zip(depth, f0), zip(f1, f2)).map(|((depth, f0), (f1, f2))| {
        let factors = [f0, f0 * (f1 + 1), f0 * (f1 + 1) * (f2 + 1)];
        build_regular(&factors[..depth])
    })
}

/// Builds a regular hierarchy from innermost-outward cumulative group
/// sizes, with 2 top-level groups.
pub fn build_regular(factors: &[usize]) -> Hierarchy {
    let ncpus = factors.last().copied().unwrap_or(1) * 2;
    let shape: Vec<(String, usize)> = factors
        .iter()
        .enumerate()
        .map(|(i, &f)| (format!("l{i}"), f))
        .collect();
    let shape_refs: Vec<(&str, usize)> = shape.iter().map(|(n, s)| (n.as_str(), *s)).collect();
    Hierarchy::regular(&shape_refs, ncpus).expect("regular shapes are valid")
}

/// One of the starvation-free basic locks, shrinking toward `Ticket`.
pub fn fair_kind() -> Gen<LockKind> {
    element_of(vec![
        LockKind::Ticket,
        LockKind::Mcs,
        LockKind::Clh,
        LockKind::Hemlock,
        LockKind::HemlockCtr,
        LockKind::Anderson,
    ])
}

/// Any basic lock kind (including the unfair TTAS/backoff), shrinking
/// toward `Ticket`.
pub fn any_kind() -> Gen<LockKind> {
    element_of(LockKind::ALL.to_vec())
}

/// A vector of fair kinds suitable for seeding per-level choices.
pub fn fair_kind_vec(len: usize) -> Gen<Vec<LockKind>> {
    vec_of(fair_kind(), len, len + 1)
}

/// Per-level kind assignment for a hierarchy with `levels` lock levels:
/// cycles a 4-long seed vector like the paper's generated compositions.
pub fn kinds_for_levels(seed_kinds: &[LockKind], levels: usize) -> Vec<LockKind> {
    (0..levels)
        .map(|i| seed_kinds[i % seed_kinds.len()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::TestRng;

    #[test]
    fn hierarchies_are_valid_and_bounded() {
        let g = regular_hierarchy();
        let mut rng = TestRng::new(42);
        for _ in 0..100 {
            let h = g.sample(&mut rng);
            assert!(h.ncpus() >= 2);
            assert!(h.ncpus() <= 72, "ncpus {} too large", h.ncpus());
            assert!((1..=4).contains(&h.level_count()));
        }
    }

    #[test]
    fn fair_kinds_are_fair() {
        let g = fair_kind();
        let mut rng = TestRng::new(7);
        for _ in 0..50 {
            assert!(g.sample(&mut rng).is_fair());
        }
    }

    #[test]
    fn kind_shrinks_toward_ticket() {
        let g = fair_kind();
        let candidates = g.shrink(&LockKind::Hemlock);
        assert_eq!(candidates.first(), Some(&LockKind::Ticket));
    }

    #[test]
    fn kinds_for_levels_cycles() {
        let seeds = [LockKind::Mcs, LockKind::Clh];
        assert_eq!(
            kinds_for_levels(&seeds, 3),
            vec![LockKind::Mcs, LockKind::Clh, LockKind::Mcs]
        );
    }
}
