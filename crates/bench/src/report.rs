//! Tabular report container: aligned stdout printing + CSV output.

use std::fs;
use std::io;
use std::path::Path;

/// A named table of results (one paper table/figure's data).
#[derive(Debug, Clone)]
pub struct Report {
    /// Artifact id, e.g. `fig2` (used as the CSV file stem).
    pub id: String,
    /// Human title printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (substitutions, paper
    /// expectations, observed verdicts).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn row<I: IntoIterator<Item = String>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().collect());
    }

    /// Appends a note line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} [{}] ==\n", self.title, self.id));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Serializes as CSV (header + rows; notes as `#` comments).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        for note in &self.notes {
            out.push_str(&format!("# {note}\n"));
        }
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes `<dir>/<id>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())
    }
}

/// Renders a lock-telemetry snapshot as a per-level [`Report`]: one row
/// per hierarchy level (innermost first) with acquisition counts, the
/// pass rate, keep-local resets, waiter-hint hits, and acquire-latency
/// quantiles. Hold-time quantiles and event-ring totals, which are
/// lock-wide rather than per-level, go in the notes.
#[cfg(feature = "obs")]
pub fn obs_report(snap: &clof::obs::LockSnapshot) -> Report {
    let mut r = Report::new(
        "obs",
        &format!("lock telemetry: {}", snap.name),
        &[
            "level",
            "acquires",
            "contended",
            "pass-rate",
            "declined",
            "resets",
            "hint-hits",
            "acq-p50(ns)",
            "acq-p99(ns)",
            "acq-max(ns)",
        ],
    );
    for level in &snap.levels {
        r.row([
            level.level.to_string(),
            level.acquires.to_string(),
            level.contended_acquires.to_string(),
            format!("{:.1}%", level.pass_rate() * 100.0),
            level.passes_declined.to_string(),
            level.keep_local_resets.to_string(),
            level.hint_fast_hits.to_string(),
            level.acquire_ns.p50().to_string(),
            level.acquire_ns.p99().to_string(),
            level.acquire_ns.max.to_string(),
        ]);
    }
    if snap.hold_ns.count != 0 {
        r.note(format!(
            "hold time: p50 {} ns, p99 {} ns, max {} ns over {} sections",
            snap.hold_ns.p50(),
            snap.hold_ns.p99(),
            snap.hold_ns.max,
            snap.hold_ns.count
        ));
    }
    if snap.events_recorded != 0 {
        r.note(format!(
            "pass events: {} recorded, {} beyond ring capacity",
            snap.events_recorded, snap.events_dropped
        ));
    }
    r
}

/// [`obs_report`] extended with the causal-trace analysis: per-level
/// wait attribution, pass-chain statistics against the keep-local bound,
/// and the hold-share fairness summary, appended as notes under the
/// counter table so one report carries both views of the same run.
#[cfg(feature = "obs")]
pub fn obs_report_with_analysis(
    snap: &clof::obs::LockSnapshot,
    analysis: &clof::obs::TraceAnalysis,
) -> Report {
    let mut r = obs_report(snap);
    r.note(format!(
        "trace: {} critical sections, {} ns total hold{}",
        analysis.holds,
        analysis.hold_ns,
        if analysis.truncated {
            " (truncated: span buffers wrapped)"
        } else {
            ""
        }
    ));
    for level in &analysis.levels {
        r.note(format!(
            "trace L{} wait: {} spans ({} inherited), mean {} ns, max {} ns",
            level.level,
            level.spans,
            level.inherited,
            level.mean_wait_ns(),
            level.max_wait_ns
        ));
    }
    for chain in &analysis.chains {
        r.note(format!(
            "trace L{} pass-chains: {} closed ({} open), mean {:.1}, max {}, {} forced cuts",
            chain.level, chain.chains, chain.open_chains, chain.mean(), chain.max, chain.forced_cuts
        ));
    }
    if !analysis.fairness.per_thread.is_empty() {
        r.note(format!(
            "trace fairness: jain {:.4}, max hold share {:.1}%",
            analysis.fairness.jain,
            analysis.fairness.max_share() * 100.0
        ));
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("t1", "Test", &["a", "long-header"]);
        r.row(["1".to_string(), "2".to_string()]);
        r.row(["333".to_string(), "4".to_string()]);
        r.note("hello");
        r
    }

    #[test]
    fn render_aligns_columns() {
        let s = sample().render();
        assert!(s.contains("== Test [t1] =="));
        assert!(s.contains("a    long-header"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    fn csv_escapes_and_comments() {
        let mut r = sample();
        r.row(["with,comma".into(), "with\"quote".into()]);
        let csv = r.to_csv();
        assert!(csv.starts_with("# hello\n"));
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn obs_report_renders_per_level_rows() {
        let counters = clof::obs::LevelCounters::new();
        counters.record_acquire(false);
        counters.record_acquire(true);
        counters.record_pass_taken();
        counters.record_pass_declined(false);
        let snap = clof::obs::LockSnapshot {
            name: "tkt-tkt".into(),
            levels: vec![counters.snapshot(0)],
            ..Default::default()
        };
        let s = obs_report(&snap).render();
        assert!(s.contains("lock telemetry: tkt-tkt"));
        assert!(s.contains("pass-rate"));
        assert!(s.contains("50.0%"), "{s}");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn obs_report_with_analysis_appends_trace_notes() {
        use clof::obs::{SpanEvent, SpanKind, Trace};
        let trace = Trace {
            events: vec![SpanEvent {
                start_ns: 100,
                end_ns: 600,
                level: 0,
                node: 0,
                thread: 1,
                kind: SpanKind::Hold,
                flow_in: 0,
                flow_out: 0,
            }],
            recorded: 1,
            dropped: 0,
        };
        let analysis = clof::obs::analyze(&trace);
        let snap = clof::obs::LockSnapshot {
            name: "tkt-tkt".into(),
            ..Default::default()
        };
        let s = obs_report_with_analysis(&snap, &analysis).render();
        assert!(s.contains("trace: 1 critical sections"), "{s}");
        assert!(s.contains("trace fairness: jain"), "{s}");
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join(format!("clof-report-{}", std::process::id()));
        sample().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("t1.csv")).unwrap();
        assert!(content.contains("long-header"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
