//! Figure/table regeneration harness for the CLoF reproduction.
//!
//! One generator per table and figure of the paper's evaluation
//! (see `DESIGN.md` §4 for the index). Each generator returns
//! [`report::Report`]s that the `figures` binary (and the `figures`
//! custom-harness bench target) prints and writes as CSV under
//! `target/figures/`.
//!
//! Run everything:
//!
//! ```text
//! cargo run --release -p clof-bench --bin figures
//! ```
//!
//! or a single artifact:
//!
//! ```text
//! cargo run --release -p clof-bench --bin figures -- fig9
//! ```

#![warn(missing_docs)]

pub mod figures;
pub mod report;

pub use report::Report;
