//! Figure 9: the full scripted benchmark — every generated CLoF lock on
//! both platforms with 3- and 4-level hierarchies; HC-best, LC-best and
//! worst highlighted against the equivalently configured HMCS.

use clof::{rank, Policy};
use clof_sim::{ModelSpec, Workload};

use super::common;
use crate::report::Report;

/// Generates all four panels (9a–9d).
pub fn generate(quick: bool) -> Vec<Report> {
    let wl = Workload::leveldb_readrandom();
    let mut out = Vec::new();
    for (id, title, machine, grid) in [
        (
            "fig9a",
            "Figure 9a: x86, 4-level (core-cache-numa-system), 256 CLoF locks",
            common::x86_4level(),
            common::grid_x86(),
        ),
        (
            "fig9b",
            "Figure 9b: Armv8, 4-level (cache-numa-package-system), 256 CLoF locks",
            common::armv8_4level(),
            common::grid_armv8(),
        ),
        (
            "fig9c",
            "Figure 9c: x86, 3-level (cache-numa-system), 64 CLoF locks",
            common::x86_3level(),
            common::grid_x86(),
        ),
        (
            "fig9d",
            "Figure 9d: Armv8, 3-level (cache-numa-system), 64 CLoF locks",
            common::armv8_3level(),
            common::grid_armv8(),
        ),
    ] {
        let results = common::scripted_results(&machine, &grid, wl, quick);
        let hc = rank(&results, Policy::HighContention);
        let lc = rank(&results, Policy::LowContention);
        let hc_best = hc.best().clone();
        let lc_best = lc.best().clone();
        let worst = hc.worst().clone();

        let hmcs_spec = ModelSpec::hmcs(machine.hierarchy.clone());
        let hmcs: Vec<f64> = grid
            .iter()
            .map(|&t| common::throughput(&machine, &hmcs_spec, t, wl, quick))
            .collect();

        let mut report = Report::new(
            id,
            title,
            &[
                "threads",
                "HC-best",
                "LC-best",
                "HMCS",
                "worst",
                "others_median",
                "others_min",
                "others_max",
            ],
        );
        for (i, &threads) in grid.iter().enumerate() {
            let mut others: Vec<f64> = results.iter().map(|r| r.points[i].1).collect();
            others.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let median = others[others.len() / 2];
            report.row([
                threads.to_string(),
                common::fmt_tp(hc_best.points[i].1),
                common::fmt_tp(lc_best.points[i].1),
                common::fmt_tp(hmcs[i]),
                common::fmt_tp(worst.points[i].1),
                common::fmt_tp(median),
                common::fmt_tp(others[0]),
                common::fmt_tp(*others.last().expect("non-empty")),
            ]);
        }
        report.note(format!(
            "{} locks generated; HC-best = {}, LC-best = {}, worst = {}",
            results.len(),
            hc_best.name(),
            lc_best.name(),
            worst.name()
        ));
        report.note(
            "paper's best/worst (for comparison): 9a hem-hem-mcs-clh / tkt-tkt-mcs-mcs / \
             mcs-clh-tkt-mcs; 9b tkt-clh-clh-clh / tkt-clh-tkt-tkt / mcs-tkt-tkt-tkt; \
             9c hem-mcs-tkt / tkt-mcs-mcs / clh-tkt-tkt; 9d tkt-clh-tkt (both) / mcs-tkt-hem",
        );
        out.push(report);
    }
    out
}
