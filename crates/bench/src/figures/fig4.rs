//! Figure 4: LevelDB on Armv8 — CLoF⟨4⟩-Arm vs HMCS⟨4⟩, MCS, CNA,
//! ShflLock.

use clof::{composition_name, LockKind};
use clof_sim::{Machine, ModelSpec, Workload};

use super::common;
use crate::report::Report;

/// Generates Figure 4.
pub fn generate(quick: bool) -> Vec<Report> {
    let full = Machine::paper_armv8();
    let h4 = common::armv8_4level();
    let wl = Workload::leveldb_readrandom();
    let clof_kinds = common::lc_best(&h4, quick);

    let specs: Vec<(String, Machine, ModelSpec)> = vec![
        (
            format!("CLoF<4>-Arm ({})", composition_name(&clof_kinds)),
            h4.clone(),
            ModelSpec::clof(h4.hierarchy.clone(), &clof_kinds),
        ),
        ("HMCS<4>".into(), h4.clone(), ModelSpec::hmcs(h4.hierarchy.clone())),
        (
            "MCS".into(),
            full.clone(),
            ModelSpec::basic(LockKind::Mcs, full.ncpus()),
        ),
        ("CNA".into(), full.clone(), ModelSpec::cna(&full)),
        ("ShflLock".into(), full.clone(), ModelSpec::shfl(&full)),
    ];

    let mut report = Report::new(
        "fig4",
        "Figure 4: LevelDB with increasing contention on Armv8 (iter/us)",
        &{
            let mut h = vec!["threads"];
            h.extend(specs.iter().map(|(n, _, _)| n.as_str()));
            h
        },
    );
    for &threads in &common::grid_armv8() {
        let mut row = vec![threads.to_string()];
        for (_, machine, spec) in &specs {
            row.push(common::fmt_tp(common::throughput(
                machine, spec, threads, wl, quick,
            )));
        }
        report.row(row);
    }
    report.note(
        "expected shape: CNA/ShflLock below MCS before the NUMA crossing (shuffle \
         overhead), above it after; HMCS<4> far above both; CLoF<4> 10-15% above HMCS<4>",
    );
    vec![report]
}
