//! Table 2: cohort speedups of the ping-pong pair over the system cohort.

use clof_sim::Machine;

use crate::report::Report;

/// Paper values, for the side-by-side comparison.
const PAPER_X86: &[(&str, f64)] = &[
    ("system", 1.00),
    ("package", 1.54),
    ("numa", 1.54),
    ("cache", 9.07),
    ("core", 12.18),
];
const PAPER_ARM: &[(&str, f64)] = &[
    ("system", 1.00),
    ("package", 1.76),
    ("numa", 2.98),
    ("cache", 7.04),
];

/// Generates Table 2 for both machines.
pub fn generate() -> Vec<Report> {
    let mut t = Report::new(
        "table2",
        "Table 2: throughput speedups of two threads sharing a cohort, vs the system cohort",
        &["machine", "level", "paper", "measured", "rel_err_%"],
    );
    for (machine, paper) in [
        (Machine::paper_x86(), PAPER_X86),
        (Machine::paper_armv8(), PAPER_ARM),
    ] {
        let measured = machine.cohort_speedups();
        for &(level, expected) in paper {
            // On the x86 machine package == NUMA node (one node per
            // package), so no CPU pair has `package` as its *innermost*
            // shared level; the package row reads the numa value, as the
            // paper's identical 1.54 entries do.
            let got = measured
                .iter()
                .find(|(n, _)| n == level)
                .or_else(|| {
                    (level == "package")
                        .then(|| measured.iter().find(|(n, _)| n == "numa"))
                        .flatten()
                })
                .map(|&(_, s)| s)
                .unwrap_or(f64::NAN);
            let err = (got - expected).abs() / expected * 100.0;
            t.row([
                machine.name.clone(),
                level.to_string(),
                format!("{expected:.2}"),
                format!("{got:.2}"),
                format!("{err:.1}"),
            ]);
        }
    }
    t.note(
        "measured = from the simulated machine's heatmap; matches by construction \
         (the machine's transfer costs are calibrated from this table — see clof-sim::machine)",
    );
    vec![t]
}
