//! Figure 3: per-cohort throughput of the NUMA-oblivious basic locks at
//! maximum contention — one thread per sub-unit of the cohort under test.
//!
//! This is the experiment that motivates heterogeneity (A2) and
//! architecture awareness (A3): the best basic lock differs per level and
//! per architecture, and `hem-ctr` collapses on Armv8.

use clof::LockKind;
use clof_sim::engine::run;
use clof_sim::{Machine, ModelSpec, Workload};

use super::common::{self, fmt_tp, sim_opts};
use crate::report::Report;

/// One CPU per child unit of cohort 0 at `level` of the machine.
fn contenders(machine: &Machine, level: usize) -> Vec<usize> {
    let h = &machine.hierarchy;
    let members = h.cohort_members(level, 0);
    if level == 0 {
        // Innermost level: the children are the CPUs themselves.
        return members;
    }
    // One CPU per (level-1) cohort inside this cohort.
    let mut seen = std::collections::BTreeSet::new();
    let mut picks = Vec::new();
    for cpu in members {
        let child = h.cohort(level - 1, cpu);
        if seen.insert(child) {
            picks.push(cpu);
        }
    }
    picks
}

/// Generates Figure 3 (both machines).
pub fn generate(quick: bool) -> Vec<Report> {
    let locks = [
        LockKind::Ticket,
        LockKind::Mcs,
        LockKind::Clh,
        LockKind::Hemlock,
        LockKind::HemlockCtr,
    ];
    let wl = Workload::leveldb_readrandom();
    let mut out = Vec::new();
    for (suffix, machine) in [
        ("x86", Machine::paper_x86()),
        ("armv8", Machine::paper_armv8()),
    ] {
        let mut report = Report::new(
            &format!("fig3_{suffix}"),
            &format!(
                "Figure 3 ({suffix}): basic locks per cohort at max contention (iter/us)"
            ),
            &{
                let mut h = vec!["cohort", "threads"];
                h.extend(locks.iter().map(|k| k.info().name));
                h
            },
        );
        // The cohorts the paper tests: every level except the innermost
        // degenerate ones; include the system level last.
        for level in 0..machine.hierarchy.level_count() {
            let cpus = contenders(&machine, level);
            if cpus.len() < 2 {
                continue;
            }
            let mut row = vec![
                machine.hierarchy.levels()[level].name.clone(),
                cpus.len().to_string(),
            ];
            for kind in locks {
                let spec = ModelSpec::basic(kind, machine.ncpus());
                let tp = run(&machine, &spec, &cpus, wl, sim_opts(quick)).throughput_per_us();
                row.push(fmt_tp(tp));
            }
            report.row(row);
        }
        report.note(
            "expected shape (paper): tkt best at system; hem-ctr best at x86 NUMA; \
             clh best at Armv8 NUMA; hem-ctr ~0 on Armv8 (LL/SC pathology)",
        );
        out.push(report);
    }
    let _ = common::grid_x86(); // shared-module linkage
    out
}
