//! Figure 1: pairwise ping-pong throughput heatmaps (x86 + Armv8), plus
//! the automated hierarchy discovery the heatmaps feed.

use clof_sim::Machine;
use clof_topology::cluster::{cluster_heatmap, ClusterOptions};

use crate::report::Report;

/// Generates the two heatmaps and the recovered hierarchies.
pub fn generate() -> Vec<Report> {
    let mut out = Vec::new();
    for (suffix, machine) in [
        ("x86", Machine::paper_x86()),
        ("armv8", Machine::paper_armv8()),
    ] {
        let heatmap = machine.synthetic_heatmap();
        let mut report = Report::new(
            &format!("fig1_{suffix}"),
            &format!("Figure 1 ({suffix}): ping-pong pair throughput heatmap"),
            &["cpu_a", "cpu_b", "throughput"],
        );
        let n = heatmap.ncpus();
        for a in 0..n {
            for b in 0..n {
                report.row([
                    a.to_string(),
                    b.to_string(),
                    format!("{:.4}", heatmap.value(a, b)),
                ]);
            }
        }
        report.note(format!(
            "simulated machine: {} — absolute values are model units; only \
             relative tile intensity matters (paper §3.1)",
            machine.name
        ));

        // A viewable rendition of the figure itself.
        let pgm_path = std::path::Path::new("target/figures").join(format!("fig1_{suffix}.pgm"));
        if std::fs::create_dir_all("target/figures").is_ok() {
            let _ = std::fs::write(&pgm_path, heatmap.to_pgm());
        }

        // The discovery pipeline the heatmap exists for.
        let found = cluster_heatmap(&heatmap, &ClusterOptions::default())
            .expect("synthetic heatmap clusters cleanly");
        let mut levels = Report::new(
            &format!("fig1_levels_{suffix}"),
            &format!("Figure 1 ({suffix}): levels recovered by clustering"),
            &["level", "name", "cohorts", "cpus_per_cohort"],
        );
        for (i, level) in found.levels().iter().enumerate() {
            levels.row([
                i.to_string(),
                level.name.clone(),
                level.cohorts.to_string(),
                (found.ncpus() / level.cohorts).to_string(),
            ]);
        }
        levels.note("automated version of the paper's manual heatmap reading");
        out.push(report);
        out.push(levels);
    }
    out
}
