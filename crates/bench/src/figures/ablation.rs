//! Ablations of the design choices DESIGN.md calls out.

use clof::{rank, Policy};
use clof_sim::engine::run;
use clof_sim::workload::placement;
use clof_sim::{ModelSpec, Workload};

use super::common::{self, fmt_tp, sim_opts};
use crate::report::Report;

/// Generates all ablation reports.
pub fn generate(quick: bool) -> Vec<Report> {
    vec![
        threshold_sweep(quick),
        policy_comparison(quick),
        fastpath_ablation(quick),
    ]
}

/// Fast-path extension (paper 6): TAS front gate vs the plain
/// composition, across the contention range — low-contention gains,
/// negligible high-contention cost.
fn fastpath_ablation(quick: bool) -> Report {
    let machine = common::armv8_4level();
    let kinds = common::lc_best(&machine, quick);
    let wl = Workload::leveldb_readrandom();
    let mut report = Report::new(
        "ablation_fastpath",
        "Ablation: TAS fast path over the LC-best composition (Armv8)",
        &["threads", "plain", "with_fastpath", "delta_%"],
    );
    let plain = ModelSpec::clof(machine.hierarchy.clone(), &kinds);
    let mut fast = ModelSpec::clof(machine.hierarchy.clone(), &kinds);
    fast.tas_fastpath = true;
    fast.label = format!("tas+{}", fast.label);
    for threads in [1usize, 2, 4, 16, 64, 127] {
        let cpus = placement::compact(&machine, threads);
        let p = run(&machine, &plain, &cpus, wl, sim_opts(quick)).throughput_per_us();
        let f = run(&machine, &fast, &cpus, wl, sim_opts(quick)).throughput_per_us();
        report.row([
            threads.to_string(),
            fmt_tp(p),
            fmt_tp(f),
            format!("{:+.1}", (f - p) / p * 100.0),
        ]);
    }
    report.note("real implementation: clof::fastpath::FastClof (paper 6 extension)");
    report
}

/// keep_local threshold H: throughput *and* fairness as H grows — the
/// §4.1.2 trade-off ("excessively high H values might affect short-term
/// fairness").
fn threshold_sweep(quick: bool) -> Report {
    let machine = common::armv8_4level();
    let kinds = common::lc_best(&machine, quick);
    let wl = Workload::leveldb_readrandom();
    let threads = machine.ncpus() - 1;
    let cpus = placement::compact(&machine, threads);
    let mut report = Report::new(
        "ablation_threshold",
        "Ablation: keep_local threshold H (Armv8, LC-best composition, max contention)",
        &["H", "throughput_iter_us", "jain_fairness", "min/max"],
    );
    for h in [1u32, 8, 32, 128, 512, 4096] {
        let spec = ModelSpec::clof_with_threshold(machine.hierarchy.clone(), &kinds, h);
        let r = run(&machine, &spec, &cpus, wl, sim_opts(quick));
        let min = *r.per_thread.iter().min().expect("non-empty") as f64;
        let max = *r.per_thread.iter().max().expect("non-empty") as f64;
        report.row([
            h.to_string(),
            fmt_tp(r.throughput_per_us()),
            format!("{:.4}", r.jain_index()),
            format!("{:.3}", if max > 0.0 { min / max } else { 1.0 }),
        ]);
    }
    report.note("expected: throughput rises then saturates with H; fairness degrades");
    report.note("paper default H = 128 per level");
    report
}

/// HC vs LC vs uniform selection policies: which lock each picks and how
/// the picks differ across the contention range (§4.3 / §5.2.1).
fn policy_comparison(quick: bool) -> Report {
    let machine = common::armv8_4level();
    let grid = common::grid_armv8();
    let results =
        common::scripted_results(&machine, &grid, Workload::leveldb_readrandom(), quick);
    let mut report = Report::new(
        "ablation_policy",
        "Ablation: selection policy (Armv8 4-level, all 256 locks)",
        &["policy", "best", "best_at_1thread", "best_at_max", "score"],
    );
    for (name, policy) in [
        ("HC (weight = threads)", Policy::HighContention),
        ("LC (weight = 1/threads)", Policy::LowContention),
        ("uniform", Policy::Uniform),
    ] {
        let sel = rank(&results, policy.clone());
        let best = sel.best();
        report.row([
            name.to_string(),
            best.name(),
            fmt_tp(best.points[0].1),
            fmt_tp(best.points.last().expect("non-empty").1),
            fmt_tp(best.score(&policy)),
        ]);
    }
    report.note(
        "paper: HC-best trades low-contention losses for high-contention gains; \
         LC-best gains moderately everywhere",
    );
    report
}
