//! Figure 2: LevelDB on x86 — MCS vs HMCS⟨2⟩/⟨3⟩/⟨4⟩ vs CLoF⟨4⟩-x86.
//!
//! The figure that motivates the cache-group level: HMCS⟨4⟩ (with the
//! cache level the OS does not report) far outruns HMCS⟨3⟩, and
//! heterogeneity (CLoF⟨4⟩) adds more on top.

use clof::{composition_name, LockKind};
use clof_sim::{Machine, ModelSpec, Workload};
use clof_topology::platforms;

use super::common;
use crate::report::Report;

/// Generates Figure 2.
pub fn generate(quick: bool) -> Vec<Report> {
    let full = Machine::paper_x86();
    let wl = Workload::leveldb_readrandom();
    let grid = common::grid_x86();

    let h2 = full.with_hierarchy(full.hierarchy.select_levels(&["numa"]).expect("levels"));
    let h3 = full.with_hierarchy(
        full.hierarchy
            .select_levels(&["core", "numa"])
            .expect("levels"),
    );
    let h4 = common::x86_4level();
    let clof_kinds = common::lc_best(&h4, quick);

    let mut specs: Vec<(String, Machine, ModelSpec)> = vec![
        (
            "MCS".into(),
            full.clone(),
            ModelSpec::basic(LockKind::Mcs, full.ncpus()),
        ),
        ("HMCS<2>".into(), h2.clone(), ModelSpec::hmcs(h2.hierarchy.clone())),
        ("HMCS<3>".into(), h3.clone(), ModelSpec::hmcs(h3.hierarchy.clone())),
        ("HMCS<4>".into(), h4.clone(), ModelSpec::hmcs(h4.hierarchy.clone())),
    ];
    specs.push((
        format!("CLoF<4>-x86 ({})", composition_name(&clof_kinds)),
        h4.clone(),
        ModelSpec::clof(h4.hierarchy.clone(), &clof_kinds),
    ));

    let mut report = Report::new(
        "fig2",
        "Figure 2: LevelDB with increasing contention on x86 (iter/us)",
        &{
            let mut h = vec!["threads"];
            let names: Vec<&str> = specs.iter().map(|(n, _, _)| n.as_str()).collect();
            h.extend(names);
            h
        },
    );
    for &threads in &grid {
        let mut row = vec![threads.to_string()];
        for (_, machine, spec) in &specs {
            row.push(common::fmt_tp(common::throughput(
                machine, spec, threads, wl, quick,
            )));
        }
        report.row(row);
    }
    report.note("paper HMCS<2> config = CNA/ShflLock papers'; HMCS<3> = original HMCS paper's");
    report.note(
        "expected shape: HMCS<2> ≈ MCS until the NUMA crossing (>24 threads); \
         HMCS<4> >> HMCS<3> (cache-group level); CLoF<4> above HMCS<4> at most points",
    );
    let _ = platforms::paper_x86(); // keep the dependency explicit
    vec![report]
}
