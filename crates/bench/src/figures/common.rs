//! Shared helpers for figure generators.

use clof::LockKind;
use clof_sim::engine::{run, RunOptions};
use clof_sim::workload::placement;
use clof_sim::{Machine, ModelSpec, Workload};
use clof_topology::platforms;

/// Paper thread grids.
pub fn grid_x86() -> Vec<usize> {
    vec![1, 4, 8, 16, 24, 32, 48, 64, 95]
}

/// Armv8 grid (Figure 4/9/10 x-axis).
pub fn grid_armv8() -> Vec<usize> {
    vec![1, 4, 8, 16, 24, 32, 48, 64, 95, 127]
}

/// Simulation options sized for sweeps; `quick` shrinks the window for
/// CI/bench smoke runs.
pub fn sim_opts(quick: bool) -> RunOptions {
    if quick {
        RunOptions {
            duration_ns: 4_000_000,
            warmup_ns: 400_000,
            seed: 0xC10F,
        }
    } else {
        RunOptions {
            duration_ns: 25_000_000,
            warmup_ns: 2_500_000,
            seed: 0xC10F,
        }
    }
}

/// Throughput of `spec` on `machine` with `threads` compact-placed
/// threads under `workload` (iterations per microsecond).
pub fn throughput(
    machine: &Machine,
    spec: &ModelSpec,
    threads: usize,
    workload: Workload,
    quick: bool,
) -> f64 {
    let cpus = placement::compact(machine, threads);
    run(machine, spec, &cpus, workload, sim_opts(quick)).throughput_per_us()
}

/// The tuned 4-level x86 machine (core-cache-numa-system).
pub fn x86_4level() -> Machine {
    Machine::paper_x86().with_hierarchy(platforms::paper_x86_4level())
}

/// The tuned 3-level x86 machine (cache-numa-system).
pub fn x86_3level() -> Machine {
    Machine::paper_x86().with_hierarchy(platforms::paper_x86_3level())
}

/// The tuned 4-level Armv8 machine (cache-numa-package-system).
pub fn armv8_4level() -> Machine {
    Machine::paper_armv8().with_hierarchy(platforms::paper_armv8_4level())
}

/// The tuned 3-level Armv8 machine (cache-numa-system).
pub fn armv8_3level() -> Machine {
    Machine::paper_armv8().with_hierarchy(platforms::paper_armv8_3level())
}

/// The paper's basic-lock set for a machine's architecture.
pub fn basics_for(machine: &Machine) -> Vec<LockKind> {
    match machine.arch {
        clof_sim::Arch::X86 => LockKind::PAPER_X86.to_vec(),
        clof_sim::Arch::Armv8 => LockKind::PAPER_ARM.to_vec(),
    }
}

/// Formats a throughput cell.
pub fn fmt_tp(v: f64) -> String {
    format!("{v:.3}")
}

/// Runs the scripted benchmark (paper §4.3) over every composition of the
/// machine's basic-lock set on the machine's lock hierarchy, and returns
/// the full result set.
pub fn scripted_results(
    machine: &Machine,
    grid: &[usize],
    workload: Workload,
    quick: bool,
) -> Vec<clof::BenchResult> {
    let combos = clof::compositions(&basics_for(machine), machine.hierarchy.level_count());
    clof::scripted_benchmark(&combos, grid, |combo, threads| {
        let spec = ModelSpec::clof(machine.hierarchy.clone(), combo);
        throughput(machine, &spec, threads, workload, quick)
    })
}

/// Convenience: the LC-best composition of a machine under the LevelDB
/// workload with a coarse selection grid (what §5.3 deploys).
pub fn lc_best(machine: &Machine, quick: bool) -> Vec<LockKind> {
    let max = machine.ncpus() - 1;
    let grid = [1, 8, 32, max];
    let results = scripted_results(machine, &grid, Workload::leveldb_readrandom(), quick);
    clof::rank(&results, clof::Policy::LowContention)
        .best()
        .composition
        .clone()
}
