//! One module per regenerated paper artifact.

pub mod ablation;
pub mod biglittle;
pub mod common;
pub mod fairness;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig9;
pub mod fig10;
pub mod mcscaling;
pub mod table1;
pub mod table2;

use crate::report::Report;

/// All artifact ids, in presentation order.
pub const ALL: &[&str] = &[
    "fig1", "table1", "table2", "fig2", "fig3", "fig4", "fig9", "fig10", "fairness", "mcscaling",
    "ablation", "biglittle",
];

/// Runs the generator(s) for `id` (`"all"` for everything).
pub fn generate(id: &str, quick: bool) -> Vec<Report> {
    match id {
        "fig1" => fig1::generate(),
        "table1" => table1::generate(),
        "table2" => table2::generate(),
        "fig2" => fig2::generate(quick),
        "fig3" => fig3::generate(quick),
        "fig4" => fig4::generate(quick),
        "fig9" => fig9::generate(quick),
        "fig10" => fig10::generate(quick),
        "fairness" => fairness::generate(quick),
        "mcscaling" => mcscaling::generate(quick),
        "ablation" => ablation::generate(quick),
        "biglittle" => biglittle::generate(quick),
        "all" => ALL.iter().flat_map(|i| generate(i, quick)).collect(),
        other => panic!("unknown artifact `{other}`; known: {ALL:?} or `all`"),
    }
}
