//! The paper's §7 outlook, made concrete: CLoF on a big.LITTLE SoC.
//!
//! "Such systems combine slow but power efficient cores with fast but
//! less efficient cores. These two groups of cores form cohorts with
//! different communication trade-offs." — we run the lock suite on a
//! simulated 4+4 big.LITTLE machine and compare cluster-aware CLoF
//! compositions against flat locks.

use clof::LockKind;
use clof_sim::engine::run;
use clof_sim::{Machine, ModelSpec, Workload};

use super::common::{fmt_tp, sim_opts};
use crate::report::Report;

/// Generates the big.LITTLE exploration.
pub fn generate(quick: bool) -> Vec<Report> {
    let machine = Machine::big_little();
    let wl = Workload::leveldb_readrandom();
    let h = machine.hierarchy.clone();

    let specs: Vec<(&str, ModelSpec)> = vec![
        ("mcs (flat)", ModelSpec::basic(LockKind::Mcs, machine.ncpus())),
        ("tkt (flat)", ModelSpec::basic(LockKind::Ticket, machine.ncpus())),
        (
            "clof mcs-tkt (cluster-aware)",
            ModelSpec::clof(h.clone(), &[LockKind::Mcs, LockKind::Ticket]),
        ),
        (
            "clof clh-tkt (cluster-aware)",
            ModelSpec::clof(h.clone(), &[LockKind::Clh, LockKind::Ticket]),
        ),
        ("HMCS<2>", ModelSpec::hmcs(h.clone())),
    ];

    let mut report = Report::new(
        "biglittle",
        "big.LITTLE (7): lock suite on a 4 big + 4 little SoC (iter/us)",
        &["threads", "placement", "mcs", "tkt", "clof mcs-tkt", "clof clh-tkt", "HMCS<2>"],
    );
    for (label, cpus) in [
        ("big cluster only", vec![0usize, 1, 2, 3]),
        ("little cluster only", vec![4usize, 5, 6, 7]),
        ("both clusters", (0..8).collect::<Vec<_>>()),
    ] {
        let mut row = vec![cpus.len().to_string(), label.to_string()];
        for (_, spec) in &specs {
            let r = run(&machine, spec, &cpus, wl, sim_opts(quick));
            row.push(fmt_tp(r.throughput_per_us()));
        }
        report.row(row);
    }
    report.note(
        "expected: on mixed placement, cluster-aware compositions keep hand-offs \
         within a cluster and beat flat locks; the little cluster alone is \
         uniformly slower (0.45x cores)",
    );
    report.note("paper §7 names big.LITTLE as future work; this is that exploration");
    vec![report]
}
