//! Figure 10: LevelDB + Kyoto Cabinet on both platforms — the deployed
//! LC-best CLoF locks (3- and 4-level, native and cross-platform) against
//! HMCS⟨4⟩, CNA and ShflLock.

use clof::{composition_name, LockKind};
use clof_sim::{Arch, Machine, ModelSpec, Workload};

use super::common;
use crate::report::Report;

/// Ports a composition to another machine: levels are matched by *name*
/// (an Armv8 `cache` lock lands on the x86 `cache` level, not on
/// whatever occupies the same position); unmatched target levels take
/// the source level at the closest relative depth. The Hemlock variant
/// follows the target architecture, as the paper's Figure 9 caption
/// prescribes ("CLoF locks using hem use the CTR optimization only on
/// x86").
fn port_composition(
    src: &Machine,
    src_kinds: &[LockKind],
    dst: &Machine,
) -> Vec<LockKind> {
    let src_names = src.hierarchy.level_names();
    let src_levels = src_names.len() as f64;
    dst.hierarchy
        .level_names()
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let kind = match src_names.iter().position(|n| n == name) {
                Some(idx) => src_kinds[idx],
                None => {
                    // Closest relative depth.
                    let rel = i as f64 / dst.hierarchy.level_count() as f64;
                    let idx = ((rel * src_levels).round() as usize)
                        .min(src_kinds.len() - 1);
                    src_kinds[idx]
                }
            };
            match (kind, dst.arch) {
                (LockKind::Hemlock, Arch::X86) => LockKind::HemlockCtr,
                (LockKind::HemlockCtr, Arch::Armv8) => LockKind::Hemlock,
                (other, _) => other,
            }
        })
        .collect()
}

/// Generates the four panels (2 workloads × 2 platforms).
pub fn generate(quick: bool) -> Vec<Report> {
    // Select the deployed locks once per platform/depth (LC policy, §5.3).
    let x4 = common::x86_4level();
    let x3 = common::x86_3level();
    let a4 = common::armv8_4level();
    let a3 = common::armv8_3level();
    let best_x4 = common::lc_best(&x4, quick);
    let best_x3 = common::lc_best(&x3, quick);
    let best_a4 = common::lc_best(&a4, quick);
    let best_a3 = common::lc_best(&a3, quick);

    let mut out = Vec::new();
    for (wl_name, wl) in [
        ("leveldb", Workload::leveldb_readrandom()),
        ("kyoto", Workload::kyoto_cabinet()),
    ] {
        for (plat, full, m3, m4, native3, native4, cross3, cross4, grid) in [
            (
                "x86",
                Machine::paper_x86(),
                &x3,
                &x4,
                &best_x3,
                &best_x4,
                &best_a3,
                &best_a4,
                common::grid_x86(),
            ),
            (
                "armv8",
                Machine::paper_armv8(),
                &a3,
                &a4,
                &best_a3,
                &best_a4,
                &best_x3,
                &best_x4,
                common::grid_armv8(),
            ),
        ] {
            // Cross locks: the *other* platform's best, ported by level
            // name with the target-appropriate Hemlock variant.
            let (other3, other4) = if plat == "x86" { (&a3, &a4) } else { (&x3, &x4) };
            let ported3 = port_composition(other3, cross3, m3);
            let ported4 = port_composition(other4, cross4, m4);
            let specs: Vec<(String, &Machine, ModelSpec)> = vec![
                (
                    format!("CLoF<3>-native ({})", composition_name(native3)),
                    m3,
                    ModelSpec::clof(m3.hierarchy.clone(), native3),
                ),
                (
                    format!("CLoF<4>-native ({})", composition_name(native4)),
                    m4,
                    ModelSpec::clof(m4.hierarchy.clone(), native4),
                ),
                (
                    format!("CLoF<3>-cross ({})", composition_name(&ported3)),
                    m3,
                    ModelSpec::clof(m3.hierarchy.clone(), &ported3),
                ),
                (
                    format!("CLoF<4>-cross ({})", composition_name(&ported4)),
                    m4,
                    ModelSpec::clof(m4.hierarchy.clone(), &ported4),
                ),
                (
                    "HMCS<4>".to_string(),
                    m4,
                    ModelSpec::hmcs(m4.hierarchy.clone()),
                ),
            ];
            let mut report = Report::new(
                &format!("fig10_{wl_name}_{plat}"),
                &format!("Figure 10: {wl_name} on {plat} (iter/us)"),
                &{
                    let mut h = vec!["threads".to_string()];
                    h.extend(specs.iter().map(|(n, _, _)| n.clone()));
                    h.push("CNA".to_string());
                    h.push("ShflLock".to_string());
                    h.iter().map(|s| s.to_string()).collect::<Vec<_>>()
                }
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
                .as_slice(),
            );
            let cna = ModelSpec::cna(&full);
            let shfl = ModelSpec::shfl(&full);
            for &threads in &grid {
                let mut row = vec![threads.to_string()];
                for (_, machine, spec) in &specs {
                    row.push(common::fmt_tp(common::throughput(
                        machine, spec, threads, wl, quick,
                    )));
                }
                row.push(common::fmt_tp(common::throughput(
                    &full, &cna, threads, wl, quick,
                )));
                row.push(common::fmt_tp(common::throughput(
                    &full, &shfl, threads, wl, quick,
                )));
                report.row(row);
            }
            report.note(
                "cross = the other platform's LC-best composition applied here \
                 (paper: 'every platform needs a tailored lock')",
            );
            report.note(
                "expected: native >= cross; CLoF<4> > HMCS<4>; CNA/ShflLock flat and \
                 far below at high contention (paper: up to 139% x86 / 109% Armv8)",
            );
            out.push(report);
        }
    }
    // Keep the unused-import lint honest.
    let _ = LockKind::Mcs;
    out
}
