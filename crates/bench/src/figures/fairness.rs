//! §5.2.3: fairness of CLoF locks vs HMCS (per-thread throughput).

use clof_sim::engine::run;
use clof_sim::workload::placement;
use clof_sim::{ModelSpec, Workload};

use clof_sim::engine::RunOptions;

use super::common;
use crate::report::Report;

/// Generates the fairness comparison.
///
/// Note the long measurement window: under full saturation, nested
/// `keep_local` thresholds rotate the lock around the machine in cycles
/// of roughly `H^(levels-1)` critical sections (~seconds of virtual time
/// at H = 128) — shorter windows observe whole packages at zero and say
/// nothing about steady-state fairness. The threshold ablation
/// quantifies the trade-off.
pub fn generate(quick: bool) -> Vec<Report> {
    let wl = Workload::leveldb_readrandom();
    let opts = if quick {
        RunOptions {
            duration_ns: 300_000_000,
            warmup_ns: 30_000_000,
            seed: 0xC10F,
        }
    } else {
        RunOptions {
            duration_ns: 4_000_000_000,
            warmup_ns: 400_000_000,
            seed: 0xC10F,
        }
    };
    let mut report = Report::new(
        "fairness",
        "Fairness (5.2.3): per-thread statistics, CLoF vs HMCS (Jain index, min/max ratio)",
        &["machine", "lock", "threads", "jain", "min/max", "throughput"],
    );
    for machine in [common::x86_4level(), common::armv8_4level()] {
        let threads = machine.ncpus() - 1;
        let cpus = placement::compact(&machine, threads);
        let clof_kinds = common::lc_best(&machine, quick);
        let specs = [
            ModelSpec::clof(machine.hierarchy.clone(), &clof_kinds),
            ModelSpec::hmcs(machine.hierarchy.clone()),
        ];
        for spec in specs {
            let r = run(&machine, &spec, &cpus, wl, opts);
            let min = *r.per_thread.iter().min().expect("non-empty") as f64;
            let max = *r.per_thread.iter().max().expect("non-empty") as f64;
            report.row([
                machine.name.clone(),
                spec.label.clone(),
                threads.to_string(),
                format!("{:.4}", r.jain_index()),
                format!("{:.3}", if max > 0.0 { min / max } else { 1.0 }),
                common::fmt_tp(r.throughput_per_us()),
            ]);
        }
    }
    report.note(
        "expected (paper): CLoF fairness closely matches HMCS — both use the same \
         keep_local strategy (H = 128 per level)",
    );
    report.note(
        "window = seconds of virtual time: nested H=128 thresholds rotate the lock \
         machine-wide in ~H^(levels-1) critical sections (see ablation_threshold)",
    );
    vec![report]
}
