//! §3.3 / §4.2.3: model-checking scaling vs the induction argument, plus
//! the store-buffer litmus results.

use clof_verify::checker::check;
use clof_verify::experiments::{induction_step_cost, scaling_table};
use clof_verify::mcs_model::{mcs_model, McsVariant};
use clof_verify::tso::{self, explore, MemoryModel};

use crate::report::Report;

/// Generates the scaling table and the litmus matrix.
pub fn generate(quick: bool) -> Vec<Report> {
    let mut scaling = Report::new(
        "mcscaling",
        "Model-checking scaling (3.3/4.2.3): whole-lock checking vs the induction step",
        &["model", "levels", "threads", "states", "transitions", "verdict"],
    );
    let max_levels = if quick { 2 } else { 3 };
    for row in scaling_table(max_levels) {
        scaling.row([
            format!("whole {}-level lock", row.levels),
            row.levels.to_string(),
            row.threads.to_string(),
            row.states.to_string(),
            row.transitions.to_string(),
            if row.ok { "ok" } else { "FAILED" }.to_string(),
        ]);
    }
    let step = induction_step_cost();
    scaling.row([
        "induction step (any target depth)".to_string(),
        step.levels.to_string(),
        step.threads.to_string(),
        step.states.to_string(),
        step.transitions.to_string(),
        if step.ok { "ok" } else { "FAILED" }.to_string(),
    ]);
    // The operational base step: a real lock protocol (MCS) at the
    // paper's 3-thread verification scale.
    let base = check(&mcs_model(3, McsVariant::Correct));
    scaling.row([
        "base step (operational MCS)".to_string(),
        "1".to_string(),
        "3".to_string(),
        base.states.to_string(),
        base.transitions.to_string(),
        if base.result == clof_verify::CheckResult::Ok {
            "ok"
        } else {
            "FAILED"
        }
        .to_string(),
    ]);
    scaling.note(
        "paper: 2-level ≈ 1 s, 3-level ≈ 3 min, 4-level times out after 12 h (GenMC); \
         CLoF only ever needs the induction step + base steps",
    );

    let mut litmus = Report::new(
        "litmus",
        "Store-buffer litmus matrix (A4): forbidden outcome reachable?",
        &["test", "SC", "TSO-like"],
    );
    for test in [
        tso::store_buffering(false),
        tso::store_buffering(true),
        tso::broken_tas_lock(),
        tso::atomic_tas_lock(),
        tso::message_passing(),
    ] {
        let sc = explore(&test, MemoryModel::Sc).forbidden_reachable;
        let tso_r = explore(&test, MemoryModel::Tso).forbidden_reachable;
        litmus.row([
            test.name.clone(),
            if sc { "REACHABLE" } else { "safe" }.to_string(),
            if tso_r { "REACHABLE" } else { "safe" }.to_string(),
        ]);
    }
    litmus.note(
        "store-buffering without fences breaks only under reordering — the paper's \
         'a single missing barrier can easily cause the application to crash' point",
    );
    vec![scaling, litmus]
}
