//! Table 1: key-aspect coverage of recent NUMA-aware locks.
//!
//! The aspects (paper §1): A1 multi-level, A2 heterogeneity, A3
//! architecture-optimized, A4 correct on WMMs. The row facts mirror the
//! paper's table; the CLoF row is additionally cross-checked against this
//! repository's capabilities (the generator supports arbitrary depths,
//! heterogeneous kinds, per-arch lock sets, and verified composition).

use clof::{compositions, LockKind};

use crate::report::Report;

/// Generates Table 1.
pub fn generate() -> Vec<Report> {
    let mut t = Report::new(
        "table1",
        "Table 1: key aspects coverage of recent NUMA-aware locks",
        &["algorithm", "A1 multi-level", "A2 heterogeneous", "A3 arch-optimized", "A4 WMM-correct"],
    );
    let yes = "yes";
    let no = "no";
    for (name, a1, a2, a3, a4) in [
        ("CNA lock", no, no, no, no),
        ("ShflLock", no, no, no, no),
        ("HMCS", yes, no, no, no),
        ("HMCS-WMM", yes, no, no, yes),
        ("lock cohorting", no, yes, yes, no),
        ("CLoF", yes, yes, yes, yes),
    ] {
        t.row([
            name.to_string(),
            a1.to_string(),
            a2.to_string(),
            a3.to_string(),
            a4.to_string(),
        ]);
    }

    // Cross-checks against this repo (fail loudly if the claim rots).
    let combos = compositions(&LockKind::PAPER_ARM, 4);
    assert_eq!(combos.len(), 256, "A2: N^M generation");
    assert!(
        combos
            .iter()
            .any(|c| c.iter().collect::<std::collections::HashSet<_>>().len() > 1),
        "A2: heterogeneous compositions exist"
    );
    assert_ne!(
        LockKind::PAPER_X86,
        LockKind::PAPER_ARM,
        "A3: per-architecture basic-lock sets"
    );
    t.note("facts as published (paper Table 1); CLoF row cross-checked against this repo");
    t.note("A4 here: composition verified by clof-verify (SC + store-buffer modes), per DESIGN.md");
    vec![t]
}
