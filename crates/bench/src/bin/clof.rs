//! `clof` — the CLoF workflow as a command-line tool.
//!
//! ```text
//! clof discover  [--sysfs | --machine x86|armv8]        # hierarchy config
//! clof heatmap   [--machine x86|armv8] [--ascii]        # Figure-1 heatmap
//! clof generate  [--machine x86|armv8] [--levels 3|4]   # list all N^M locks
//! clof select    [--machine x86|armv8] [--levels 3|4] [--policy hc|lc] [--quick]
//! clof simulate  [--machine x86|armv8] --lock tkt-clh-tkt-tkt --threads N
//!                [--workload leveldb|kyoto] [--threshold H]
//! ```
//!
//! All simulation-backed commands run on the built-in paper machine
//! models; `discover --sysfs` reads the real host.

use std::process::ExitCode;

use clof::{parse_composition, rank, scripted_benchmark, LockKind, Policy};
use clof_sim::engine::{run, RunOptions};
use clof_sim::workload::placement;
use clof_sim::{Machine, ModelSpec, Workload};
use clof_topology::{config, platforms};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "discover" => discover(&args[1..]),
        "heatmap" => heatmap(&args[1..]),
        "generate" => generate(&args[1..]),
        "select" => select(&args[1..]),
        "simulate" => simulate(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
clof — compositional NUMA-aware lock workflow

commands:
  discover  [--sysfs | --machine x86|armv8]       print a hierarchy configuration
  heatmap   [--machine x86|armv8] [--ascii]       print the pair-latency heatmap
  generate  [--machine x86|armv8] [--levels 3|4]  list all generated compositions
  select    [--machine x86|armv8] [--levels 3|4] [--policy hc|lc] [--quick]
                                                  run the scripted benchmark and pick the best lock
  simulate  [--machine x86|armv8] --lock NAME --threads N
            [--workload leveldb|kyoto] [--threshold H]
                                                  simulate one lock at one contention level";

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn machine_for(args: &[String]) -> Result<Machine, String> {
    match flag_value(args, "--machine").unwrap_or("armv8") {
        "x86" => Ok(Machine::paper_x86()),
        "armv8" | "arm" => Ok(Machine::paper_armv8()),
        other => Err(format!("unknown machine `{other}` (x86 | armv8)")),
    }
}

fn tuned_machine(args: &[String]) -> Result<Machine, String> {
    let machine = machine_for(args)?;
    let levels = flag_value(args, "--levels").unwrap_or("4");
    let hierarchy = match (machine.arch, levels) {
        (clof_sim::Arch::X86, "4") => platforms::paper_x86_4level(),
        (clof_sim::Arch::X86, "3") => platforms::paper_x86_3level(),
        (clof_sim::Arch::Armv8, "4") => platforms::paper_armv8_4level(),
        (clof_sim::Arch::Armv8, "3") => platforms::paper_armv8_3level(),
        (_, other) => return Err(format!("unsupported --levels `{other}` (3 | 4)")),
    };
    Ok(machine.with_hierarchy(hierarchy))
}

fn basics(machine: &Machine) -> Vec<LockKind> {
    match machine.arch {
        clof_sim::Arch::X86 => LockKind::PAPER_X86.to_vec(),
        clof_sim::Arch::Armv8 => LockKind::PAPER_ARM.to_vec(),
    }
}

fn discover(args: &[String]) -> Result<(), String> {
    let hierarchy = if has_flag(args, "--sysfs") {
        clof_topology::sysfs::discover().map_err(|e| format!("sysfs discovery failed: {e}"))?
    } else {
        machine_for(args)?.hierarchy
    };
    print!("{}", config::to_text(&hierarchy));
    Ok(())
}

fn heatmap(args: &[String]) -> Result<(), String> {
    let machine = machine_for(args)?;
    let heatmap = machine.synthetic_heatmap();
    if has_flag(args, "--ascii") {
        print!("{}", heatmap.render_ascii());
    } else {
        print!("{}", heatmap.to_csv());
    }
    Ok(())
}

fn generate(args: &[String]) -> Result<(), String> {
    let machine = tuned_machine(args)?;
    let combos = clof::compositions(&basics(&machine), machine.hierarchy.level_count());
    for combo in &combos {
        println!("{}", clof::composition_name(combo));
    }
    eprintln!(
        "{} compositions over levels {:?}",
        combos.len(),
        machine.hierarchy.level_names()
    );
    Ok(())
}

fn select(args: &[String]) -> Result<(), String> {
    let machine = tuned_machine(args)?;
    let policy = match flag_value(args, "--policy").unwrap_or("lc") {
        "hc" => Policy::HighContention,
        "lc" => Policy::LowContention,
        other => return Err(format!("unknown policy `{other}` (hc | lc)")),
    };
    let quick = has_flag(args, "--quick");
    let opts = RunOptions {
        duration_ns: if quick { 3_000_000 } else { 20_000_000 },
        warmup_ns: if quick { 300_000 } else { 2_000_000 },
        seed: 0xC10F,
    };
    let max = machine.ncpus() - 1;
    let grid = [1usize, 8, 32, max];
    let combos = clof::compositions(&basics(&machine), machine.hierarchy.level_count());
    eprintln!(
        "benchmarking {} compositions on {} ...",
        combos.len(),
        machine.name
    );
    let hierarchy = machine.hierarchy.clone();
    let results = scripted_benchmark(&combos, &grid, |combo, threads| {
        let spec = ModelSpec::clof(hierarchy.clone(), combo);
        let cpus = placement::compact(&machine, threads);
        run(&machine, &spec, &cpus, Workload::leveldb_readrandom(), opts).throughput_per_us()
    });
    // The paper's scripted benchmark reports both selections and lets
    // the user choose (§4.3); the requested policy's pick is listed
    // first with its curve.
    let selection = rank(&results, policy);
    let hc = rank(&results, Policy::HighContention);
    let lc = rank(&results, Policy::LowContention);
    println!("best ({}):  {}", flag_value(args, "--policy").unwrap_or("lc"), selection.best().name());
    println!("HC-best:     {}", hc.best().name());
    println!("LC-best:     {}", lc.best().name());
    println!("worst:       {}", selection.worst().name());
    for (threads, tp) in &selection.best().points {
        println!("  best @ {threads:>3} threads: {tp:.3} iter/us");
    }
    Ok(())
}

fn simulate(args: &[String]) -> Result<(), String> {
    let machine = tuned_machine(args)?;
    let lock = flag_value(args, "--lock").ok_or("missing --lock NAME (e.g. tkt-clh-tkt)")?;
    let kinds = parse_composition(lock).map_err(|e| e.to_string())?;
    if kinds.len() != machine.hierarchy.level_count() {
        return Err(format!(
            "`{lock}` names {} levels but the hierarchy has {} ({:?}); pass --levels",
            kinds.len(),
            machine.hierarchy.level_count(),
            machine.hierarchy.level_names()
        ));
    }
    let threads: usize = flag_value(args, "--threads")
        .ok_or("missing --threads N")?
        .parse()
        .map_err(|e| format!("bad --threads: {e}"))?;
    let workload = match flag_value(args, "--workload").unwrap_or("leveldb") {
        "leveldb" => Workload::leveldb_readrandom(),
        "kyoto" => Workload::kyoto_cabinet(),
        other => return Err(format!("unknown workload `{other}` (leveldb | kyoto)")),
    };
    let threshold: u32 = flag_value(args, "--threshold")
        .unwrap_or("128")
        .parse()
        .map_err(|e| format!("bad --threshold: {e}"))?;

    let spec = ModelSpec::clof_with_threshold(machine.hierarchy.clone(), &kinds, threshold);
    let cpus = placement::compact(&machine, threads);
    let result = run(
        &machine,
        &spec,
        &cpus,
        workload,
        RunOptions::default(),
    );
    println!("machine:    {}", machine.name);
    println!("lock:       {} (H = {threshold})", spec.label);
    println!("threads:    {threads}");
    println!("throughput: {:.3} iter/us", result.throughput_per_us());
    println!("fairness:   jain {:.4}", result.jain_index());
    for (level, count) in result.handovers_by_level.iter().enumerate() {
        println!(
            "handovers @ {:<8}: {count}",
            machine.hierarchy.levels()[level].name
        );
    }
    Ok(())
}
