//! `clof` — the CLoF workflow as a command-line tool.
//!
//! ```text
//! clof discover  [--sysfs | --machine x86|armv8]        # hierarchy config
//! clof heatmap   [--machine x86|armv8] [--ascii]        # Figure-1 heatmap
//! clof generate  [--machine x86|armv8] [--levels 3|4]   # list all N^M locks
//! clof select    [--machine x86|armv8] [--levels 3|4] [--policy hc|lc] [--quick]
//! clof simulate  [--machine x86|armv8] --lock tkt-clh-tkt-tkt --threads N
//!                [--workload leveldb|kyoto] [--threshold H]
//! clof stats     [--machine x86|armv8] --lock tkt-clh-tkt-tkt
//!                [--threads N] [--iters N] [--threshold H]
//!                [--format table|json|prometheus]       # needs --features obs
//! clof trace     [--machine x86|armv8] --lock NAME [--threads N] [--iters N]
//!                [--threshold H] [--out FILE] [--buffer N]  # needs --features obs
//! clof top       [--machine x86|armv8] --lock NAME [--threads N] [--threshold H]
//!                [--interval-ms N] [--duration-ms N] [--stall-ms N] [--once]
//! clof adapt     [--machine x86|armv8] [--levels 3|4] [--threads N] [--threshold H]
//!                [--interval-ms N] [--rounds N] [--once]  # needs --features adapt,obs
//! clof profile   [--machine x86|armv8] --lock NAME [--threads N] [--iters N]
//!                [--threshold H] [--top K] [--once]
//!                [--inject-deadlock] [--inject-inversion]  # needs --features obs
//! clof deadline  [--machine x86|armv8] [--levels 3|4] [--lock NAME]
//!                [--rounds N] [--once]                # needs --features deadline
//! ```
//!
//! All simulation-backed commands run on the built-in paper machine
//! models; `discover --sysfs` reads the real host.

use std::process::ExitCode;

use clof::{parse_composition, rank, scripted_benchmark, LockKind, Policy};
use clof_sim::engine::{run, RunOptions};
use clof_sim::workload::placement;
use clof_sim::{Machine, ModelSpec, Workload};
use clof_topology::{config, platforms};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "discover" => discover(&args[1..]),
        "heatmap" => heatmap(&args[1..]),
        "generate" => generate(&args[1..]),
        "select" => select(&args[1..]),
        "simulate" => simulate(&args[1..]),
        "stats" => stats(&args[1..]),
        "trace" => trace(&args[1..]),
        "top" => top(&args[1..]),
        "adapt" => adapt(&args[1..]),
        "serve" => serve_cmd(&args[1..]),
        "profile" => profile_cmd(&args[1..]),
        "deadline" => deadline_cmd(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
clof — compositional NUMA-aware lock workflow

commands:
  discover  [--sysfs | --machine x86|armv8]       print a hierarchy configuration
  heatmap   [--machine x86|armv8] [--ascii]       print the pair-latency heatmap
  generate  [--machine x86|armv8] [--levels 3|4]  list all generated compositions
  select    [--machine x86|armv8] [--levels 3|4] [--policy hc|lc] [--quick]
                                                  run the scripted benchmark and pick the best lock
  simulate  [--machine x86|armv8] --lock NAME --threads N
            [--workload leveldb|kyoto] [--threshold H]
                                                  simulate one lock at one contention level
  stats     [--machine x86|armv8] --lock NAME [--threads N] [--iters N]
            [--threshold H] [--format table|json|prometheus]
                                                  hammer a real composed lock and print its
                                                  telemetry (requires --features obs)
  trace     [--machine x86|armv8] --lock NAME [--threads N] [--iters N]
            [--threshold H] [--out FILE] [--buffer N]
                                                  record a causal span trace of a real run,
                                                  export Chrome/Perfetto JSON, and print the
                                                  hand-off analysis (requires --features obs)
  top       [--machine x86|armv8] --lock NAME [--threads N] [--threshold H]
            [--interval-ms N] [--duration-ms N] [--stall-ms N] [--once]
                                                  live windowed telemetry of a hammered lock
                                                  with a starvation watchdog; --once prints a
                                                  single window and exits (requires --features obs)
  adapt     [--machine x86|armv8] [--levels 3|4] [--threads N] [--threshold H]
            [--interval-ms N] [--rounds N] [--once]
                                                  replay a phase-shifting workload against a live
                                                  adaptive lock: windowed telemetry feeds the
                                                  hysteresis policy, which hot-swaps between the
                                                  finalist compositions; --once runs one window
                                                  plus a demonstration swap and exits (requires
                                                  --features adapt,obs)
  serve     [--machine x86|armv8] --lock NAME [--threads N] [--threshold H]
            [--addr HOST:PORT] [--interval-ms N] [--duration-ms N] [--stall-ms N]
            [--hold-slo-us N] [--handover-slo-us N] [--once]
                                                  hammer a lock while serving its telemetry over
                                                  HTTP: /metrics (Prometheus), /snapshot (JSON +
                                                  audit log), /health, /alerts (SLO burn rates);
                                                  --once self-scrapes every endpoint once and
                                                  exits (requires --features obs)
  profile   [--machine x86|armv8] --lock NAME [--threads N] [--iters N]
            [--threshold H] [--top K] [--once]
            [--inject-deadlock] [--inject-inversion]
                                                  continuous contention profiler: hammer a real
                                                  lock, then print the top-K contended registry
                                                  sites, folded stacks for flamegraph tooling,
                                                  and the waits-for graph verdict (deadlock /
                                                  NUMA-inversion detection; findings exit
                                                  nonzero). --once shrinks the run for CI; the
                                                  --inject flags stage synthetic occupancy to
                                                  prove detection (requires --features obs)
  deadline  [--machine x86|armv8] [--levels 3|4] [--lock NAME] [--rounds N] [--once]
                                                  deadline-bounded acquisition demo: measure how
                                                  far past its budget a timed-out waiter returns
                                                  on a fully contended tree (with a residue check
                                                  after every round), then show panic poisoning
                                                  and recovery; --once shrinks the run for CI
                                                  (requires --features deadline)";

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn machine_for(args: &[String]) -> Result<Machine, String> {
    match flag_value(args, "--machine").unwrap_or("armv8") {
        "x86" => Ok(Machine::paper_x86()),
        "armv8" | "arm" => Ok(Machine::paper_armv8()),
        other => Err(format!("unknown machine `{other}` (x86 | armv8)")),
    }
}

fn tuned_machine(args: &[String]) -> Result<Machine, String> {
    let machine = machine_for(args)?;
    let levels = flag_value(args, "--levels").unwrap_or("4");
    let hierarchy = match (machine.arch, levels) {
        (clof_sim::Arch::X86, "4") => platforms::paper_x86_4level(),
        (clof_sim::Arch::X86, "3") => platforms::paper_x86_3level(),
        (clof_sim::Arch::Armv8, "4") => platforms::paper_armv8_4level(),
        (clof_sim::Arch::Armv8, "3") => platforms::paper_armv8_3level(),
        (_, other) => return Err(format!("unsupported --levels `{other}` (3 | 4)")),
    };
    Ok(machine.with_hierarchy(hierarchy))
}

fn basics(machine: &Machine) -> Vec<LockKind> {
    match machine.arch {
        clof_sim::Arch::X86 => LockKind::PAPER_X86.to_vec(),
        clof_sim::Arch::Armv8 => LockKind::PAPER_ARM.to_vec(),
    }
}

fn discover(args: &[String]) -> Result<(), String> {
    let hierarchy = if has_flag(args, "--sysfs") {
        clof_topology::sysfs::discover().map_err(|e| format!("sysfs discovery failed: {e}"))?
    } else {
        machine_for(args)?.hierarchy
    };
    print!("{}", config::to_text(&hierarchy));
    Ok(())
}

fn heatmap(args: &[String]) -> Result<(), String> {
    let machine = machine_for(args)?;
    let heatmap = machine.synthetic_heatmap();
    if has_flag(args, "--ascii") {
        print!("{}", heatmap.render_ascii());
    } else {
        print!("{}", heatmap.to_csv());
    }
    Ok(())
}

fn generate(args: &[String]) -> Result<(), String> {
    let machine = tuned_machine(args)?;
    let combos = clof::compositions(&basics(&machine), machine.hierarchy.level_count());
    for combo in &combos {
        println!("{}", clof::composition_name(combo));
    }
    eprintln!(
        "{} compositions over levels {:?}",
        combos.len(),
        machine.hierarchy.level_names()
    );
    Ok(())
}

fn select(args: &[String]) -> Result<(), String> {
    let machine = tuned_machine(args)?;
    let policy = match flag_value(args, "--policy").unwrap_or("lc") {
        "hc" => Policy::HighContention,
        "lc" => Policy::LowContention,
        other => return Err(format!("unknown policy `{other}` (hc | lc)")),
    };
    let quick = has_flag(args, "--quick");
    let opts = RunOptions {
        duration_ns: if quick { 3_000_000 } else { 20_000_000 },
        warmup_ns: if quick { 300_000 } else { 2_000_000 },
        seed: 0xC10F,
    };
    let max = machine.ncpus() - 1;
    let grid = [1usize, 8, 32, max];
    let combos = clof::compositions(&basics(&machine), machine.hierarchy.level_count());
    eprintln!(
        "benchmarking {} compositions on {} ...",
        combos.len(),
        machine.name
    );
    let hierarchy = machine.hierarchy.clone();
    let results = scripted_benchmark(&combos, &grid, |combo, threads| {
        let spec = ModelSpec::clof(hierarchy.clone(), combo);
        let cpus = placement::compact(&machine, threads);
        run(&machine, &spec, &cpus, Workload::leveldb_readrandom(), opts).throughput_per_us()
    });
    // The paper's scripted benchmark reports both selections and lets
    // the user choose (§4.3); the requested policy's pick is listed
    // first with its curve.
    let selection = rank(&results, policy);
    let hc = rank(&results, Policy::HighContention);
    let lc = rank(&results, Policy::LowContention);
    // CI greps release binaries for the waiting-layer marker to tell
    // park builds from spin-only builds (`scripts/ci.sh`); the banner
    // keeps the marker reachable even when no benchmark ever parks.
    #[cfg(feature = "park")]
    println!("waiting:     spin-then-park [{}]", clof_locks::PARK_MARKER);
    println!("best ({}):  {}", flag_value(args, "--policy").unwrap_or("lc"), selection.best().name());
    println!("HC-best:     {}", hc.best().name());
    println!("LC-best:     {}", lc.best().name());
    println!("worst:       {}", selection.worst().name());
    for (threads, tp) in &selection.best().points {
        println!("  best @ {threads:>3} threads: {tp:.3} iter/us");
    }
    // With telemetry compiled in, profile both policy finalists on the
    // *real* composed lock (not the simulator) and print the per-level
    // pass rates and tail latency a deployment would observe.
    #[cfg(feature = "obs")]
    {
        println!();
        println!("finalist telemetry (real lock, 8 threads x 20000 iters):");
        for (tag, name) in [("HC", hc.best().name()), ("LC", lc.best().name())] {
            let kinds = parse_composition(&name).map_err(|e| e.to_string())?;
            let snap = profile_real_lock(&machine.hierarchy, &kinds, 128, 8, 20_000)?;
            for level in &snap.levels {
                println!(
                    "  {tag}-best {name} level {}: pass rate {:5.1}%  p99 acquire {} ns",
                    level.level,
                    level.pass_rate() * 100.0,
                    level.acquire_ns.p99()
                );
            }
        }
    }
    Ok(())
}

/// Builds the named composition as a real `DynClofLock`, hammers it from
/// `threads` threads spread compactly over the hierarchy, and returns
/// the telemetry snapshot at quiescence.
#[cfg(feature = "obs")]
fn profile_real_lock(
    hierarchy: &clof_topology::Hierarchy,
    kinds: &[clof::LockKind],
    threshold: u32,
    threads: usize,
    iters: u64,
) -> Result<clof::obs::LockSnapshot, String> {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let params = clof::ClofParams {
        keep_local_threshold: threshold,
    };
    let lock = Arc::new(
        clof::DynClofLock::build_with(hierarchy, kinds, params, true).map_err(|e| e.to_string())?,
    );
    let shared = Arc::new(AtomicU64::new(0));
    let ncpus = hierarchy.ncpus();
    let mut workers = Vec::new();
    for t in 0..threads {
        let lock = Arc::clone(&lock);
        let shared = Arc::clone(&shared);
        let cpu = t * ncpus / threads.max(1);
        workers.push(std::thread::spawn(move || {
            let mut handle = lock.handle(cpu);
            for _ in 0..iters {
                handle.acquire();
                shared.fetch_add(1, Ordering::Relaxed);
                handle.release();
            }
        }));
    }
    for w in workers {
        w.join().map_err(|_| "profiling thread panicked".to_string())?;
    }
    let expected = threads as u64 * iters;
    let got = shared.load(Ordering::Relaxed);
    if got != expected {
        return Err(format!("lost updates under profile: {got} != {expected}"));
    }
    Ok(lock.obs_snapshot())
}

fn stats(args: &[String]) -> Result<(), String> {
    #[cfg(not(feature = "obs"))]
    {
        let _ = args;
        Err("`stats` needs lock telemetry compiled in; rebuild with `--features obs`".to_string())
    }
    #[cfg(feature = "obs")]
    {
        let machine = tuned_machine(args)?;
        let lock = flag_value(args, "--lock").ok_or("missing --lock NAME (e.g. tkt-clh-tkt)")?;
        let kinds = parse_composition(lock).map_err(|e| e.to_string())?;
        if kinds.len() != machine.hierarchy.level_count() {
            return Err(format!(
                "`{lock}` names {} levels but the hierarchy has {} ({:?}); pass --levels",
                kinds.len(),
                machine.hierarchy.level_count(),
                machine.hierarchy.level_names()
            ));
        }
        let threads: usize = flag_value(args, "--threads")
            .unwrap_or("8")
            .parse()
            .map_err(|e| format!("bad --threads: {e}"))?;
        let iters: u64 = flag_value(args, "--iters")
            .unwrap_or("20000")
            .parse()
            .map_err(|e| format!("bad --iters: {e}"))?;
        let threshold: u32 = flag_value(args, "--threshold")
            .unwrap_or("128")
            .parse()
            .map_err(|e| format!("bad --threshold: {e}"))?;
        let snap = profile_real_lock(&machine.hierarchy, &kinds, threshold, threads, iters)?;
        match flag_value(args, "--format").unwrap_or("table") {
            "table" => print!("{}", clof_bench::report::obs_report(&snap).render()),
            "json" => println!("{}", clof::obs::render_json(&snap)),
            "prometheus" | "prom" => print!("{}", clof::obs::render_prometheus(&snap)),
            other => return Err(format!("unknown format `{other}` (table | json | prometheus)")),
        }
        Ok(())
    }
}

/// Shared argument parsing for the telemetry commands: machine, lock
/// kinds (validated against the hierarchy's level count), threads,
/// threshold.
#[cfg(feature = "obs")]
fn telemetry_args(
    args: &[String],
    default_threads: &str,
) -> Result<(Machine, Vec<LockKind>, usize, u32), String> {
    let machine = tuned_machine(args)?;
    let lock = flag_value(args, "--lock").ok_or("missing --lock NAME (e.g. tkt-clh-tkt)")?;
    let kinds = parse_composition(lock).map_err(|e| e.to_string())?;
    if kinds.len() != machine.hierarchy.level_count() {
        return Err(format!(
            "`{lock}` names {} levels but the hierarchy has {} ({:?}); pass --levels",
            kinds.len(),
            machine.hierarchy.level_count(),
            machine.hierarchy.level_names()
        ));
    }
    let threads: usize = flag_value(args, "--threads")
        .unwrap_or(default_threads)
        .parse()
        .map_err(|e| format!("bad --threads: {e}"))?;
    let threshold: u32 = flag_value(args, "--threshold")
        .unwrap_or("128")
        .parse()
        .map_err(|e| format!("bad --threshold: {e}"))?;
    Ok((machine, kinds, threads, threshold))
}

fn trace(args: &[String]) -> Result<(), String> {
    #[cfg(not(feature = "obs"))]
    {
        let _ = args;
        Err("`trace` needs lock telemetry compiled in; rebuild with `--features obs`".to_string())
    }
    #[cfg(feature = "obs")]
    {
        use clof::obs::trace;

        let (machine, kinds, threads, threshold) = telemetry_args(args, "4")?;
        let iters: u64 = flag_value(args, "--iters")
            .unwrap_or("5000")
            .parse()
            .map_err(|e| format!("bad --iters: {e}"))?;
        let buffer: usize = flag_value(args, "--buffer")
            .unwrap_or("65536")
            .parse()
            .map_err(|e| format!("bad --buffer: {e}"))?;
        let out = flag_value(args, "--out").unwrap_or("clof-trace.json");

        trace::enable(buffer);
        let profiled = profile_real_lock(&machine.hierarchy, &kinds, threshold, threads, iters);
        trace::disable();
        let snap = profiled?;
        let recorded = trace::snapshot();
        std::fs::write(out, clof::obs::render_chrome_trace(&recorded))
            .map_err(|e| format!("writing {out}: {e}"))?;

        let analysis = clof::obs::analyze(&recorded);
        print!(
            "{}",
            clof_bench::report::obs_report_with_analysis(&snap, &analysis).render()
        );
        println!(
            "wrote {} span events ({} dropped) to {out} — load in Perfetto or chrome://tracing",
            recorded.events.len(),
            recorded.dropped
        );
        // On a complete trace the §4.1 keep-local bound is a hard
        // invariant; a violation is a composition bug, so fail loudly.
        analysis.check_chain_bound(u64::from(threshold))?;
        Ok(())
    }
}

fn top(args: &[String]) -> Result<(), String> {
    #[cfg(not(feature = "obs"))]
    {
        let _ = args;
        Err("`top` needs lock telemetry compiled in; rebuild with `--features obs`".to_string())
    }
    #[cfg(feature = "obs")]
    {
        use std::io::IsTerminal;
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        use std::sync::Arc;
        use std::time::Duration;

        let (machine, kinds, threads, threshold) = telemetry_args(args, "8")?;
        let interval_ms: u64 = flag_value(args, "--interval-ms")
            .unwrap_or("500")
            .parse()
            .map_err(|e| format!("bad --interval-ms: {e}"))?;
        let duration_ms: u64 = flag_value(args, "--duration-ms")
            .unwrap_or("3000")
            .parse()
            .map_err(|e| format!("bad --duration-ms: {e}"))?;
        let stall_ms: u64 = flag_value(args, "--stall-ms")
            .unwrap_or("1000")
            .parse()
            .map_err(|e| format!("bad --stall-ms: {e}"))?;
        let once = has_flag(args, "--once");

        let params = clof::ClofParams {
            keep_local_threshold: threshold,
        };
        let lock = Arc::new(
            clof::DynClofLock::build_with(&machine.hierarchy, &kinds, params, true)
                .map_err(|e| e.to_string())?,
        );
        let name = lock.name();

        // Hammer the lock until told to stop; `top` samples alongside.
        let stop = Arc::new(AtomicBool::new(false));
        let total = Arc::new(AtomicU64::new(0));
        let ncpus = machine.hierarchy.ncpus();
        let mut workers = Vec::new();
        for t in 0..threads {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            let total = Arc::clone(&total);
            let cpu = t * ncpus / threads.max(1);
            workers.push(std::thread::spawn(move || {
                let mut handle = lock.handle(cpu);
                while !stop.load(Ordering::Relaxed) {
                    handle.acquire();
                    total.fetch_add(1, Ordering::Relaxed);
                    handle.release();
                }
            }));
        }

        // Starvation watchdog over the workers' progress epochs, with
        // per-level queue hints in the diagnostic dump.
        let diag_lock = Arc::clone(&lock);
        let watchdog = clof::obs::Watchdog::new(clof::obs::WatchdogConfig {
            stall_ns: stall_ms.saturating_mul(1_000_000),
            poll: Duration::from_millis(interval_ms.max(1)),
        })
        .with_diag(move || {
            let hints: Vec<String> = diag_lock
                .queue_hints()
                .into_iter()
                .map(|(level, waiters)| format!("L{level}:{waiters}"))
                .collect();
            format!("queued waiters by level [{}]", hints.join(" "))
        })
        .spawn(|report| eprintln!("{report}"));

        let ansi = std::io::stdout().is_terminal() && !once;
        let mut sampler = clof::obs::Sampler::new();
        sampler.tick(lock.obs_snapshot());
        let rounds = if once {
            1
        } else {
            (duration_ms / interval_ms.max(1)).max(1)
        };
        for round in 0..rounds {
            std::thread::sleep(Duration::from_millis(interval_ms));
            let Some(rates) = sampler.tick(lock.obs_snapshot()) else {
                continue;
            };
            if ansi {
                // In-place refresh on a live terminal.
                print!("\x1b[2J\x1b[H");
            }
            if ansi || round == 0 {
                println!("clof top — {name} (H = {threshold}, {threads} threads)");
            }
            println!("{rates}");
            if ansi {
                for level in &rates.delta.levels {
                    println!(
                        "  L{}: {:>9} acquires  {:>9} passes  {:>7} ups  pass rate {:5.1}%",
                        level.level,
                        level.acquires,
                        level.passes_taken,
                        level.passes_declined,
                        level.pass_rate() * 100.0
                    );
                }
            }
        }

        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().map_err(|_| "worker thread panicked".to_string())?;
        }
        let stalls = watchdog.stop();
        println!(
            "{} acquisitions observed; {} stall report(s)",
            total.load(Ordering::Relaxed),
            stalls
        );
        print_audit_tail(8);
        Ok(())
    }
}

/// Prints the most recent entries of the process-global adaptation
/// audit ring, if any policy or migration has recorded into it.
#[cfg(feature = "obs")]
fn print_audit_tail(limit: usize) {
    let entries = clof::obs::audit::global().entries();
    if entries.is_empty() {
        return;
    }
    println!("audit tail (last {} of {} recorded):", entries.len().min(limit), {
        clof::obs::audit::global().recorded()
    });
    for record in entries.iter().rev().take(limit).rev() {
        println!("  {record}");
    }
}

fn adapt(args: &[String]) -> Result<(), String> {
    #[cfg(not(all(feature = "obs", feature = "adapt")))]
    {
        let _ = args;
        Err("`adapt` needs runtime adaptation and telemetry compiled in; rebuild with \
             `--features adapt,obs`"
            .to_string())
    }
    #[cfg(all(feature = "obs", feature = "adapt"))]
    {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        use std::sync::Arc;
        use std::time::Duration;

        use clof::obs::{
            AdaptDecision, FinalistProfile, HysteresisConfig, HysteresisController, Sampler,
        };

        let machine = tuned_machine(args)?;
        let threads: usize = flag_value(args, "--threads")
            .unwrap_or("8")
            .parse()
            .map_err(|e| format!("bad --threads: {e}"))?;
        let threshold: u32 = flag_value(args, "--threshold")
            .unwrap_or("128")
            .parse()
            .map_err(|e| format!("bad --threshold: {e}"))?;
        let once = has_flag(args, "--once");
        let interval_ms: u64 = flag_value(args, "--interval-ms")
            .unwrap_or(if once { "60" } else { "300" })
            .parse()
            .map_err(|e| format!("bad --interval-ms: {e}"))?;
        let rounds: u64 = if once {
            1
        } else {
            flag_value(args, "--rounds")
                .unwrap_or("12")
                .parse()
                .map_err(|e| format!("bad --rounds: {e}"))?
        };

        // Finalist set: the homogeneous compositions of the machine's
        // basic locks, profiled offline on the simulator (the scripted
        // benchmark of §4.3, shrunk to the shapes the policy can name).
        let levels = machine.hierarchy.level_count();
        let finalists: Vec<Vec<LockKind>> = basics(&machine)
            .into_iter()
            .map(|k| vec![k; levels])
            .collect();
        let opts = RunOptions {
            duration_ns: 2_000_000,
            warmup_ns: 200_000,
            seed: 0xADA7,
        };
        let grid = [1usize, 2, 4, threads.max(2)];
        let hierarchy = machine.hierarchy.clone();
        let results = scripted_benchmark(&finalists, &grid, |combo, n| {
            let spec = ModelSpec::clof(hierarchy.clone(), combo);
            let cpus = placement::compact(&machine, n);
            run(&machine, &spec, &cpus, Workload::leveldb_readrandom(), opts).throughput_per_us()
        });
        let profiles: Vec<FinalistProfile> = results
            .iter()
            .map(|r| {
                FinalistProfile::new(r.name(), &r.points)
                    .ok_or_else(|| format!("profile for {} has no finite points", r.name()))
            })
            .collect::<Result<_, _>>()?;
        let start_name = rank(&results, Policy::LowContention).best().name();
        let start = results
            .iter()
            .position(|r| r.name() == start_name)
            .expect("ranked winner is in the result set");
        for p in &profiles {
            println!("clof-adapt: finalist {}", p.name);
        }
        println!("clof-adapt: starting as {start_name} (LC-ranked)");

        let params = clof::ClofParams {
            keep_local_threshold: threshold,
        };
        let lock = Arc::new(
            clof::AdaptiveLock::with_params(&machine.hierarchy, &finalists[start], params, true)
                .map_err(|e| e.to_string())?,
        );

        // Phase-shifting workload: phase 0 is full contention with short
        // critical sections, phase 1 parks all but two threads and
        // stretches the sections — the two regimes the HC/LC finalists
        // were selected for.
        let stop = Arc::new(AtomicBool::new(false));
        let phase = Arc::new(AtomicU64::new(0));
        let total = Arc::new(AtomicU64::new(0));
        let ncpus = machine.hierarchy.ncpus();
        let mut workers = Vec::new();
        for t in 0..threads {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            let phase = Arc::clone(&phase);
            let total = Arc::clone(&total);
            let cpu = t * ncpus / threads.max(1);
            workers.push(std::thread::spawn(move || {
                let mut handle = lock.handle(cpu);
                while !stop.load(Ordering::Relaxed) {
                    let low = phase.load(Ordering::Relaxed) == 1;
                    if low && t >= 2 {
                        std::thread::yield_now();
                        continue;
                    }
                    handle.acquire();
                    total.fetch_add(1, Ordering::Relaxed);
                    for _ in 0..if low { 256 } else { 16 } {
                        std::hint::spin_loop();
                    }
                    handle.release();
                    if low {
                        for _ in 0..512 {
                            std::hint::spin_loop();
                        }
                    }
                }
            }));
        }

        let mut controller = HysteresisController::new(
            profiles,
            start,
            HysteresisConfig { k: 2, margin: 0.05 },
        )
        .expect("non-empty finalist set");
        let mut sampler = Sampler::new();
        sampler.tick(lock.obs_snapshot());
        for round in 0..rounds {
            // Shift the workload phase every few windows so the policy
            // has a regime change to react to.
            if !once && round > 0 && round % 4 == 0 {
                let flipped = 1 - phase.load(Ordering::Relaxed);
                phase.store(flipped, Ordering::Relaxed);
                println!(
                    "clof-adapt: workload phase -> {}",
                    if flipped == 1 { "low contention" } else { "high contention" }
                );
            }
            std::thread::sleep(Duration::from_millis(interval_ms));
            let Some(rates) = sampler.tick(lock.obs_snapshot()) else {
                continue;
            };
            let decision = controller.observe_rates(&rates);
            println!("clof-adapt: {rates}");
            match decision {
                AdaptDecision::Stay => {
                    println!("clof-adapt: stay on {}", lock.name());
                }
                AdaptDecision::Switch(i) => {
                    let target = &finalists[i];
                    match lock.swap_to(target) {
                        Ok(_) => println!(
                            "clof-adapt: switched to {} in {} ns",
                            lock.name(),
                            lock.migration_stats().last_switch_ns
                        ),
                        Err(e) => {
                            controller.set_active(start);
                            println!("clof-adapt: switch failed ({e}); staying");
                        }
                    }
                }
            }
        }

        if once {
            // CI smoke: exercise one real migration regardless of what
            // the policy decided in its single window, then sample one
            // post-switch window so the run reports throughput on the
            // incoming tree too.
            let target = (start + 1) % finalists.len();
            lock.swap_to(&finalists[target]).map_err(|e| e.to_string())?;
            println!(
                "clof-adapt: demonstration swap to {} in {} ns",
                lock.name(),
                lock.migration_stats().last_switch_ns
            );
            sampler.tick(lock.obs_snapshot()); // re-baseline on the new tree
            std::thread::sleep(Duration::from_millis(interval_ms));
            if let Some(rates) = sampler.tick(lock.obs_snapshot()) {
                println!("clof-adapt: post-switch {rates}");
            }
        }

        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().map_err(|_| "worker thread panicked".to_string())?;
        }
        let stats = lock.migration_stats();
        println!(
            "clof-adapt: {} acquisitions, {} migration(s), mean switch {} ns, final {}",
            total.load(Ordering::Relaxed),
            stats.swaps,
            stats.mean_switch_ns(),
            lock.name()
        );
        print_audit_tail(8);
        Ok(())
    }
}

fn serve_cmd(args: &[String]) -> Result<(), String> {
    #[cfg(not(feature = "obs"))]
    {
        let _ = args;
        Err("`serve` needs lock telemetry compiled in; rebuild with `--features obs`".to_string())
    }
    #[cfg(feature = "obs")]
    {
        use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
        use std::sync::Arc;
        use std::time::Duration;

        let (machine, kinds, threads, threshold) = telemetry_args(args, "4")?;
        let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:0");
        let interval_ms: u64 = flag_value(args, "--interval-ms")
            .unwrap_or("500")
            .parse()
            .map_err(|e| format!("bad --interval-ms: {e}"))?;
        let duration_ms: u64 = flag_value(args, "--duration-ms")
            .unwrap_or("5000")
            .parse()
            .map_err(|e| format!("bad --duration-ms: {e}"))?;
        let stall_ms: u64 = flag_value(args, "--stall-ms")
            .unwrap_or("1000")
            .parse()
            .map_err(|e| format!("bad --stall-ms: {e}"))?;
        let hold_slo_us: u64 = flag_value(args, "--hold-slo-us")
            .unwrap_or("1000")
            .parse()
            .map_err(|e| format!("bad --hold-slo-us: {e}"))?;
        let handover_slo_us: u64 = flag_value(args, "--handover-slo-us")
            .unwrap_or("1000")
            .parse()
            .map_err(|e| format!("bad --handover-slo-us: {e}"))?;
        let once = has_flag(args, "--once");

        let params = clof::ClofParams {
            keep_local_threshold: threshold,
        };
        let lock = Arc::new(
            clof::DynClofLock::build_with(&machine.hierarchy, &kinds, params, true)
                .map_err(|e| e.to_string())?,
        );
        let name = lock.name();

        // The snapshot closure is what every /metrics and /snapshot hit
        // renders from; it reads the live lock's telemetry directly.
        let snap_lock = Arc::clone(&lock);
        let server = Arc::new(
            clof::obs::serve(
                addr,
                Arc::new(move || snap_lock.obs_snapshot()),
                clof::obs::ServeConfig {
                    rules: clof::obs::default_rules(
                        hold_slo_us.saturating_mul(1_000),
                        handover_slo_us.saturating_mul(1_000),
                    ),
                    graph_h_bound: u64::from(threshold),
                    ..Default::default()
                },
            )
            .map_err(|e| format!("bind {addr}: {e}"))?,
        );
        println!("clof serve — {name} (H = {threshold}, {threads} threads)");
        println!(
            "serving on {}/metrics /snapshot /health /alerts /profile",
            server.url()
        );

        // Hammer the lock so the endpoints have live rates to report.
        let stop = Arc::new(AtomicBool::new(false));
        let total = Arc::new(AtomicU64::new(0));
        let ncpus = machine.hierarchy.ncpus();
        let mut workers = Vec::new();
        for t in 0..threads {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            let total = Arc::clone(&total);
            let cpu = t * ncpus / threads.max(1);
            workers.push(std::thread::spawn(move || {
                let mut handle = lock.handle(cpu);
                while !stop.load(Ordering::Relaxed) {
                    handle.acquire();
                    total.fetch_add(1, Ordering::Relaxed);
                    handle.release();
                }
            }));
        }

        // Stall reports feed the liveness alert, which flips /health.
        let diag_lock = Arc::clone(&lock);
        let stall_server = Arc::clone(&server);
        let watchdog = clof::obs::Watchdog::new(clof::obs::WatchdogConfig {
            stall_ns: stall_ms.saturating_mul(1_000_000),
            poll: Duration::from_millis(interval_ms.max(1)),
        })
        .with_diag(move || {
            let hints: Vec<String> = diag_lock
                .queue_hints()
                .into_iter()
                .map(|(level, waiters)| format!("L{level}:{waiters}"))
                .collect();
            format!("queued waiters by level [{}]", hints.join(" "))
        })
        .spawn(move |report| {
            stall_server.note_stall(report);
            eprintln!("{report}");
        });

        let mut sampler = clof::obs::Sampler::new();
        let mut graph_dedup = clof::obs::FindingDedup::new();
        sampler.tick(lock.obs_snapshot());
        let rounds = if once {
            1
        } else {
            (duration_ms / interval_ms.max(1)).max(1)
        };
        for _ in 0..rounds {
            std::thread::sleep(Duration::from_millis(interval_ms));
            let Some(rates) = sampler.tick(lock.obs_snapshot()) else {
                continue;
            };
            server.observe_window(&rates);
            // Waits-for sweep: fresh deadlock/inversion findings feed
            // the alert path (deduped against the watchdog's stalls).
            let report = clof::obs::waitgraph::global().analyze(u64::from(threshold));
            for finding in graph_dedup.fresh(&report.findings) {
                server.note_graph_finding(&finding);
                eprintln!("waits-for finding: {}", finding.detail());
            }
            println!("{rates}");
        }

        if once {
            // CI smoke: scrape every endpoint through a real socket and
            // report status + size, so the round trip is covered without
            // an external client.
            for path in ["/metrics", "/snapshot", "/health", "/alerts", "/profile"] {
                let (status, body) = clof::obs::http_get(server.addr(), path)
                    .map_err(|e| format!("self-scrape {path}: {e}"))?;
                println!("self-scrape GET {path} -> {status} ({} bytes)", body.len());
                if status != 200 {
                    return Err(format!("self-scrape {path} returned {status}"));
                }
            }
        }

        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().map_err(|_| "worker thread panicked".to_string())?;
        }
        let stalls = watchdog.stop();
        println!(
            "{} acquisitions observed; {} stall report(s); {} request(s) served",
            total.load(Ordering::Relaxed),
            stalls,
            server.requests()
        );
        print_audit_tail(8);
        Ok(())
    }
}

fn profile_cmd(args: &[String]) -> Result<(), String> {
    #[cfg(not(feature = "obs"))]
    {
        let _ = args;
        Err("`profile` needs lock telemetry compiled in; rebuild with `--features obs`".to_string())
    }
    #[cfg(feature = "obs")]
    {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let (machine, kinds, threads, threshold) = telemetry_args(args, "8")?;
        let once = has_flag(args, "--once");
        let iters: u64 = flag_value(args, "--iters")
            .unwrap_or(if once { "2000" } else { "20000" })
            .parse()
            .map_err(|e| format!("bad --iters: {e}"))?;
        let top_k: usize = flag_value(args, "--top")
            .unwrap_or("10")
            .parse()
            .map_err(|e| format!("bad --top: {e}"))?;

        let params = clof::ClofParams {
            keep_local_threshold: threshold,
        };
        let lock = Arc::new(
            clof::DynClofLock::build_with(&machine.hierarchy, &kinds, params, true)
                .map_err(|e| e.to_string())?,
        );
        println!(
            "clof profile — {} (H = {threshold}, {threads} threads x {iters} iters) [{}]",
            lock.name(),
            clof::obs::PROFILE_MARKER
        );

        // Windowed delta over the run: the lock is registered (and its
        // profile slot zeroed) at build, so `after - before` is exactly
        // this run even when other sites live in the process.
        let before = clof::obs::profile::global().snapshot();
        let shared = Arc::new(AtomicU64::new(0));
        let ncpus = machine.hierarchy.ncpus();
        let mut workers = Vec::new();
        for t in 0..threads {
            let lock = Arc::clone(&lock);
            let shared = Arc::clone(&shared);
            let cpu = t * ncpus / threads.max(1);
            workers.push(std::thread::spawn(move || {
                let mut handle = lock.handle(cpu);
                for _ in 0..iters {
                    handle.acquire();
                    shared.fetch_add(1, Ordering::Relaxed);
                    handle.release();
                }
            }));
        }
        for w in workers {
            w.join().map_err(|_| "profiling thread panicked".to_string())?;
        }
        let expected = threads as u64 * iters;
        let got = shared.load(Ordering::Relaxed);
        if got != expected {
            return Err(format!("lost updates under profile: {got} != {expected}"));
        }
        let delta = clof::obs::profile::global().snapshot().delta(&before);

        // Top-K most wait-contended sites, with their construction site
        // and per-(level, node) wait breakdown.
        println!();
        println!("top {} sites by wait:", top_k.min(delta.sites.len()).max(1));
        println!(
            "{:<4} {:<24} {:<14} {:>9} {:>11} {:>11} {:>9} {:>9}  location",
            "id", "label", "shape", "acquires", "wait-mean", "hold-mean", "passes", "gen"
        );
        for site in delta.top_k(top_k) {
            println!(
                "{:<4} {:<24} {:<14} {:>9} {:>9}ns {:>9}ns {:>9} {:>9}  {}",
                site.id,
                site.label,
                site.shape,
                site.acquires,
                site.mean_wait_ns(),
                site.mean_hold_ns(),
                site.passes,
                site.generation,
                site.location
            );
            for node in &site.nodes {
                if node.waits > 0 {
                    println!(
                        "       L{} n{}: {} waits, mean {} ns",
                        node.level,
                        node.node,
                        node.waits,
                        node.wait_ns / node.waits.max(1)
                    );
                }
            }
        }

        // Folded stacks: one line per (site, level, node), weight =
        // wait ns — pipe into any flamegraph renderer.
        println!();
        println!("folded stacks (site;level;node wait_ns):");
        print!("{}", clof::obs::render_folded(&delta));

        // Synthetic occupancy for detection proof runs (CI): a 2-cycle
        // across two scratch sites, and/or a waiter whose site's pass
        // clock races past the keep-local gap bound H.
        let graph = clof::obs::waitgraph::global();
        let _scratch: Vec<clof::obs::SiteAnchor> = if has_flag(args, "--inject-deadlock") {
            let reg = clof::obs::registry::global();
            let a = reg.register("injected-a", "synthetic");
            let b = reg.register("injected-b", "synthetic");
            graph.inject(510, &[a.id()], Some(b.id()));
            graph.inject(511, &[b.id()], Some(a.id()));
            vec![a, b]
        } else {
            Vec::new()
        };
        if has_flag(args, "--inject-inversion") {
            graph.inject(509, &[], Some(lock.site_id()));
            for _ in 0..=u64::from(threshold) {
                clof::obs::profile::global().record_pass(lock.site_id());
            }
        }

        // Waits-for graph verdict: quiescent clean runs report clean;
        // any finding (real or injected) is a nonzero exit for CI.
        let report = graph.analyze(u64::from(threshold));
        println!();
        println!(
            "waits-for graph: {} waiting, {} holds, {} edges",
            report.threads_waiting, report.holds, report.edges
        );
        for thread in [509u32, 510, 511] {
            graph.clear_thread(thread);
        }
        if report.is_clean() {
            println!("verdict: clean — no deadlock cycles, no H-bound inversions");
            Ok(())
        } else {
            for finding in &report.findings {
                println!("finding: {}", finding.detail());
            }
            Err(format!(
                "waits-for graph reported {} finding(s)",
                report.findings.len()
            ))
        }
    }
}

fn simulate(args: &[String]) -> Result<(), String> {
    let machine = tuned_machine(args)?;
    let lock = flag_value(args, "--lock").ok_or("missing --lock NAME (e.g. tkt-clh-tkt)")?;
    let kinds = parse_composition(lock).map_err(|e| e.to_string())?;
    if kinds.len() != machine.hierarchy.level_count() {
        return Err(format!(
            "`{lock}` names {} levels but the hierarchy has {} ({:?}); pass --levels",
            kinds.len(),
            machine.hierarchy.level_count(),
            machine.hierarchy.level_names()
        ));
    }
    let threads: usize = flag_value(args, "--threads")
        .ok_or("missing --threads N")?
        .parse()
        .map_err(|e| format!("bad --threads: {e}"))?;
    let workload = match flag_value(args, "--workload").unwrap_or("leveldb") {
        "leveldb" => Workload::leveldb_readrandom(),
        "kyoto" => Workload::kyoto_cabinet(),
        other => return Err(format!("unknown workload `{other}` (leveldb | kyoto)")),
    };
    let threshold: u32 = flag_value(args, "--threshold")
        .unwrap_or("128")
        .parse()
        .map_err(|e| format!("bad --threshold: {e}"))?;

    let spec = ModelSpec::clof_with_threshold(machine.hierarchy.clone(), &kinds, threshold);
    let cpus = placement::compact(&machine, threads);
    let result = run(
        &machine,
        &spec,
        &cpus,
        workload,
        RunOptions::default(),
    );
    println!("machine:    {}", machine.name);
    println!("lock:       {} (H = {threshold})", spec.label);
    println!("threads:    {threads}");
    println!("throughput: {:.3} iter/us", result.throughput_per_us());
    println!("fairness:   jain {:.4}", result.jain_index());
    for (level, count) in result.handovers_by_level.iter().enumerate() {
        println!(
            "handovers @ {:<8}: {count}",
            machine.hierarchy.levels()[level].name
        );
    }
    Ok(())
}

/// `clof deadline` — bounded acquisition on a real composed lock: an
/// abandonment-latency table (how far past its budget a timed-out
/// waiter returns, with a queue/waiter-count residue check after every
/// round), timeout recovery, and the panic-poisoning round trip.
fn deadline_cmd(args: &[String]) -> Result<(), String> {
    #[cfg(not(feature = "deadline"))]
    {
        let _ = args;
        Err("`deadline` needs bounded acquisition compiled in; rebuild with \
             `--features deadline`"
            .to_string())
    }
    #[cfg(feature = "deadline")]
    {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        use std::time::{Duration, Instant};

        use clof::{ClofMutex, DynClofLock};

        let machine = tuned_machine(args)?;
        let hierarchy = machine.hierarchy.clone();
        let levels = hierarchy.level_count();
        let kinds: Vec<LockKind> = match flag_value(args, "--lock") {
            Some(name) => parse_composition(name).map_err(|e| e.to_string())?,
            None => {
                // Queue locks at the contended inner levels, tickets up
                // the tree — the shape whose abandonment protocol is
                // the most interesting to watch.
                let mut kinds = vec![LockKind::Mcs, LockKind::Clh];
                while kinds.len() < levels {
                    kinds.push(LockKind::Ticket);
                }
                kinds.truncate(levels);
                kinds
            }
        };
        if kinds.len() != levels {
            return Err(format!(
                "--lock names {} levels but the hierarchy has {levels}",
                kinds.len()
            ));
        }
        let once = has_flag(args, "--once");
        let rounds: u32 = flag_value(args, "--rounds")
            .unwrap_or(if once { "8" } else { "40" })
            .parse()
            .map_err(|e| format!("bad --rounds: {e}"))?;

        // CI greps release binaries for this marker to tell deadline
        // builds from default builds (`scripts/ci.sh`); the banner
        // keeps it reachable even if no wait ever times out.
        println!(
            "deadlines:   bounded acquisition [{}]",
            clof_locks::deadline::DEADLINE_MARKER
        );
        println!(
            "lock:        {} on {} ({} levels, {} cpus)",
            clof::composition_name(&kinds),
            machine.name,
            levels,
            hierarchy.ncpus()
        );

        let lock =
            Arc::new(DynClofLock::build(&hierarchy, &kinds).map_err(|e| e.to_string())?);
        let far = hierarchy.ncpus() - 1;
        let budgets_us: &[u64] = if once { &[200, 1_000] } else { &[50, 200, 1_000, 5_000] };

        println!();
        println!(
            "abandonment latency: holder on cpu 0 never releases; a waiter on \
             cpu {far} climbs,"
        );
        println!(
            "times out, and unwinds. overshoot = time past the budget until \
             control returns."
        );
        println!(
            "  {:>9} {:>7} {:>12} {:>12} {:>12}   residue",
            "budget", "rounds", "min over", "median over", "p99 over"
        );

        let abandons_before = clof_locks::deadline::abandons();
        let mut timeouts = 0u64;
        for &budget_us in budgets_us {
            let budget = Duration::from_micros(budget_us);
            let stop = Arc::new(AtomicBool::new(false));
            let held = Arc::new(AtomicBool::new(false));
            let holder = {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                let held = Arc::clone(&held);
                std::thread::spawn(move || {
                    let mut h = lock.handle(0);
                    h.acquire();
                    held.store(true, Ordering::Release);
                    while !stop.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                    h.release();
                })
            };
            while !held.load(Ordering::Acquire) {
                std::thread::yield_now();
            }

            let mut overshoots_us: Vec<u64> = Vec::with_capacity(rounds as usize);
            let mut handle = lock.handle(far);
            for _ in 0..rounds {
                let t0 = Instant::now();
                let won = handle.try_acquire_for(budget);
                let elapsed = t0.elapsed();
                if won {
                    // Cannot happen while the holder lives; bail loudly
                    // rather than print a bogus table.
                    handle.release();
                    return Err("waiter acquired a held lock".to_string());
                }
                timeouts += 1;
                overshoots_us.push(elapsed.saturating_sub(budget).as_micros() as u64);
            }
            let residue = lock.queue_depth_hint();
            stop.store(true, Ordering::Release);
            holder.join().map_err(|_| "holder thread panicked".to_string())?;

            overshoots_us.sort_unstable();
            let min = overshoots_us[0];
            let med = overshoots_us[overshoots_us.len() / 2];
            let p99 = overshoots_us[(overshoots_us.len() - 1).min(
                overshoots_us.len() * 99 / 100,
            )];
            println!(
                "  {budget_us:>7}us {rounds:>7} {min:>10}us {med:>10}us {p99:>10}us   {}",
                if residue == 0 { "none" } else { "LEAKED" }
            );
            if residue != 0 {
                return Err(format!(
                    "timed-out waits left {residue} queue/waiter-count residue"
                ));
            }
        }

        let t0 = Instant::now();
        let mut handle = lock.handle(far);
        handle.acquire();
        handle.release();
        println!();
        println!(
            "recovery:    blocking acquire after {timeouts} timeouts won in {:?}",
            t0.elapsed()
        );
        println!(
            "counters:    abandons +{}  skips {}",
            clof_locks::deadline::abandons() - abandons_before,
            clof_locks::deadline::skips()
        );

        println!();
        println!("panic poisoning:");
        let mutex =
            Arc::new(ClofMutex::new(0u64, &hierarchy, &kinds).map_err(|e| e.to_string())?);
        let panicker = {
            let mutex = Arc::clone(&mutex);
            std::thread::spawn(move || {
                let mut h = mutex.handle(0);
                let mut guard = h.lock();
                *guard = 41; // torn: the panic lands mid-update
                // Silence the default hook for this intentional panic.
                std::panic::set_hook(Box::new(|_| {}));
                panic!("holder dies inside its critical section");
            })
        };
        let panicked = panicker.join().is_err();
        let _ = std::panic::take_hook();
        if !panicked {
            return Err("the demo holder failed to panic".to_string());
        }
        println!("  holder panicked while holding -> poisoned: {}", mutex.is_poisoned());
        let mut h = mutex.handle(far);
        match h.try_lock_for(Duration::from_millis(100)) {
            Err(e) => println!("  bounded lock reports: {e}"),
            Ok(_) => return Err("a poisoned lock handed out a guard".to_string()),
        }
        mutex.clear_poison();
        let mut h = mutex.handle(far);
        match h.try_lock_for(Duration::from_secs(5)) {
            Ok(guard) => println!(
                "  clear_poison -> reacquired; suspect value {} is the \
                 caller's to repair",
                *guard
            ),
            Err(e) => return Err(format!("recovery after clear_poison failed: {e}")),
        }
        Ok(())
    }
}
