//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p clof-bench --bin figures            # everything
//! cargo run --release -p clof-bench --bin figures -- fig9    # one artifact
//! cargo run --release -p clof-bench --bin figures -- --quick # fast smoke pass
//! ```
//!
//! Prints each table and writes `target/figures/<id>.csv`.

use std::path::PathBuf;

fn main() {
    let mut quick = false;
    let mut targets: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }

    let out_dir = PathBuf::from("target/figures");
    for target in &targets {
        for report in clof_bench::figures::generate(target, quick) {
            println!("{}", report.render());
            match report.write_csv(&out_dir) {
                Ok(()) => println!("  -> {}/{}.csv\n", out_dir.display(), report.id),
                Err(e) => eprintln!("  !! could not write CSV for {}: {e}\n", report.id),
            }
        }
    }
}
