//! Custom-harness bench target: regenerates every paper table and figure
//! (quick mode) under `cargo bench`. The real measurement artefacts are
//! the printed tables and the CSVs in `target/figures/`; wall-clock of
//! the generators themselves is reported for orientation.

use std::path::PathBuf;
use std::time::Instant;

fn main() {
    // `cargo bench` passes `--bench` and filter args; honour a filter if
    // one names a known artifact, otherwise run everything.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filter: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| clof_bench::figures::ALL.contains(a))
        .collect();
    let targets: Vec<&str> = if filter.is_empty() {
        clof_bench::figures::ALL.to_vec()
    } else {
        filter
    };

    let out_dir = PathBuf::from("target/figures");
    for target in targets {
        let start = Instant::now();
        let reports = clof_bench::figures::generate(target, true);
        let elapsed = start.elapsed();
        for report in &reports {
            println!("{}", report.render());
            if let Err(e) = report.write_csv(&out_dir) {
                eprintln!("  !! could not write CSV for {}: {e}", report.id);
            }
        }
        println!("[bench] {target}: generated in {elapsed:?} (quick mode)\n");
    }
    println!(
        "[bench] full-resolution run: cargo run --release -p clof-bench --bin figures"
    );
}
