//! Micro-benchmarks of the *real* lock implementations on the host:
//! uncontended latency per algorithm, contended hand-off, and the
//! static-vs-dynamic composition ablation. Runs on `clof-testkit`'s
//! criterion-lite runner, so no external dependency is needed.
//!
//! Gated behind the off-by-default `criterion` feature so plain builds
//! and tests skip the measurement loops entirely:
//!
//! ```text
//! cargo bench --bench locks_micro --features criterion
//! ```
//!
//! These complement the simulator figures: the simulator predicts
//! machine-scale behaviour; these measure the actual atomics on whatever
//! host runs them.

#[cfg(feature = "criterion")]
mod micro {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    use clof_testkit::bench::Criterion;
    use clof_testkit::criterion_group;

    use clof::compose::{build3, Leaf};
    use clof::{ClofParams, DynClofLock, LockKind};
    use clof_baselines::{CnaLock, HmcsLock, ShflLock};
    use clof_locks::{
        AndersonLock, BackoffLock, ClhLock, Hemlock, HemlockCtr, McsLock, RawLock, TicketLock,
        TtasLock,
    };
    use clof_topology::platforms;

    fn uncontended<L: RawLock>(c: &mut Criterion, name: &str) {
        let lock = L::default();
        let mut ctx = L::Context::default();
        c.bench_function(&format!("uncontended/{name}"), |b| {
            b.iter(|| {
                lock.acquire(&mut ctx);
                lock.release(&mut ctx);
            })
        });
    }

    fn bench_uncontended(c: &mut Criterion) {
        uncontended::<TicketLock>(c, "tkt");
        uncontended::<McsLock>(c, "mcs");
        uncontended::<ClhLock>(c, "clh");
        uncontended::<Hemlock>(c, "hem");
        uncontended::<HemlockCtr>(c, "hem-ctr");
        uncontended::<AndersonLock>(c, "anderson");
        uncontended::<TtasLock>(c, "ttas");
        uncontended::<BackoffLock>(c, "bo");
    }

    /// One background contender keeps the lock busy half the time; measures
    /// the contended acquire/release path.
    fn contended<L: RawLock>(c: &mut Criterion, name: &str) {
        let lock = Arc::new(L::default());
        let stop = Arc::new(AtomicBool::new(false));
        let bg = {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut ctx = L::Context::default();
                while !stop.load(Ordering::Relaxed) {
                    lock.acquire(&mut ctx);
                    lock.release(&mut ctx);
                    std::thread::yield_now();
                }
            })
        };
        let mut ctx = L::Context::default();
        c.bench_function(&format!("contended2/{name}"), |b| {
            b.iter(|| {
                lock.acquire(&mut ctx);
                lock.release(&mut ctx);
            })
        });
        stop.store(true, Ordering::Relaxed);
        bg.join().expect("background contender");
    }

    fn bench_contended(c: &mut Criterion) {
        contended::<TicketLock>(c, "tkt");
        contended::<McsLock>(c, "mcs");
        contended::<ClhLock>(c, "clh");
        contended::<Hemlock>(c, "hem");
    }

    /// Static generics (monomorphized `Clof<L, H>`) vs runtime enum dispatch
    /// (`DynClofLock`) for the same 3-level composition — the paper's "no
    /// virtual function pointers" claim, quantified.
    fn bench_static_vs_dyn(c: &mut Criterion) {
        let h = platforms::tiny();
        let static_tree =
            build3::<McsLock, ClhLock, TicketLock>(&h, ClofParams::default()).expect("3 levels");
        let mut static_handle = static_tree.handle(0);
        c.bench_function("compose/static/mcs-clh-tkt", |b| {
            b.iter(|| {
                static_handle.acquire();
                static_handle.release();
            })
        });

        let dyn_lock = DynClofLock::build(&h, &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket])
            .expect("build");
        let mut dyn_handle = dyn_lock.handle(0);
        c.bench_function("compose/dyn/mcs-clh-tkt", |b| {
            b.iter(|| {
                dyn_handle.acquire();
                dyn_handle.release();
            })
        });

        // Composition depth cost: flat basic lock for reference.
        let flat = Leaf::<McsLock>::new();
        let mut ctx = <Leaf<McsLock> as clof::HierLock>::Context::default();
        c.bench_function("compose/flat/mcs", |b| {
            b.iter(|| {
                clof::HierLock::acquire(&flat, &mut ctx, 0);
                clof::HierLock::release(&flat, &mut ctx);
            })
        });
    }

    /// Optional scrape sidecar for the dyn-pair benches (obs builds
    /// only): when `CLOF_BENCH_SCRAPE_MS` is set, a telemetry server is
    /// bound to an ephemeral port with the benched lock's snapshot and a
    /// client thread scrapes `CLOF_BENCH_SCRAPE_PATH` (default
    /// `/metrics`) at that cadence while the bench runs — the "obs-on
    /// under scrape" column of `scripts/bench_compare.sh --obs`, and
    /// with `/profile` the profiler column of `--profile`.
    #[cfg(feature = "obs")]
    struct ScrapeSidecar {
        stop: Arc<AtomicBool>,
        client: Option<std::thread::JoinHandle<u64>>,
        _server: clof::obs::ServerHandle,
    }

    #[cfg(feature = "obs")]
    impl Drop for ScrapeSidecar {
        fn drop(&mut self) {
            self.stop.store(true, Ordering::Relaxed);
            if let Some(client) = self.client.take() {
                let scrapes = client.join().expect("scrape client");
                eprintln!("# scrape sidecar: {scrapes} scrapes during this dyn pair");
            }
        }
    }

    #[cfg(feature = "obs")]
    fn scrape_sidecar(lock: &Arc<DynClofLock>) -> Option<ScrapeSidecar> {
        let ms: u64 = std::env::var("CLOF_BENCH_SCRAPE_MS").ok()?.parse().ok()?;
        let path = std::env::var("CLOF_BENCH_SCRAPE_PATH").unwrap_or_else(|_| "/metrics".into());
        let snap = Arc::clone(lock);
        let server = clof::obs::serve(
            "127.0.0.1:0",
            Arc::new(move || snap.obs_snapshot()),
            clof::obs::ServeConfig::default(),
        )
        .ok()?;
        let addr = server.addr();
        let stop = Arc::new(AtomicBool::new(false));
        let client = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut scrapes = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if clof::obs::http_get(addr, &path).is_ok() {
                        scrapes += 1;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(ms.max(1)));
                }
                scrapes
            })
        };
        Some(ScrapeSidecar {
            stop,
            client: Some(client),
            _server: server,
        })
    }

    /// Dyn-compose hot-path pairs: the HC/LC finalist shapes, uncontended
    /// and contended, through the default `handle()` dispatch tier. These
    /// are the before/after pair `scripts/bench_compare.sh` records in
    /// `BENCH_PR4.json`: on a pre-PR tree `handle()` is the enum-dispatch
    /// path, on the current tree it is the monomorphized finalist tier.
    fn dyn_pair(c: &mut Criterion, kinds: &[LockKind], name: &str) {
        let h = platforms::tiny();
        let lock =
            Arc::new(DynClofLock::build_with(&h, kinds, ClofParams::default(), true).expect("build"));
        #[cfg(feature = "obs")]
        let _sidecar = scrape_sidecar(&lock);
        let mut handle = lock.handle(0);
        c.bench_function(&format!("dyn/{name}/uncontended"), |b| {
            b.iter(|| {
                handle.acquire();
                handle.release();
            })
        });

        // Contended: one same-leaf background contender keeps the lock
        // busy (same shape as `contended2/*`), so the release path takes
        // real pass/release-up decisions whenever the contender is
        // queued. More background threads would only measure the host
        // scheduler on small machines: with fair locks every queued
        // waiter needs a `sched_yield` round-trip before the measured
        // thread can make progress.
        let stop = Arc::new(AtomicBool::new(false));
        let bg = {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut handle = lock.handle(1);
                while !stop.load(Ordering::Relaxed) {
                    handle.acquire();
                    handle.release();
                    std::thread::yield_now();
                }
            })
        };
        c.bench_function(&format!("dyn/{name}/contended"), |b| {
            b.iter(|| {
                handle.acquire();
                handle.release();
            })
        });
        stop.store(true, Ordering::Relaxed);
        bg.join().expect("background contender");

        // Ablation control: the same lock through the generic enum-tree
        // handle, isolating the monomorphized tier's dispatch win from
        // the striping/padding effects (shared by both tiers).
        let mut generic = lock.handle_generic(0);
        c.bench_function(&format!("dyn/{name}/generic-uncontended"), |b| {
            b.iter(|| {
                generic.acquire();
                generic.release();
            })
        });
    }

    fn bench_dyn_pairs(c: &mut Criterion) {
        dyn_pair(c, &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket], "mcs-clh-tkt");
        dyn_pair(c, &[LockKind::Clh, LockKind::Clh, LockKind::Ticket], "clh-clh-tkt");
        dyn_pair(
            c,
            &[LockKind::Ticket, LockKind::Ticket, LockKind::Ticket],
            "tkt-tkt-tkt",
        );
    }

    /// Logical cores for the oversubscription matrix: at least 2 so the
    /// 2× cell oversubscribes even a single-CPU host.
    fn cores() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(2)
    }

    /// One oversubscription cell: `mult × cores` threads hammer the same
    /// composed lock; the measured thread's acquire+release latency is
    /// the cell value. At 1× this matches the contended dyn pairs; at
    /// 2×/4× preempted-holder and preempted-waiter scheduling dominates,
    /// which is exactly where spin-then-park (`--features park`) earns
    /// its keep — spinning waiters burn the holder's quantum, parked
    /// waiters hand it back.
    fn oversub_cell(c: &mut Criterion, kinds: &[LockKind], name: &str, mult: usize) {
        let h = platforms::tiny();
        let lock = Arc::new(
            DynClofLock::build_with(&h, kinds, ClofParams::default(), true).expect("build"),
        );
        let threads = mult * cores();
        let n = h.ncpus();
        let stop = Arc::new(AtomicBool::new(false));
        let contenders: Vec<_> = (1..threads)
            .map(|t| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                let cpu = t * n / threads % n;
                std::thread::spawn(move || {
                    let mut handle = lock.handle(cpu);
                    while !stop.load(Ordering::Relaxed) {
                        handle.acquire();
                        handle.release();
                    }
                })
            })
            .collect();
        let mut handle = lock.handle(0);
        c.bench_function(&format!("oversub/{name}/{mult}x"), |b| {
            b.iter(|| {
                handle.acquire();
                handle.release();
            })
        });
        stop.store(true, Ordering::Relaxed);
        for bg in contenders {
            bg.join().expect("oversub contender");
        }
    }

    /// The oversubscription matrix `scripts/bench_compare.sh --park`
    /// records in `BENCH_PR9.json`: finalist shapes × {1×, 2×, 4×}
    /// thread-to-core multipliers, identical cells on the spin-only and
    /// park builds.
    fn bench_oversub(c: &mut Criterion) {
        for mult in [1usize, 2, 4] {
            oversub_cell(c, &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket], "mcs-clh-tkt", mult);
            oversub_cell(
                c,
                &[LockKind::Ticket, LockKind::Ticket, LockKind::Ticket],
                "tkt-tkt-tkt",
                mult,
            );
        }
    }

    /// The paper-6 fast-path extension: uncontended latency with and without
    /// the TAS gate.
    fn bench_fastpath(c: &mut Criterion) {
        let h = platforms::tiny();
        let fast = clof::FastClof::build(&h, &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket])
            .expect("build");
        let mut handle = fast.handle(0);
        c.bench_function("fastpath/tas+mcs-clh-tkt/uncontended", |b| {
            b.iter(|| {
                handle.acquire();
                handle.release();
            })
        });
    }

    /// Uncontended baselines through the same 2-level hierarchy.
    fn bench_baselines(c: &mut Criterion) {
        let h = platforms::two_level(8, 2);
        let hmcs = HmcsLock::new(&h, 128);
        let mut handle = hmcs.handle(0);
        c.bench_function("baseline/hmcs2/uncontended", |b| {
            b.iter(|| {
                handle.acquire();
                handle.release();
            })
        });
        let cna = Arc::new(CnaLock::new(&h));
        let mut handle = cna.handle(0);
        c.bench_function("baseline/cna/uncontended", |b| {
            b.iter(|| {
                handle.acquire();
                handle.release();
            })
        });
        let shfl = Arc::new(ShflLock::new(&h));
        let mut handle = shfl.handle(0);
        c.bench_function("baseline/shfl/uncontended", |b| {
            b.iter(|| {
                handle.acquire();
                handle.release();
            })
        });
    }

    /// Telemetry hot-path cost (needs `--features criterion,obs`): the
    /// same uncontended dynamic composition with the span tracer off
    /// (one relaxed load per transition) and on (plus one per-thread
    /// ring write per span). The paper-relevant claim is that the off
    /// state is indistinguishable from an obs-less build and the on
    /// state stays within a handful of ns per transition.
    #[cfg(feature = "obs")]
    fn bench_obs_overhead(c: &mut Criterion) {
        use clof::obs::trace;
        let h = platforms::tiny();
        let lock = DynClofLock::build(&h, &[LockKind::Mcs, LockKind::Clh, LockKind::Ticket])
            .expect("build");
        let mut handle = lock.handle(0);
        trace::disable();
        c.bench_function("obs/dyn/mcs-clh-tkt/trace-off", |b| {
            b.iter(|| {
                handle.acquire();
                handle.release();
            })
        });
        trace::enable(4096);
        c.bench_function("obs/dyn/mcs-clh-tkt/trace-on", |b| {
            b.iter(|| {
                handle.acquire();
                handle.release();
            })
        });
        trace::disable();
        trace::clear();
    }

    #[cfg(not(feature = "obs"))]
    fn bench_obs_overhead(_c: &mut Criterion) {}

    criterion_group!(
        benches,
        bench_uncontended,
        bench_contended,
        bench_static_vs_dyn,
        bench_dyn_pairs,
        bench_oversub,
        bench_fastpath,
        bench_baselines,
        bench_obs_overhead
    );
}

#[cfg(feature = "criterion")]
fn main() {
    micro::benches();
}

#[cfg(not(feature = "criterion"))]
fn main() {
    eprintln!(
        "locks_micro is feature-gated; run with \
         `cargo bench -p clof-bench --bench locks_micro --features criterion`"
    );
}
