//! Custom-harness ablation bench: regenerates the threshold and
//! selection-policy ablations (quick mode) under `cargo bench`.

use std::path::PathBuf;

fn main() {
    let out_dir = PathBuf::from("target/figures");
    for report in clof_bench::figures::generate("ablation", true) {
        println!("{}", report.render());
        if let Err(e) = report.write_csv(&out_dir) {
            eprintln!("  !! could not write CSV for {}: {e}", report.id);
        }
    }
}
