//! Deterministic PRNG (SplitMix64 seeding a xoshiro256** core).
//!
//! Implemented locally instead of depending on `rand`: the simulator's
//! figures must be bit-reproducible across runs and `rand` gives no
//! cross-version stream stability guarantee (see `DESIGN.md` §2).

/// A small, fast, deterministic PRNG (xoshiro256**).
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next_sm(), next_sm(), next_sm(), next_sm()];
        Rng { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded sampling (Lemire); bias is negligible
        // for simulation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Multiplicative jitter in `[1 - amp, 1 + amp]`.
    pub fn jitter(&mut self, amp: f64) -> f64 {
        1.0 + amp * (2.0 * self.unit() - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        Rng::new(0).below(0);
    }

    #[test]
    fn unit_in_range_and_spread() {
        let mut rng = Rng::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.unit();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn jitter_bounds() {
        let mut rng = Rng::new(9);
        for _ in 0..1_000 {
            let j = rng.jitter(0.1);
            assert!((0.9..=1.1).contains(&j));
        }
    }
}
