//! Lock model specifications for the simulator.
//!
//! A [`ModelSpec`] describes *which hand-off policy* the simulated lock
//! uses: the lock hierarchy (a subset of the machine's levels), the basic
//! lock kind at each level, the keep-local threshold, and the extra
//! constants that distinguish CNA/ShflLock from a plain hierarchical
//! composition. CLoF compositions and HMCS share the same hierarchical
//! policy (HMCS *is* the level-homogeneous `mcs-mcs-...` composition);
//! the paper's CNA and ShflLock are modelled as two-level compositions
//! with a per-handover scan/shuffle overhead, ShflLock additionally with
//! its test-and-set fast path.

use clof::{composition_name, LockKind};
use clof_topology::Hierarchy;

use crate::machine::Machine;

/// A simulated lock configuration.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Display label (`tkt-clh-tkt`, `HMCS<4>`, `CNA`, ...).
    pub label: String,
    /// Basic lock per lock-hierarchy level, innermost first.
    pub kinds: Vec<LockKind>,
    /// The lock's hierarchy (often a level subset of the machine's).
    pub hierarchy: Hierarchy,
    /// Keep-local thresholds, one per level innermost first (paper
    /// default: 128 at every level); the outermost entry is unused (the
    /// system lock has nothing to keep local).
    pub thresholds: Vec<u32>,
    /// Extra per-handover cost (CNA/ShflLock queue scanning).
    pub extra_handover_ns: f64,
    /// Whether an uncontended acquire bypasses the queue (ShflLock).
    pub tas_fastpath: bool,
}

impl ModelSpec {
    /// A CLoF composition over `hierarchy`.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` does not provide one lock per level.
    pub fn clof(hierarchy: Hierarchy, kinds: &[LockKind]) -> Self {
        Self::clof_with_threshold(hierarchy, kinds, 128)
    }

    /// A CLoF composition with an explicit keep-local threshold (for the
    /// threshold ablation).
    pub fn clof_with_threshold(hierarchy: Hierarchy, kinds: &[LockKind], threshold: u32) -> Self {
        assert_eq!(
            kinds.len(),
            hierarchy.level_count(),
            "one lock kind per level required"
        );
        ModelSpec {
            label: composition_name(kinds),
            kinds: kinds.to_vec(),
            thresholds: vec![threshold; hierarchy.level_count()],
            hierarchy,
            extra_handover_ns: 0.0,
            tas_fastpath: false,
        }
    }

    /// A CLoF composition with per-level thresholds (innermost first).
    ///
    /// # Panics
    ///
    /// Panics if the arity of `kinds` or `thresholds` mismatches.
    pub fn clof_with_level_thresholds(
        hierarchy: Hierarchy,
        kinds: &[LockKind],
        thresholds: &[u32],
    ) -> Self {
        assert_eq!(thresholds.len(), hierarchy.level_count());
        let mut spec = Self::clof(hierarchy, kinds);
        spec.thresholds = thresholds.to_vec();
        spec
    }

    /// HMCS over `hierarchy`: the level-homogeneous MCS composition,
    /// labelled `HMCS<n>` as in the paper's figures.
    pub fn hmcs(hierarchy: Hierarchy) -> Self {
        let levels = hierarchy.level_count();
        let mut spec = Self::clof(hierarchy, &vec![LockKind::Mcs; levels]);
        spec.label = format!("HMCS<{levels}>");
        spec
    }

    /// A single basic lock (NUMA-oblivious baseline: `MCS` in Figures 2
    /// and 4, or any cohort-restricted lock in Figure 3).
    pub fn basic(kind: LockKind, ncpus: usize) -> Self {
        let hierarchy = Hierarchy::flat(ncpus).expect("ncpus > 0");
        let mut spec = Self::clof(hierarchy, &[kind]);
        spec.label = kind.info().name.to_string();
        spec
    }

    /// CNA on `machine`: NUMA + system levels, MCS-queue mechanics, queue
    /// scanning overhead on every handover, flush threshold 256.
    pub fn cna(machine: &Machine) -> Self {
        let two = numa_system_levels(machine);
        let mut spec = Self::clof_with_threshold(two, &[LockKind::Mcs, LockKind::Mcs], 256);
        spec.label = "CNA".to_string();
        spec.extra_handover_ns = crate::params::SHUFFLE_OVERHEAD_NS;
        spec
    }

    /// ShflLock on `machine`: like CNA plus the test-and-set fast path.
    pub fn shfl(machine: &Machine) -> Self {
        let mut spec = Self::cna(machine);
        spec.label = "ShflLock".to_string();
        spec.tas_fastpath = true;
        spec
    }

    /// Number of lock levels.
    pub fn levels(&self) -> usize {
        self.hierarchy.level_count()
    }
}

/// Extracts a `numa` + `system` two-level hierarchy from the machine.
fn numa_system_levels(machine: &Machine) -> Hierarchy {
    machine
        .hierarchy
        .select_levels(&["numa"])
        .expect("machine hierarchies name a numa level")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clof_label_is_composition_name() {
        let spec = ModelSpec::clof(
            clof_topology::platforms::tiny(),
            &[LockKind::Ticket, LockKind::Clh, LockKind::Ticket],
        );
        assert_eq!(spec.label, "tkt-clh-tkt");
        assert_eq!(spec.levels(), 3);
    }

    #[test]
    fn hmcs_label_and_homogeneity() {
        let spec = ModelSpec::hmcs(clof_topology::platforms::paper_armv8_4level());
        assert_eq!(spec.label, "HMCS<4>");
        assert!(spec.kinds.iter().all(|&k| k == LockKind::Mcs));
    }

    #[test]
    fn cna_is_two_level_with_overhead() {
        let spec = ModelSpec::cna(&Machine::paper_x86());
        assert_eq!(spec.levels(), 2);
        assert!(spec.extra_handover_ns > 0.0);
        assert!(!spec.tas_fastpath);
        let shfl = ModelSpec::shfl(&Machine::paper_x86());
        assert!(shfl.tas_fastpath);
    }

    #[test]
    fn basic_is_flat() {
        let spec = ModelSpec::basic(LockKind::Clh, 16);
        assert_eq!(spec.levels(), 1);
        assert_eq!(spec.label, "clh");
    }

    #[test]
    #[should_panic(expected = "one lock kind per level")]
    fn kind_arity_checked() {
        ModelSpec::clof(clof_topology::platforms::tiny(), &[LockKind::Mcs]);
    }
}
