//! The simulated machine: hierarchy, per-level transfer costs,
//! architecture.

use clof_topology::{cluster, platforms, CpuId, Heatmap, Hierarchy, LevelIdx};

/// Instruction-set architecture of the simulated machine.
///
/// The architecture matters for one paper-critical behaviour: Hemlock's
/// CTR optimization helps on x86 (MESI upgrade avoidance) and collapses
/// on Armv8-class LL/SC machines (§3.2, Figure 3b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// x86-TSO-style machine (CTR beneficial).
    X86,
    /// Armv8-style LL/SC machine (CTR pathological).
    Armv8,
}

/// A machine model: hierarchy plus the cost, in virtual nanoseconds, of
/// moving a contended cache line between two CPUs, by their innermost
/// shared level.
///
/// # Examples
///
/// ```
/// use clof_sim::Machine;
///
/// let machine = Machine::paper_armv8();
/// // Moving a line between cache-sharing CPUs is far cheaper than
/// // crossing the packages (paper Table 2).
/// assert!(machine.transfer(0, 1) < machine.transfer(0, 127) / 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    /// The memory hierarchy (innermost level first).
    pub hierarchy: Hierarchy,
    /// Architecture flag.
    pub arch: Arch,
    /// `transfer_ns[level]` = line-transfer cost when the two endpoints
    /// share `level` as their innermost common level.
    pub transfer_ns: Vec<f64>,
    /// Relative execution speed per CPU (1.0 = nominal). All-ones for
    /// the paper machines; big.LITTLE machines (paper §7 future work)
    /// mark efficiency cores < 1.0, which stretches both their think
    /// time and their critical sections.
    pub cpu_speed: Vec<f64>,
    /// Human-readable name for reports.
    pub name: String,
}

impl Machine {
    /// Builds a machine from explicit per-level transfer costs.
    ///
    /// # Panics
    ///
    /// Panics if `transfer_ns` does not have one entry per hierarchy
    /// level.
    pub fn new(hierarchy: Hierarchy, arch: Arch, transfer_ns: Vec<f64>, name: &str) -> Self {
        assert_eq!(
            transfer_ns.len(),
            hierarchy.level_count(),
            "one transfer cost per level required"
        );
        let ncpus = hierarchy.ncpus();
        Machine {
            hierarchy,
            arch,
            transfer_ns,
            cpu_speed: vec![1.0; ncpus],
            name: name.to_string(),
        }
    }

    /// A big.LITTLE-style handheld SoC (paper §7: "we plan to investigate
    /// the applicability of CLoF in such systems"): one package with a
    /// fast 4-core cluster and a power-efficient 4-core cluster at 45%
    /// speed; intra-cluster transfers are cheap, cross-cluster expensive.
    pub fn big_little() -> Self {
        let hierarchy = clof_topology::Hierarchy::regular(&[("cluster", 4)], 8)
            .expect("big.LITTLE hierarchy is well-formed");
        let mut machine = Machine::new(
            hierarchy,
            Arch::Armv8,
            vec![50.0, 220.0],
            "big.LITTLE (4 big + 4 little)",
        );
        for cpu in 4..8 {
            machine.cpu_speed[cpu] = 0.45;
        }
        machine
    }

    /// The paper's x86 server (2× EPYC 7352).
    ///
    /// Transfer costs are the system-level baseline divided by the
    /// Table 2 speedups (x86 row: core 12.18, cache 9.07, numa = package
    /// 1.54, system 1.00), i.e. the simulated ping-pong heatmap
    /// reproduces Table 2 by construction — see
    /// `table2_speedups_recovered` below.
    pub fn paper_x86() -> Self {
        const BASE: f64 = 400.0;
        Machine::new(
            platforms::paper_x86(),
            Arch::X86,
            vec![
                BASE / 12.18, // core (hyperthread pair)
                BASE / 9.07,  // cache group
                BASE / 1.54,  // NUMA node
                BASE / 1.54,  // package (= NUMA on this machine)
                BASE,         // system
            ],
            "x86 (2x EPYC 7352, 96 HT)",
        )
    }

    /// The paper's Armv8 server (2× Kunpeng 920-6426); Table 2 Armv8 row.
    pub fn paper_armv8() -> Self {
        const BASE: f64 = 400.0;
        Machine::new(
            platforms::paper_armv8(),
            Arch::Armv8,
            vec![
                BASE / 7.04, // cache group
                BASE / 2.98, // NUMA node
                BASE / 1.76, // package
                BASE,        // system
            ],
            "Armv8 (2x Kunpeng 920, 128 cores)",
        )
    }

    /// A machine with the same costs but a tuned (level-subset) hierarchy
    /// — the paper's first tuning point. Costs of kept levels are
    /// retained; the `shared_level` lookups below always use the *full*
    /// pricing of this machine, so dropping a level from the lock
    /// hierarchy does not change physics, only lock structure.
    pub fn with_hierarchy(&self, hierarchy: Hierarchy) -> Machine {
        // Map each kept level to its transfer cost by name; the implicit
        // system level keeps the outermost cost.
        let transfer = hierarchy
            .levels()
            .iter()
            .map(|l| {
                self.hierarchy
                    .levels()
                    .iter()
                    .position(|f| f.name == l.name)
                    .map(|i| self.transfer_ns[i])
                    .unwrap_or_else(|| *self.transfer_ns.last().expect("non-empty"))
            })
            .collect();
        let mut machine = Machine::new(hierarchy, self.arch, transfer, &self.name);
        machine.cpu_speed = self.cpu_speed.clone();
        machine
    }

    /// Relative speed of `cpu` (1.0 = nominal).
    pub fn speed(&self, cpu: CpuId) -> f64 {
        self.cpu_speed.get(cpu).copied().unwrap_or(1.0)
    }

    /// Number of CPUs.
    pub fn ncpus(&self) -> usize {
        self.hierarchy.ncpus()
    }

    /// Line-transfer cost between two CPUs (by innermost shared level).
    pub fn transfer(&self, a: CpuId, b: CpuId) -> f64 {
        self.transfer_ns[self.hierarchy.shared_level(a, b)]
    }

    /// Transfer cost characteristic of `level`.
    pub fn level_transfer(&self, level: LevelIdx) -> f64 {
        self.transfer_ns[level]
    }

    /// The simulated Figure 1 heatmap: ping-pong throughput of every CPU
    /// pair is modelled as one increment per round trip of the counter
    /// line, i.e. `1 / (2 × transfer)` increments per nanosecond.
    pub fn synthetic_heatmap(&self) -> Heatmap {
        Heatmap::from_fn(self.ncpus(), |a, b| {
            if a == b {
                // Same-CPU pairs only progress on reschedule (paper
                // footnote 1): model as near-zero.
                0.0
            } else {
                1e3 / (2.0 * self.transfer(a, b))
            }
        })
    }

    /// Table 2 for this machine: cohort speedups from the synthetic
    /// heatmap.
    pub fn cohort_speedups(&self) -> Vec<(String, f64)> {
        cluster::cohort_speedups(&self.synthetic_heatmap(), &self.hierarchy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_x86_recovers_table2() {
        let m = Machine::paper_x86();
        let speedups = m.cohort_speedups();
        let get = |name: &str| {
            speedups
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, s)| s)
                .unwrap_or(f64::NAN)
        };
        assert!((get("core") - 12.18).abs() < 0.01);
        assert!((get("cache") - 9.07).abs() < 0.01);
        assert!((get("numa") - 1.54).abs() < 0.01);
        assert!((get("system") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn paper_armv8_recovers_table2() {
        let m = Machine::paper_armv8();
        let speedups = m.cohort_speedups();
        let get = |name: &str| {
            speedups
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, s)| s)
                .unwrap_or(f64::NAN)
        };
        assert!((get("cache") - 7.04).abs() < 0.01);
        assert!((get("numa") - 2.98).abs() < 0.01);
        assert!((get("package") - 1.76).abs() < 0.01);
    }

    #[test]
    fn heatmap_clusters_back_to_hierarchy() {
        // Discovery pipeline round-trip on the simulated Armv8 server:
        // heatmap → automatic clustering → same level structure.
        let m = Machine::paper_armv8();
        let found = cluster::cluster_heatmap(
            &m.synthetic_heatmap(),
            &clof_topology::cluster::ClusterOptions::default(),
        )
        .unwrap();
        assert_eq!(found.level_count(), m.hierarchy.level_count());
        for (a, b) in [(0usize, 1usize), (0, 5), (0, 40), (0, 100)] {
            assert_eq!(
                found.shared_level(a, b),
                m.hierarchy.shared_level(a, b),
                "pair ({a},{b})"
            );
        }
    }

    #[test]
    fn transfer_monotonic_in_level() {
        for m in [Machine::paper_x86(), Machine::paper_armv8()] {
            for w in m.transfer_ns.windows(2) {
                assert!(w[0] <= w[1], "transfer costs must grow outward");
            }
        }
    }

    #[test]
    fn with_hierarchy_keeps_costs_by_name() {
        let m = Machine::paper_x86();
        let tuned = m.with_hierarchy(platforms::paper_x86_3level());
        assert_eq!(tuned.hierarchy.level_count(), 3);
        assert_eq!(tuned.transfer_ns[0], m.transfer_ns[1]); // cache
        assert_eq!(tuned.transfer_ns[1], m.transfer_ns[2]); // numa
        assert_eq!(tuned.transfer_ns[2], m.transfer_ns[4]); // system
    }

    #[test]
    #[should_panic(expected = "one transfer cost per level")]
    fn cost_arity_checked() {
        Machine::new(platforms::tiny(), Arch::X86, vec![1.0], "bad");
    }
}
