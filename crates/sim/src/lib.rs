//! Deterministic virtual-time simulation of lock handover on multi-level
//! NUMA machines.
//!
//! # Why a simulator
//!
//! The paper evaluates on a 96-hyperthread x86 server and a 128-core
//! Armv8 server. This reproduction targets hosts that have neither (the
//! reference build machine has one CPU), so the evaluation substrate is a
//! **discrete-event simulator**: threads are simulated entities cycling
//! through *think → acquire → critical section → release*; the lock
//! models implement the *actual hand-off policies* (CLoF's `lockgen`
//! semantics, HMCS's thresholds, CNA/ShflLock's NUMA preference, plain
//! FIFO for the basic locks) over virtual time; and the costs of each
//! hand-off are derived from the machine's hierarchy — crossing a wider
//! level costs more, global spinning costs more the more waiters share
//! the line.
//!
//! The simulator is deterministic (seeded [`rng::Rng`]) and fast
//! (millions of events per second), which is what lets the benchmark
//! harness regenerate every figure of the paper, including the 256-lock
//! sweeps of Figure 9, in seconds. Absolute numbers are *not* claims
//! about real hardware; the calibration (in [`params`]) targets the
//! paper's qualitative structure: Table 2's level speedups and Figure 3's
//! per-level basic-lock rankings. See `EXPERIMENTS.md`.
//!
//! # Structure
//!
//! * [`machine`] — the simulated machine: hierarchy + per-level transfer
//!   costs + architecture (x86 vs Armv8, for the CTR pathology).
//! * [`params`] — per-algorithm cost tables (calibrated, documented).
//! * [`model`] — lock model specs: CLoF compositions, HMCS, CNA,
//!   ShflLock, flat basic locks.
//! * [`engine`] — the event loop implementing the hierarchical hand-off
//!   policy in virtual time.
//! * [`workload`] — workload models (LevelDB `readrandom`, Kyoto
//!   Cabinet) and thread placement.
//! * [`rng`] — small deterministic SplitMix64/xoshiro PRNG (no external
//!   dependency, reproducible figures).

#![warn(missing_docs)]

pub mod engine;
pub mod machine;
pub mod model;
pub mod params;
pub mod rng;
pub mod workload;

pub use engine::{run, RunResult};
pub use machine::{Arch, Machine};
pub use model::ModelSpec;
pub use workload::{placement, Workload};
