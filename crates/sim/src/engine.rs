//! The virtual-time event loop.
//!
//! Implements the hierarchical hand-off policy of `clof::lockgen`
//! (paper Figure 8) at cohort granularity over virtual time:
//!
//! * **acquire** — a thread climbs its path from the leaf level; at the
//!   first busy node it enqueues (holding everything below); if it ever
//!   obtains a node whose `high_held` flag is set, the levels above are
//!   inherited and the thread enters the critical section.
//! * **release** — at each level, if the cohort has waiters and
//!   `keep_local` permits, the node is *passed* (flag set, cost of one
//!   intra-level handover); otherwise the levels above are released
//!   first (recursively, where another cohort may be granted), then the
//!   node itself is handed to any waiter with the flag cleared, forcing a
//!   re-climb.
//!
//! Costs: each climb step charges the level lock's acquire overhead; each
//! handover charges the level lock's handover overhead, the lock-line
//! transfer at that level, and — for globally-spinning locks — the
//! invalidation storm proportional to the number of other waiters.
//! Entering the critical section charges the migration of the protected
//! data from the previous critical-section executor
//! (`workload.data_lines × transfer(prev, cur)`).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use clof_topology::CpuId;

use crate::machine::Machine;
use crate::model::ModelSpec;
use crate::params::{lock_costs, TAS_FASTPATH_NS};
use crate::rng::Rng;
use crate::workload::Workload;

/// Options for one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Simulated duration in virtual nanoseconds (measurement window).
    pub duration_ns: u64,
    /// Warm-up prefix excluded from throughput accounting.
    pub warmup_ns: u64,
    /// PRNG seed (runs with equal seeds are bit-identical).
    pub seed: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            duration_ns: 40_000_000, // 40 ms virtual
            warmup_ns: 4_000_000,
            seed: 0xC10F,
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Completed critical sections in the measurement window.
    pub completed: u64,
    /// Completions per simulated thread (fairness analysis, §5.2.3).
    pub per_thread: Vec<u64>,
    /// Measurement window length (ns).
    pub window_ns: u64,
    /// Handovers counted per lock level (locality diagnostics).
    pub handovers_by_level: Vec<u64>,
}

impl RunResult {
    /// Throughput in iterations per microsecond (the paper's Figure 2/4/9
    /// unit).
    pub fn throughput_per_us(&self) -> f64 {
        self.completed as f64 * 1e3 / self.window_ns as f64
    }

    /// Jain's fairness index over per-thread completions (1.0 = perfectly
    /// fair).
    pub fn jain_index(&self) -> f64 {
        let n = self.per_thread.len() as f64;
        let sum: f64 = self.per_thread.iter().map(|&c| c as f64).sum();
        let sq_sum: f64 = self.per_thread.iter().map(|&c| (c as f64).powi(2)).sum();
        if sq_sum == 0.0 {
            return 1.0;
        }
        sum * sum / (n * sq_sum)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Arrive(usize),
    EndCs(usize),
}

struct Node {
    kind_idx: usize,
    level: usize,
    owned: bool,
    high_held: bool,
    handovers: u32,
    queue: VecDeque<usize>,
    /// CPU of the last thread that held this node (prices the movement
    /// of the lock's own cache line by actual distance, not by the
    /// level's characteristic width — a flat lock handed between two
    /// cache-sharing CPUs is cheap even though its domain is the whole
    /// machine).
    last_owner_cpu: Option<CpuId>,
}

struct ThreadState {
    cpu: CpuId,
    /// Node index per lock level (leaf first).
    path: Vec<usize>,
    /// Accumulated acquisition overhead to charge at CS entry.
    pending_cost: f64,
    completed: u64,
}

struct Sim<'a> {
    spec: &'a ModelSpec,
    machine: &'a Machine,
    workload: Workload,
    /// Per-lock-level transfer cost (lock hierarchy levels priced on the
    /// machine).
    level_transfer: Vec<f64>,
    nodes: Vec<Node>,
    threads: Vec<ThreadState>,
    events: BinaryHeap<Reverse<(u64, u64, EventOrd)>>,
    seq: u64,
    now: u64,
    last_cs_cpu: Option<CpuId>,
    rng: Rng,
    warmup_ns: u64,
    handovers_by_level: Vec<u64>,
    thresholds: Vec<u32>,
}

/// Orderable event payload for the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EventOrd(u8, usize);

impl EventOrd {
    fn pack(e: Event) -> Self {
        match e {
            Event::Arrive(t) => EventOrd(0, t),
            Event::EndCs(t) => EventOrd(1, t),
        }
    }

    fn unpack(self) -> Event {
        match self.0 {
            0 => Event::Arrive(self.1),
            _ => Event::EndCs(self.1),
        }
    }
}

/// Runs one simulation.
///
/// `cpus` lists the CPU each simulated thread is pinned to (one thread
/// per entry; duplicates allowed).
///
/// # Examples
///
/// ```
/// use clof_sim::engine::{run, RunOptions};
/// use clof_sim::{Machine, ModelSpec, Workload};
/// use clof::LockKind;
///
/// let machine = Machine::paper_armv8();
/// let spec = ModelSpec::clof(
///     machine.hierarchy.clone(),
///     &[LockKind::Ticket, LockKind::Clh, LockKind::Ticket, LockKind::Ticket],
/// );
/// let result = run(
///     &machine,
///     &spec,
///     &[0, 1, 64, 127], // one simulated thread per listed CPU
///     Workload::leveldb_readrandom(),
///     RunOptions { duration_ns: 1_000_000, warmup_ns: 100_000, seed: 1 },
/// );
/// assert!(result.throughput_per_us() > 0.0);
/// assert_eq!(result.per_thread.len(), 4);
/// ```
///
/// # Panics
///
/// Panics if `cpus` is empty or references CPUs outside the machine, or
/// if the spec's lock hierarchy does not cover the machine's CPUs.
pub fn run(
    machine: &Machine,
    spec: &ModelSpec,
    cpus: &[CpuId],
    workload: Workload,
    opts: RunOptions,
) -> RunResult {
    assert!(!cpus.is_empty(), "at least one thread required");
    assert_eq!(
        spec.hierarchy.ncpus(),
        machine.ncpus(),
        "lock hierarchy must cover the machine"
    );

    // Build the node arena level by level (leaf level first).
    let lh = &spec.hierarchy;
    let levels = lh.level_count();
    let mut nodes: Vec<Node> = Vec::new();
    // node_index[level][cohort] -> arena index.
    let mut node_index: Vec<Vec<usize>> = Vec::with_capacity(levels);
    for level in 0..levels {
        let mut per_cohort = Vec::with_capacity(lh.cohort_count(level));
        for _ in 0..lh.cohort_count(level) {
            per_cohort.push(nodes.len());
            nodes.push(Node {
                kind_idx: level,
                level,
                owned: false,
                high_held: false,
                handovers: 0,
                queue: VecDeque::new(),
                last_owner_cpu: None,
            });
        }
        node_index.push(per_cohort);
    }

    let threads: Vec<ThreadState> = cpus
        .iter()
        .map(|&cpu| {
            assert!(cpu < machine.ncpus(), "cpu {cpu} out of range");
            ThreadState {
                cpu,
                path: (0..levels)
                    .map(|l| node_index[l][lh.cohort(l, cpu)])
                    .collect(),
                pending_cost: 0.0,
                completed: 0,
            }
        })
        .collect();

    // Lock-level transfer pricing on the machine.
    let priced = machine.with_hierarchy(lh.clone());
    let level_transfer = priced.transfer_ns.clone();

    let mut sim = Sim {
        spec,
        machine,
        workload,
        level_transfer,
        nodes,
        threads,
        events: BinaryHeap::new(),
        seq: 0,
        now: 0,
        last_cs_cpu: None,
        rng: Rng::new(opts.seed),
        warmup_ns: opts.warmup_ns,
        handovers_by_level: vec![0; levels],
        thresholds: spec.thresholds.iter().map(|&t| t.max(1)).collect(),
    };

    // Staggered initial arrivals.
    for tid in 0..sim.threads.len() {
        let offset = sim.rng.below((workload.ncs_ns as u64).max(1));
        sim.schedule(offset, Event::Arrive(tid));
    }

    let end = opts.warmup_ns + opts.duration_ns;
    while let Some(&Reverse((time, _, ord))) = sim.events.peek() {
        if time >= end {
            break;
        }
        sim.events.pop();
        sim.now = time;
        match ord.unpack() {
            Event::Arrive(tid) => sim.on_arrive(tid),
            Event::EndCs(tid) => sim.on_end_cs(tid),
        }
    }

    let per_thread: Vec<u64> = sim.threads.iter().map(|t| t.completed).collect();
    RunResult {
        completed: per_thread.iter().sum(),
        per_thread,
        window_ns: opts.duration_ns,
        handovers_by_level: sim.handovers_by_level,
    }
}

impl Sim<'_> {
    fn schedule(&mut self, time: u64, event: Event) {
        self.seq += 1;
        self.events
            .push(Reverse((time, self.seq, EventOrd::pack(event))));
    }

    fn on_arrive(&mut self, tid: usize) {
        // ShflLock fast path: an uncontended arrival takes the TAS top
        // lock directly, bypassing queue and hierarchy bookkeeping.
        if self.spec.tas_fastpath {
            let free = self.threads[tid]
                .path
                .iter()
                .all(|&n| !self.nodes[n].owned);
            if free {
                let cpu = self.threads[tid].cpu;
                for level in 0..self.threads[tid].path.len() {
                    let n = self.threads[tid].path[level];
                    self.nodes[n].owned = true;
                    self.nodes[n].last_owner_cpu = Some(cpu);
                }
                self.threads[tid].pending_cost = TAS_FASTPATH_NS;
                self.enter_cs(tid);
                return;
            }
        }
        self.threads[tid].pending_cost = 0.0;
        self.climb(tid, 0);
    }

    /// Climbs from `from_level`; either reaches the critical section or
    /// parks in some queue.
    fn climb(&mut self, tid: usize, from_level: usize) {
        let levels = self.threads[tid].path.len();
        for level in from_level..levels {
            let n = self.threads[tid].path[level];
            if self.nodes[n].owned {
                self.nodes[n].queue.push_back(tid);
                return;
            }
            debug_assert!(
                !self.nodes[n].high_held,
                "a free node cannot hold its high levels"
            );
            self.nodes[n].owned = true;
            let kind = self.spec.kinds[self.nodes[n].kind_idx];
            let mut cost = lock_costs(kind, self.machine.arch).acquire_ns;
            // Fetch the lock line from wherever it last lived.
            if let Some(prev) = self.nodes[n].last_owner_cpu {
                let cpu = self.threads[tid].cpu;
                if prev != cpu {
                    cost += self.machine.transfer(prev, cpu);
                }
            }
            self.nodes[n].last_owner_cpu = Some(self.threads[tid].cpu);
            self.threads[tid].pending_cost += cost;
        }
        self.enter_cs(tid);
    }

    /// Cost of handing node `n` to the waiter at the head of its queue.
    fn handover_cost(&self, n: usize) -> f64 {
        let node = &self.nodes[n];
        let kind = self.spec.kinds[node.kind_idx];
        let costs = lock_costs(kind, self.machine.arch);
        // The lock line moves by the *actual* distance between the old
        // and new owner; the storm term uses the level's characteristic
        // transfer (the spinners are spread over the node's domain).
        let grantee = *node.queue.front().expect("handover requires a waiter");
        let line_transfer = match node.last_owner_cpu {
            Some(prev) if prev != self.threads[grantee].cpu => {
                self.machine.transfer(prev, self.threads[grantee].cpu)
            }
            _ => 0.0,
        };
        let domain_transfer = self.level_transfer[node.level];
        let extra_waiters = node.queue.len().saturating_sub(1) as f64;
        costs.handover_ns
            + self.spec.extra_handover_ns
            + line_transfer
            + costs.global_spin_coeff * extra_waiters * domain_transfer
    }

    /// `keep_local` of the paper: bounded consecutive local hand-offs.
    fn keep_local(&mut self, n: usize) -> bool {
        let threshold = self.thresholds[self.nodes[n].level];
        let node = &mut self.nodes[n];
        node.handovers += 1;
        if node.handovers >= threshold {
            node.handovers = 0;
            false
        } else {
            true
        }
    }

    /// Grants node `n` to its first queued waiter; the grantee inherits
    /// the high levels if `high_held` is set, otherwise re-climbs.
    fn grant(&mut self, n: usize) {
        let cost = self.handover_cost(n);
        let level = self.nodes[n].level;
        self.handovers_by_level[level] += 1;
        let next = self.nodes[n]
            .queue
            .pop_front()
            .expect("grant requires a waiter");
        self.nodes[n].last_owner_cpu = Some(self.threads[next].cpu);
        self.threads[next].pending_cost += cost;
        let levels = self.threads[next].path.len();
        if self.nodes[n].high_held || level + 1 == levels {
            self.enter_cs(next);
        } else {
            self.climb(next, level + 1);
        }
    }

    fn on_end_cs(&mut self, tid: usize) {
        if self.now >= self.warmup_ns {
            self.threads[tid].completed += 1;
        }
        self.release_level(tid, 0);
        // Think, then come back (slower on efficiency cores).
        let speed = self.machine.speed(self.threads[tid].cpu).max(1e-6);
        let ncs = (self.workload.ncs_ns * self.rng.jitter(0.2) / speed).max(1.0) as u64;
        let at = self.now + ncs;
        self.schedule(at, Event::Arrive(tid));
    }

    /// `lockgen(rel(...))` (paper Figure 8) at level `level` of `tid`'s
    /// path.
    fn release_level(&mut self, tid: usize, level: usize) {
        let levels = self.threads[tid].path.len();
        let n = self.threads[tid].path[level];
        if level + 1 == levels {
            // System level: plain basic-lock release.
            if self.nodes[n].queue.is_empty() {
                self.nodes[n].owned = false;
            } else {
                self.grant(n);
            }
            return;
        }
        let has_waiters = !self.nodes[n].queue.is_empty();
        if has_waiters && self.keep_local(n) {
            // Pass: the high levels stay acquired for our cohort.
            self.nodes[n].high_held = true;
            self.grant(n);
        } else {
            self.nodes[n].high_held = false;
            // Release order: high first (possibly granting another
            // cohort), then this level.
            self.release_level(tid, level + 1);
            if self.nodes[n].queue.is_empty() {
                self.nodes[n].owned = false;
            } else {
                self.grant(n);
            }
        }
    }

    fn enter_cs(&mut self, tid: usize) {
        let cpu = self.threads[tid].cpu;
        let data_migration = match self.last_cs_cpu {
            Some(prev) if prev != cpu => {
                self.workload.data_lines * self.machine.transfer(prev, cpu)
            }
            _ => 0.0,
        };
        self.last_cs_cpu = Some(cpu);
        // Continuous coherence tax from globally-spinning waiters on the
        // owner's path (see `params::LockCosts::spin_tax_coeff`).
        let mut spin_tax = 0.0;
        for level in 0..self.threads[tid].path.len() {
            let n = self.threads[tid].path[level];
            let node = &self.nodes[n];
            let coeff =
                lock_costs(self.spec.kinds[node.kind_idx], self.machine.arch).spin_tax_coeff;
            if coeff > 0.0 {
                // A handful of spinners share the line quietly (their
                // cost is already in the handover storm term); beyond
                // `QUIET_SPINNERS` the invalidation traffic compounds and
                // taxes every critical section.
                const QUIET_SPINNERS: usize = 3;
                let noisy = node.queue.len().saturating_sub(QUIET_SPINNERS) as f64;
                spin_tax += coeff * noisy * self.level_transfer[level];
            }
        }
        // Slow cores execute their critical sections proportionally
        // slower (big.LITTLE machines; 1.0 on the paper servers).
        let speed = self.machine.speed(cpu).max(1e-6);
        let cs =
            self.workload.cs_ns * self.rng.jitter(0.1) / speed + data_migration + spin_tax;
        let start = self.now as f64 + self.threads[tid].pending_cost;
        self.threads[tid].pending_cost = 0.0;
        let at = (start + cs).max(self.now as f64) as u64;
        self.schedule(at, Event::EndCs(tid));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::placement;
    use clof::LockKind;

    fn quick_opts() -> RunOptions {
        RunOptions {
            duration_ns: 5_000_000,
            warmup_ns: 500_000,
            seed: 1,
        }
    }

    #[test]
    fn deterministic_runs() {
        let m = Machine::paper_armv8();
        let spec = ModelSpec::hmcs(m.hierarchy.clone());
        let cpus = placement::compact(&m, 16);
        let a = run(&m, &spec, &cpus, Workload::leveldb_readrandom(), quick_opts());
        let b = run(&m, &spec, &cpus, Workload::leveldb_readrandom(), quick_opts());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.per_thread, b.per_thread);
    }

    #[test]
    fn single_thread_throughput_matches_cycle_time() {
        let m = Machine::paper_x86();
        let spec = ModelSpec::basic(LockKind::Ticket, m.ncpus());
        let wl = Workload::leveldb_readrandom();
        let r = run(&m, &spec, &[0], wl, quick_opts());
        // Cycle ≈ ncs + cs + overheads ≈ 5.02 µs ⇒ ≈ 0.199 iter/µs.
        let tp = r.throughput_per_us();
        assert!((0.15..0.25).contains(&tp), "throughput {tp}");
    }

    #[test]
    fn all_threads_make_progress() {
        let m = Machine::paper_armv8();
        let spec = ModelSpec::clof(
            m.hierarchy.clone(),
            &[
                LockKind::Ticket,
                LockKind::Clh,
                LockKind::Ticket,
                LockKind::Ticket,
            ],
        );
        let cpus = placement::compact(&m, 64);
        let r = run(&m, &spec, &cpus, Workload::leveldb_readrandom(), quick_opts());
        assert!(r.per_thread.iter().all(|&c| c > 0), "a thread starved");
        assert!(r.jain_index() > 0.8, "jain {}", r.jain_index());
    }

    #[test]
    fn hierarchical_beats_flat_mcs_at_high_contention() {
        // The paper's core claim, in miniature: at high contention a
        // 4-level lock out-throughputs the NUMA-oblivious MCS.
        let m = Machine::paper_x86();
        let tuned = m.with_hierarchy(clof_topology::platforms::paper_x86_4level());
        let wl = Workload::leveldb_readrandom();
        let cpus = placement::compact(&m, 95);
        let hmcs = run(
            &tuned,
            &ModelSpec::hmcs(tuned.hierarchy.clone()),
            &cpus,
            wl,
            quick_opts(),
        );
        let mcs = run(
            &m,
            &ModelSpec::basic(LockKind::Mcs, m.ncpus()),
            &cpus,
            wl,
            quick_opts(),
        );
        assert!(
            hmcs.throughput_per_us() > 1.5 * mcs.throughput_per_us(),
            "HMCS {} vs MCS {}",
            hmcs.throughput_per_us(),
            mcs.throughput_per_us()
        );
    }

    #[test]
    fn keep_local_threshold_trades_fairness_for_throughput() {
        let m = Machine::paper_armv8();
        let kinds = [
            LockKind::Ticket,
            LockKind::Clh,
            LockKind::Ticket,
            LockKind::Ticket,
        ];
        let cpus = placement::compact(&m, 32);
        let wl = Workload::leveldb_readrandom();
        let tight = run(
            &m,
            &ModelSpec::clof_with_threshold(m.hierarchy.clone(), &kinds, 1),
            &cpus,
            wl,
            quick_opts(),
        );
        let loose = run(
            &m,
            &ModelSpec::clof_with_threshold(m.hierarchy.clone(), &kinds, 128),
            &cpus,
            wl,
            quick_opts(),
        );
        assert!(
            loose.throughput_per_us() > tight.throughput_per_us(),
            "H=128 {} must beat H=1 {}",
            loose.throughput_per_us(),
            tight.throughput_per_us()
        );
    }

    #[test]
    fn hem_ctr_collapses_on_armv8_not_x86() {
        let wl = Workload::leveldb_readrandom();
        let arm = Machine::paper_armv8();
        let x86 = Machine::paper_x86();
        let cpus_arm = placement::within_cohort(&arm, 1, 0); // one NUMA node
        let cpus_x86: Vec<_> = x86.hierarchy.cohort_members(2, 0)[..32].to_vec();
        let arm_ctr = run(
            &arm,
            &ModelSpec::basic(LockKind::HemlockCtr, arm.ncpus()),
            &cpus_arm,
            wl,
            quick_opts(),
        );
        let arm_plain = run(
            &arm,
            &ModelSpec::basic(LockKind::Hemlock, arm.ncpus()),
            &cpus_arm,
            wl,
            quick_opts(),
        );
        let x86_ctr = run(
            &x86,
            &ModelSpec::basic(LockKind::HemlockCtr, x86.ncpus()),
            &cpus_x86,
            wl,
            quick_opts(),
        );
        let x86_plain = run(
            &x86,
            &ModelSpec::basic(LockKind::Hemlock, x86.ncpus()),
            &cpus_x86,
            wl,
            quick_opts(),
        );
        assert!(arm_ctr.throughput_per_us() < 0.2 * arm_plain.throughput_per_us());
        assert!(x86_ctr.throughput_per_us() >= x86_plain.throughput_per_us());
    }

    #[test]
    fn shfl_fastpath_helps_single_thread() {
        let m = Machine::paper_x86();
        let wl = Workload::leveldb_readrandom();
        let shfl = run(&m, &ModelSpec::shfl(&m), &[0], wl, quick_opts());
        let cna = run(&m, &ModelSpec::cna(&m), &[0], wl, quick_opts());
        assert!(shfl.throughput_per_us() >= cna.throughput_per_us());
    }

    #[test]
    fn duplicate_cpus_allowed() {
        let m = Machine::paper_x86();
        let spec = ModelSpec::basic(LockKind::Mcs, m.ncpus());
        let r = run(
            &m,
            &spec,
            &[0, 0, 0],
            Workload::lock_stress(),
            quick_opts(),
        );
        assert!(r.completed > 0);
    }

    #[test]
    fn line_transfer_priced_by_actual_distance() {
        // Two cache-sharing CPUs contending on a *flat* lock must beat
        // two cross-package CPUs on the same flat lock: the lock line
        // moves by actual distance, not by the lock's (system-wide)
        // domain.
        let m = Machine::paper_armv8();
        let spec = ModelSpec::basic(LockKind::Mcs, m.ncpus());
        let wl = Workload::leveldb_readrandom();
        let near = run(&m, &spec, &[0, 1], wl, quick_opts());
        let far = run(&m, &spec, &[0, 127], wl, quick_opts());
        assert!(
            near.throughput_per_us() > 1.1 * far.throughput_per_us(),
            "near {} vs far {}",
            near.throughput_per_us(),
            far.throughput_per_us()
        );
    }

    #[test]
    fn spin_tax_hits_wide_ticket_but_not_mcs() {
        // 8 contenders spread across one NUMA node: the Ticketlock's
        // spinning waiters tax every critical section; MCS spins locally.
        let m = Machine::paper_armv8();
        let cpus = placement::one_per_cohort(&m, 0)[..8].to_vec();
        let wl = Workload::leveldb_readrandom();
        let tkt = run(
            &m,
            &ModelSpec::basic(LockKind::Ticket, m.ncpus()),
            &cpus,
            wl,
            quick_opts(),
        );
        let mcs = run(
            &m,
            &ModelSpec::basic(LockKind::Mcs, m.ncpus()),
            &cpus,
            wl,
            quick_opts(),
        );
        assert!(
            mcs.throughput_per_us() > 1.5 * tkt.throughput_per_us(),
            "paper Fig. 3: tkt ~half of local-spin locks at the NUMA level              (mcs {}, tkt {})",
            mcs.throughput_per_us(),
            tkt.throughput_per_us()
        );
    }

    #[test]
    fn big_little_prefers_cluster_aware_composition() {
        let m = Machine::big_little();
        let wl = Workload::leveldb_readrandom();
        let cpus: Vec<usize> = (0..8).collect();
        let flat = run(
            &m,
            &ModelSpec::basic(LockKind::Mcs, m.ncpus()),
            &cpus,
            wl,
            quick_opts(),
        );
        let aware = run(
            &m,
            &ModelSpec::clof(m.hierarchy.clone(), &[LockKind::Clh, LockKind::Ticket]),
            &cpus,
            wl,
            quick_opts(),
        );
        assert!(aware.throughput_per_us() > flat.throughput_per_us());
    }

    #[test]
    fn little_cores_are_slower() {
        let m = Machine::big_little();
        let spec = ModelSpec::basic(LockKind::Ticket, m.ncpus());
        let wl = Workload::leveldb_readrandom();
        let big = run(&m, &spec, &[0], wl, quick_opts());
        let little = run(&m, &spec, &[4], wl, quick_opts());
        assert!(
            big.throughput_per_us() > 1.8 * little.throughput_per_us(),
            "0.45x cores must be ~2.2x slower"
        );
    }

    #[test]
    fn per_level_thresholds_respected() {
        // Threshold 1 at the innermost level forces a release-up on every
        // hand-off: the numa level must see as many handovers as cache.
        let m = Machine::paper_armv8();
        let kinds = [
            LockKind::Mcs,
            LockKind::Mcs,
            LockKind::Mcs,
            LockKind::Mcs,
        ];
        let spec = ModelSpec::clof_with_level_thresholds(
            m.hierarchy.clone(),
            &kinds,
            &[1, 128, 128, 128],
        );
        let cpus = placement::compact(&m, 8); // 2 cache groups, 1 numa
        let tight = run(&m, &spec, &cpus, Workload::lock_stress(), quick_opts());
        let uniform = ModelSpec::clof(m.hierarchy.clone(), &kinds);
        let loose = run(&m, &uniform, &cpus, Workload::lock_stress(), quick_opts());
        // H=1 at the cache level forbids local passes, so (nearly) every
        // cache-level grant comes with a numa-level handover; with the
        // default H=128 the numa level is touched only rarely.
        let tight_ratio =
            tight.handovers_by_level[1] as f64 / tight.handovers_by_level[0].max(1) as f64;
        let loose_ratio =
            loose.handovers_by_level[1] as f64 / loose.handovers_by_level[0].max(1) as f64;
        assert!(
            tight_ratio > 5.0 * loose_ratio,
            "tight {tight_ratio:.3} vs loose {loose_ratio:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn empty_cpu_list_panics() {
        let m = Machine::paper_x86();
        let spec = ModelSpec::basic(LockKind::Mcs, m.ncpus());
        run(&m, &spec, &[], Workload::lock_stress(), quick_opts());
    }
}
