//! Calibrated per-algorithm cost tables.
//!
//! Each basic lock is characterized by three virtual-nanosecond costs:
//!
//! * `acquire_ns` — bookkeeping on the acquire path (uncontended part).
//! * `handover_ns` — releaser-side work plus the wake-to-running latency
//!   of the next owner, *excluding* line transfers (priced separately by
//!   the machine's level costs).
//! * `global_spin_coeff` — for globally-spinning locks, the extra
//!   handover delay per *additional* waiter sharing the spin line,
//!   multiplied by the level's transfer cost. This is the invalidation
//!   storm that makes the Ticketlock collapse at wide levels while
//!   remaining the cheapest lock at narrow ones (paper Figure 3).
//!
//! Calibration targets the paper's *qualitative* per-level rankings
//! (Figure 3), not absolute hardware numbers:
//!
//! * x86 system level (2 contenders): `tkt` best by a small margin.
//! * x86 NUMA level (8 cache groups): `hem` (CTR) best; `tkt` poor.
//! * x86 core level (2 hyperthreads): `hem`/`tkt` above `mcs`/`clh`.
//! * Armv8 NUMA level: `clh` best; `tkt` poor; `hem-ctr` ≈ zero
//!   (LL/SC interference on the release-side spin, §3.2).
//! * Armv8 system level: `tkt` best.

use clof::LockKind;

use crate::machine::Arch;

/// Cost model of one basic lock on one architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LockCosts {
    /// Acquire-path overhead (ns).
    pub acquire_ns: f64,
    /// Handover overhead (ns), excluding line transfer.
    pub handover_ns: f64,
    /// Extra handover ns per additional waiter, per transfer-ns unit.
    pub global_spin_coeff: f64,
    /// Continuous coherence tax: extra critical-section ns per
    /// globally-spinning waiter *beyond the first few* at a node on the
    /// owner's path, per transfer-ns unit. A couple of spinners share the
    /// line quietly; past that the invalidation traffic compounds and
    /// slows every critical section. This is the term
    /// that makes "Ticketlock at the NUMA level" wreck a whole
    /// composition (paper §5.2.2) even though keep_local makes NUMA-level
    /// handovers rare.
    pub spin_tax_coeff: f64,
}

/// Returns the cost table of `kind` on `arch`.
pub fn lock_costs(kind: LockKind, arch: Arch) -> LockCosts {
    use LockKind::*;
    match (kind, arch) {
        // Ticketlock: trivially cheap paths, but every waiter spins on
        // the shared grant word.
        (Ticket, _) => LockCosts {
            acquire_ns: 20.0,
            handover_ns: 40.0,
            global_spin_coeff: 0.40,
            spin_tax_coeff: 1.2,
        },
        // MCS: heavier paths (node init, tail swap, next-pointer dance),
        // local spinning.
        (Mcs, _) => LockCosts {
            acquire_ns: 50.0,
            handover_ns: 80.0,
            global_spin_coeff: 0.0,
            spin_tax_coeff: 0.0,
        },
        // CLH: slightly leaner than MCS; leaner still on Armv8, where its
        // single-flag handover suits the LL/SC pipeline (paper Fig. 3b:
        // best NUMA-level lock on Armv8).
        (Clh, Arch::X86) => LockCosts {
            acquire_ns: 45.0,
            handover_ns: 70.0,
            global_spin_coeff: 0.0,
            spin_tax_coeff: 0.0,
        },
        (Clh, Arch::Armv8) => LockCosts {
            acquire_ns: 40.0,
            handover_ns: 45.0,
            global_spin_coeff: 0.0,
            spin_tax_coeff: 0.0,
        },
        // Hemlock without CTR: compact, near-local spinning; the
        // release-side wait for the successor's acknowledgement adds a
        // little handover cost.
        (Hemlock, _) => LockCosts {
            acquire_ns: 35.0,
            handover_ns: 70.0,
            global_spin_coeff: 0.02,
            spin_tax_coeff: 0.0,
        },
        // Hemlock with CTR on x86: the fetch_add/cmpxchg trick removes
        // the shared→modified upgrades on the grant line, the paper's
        // best NUMA-level x86 lock.
        (HemlockCtr, Arch::X86) => LockCosts {
            acquire_ns: 30.0,
            handover_ns: 35.0,
            global_spin_coeff: 0.0,
            spin_tax_coeff: 0.0,
        },
        // Hemlock with CTR on Armv8: fetch_add(0) on the releaser's spin
        // and the successor's cmpxchg acknowledgement target the same
        // line with exclusive reservations, repeatedly killing each
        // other: the release takes ~three orders of magnitude longer
        // (paper: "the throughput is close to 0").
        (HemlockCtr, Arch::Armv8) => LockCosts {
            acquire_ns: 35.0,
            handover_ns: 30_000.0,
            global_spin_coeff: 0.02,
            spin_tax_coeff: 0.0,
        },
        // Anderson array lock: local spinning like MCS, slightly cheaper
        // handover (single flag flip), plus a fetch_add on the shared
        // slot counter at acquire (a mild global touch).
        (Anderson, _) => LockCosts {
            acquire_ns: 40.0,
            handover_ns: 60.0,
            global_spin_coeff: 0.03,
            spin_tax_coeff: 0.0,
        },
        // TTAS: cheapest paths, worst storm: *every* waiter swaps on
        // release.
        (Ttas, _) => LockCosts {
            acquire_ns: 15.0,
            handover_ns: 35.0,
            global_spin_coeff: 0.60,
            spin_tax_coeff: 1.5,
        },
        // TAS with backoff: storm is damped by backoff, at the price of
        // handover latency (the winner is asleep on average half its
        // backoff window).
        (Backoff, _) => LockCosts {
            acquire_ns: 15.0,
            handover_ns: 150.0,
            global_spin_coeff: 0.06,
            spin_tax_coeff: 0.1,
        },
    }
}

/// Extra per-handover cost of CNA/ShflLock's queue scanning & shuffling
/// (the overhead the paper blames for their sub-MCS performance below 32
/// threads, §3.4).
pub const SHUFFLE_OVERHEAD_NS: f64 = 55.0;

/// Cost of the ShflLock test-and-set fast path (uncontended acquires
/// bypass the queue entirely).
pub const TAS_FASTPATH_NS: f64 = 12.0;

#[cfg(test)]
mod tests {
    use super::*;

    /// Saturated-throughput proxy: handover cost of one hand-off with
    /// `contenders` threads at a level with the given transfer cost.
    fn handoff_cost(kind: LockKind, arch: Arch, contenders: usize, transfer: f64) -> f64 {
        let c = lock_costs(kind, arch);
        let waiters = contenders.saturating_sub(1) as f64;
        // One waiter spins for free (it holds the line shared); the storm
        // grows with the others.
        let storm = c.global_spin_coeff * (waiters - 1.0).max(0.0) * transfer;
        c.acquire_ns + c.handover_ns + storm + transfer
    }

    const FAIR: [LockKind; 5] = [
        LockKind::Ticket,
        LockKind::Mcs,
        LockKind::Clh,
        LockKind::Hemlock,
        LockKind::HemlockCtr,
    ];

    fn best(arch: Arch, contenders: usize, transfer: f64) -> LockKind {
        *FAIR
            .iter()
            .min_by(|a, b| {
                handoff_cost(**a, arch, contenders, transfer)
                    .partial_cmp(&handoff_cost(**b, arch, contenders, transfer))
                    .unwrap()
            })
            .unwrap()
    }

    #[test]
    fn x86_system_level_prefers_ticket() {
        // 2 packages contend at the system level (transfer 400 ns).
        assert_eq!(best(Arch::X86, 2, 400.0), LockKind::Ticket);
    }

    #[test]
    fn x86_numa_level_prefers_hem_ctr() {
        // 8 cache groups contend within a NUMA node (transfer ≈ 260 ns).
        assert_eq!(best(Arch::X86, 8, 260.0), LockKind::HemlockCtr);
        // ... and the Ticketlock is the worst fair lock there (Fig. 3a).
        let tkt = handoff_cost(LockKind::Ticket, Arch::X86, 8, 260.0);
        for k in FAIR {
            assert!(handoff_cost(k, Arch::X86, 8, 260.0) <= tkt, "{k:?}");
        }
    }

    #[test]
    fn armv8_numa_level_prefers_clh_and_kills_ctr() {
        // 8 cache groups contend within an Armv8 NUMA node (≈ 134 ns).
        assert_eq!(best(Arch::Armv8, 8, 134.0), LockKind::Clh);
        let ctr = handoff_cost(LockKind::HemlockCtr, Arch::Armv8, 8, 134.0);
        let clh = handoff_cost(LockKind::Clh, Arch::Armv8, 8, 134.0);
        assert!(ctr > 50.0 * clh, "CTR must collapse on Armv8");
    }

    #[test]
    fn armv8_system_level_prefers_ticket() {
        assert_eq!(best(Arch::Armv8, 2, 400.0), LockKind::Ticket);
    }

    #[test]
    fn x86_core_level_ranks_hem_and_tkt_above_mcs_clh() {
        // 2 hyperthreads (transfer ≈ 33 ns).
        let rank = |k| handoff_cost(k, Arch::X86, 2, 33.0);
        assert!(rank(LockKind::Ticket) < rank(LockKind::Mcs));
        assert!(rank(LockKind::HemlockCtr) < rank(LockKind::Mcs));
        assert!(rank(LockKind::HemlockCtr) < rank(LockKind::Clh));
    }

    #[test]
    fn unfair_locks_have_their_signatures() {
        let ttas = lock_costs(LockKind::Ttas, Arch::X86);
        let bo = lock_costs(LockKind::Backoff, Arch::X86);
        assert!(ttas.global_spin_coeff > bo.global_spin_coeff);
        assert!(bo.handover_ns > ttas.handover_ns);
    }
}
