//! Workload models and thread placement.

use clof_topology::CpuId;

use crate::machine::Machine;

/// A lock-centric workload: each simulated thread loops
/// *think (ncs) → acquire → critical section (cs) → release*.
///
/// `data_lines` scales the locality penalty inside the critical section:
/// the protected data's cache lines must migrate from the previous
/// critical-section executor, costing `data_lines ×
/// transfer(prev_cpu, cpu)` — this is the term NUMA-aware locks shrink by
/// keeping consecutive owners topologically close.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Base critical-section work (ns).
    pub cs_ns: f64,
    /// Think time between critical sections (ns).
    pub ncs_ns: f64,
    /// Shared cache lines touched in the critical section.
    pub data_lines: f64,
}

impl Workload {
    /// The LevelDB `readrandom` model: short critical sections guarding
    /// shared store state, moderate per-iteration out-of-lock work,
    /// heavily locality-sensitive (the paper's primary benchmark, §5.1.2).
    pub fn leveldb_readrandom() -> Self {
        Workload {
            cs_ns: 500.0,
            ncs_ns: 4_500.0,
            data_lines: 4.0,
        }
    }

    /// The Kyoto Cabinet model: much heavier critical sections (the
    /// paper's cross-validation benchmark; note its throughputs are an
    /// order of magnitude below LevelDB's in Figure 10).
    pub fn kyoto_cabinet() -> Self {
        Workload {
            cs_ns: 7_000.0,
            ncs_ns: 28_000.0,
            data_lines: 12.0,
        }
    }

    /// A pure lock-stress microbenchmark: negligible think time.
    pub fn lock_stress() -> Self {
        Workload {
            cs_ns: 100.0,
            ncs_ns: 100.0,
            data_lines: 1.0,
        }
    }
}

/// Thread-placement policies.
pub mod placement {
    use super::*;

    /// The paper's compact fill: threads are pinned to CPUs in machine
    /// order, so contention crosses levels exactly at the cohort sizes
    /// (e.g. the second x86 NUMA node is first used at 25 threads, the
    /// second hyperthreads at 49 — the transitions visible in Figure 2).
    ///
    /// On the paper's x86 numbering, hyperthread siblings are `c` and
    /// `c + 48`, so "one hyperthread per core first" is exactly CPU order
    /// `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` exceeds the machine's CPU count.
    pub fn compact(machine: &Machine, threads: usize) -> Vec<CpuId> {
        assert!(
            threads <= machine.ncpus(),
            "cannot place {threads} threads on {} CPUs",
            machine.ncpus()
        );
        (0..threads).collect()
    }

    /// One thread per cohort of `level` — the Figure 3 cohort experiment
    /// runs one thread on each sub-unit of the cohort under test.
    pub fn one_per_cohort(machine: &Machine, level: usize) -> Vec<CpuId> {
        (0..machine.hierarchy.cohort_count(level))
            .map(|cohort| machine.hierarchy.cohort_members(level, cohort)[0])
            .collect()
    }

    /// All CPUs of one cohort of `level` (maximum contention inside the
    /// cohort).
    pub fn within_cohort(machine: &Machine, level: usize, cohort: usize) -> Vec<CpuId> {
        machine.hierarchy.cohort_members(level, cohort)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_sensibly() {
        let db = Workload::leveldb_readrandom();
        let kc = Workload::kyoto_cabinet();
        assert!(kc.cs_ns > db.cs_ns);
        assert!(kc.data_lines > db.data_lines);
    }

    #[test]
    fn compact_fill_crosses_numa_at_cohort_size() {
        let m = Machine::paper_x86();
        let cpus = placement::compact(&m, 25);
        // First 24 in NUMA 0, the 25th in NUMA 1 (paper Figure 2).
        assert!(cpus[..24].iter().all(|&c| m.hierarchy.cohort(2, c) == 0));
        assert_eq!(m.hierarchy.cohort(2, cpus[24]), 1);
    }

    #[test]
    fn compact_fill_uses_second_hyperthreads_last_on_x86() {
        let m = Machine::paper_x86();
        let cpus = placement::compact(&m, 49);
        // CPU 48 is the hyperthread sibling of CPU 0.
        assert_eq!(m.hierarchy.shared_level(cpus[0], cpus[48]), 0);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn compact_overflow_panics() {
        placement::compact(&Machine::paper_x86(), 97);
    }

    #[test]
    fn one_per_cohort_spreads() {
        let m = Machine::paper_armv8();
        // One thread per NUMA node (level 1): 4 threads.
        let cpus = placement::one_per_cohort(&m, 1);
        assert_eq!(cpus, vec![0, 32, 64, 96]);
    }

    #[test]
    fn within_cohort_selects_members() {
        let m = Machine::paper_armv8();
        let cpus = placement::within_cohort(&m, 0, 1);
        assert_eq!(cpus, vec![4, 5, 6, 7]);
    }
}
