//! Plain-text serialization of hierarchy configurations.
//!
//! The hierarchy configuration is the file the CLoF workflow (Figure 5)
//! passes from discovery to the lock generator, and the artifact users
//! edit at the first tuning point. The format is deliberately trivial —
//! no external parser dependency (see `DESIGN.md` §2):
//!
//! ```text
//! # comment
//! ncpus 8
//! level cache 0 0 1 1 2 2 3 3
//! level numa  0 0 0 0 1 1 1 1
//! ```
//!
//! Levels are listed innermost first; the single-cohort system level may
//! be omitted (it is implicit).

use crate::hierarchy::{Hierarchy, TopologyError};

/// Serializes a hierarchy to the text format.
///
/// # Examples
///
/// ```
/// use clof_topology::{config, Hierarchy};
///
/// let h = Hierarchy::regular(&[("numa", 2)], 4).unwrap();
/// let text = config::to_text(&h);
/// let back = config::from_text(&text).unwrap();
/// assert_eq!(h, back);
/// ```
pub fn to_text(hierarchy: &Hierarchy) -> String {
    let mut out = String::from("# CLoF hierarchy configuration\n");
    out.push_str(&format!("ncpus {}\n", hierarchy.ncpus()));
    for level in hierarchy.levels() {
        if level.cohorts == 1 && level.name == "system" {
            continue; // implicit
        }
        out.push_str(&format!("level {}", level.name));
        for &c in &level.cohort_of {
            out.push_str(&format!(" {c}"));
        }
        out.push('\n');
    }
    out
}

/// Parses the text format produced by [`to_text`].
///
/// # Errors
///
/// Returns [`TopologyError::Parse`] for malformed input, or the validation
/// errors of [`Hierarchy::from_levels`] for inconsistent maps.
pub fn from_text(text: &str) -> Result<Hierarchy, TopologyError> {
    let mut ncpus: Option<usize> = None;
    let mut maps: Vec<(String, Vec<usize>)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        match tokens.next() {
            Some("ncpus") => {
                let v = tokens
                    .next()
                    .ok_or_else(|| parse_err(lineno, "ncpus needs a value"))?
                    .parse::<usize>()
                    .map_err(|e| parse_err(lineno, &format!("bad ncpus: {e}")))?;
                if tokens.next().is_some() {
                    return Err(parse_err(lineno, "trailing tokens after ncpus"));
                }
                ncpus = Some(v);
            }
            Some("level") => {
                let name = tokens
                    .next()
                    .ok_or_else(|| parse_err(lineno, "level needs a name"))?
                    .to_string();
                let map = tokens
                    .map(|t| {
                        t.parse::<usize>()
                            .map_err(|e| parse_err(lineno, &format!("bad cohort id `{t}`: {e}")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                maps.push((name, map));
            }
            Some(other) => {
                return Err(parse_err(lineno, &format!("unknown directive `{other}`")));
            }
            None => unreachable!("empty lines are skipped"),
        }
    }
    let ncpus = ncpus.ok_or_else(|| parse_err(0, "missing `ncpus` directive"))?;
    if maps.is_empty() {
        return Hierarchy::flat(ncpus);
    }
    Hierarchy::from_levels(maps, ncpus)
}

fn parse_err(line: usize, message: &str) -> TopologyError {
    TopologyError::Parse {
        line,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms;

    #[test]
    fn roundtrip_paper_platforms() {
        for h in [
            platforms::paper_x86(),
            platforms::paper_armv8(),
            platforms::tiny(),
        ] {
            let text = to_text(&h);
            let back = from_text(&text).expect("roundtrip parse");
            assert_eq!(h, back);
        }
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "\n# hello\nncpus 4 # inline\nlevel numa 0 0 1 1\n\n";
        let h = from_text(text).unwrap();
        assert_eq!(h.ncpus(), 4);
        assert_eq!(h.level_names(), vec!["numa", "system"]);
    }

    #[test]
    fn missing_ncpus_is_error() {
        let err = from_text("level numa 0 0 1 1\n").unwrap_err();
        assert!(matches!(err, TopologyError::Parse { .. }));
    }

    #[test]
    fn bad_directive_is_error() {
        let err = from_text("ncpus 2\nfoo bar\n").unwrap_err();
        assert!(err.to_string().contains("unknown directive"));
    }

    #[test]
    fn bad_cohort_id_is_error() {
        let err = from_text("ncpus 2\nlevel numa 0 x\n").unwrap_err();
        assert!(err.to_string().contains("bad cohort id"));
    }

    #[test]
    fn map_length_checked_by_hierarchy() {
        let err = from_text("ncpus 4\nlevel numa 0 0\n").unwrap_err();
        assert!(matches!(err, TopologyError::MapLengthMismatch { .. }));
    }

    #[test]
    fn flat_config_without_levels() {
        let h = from_text("ncpus 3\n").unwrap();
        assert_eq!(h.level_count(), 1);
    }
}
