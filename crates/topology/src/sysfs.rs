//! Best-effort host topology discovery from Linux `/sys`.
//!
//! The paper's point (§3.1) is that OS-reported topology is *incomplete*:
//! `lscpu`-style sources expose hyperthreads, NUMA nodes and sockets, but
//! miss L3 cache groups. This module reads what Linux does expose —
//! useful as a starting hierarchy that the heatmap pipeline
//! ([`crate::cluster`]) can refine with the levels the OS missed.

use std::fs;
use std::path::Path;

use crate::hierarchy::{CpuId, Hierarchy, TopologyError};

/// Reads the host hierarchy from `/sys/devices/system/cpu`.
///
/// Levels discovered (innermost first, when present and non-trivial):
/// `core` (SMT siblings), `l3` (shared L3 from `cache/index3`), `numa`
/// (`node*` links), `package` (`physical_package_id`).
///
/// # Errors
///
/// Fails if `/sys` is unreadable or reports no CPUs.
pub fn discover() -> Result<Hierarchy, TopologyError> {
    discover_from(Path::new("/sys/devices/system/cpu"))
}

/// [`discover`] with a custom sysfs root (testable).
pub fn discover_from(cpu_root: &Path) -> Result<Hierarchy, TopologyError> {
    let ncpus = count_cpus(cpu_root);
    if ncpus == 0 {
        return Err(TopologyError::Empty);
    }

    let mut maps: Vec<(String, Vec<usize>)> = Vec::new();
    if let Some(map) = key_map(cpu_root, ncpus, |root, cpu| {
        read_trimmed(&root.join(format!("cpu{cpu}/topology/core_id")))
            .zip(read_trimmed(&root.join(format!(
                "cpu{cpu}/topology/physical_package_id"
            ))))
            .map(|(core, pkg)| format!("{pkg}:{core}"))
    }) {
        maps.push(("core".to_string(), map));
    }
    if let Some(map) = key_map(cpu_root, ncpus, |root, cpu| {
        read_trimmed(&root.join(format!("cpu{cpu}/cache/index3/shared_cpu_list")))
    }) {
        maps.push(("l3".to_string(), map));
    }
    if let Some(map) = key_map(cpu_root, ncpus, |root, cpu| numa_of(root, cpu)) {
        maps.push(("numa".to_string(), map));
    }
    if let Some(map) = key_map(cpu_root, ncpus, |root, cpu| {
        read_trimmed(&root.join(format!("cpu{cpu}/topology/physical_package_id")))
    }) {
        maps.push(("package".to_string(), map));
    }

    // Drop levels that do not partition (trivial: one cohort per CPU or a
    // single cohort), keeping the hierarchy meaningful.
    maps.retain(|(_, map)| {
        let cohorts = map.iter().max().map(|&m| m + 1).unwrap_or(0);
        cohorts > 1 && cohorts < ncpus
    });
    if maps.is_empty() {
        return Hierarchy::flat(ncpus);
    }
    Hierarchy::from_levels(maps, ncpus)
}

fn count_cpus(cpu_root: &Path) -> usize {
    let mut n = 0;
    while cpu_root.join(format!("cpu{n}")).is_dir() {
        n += 1;
    }
    n
}

fn read_trimmed(path: &Path) -> Option<String> {
    fs::read_to_string(path).ok().map(|s| s.trim().to_string())
}

fn numa_of(cpu_root: &Path, cpu: CpuId) -> Option<String> {
    let dir = cpu_root.join(format!("cpu{cpu}"));
    let entries = fs::read_dir(&dir).ok()?;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(id) = name.strip_prefix("node") {
            if id.chars().all(|c| c.is_ascii_digit()) {
                return Some(id.to_string());
            }
        }
    }
    None
}

/// Builds a dense cohort map from an arbitrary per-CPU key; `None` from
/// any CPU aborts the level (incomplete sysfs information).
fn key_map(
    cpu_root: &Path,
    ncpus: usize,
    mut key: impl FnMut(&Path, CpuId) -> Option<String>,
) -> Option<Vec<usize>> {
    let mut ids: Vec<String> = Vec::with_capacity(ncpus);
    for cpu in 0..ncpus {
        ids.push(key(cpu_root, cpu)?);
    }
    let mut dense: Vec<usize> = Vec::with_capacity(ncpus);
    let mut seen: Vec<String> = Vec::new();
    for id in ids {
        let idx = match seen.iter().position(|s| *s == id) {
            Some(i) => i,
            None => {
                seen.push(id);
                seen.len() - 1
            }
        };
        dense.push(idx);
    }
    Some(dense)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    /// Builds a fake sysfs tree: 4 CPUs, 2 packages, SMT pairs, shared L3
    /// per package.
    fn fake_sysfs(dir: &Path) {
        for cpu in 0..4usize {
            let pkg = cpu / 2;
            let core = cpu % 2; // cpu0/cpu1 are cores 0/1 of pkg0, etc.
            let topo = dir.join(format!("cpu{cpu}/topology"));
            fs::create_dir_all(&topo).unwrap();
            fs::write(topo.join("core_id"), core.to_string()).unwrap();
            fs::write(topo.join("physical_package_id"), pkg.to_string()).unwrap();
            let cache = dir.join(format!("cpu{cpu}/cache/index3"));
            fs::create_dir_all(&cache).unwrap();
            let list = if pkg == 0 { "0-1" } else { "2-3" };
            fs::write(cache.join("shared_cpu_list"), list).unwrap();
            fs::create_dir_all(dir.join(format!("cpu{cpu}/node{pkg}"))).unwrap();
        }
    }

    #[test]
    fn discovers_fake_host() {
        let tmp = std::env::temp_dir().join(format!("clof-sysfs-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&tmp);
        fake_sysfs(&tmp);
        let h = discover_from(&tmp).unwrap();
        assert_eq!(h.ncpus(), 4);
        // l3 == numa == package on the fake host; each contributes an
        // identical 2-cohort level, nesting holds.
        assert!(h.level_count() >= 2);
        assert_eq!(h.shared_level(0, 1), 0);
        assert!(h.shared_level(0, 2) > 0);
        let _ = fs::remove_dir_all(&tmp);
    }

    #[test]
    fn empty_root_is_error() {
        let tmp = std::env::temp_dir().join(format!("clof-sysfs-empty-{}", std::process::id()));
        let _ = fs::remove_dir_all(&tmp);
        fs::create_dir_all(&tmp).unwrap();
        assert!(discover_from(&tmp).is_err());
        let _ = fs::remove_dir_all(&tmp);
    }

    #[test]
    fn real_host_discovery_is_well_formed_if_present() {
        // On machines with a readable sysfs this exercises the real path;
        // elsewhere it is skipped.
        if let Ok(h) = discover() {
            assert!(h.ncpus() >= 1);
            assert_eq!(h.cohort_count(h.level_count() - 1), 1);
        }
    }
}
