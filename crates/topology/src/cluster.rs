//! Automatic level identification from a heatmap.
//!
//! The paper derives the hierarchy configuration from the Figure 1
//! heatmaps by hand ("the user can identify these levels by grouping
//! tiles colored with similar intensity") and notes that "identifying
//! levels in a heatmap can be easily automated". This module is that
//! automation:
//!
//! 1. Collect the off-diagonal pair throughputs and split them into
//!    *bands* separated by large relative gaps (tiles of "similar
//!    intensity").
//! 2. For each band threshold (from the highest band down), connect CPUs
//!    whose pair throughput reaches the threshold; the connected
//!    components are the cohorts of one level.
//! 3. Drop degenerate levels (same partition as the previous one) and
//!    return the resulting [`Hierarchy`].
//!
//! Because faster bands connect fewer CPUs, the partitions are nested by
//! construction on well-behaved inputs; pathological inputs (e.g.
//! non-transitive affinity) fail [`Hierarchy`] validation and are
//! reported as an error.

use crate::heatmap::Heatmap;
use crate::hierarchy::{Hierarchy, TopologyError};

/// Options for [`cluster_heatmap`].
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Minimum relative gap between consecutive sorted throughputs that
    /// starts a new band. The paper's levels differ by 1.5–12×
    /// (Table 2), so the default of 0.25 (25%) separates them easily
    /// while absorbing measurement noise.
    pub band_gap: f64,
    /// Names to assign to discovered levels, innermost first; padded with
    /// `"level<i>"` if more levels are found.
    pub level_names: Vec<String>,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            band_gap: 0.25,
            level_names: vec![
                "core".to_string(),
                "cache".to_string(),
                "numa".to_string(),
                "package".to_string(),
            ],
        }
    }
}

/// Derives a hierarchy configuration from a pair-throughput heatmap.
///
/// # Errors
///
/// Returns an error if the heatmap is empty or the induced partitions are
/// inconsistent (not nested / not dense).
///
/// # Examples
///
/// ```
/// use clof_topology::{cluster_heatmap, Heatmap};
/// use clof_topology::cluster::ClusterOptions;
///
/// // 4 CPUs: pairs {0,1} and {2,3} are 8× faster than cross pairs.
/// let h = Heatmap::from_fn(4, |a, b| {
///     if a == b { 0.0 } else if a / 2 == b / 2 { 8.0 } else { 1.0 }
/// });
/// let hier = cluster_heatmap(&h, &ClusterOptions::default()).unwrap();
/// assert_eq!(hier.level_count(), 2);
/// assert_eq!(hier.shared_level(0, 1), 0);
/// assert_eq!(hier.shared_level(0, 2), 1);
/// ```
pub fn cluster_heatmap(
    heatmap: &Heatmap,
    opts: &ClusterOptions,
) -> Result<Hierarchy, TopologyError> {
    let n = heatmap.ncpus();
    if n == 0 {
        return Err(TopologyError::Empty);
    }
    if n == 1 {
        return Hierarchy::flat(1);
    }

    // 1. Band detection over sorted off-diagonal throughputs.
    let mut values: Vec<f64> = Vec::with_capacity(n * (n - 1) / 2);
    for a in 0..n {
        for b in (a + 1)..n {
            values.push(heatmap.value(a, b));
        }
    }
    values.sort_by(|x, y| x.partial_cmp(y).expect("throughputs must not be NaN"));
    // Thresholds: the lowest value of each band above the slowest band.
    // The slowest band is the "system" baseline and yields no level.
    let mut thresholds: Vec<f64> = Vec::new();
    for w in values.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if lo <= 0.0 {
            continue;
        }
        if (hi - lo) / lo > opts.band_gap {
            thresholds.push(hi);
        }
    }
    thresholds.dedup_by(|a, b| (*a - *b).abs() < f64::EPSILON);

    // 2. One partition per threshold, fastest (innermost) first.
    let mut maps: Vec<(String, Vec<usize>)> = Vec::new();
    let mut name_idx = 0usize;
    for &thr in thresholds.iter().rev() {
        let partition = components_at(heatmap, thr);
        // 3. Skip degenerate partitions: all-singletons, or equal to the
        // previous level's partition.
        let cohorts = partition.iter().max().map(|&m| m + 1).unwrap_or(0);
        if cohorts == n {
            continue;
        }
        if maps.last().map(|(_, prev)| prev) == Some(&partition) {
            continue;
        }
        let name = opts
            .level_names
            .get(name_idx)
            .cloned()
            .unwrap_or_else(|| format!("level{name_idx}"));
        name_idx += 1;
        maps.push((name, partition));
    }

    if maps.is_empty() {
        return Hierarchy::flat(n);
    }
    Hierarchy::from_levels(maps, n)
}

/// Connected components of the graph "pair throughput ≥ threshold",
/// relabelled densely in first-seen order.
fn components_at(heatmap: &Heatmap, threshold: f64) -> Vec<usize> {
    let n = heatmap.ncpus();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let id = next;
        next += 1;
        let mut stack = vec![start];
        comp[start] = id;
        while let Some(a) = stack.pop() {
            for b in 0..n {
                if comp[b] == usize::MAX && a != b && heatmap.value(a, b) >= threshold {
                    comp[b] = id;
                    stack.push(b);
                }
            }
        }
    }
    comp
}

/// Mean pair throughput grouped by innermost shared level, normalized to
/// the outermost (system) level — the paper's Table 2.
///
/// Returns one `(level_name, speedup)` per level that has at least one
/// measured pair (levels whose cohorts are single CPUs have none).
pub fn cohort_speedups(heatmap: &Heatmap, hierarchy: &Hierarchy) -> Vec<(String, f64)> {
    let n = heatmap.ncpus().min(hierarchy.ncpus());
    let levels = hierarchy.level_count();
    let mut sum = vec![0.0f64; levels];
    let mut count = vec![0usize; levels];
    for a in 0..n {
        for b in (a + 1)..n {
            let l = hierarchy.shared_level(a, b);
            sum[l] += heatmap.value(a, b);
            count[l] += 1;
        }
    }
    let system = levels - 1;
    let base = if count[system] > 0 {
        sum[system] / count[system] as f64
    } else {
        return Vec::new();
    };
    (0..levels)
        .filter(|&l| count[l] > 0)
        .map(|l| {
            let mean = sum[l] / count[l] as f64;
            (
                hierarchy.levels()[l].name.clone(),
                if base > 0.0 { mean / base } else { 0.0 },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms;

    /// A synthetic heatmap whose pair throughput depends only on the
    /// innermost shared level of a reference hierarchy.
    fn level_heatmap(hier: &Hierarchy, speeds: &[f64]) -> Heatmap {
        Heatmap::from_fn(hier.ncpus(), |a, b| {
            if a == b {
                0.0
            } else {
                speeds[hier.shared_level(a, b)]
            }
        })
    }

    #[test]
    fn recovers_tiny_hierarchy() {
        let reference = platforms::tiny(); // cache, numa, system
        let heatmap = level_heatmap(&reference, &[9.0, 3.0, 1.0]);
        let found = cluster_heatmap(&heatmap, &ClusterOptions::default()).unwrap();
        assert_eq!(found.level_count(), 3);
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(
                    found.shared_level(a, b),
                    reference.shared_level(a, b),
                    "pair ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn recovers_paper_armv8_levels() {
        // Table 2 Armv8 speedups: cache 7.04, numa 2.98, package 1.76,
        // system 1.0.
        let reference = platforms::paper_armv8();
        let heatmap = level_heatmap(&reference, &[7.04, 2.98, 1.76, 1.0]);
        let found = cluster_heatmap(&heatmap, &ClusterOptions::default()).unwrap();
        assert_eq!(found.level_count(), 4); // cache, numa, package, system
        for &(a, b, lvl) in &[(0usize, 3usize, 0usize), (0, 31, 1), (0, 63, 2), (0, 127, 3)] {
            assert_eq!(found.shared_level(a, b), lvl, "pair ({a},{b})");
        }
    }

    #[test]
    fn recovers_paper_x86_levels() {
        // Table 2 x86: core 12.18, cache 9.07, numa = package 1.54,
        // system 1.0. numa == package collapses into one level.
        let reference = platforms::paper_x86();
        let heatmap = level_heatmap(&reference, &[12.18, 9.07, 1.54, 1.54, 1.0]);
        let found = cluster_heatmap(&heatmap, &ClusterOptions::default()).unwrap();
        assert_eq!(found.level_count(), 4); // core, cache, numa(=pkg), system
        assert_eq!(found.shared_level(0, 48), 0);
        assert_eq!(found.shared_level(0, 1), 1);
        assert_eq!(found.shared_level(0, 3), 2);
        assert_eq!(found.shared_level(0, 24), 3);
    }

    #[test]
    fn uniform_heatmap_gives_flat_hierarchy() {
        let heatmap = Heatmap::from_fn(6, |a, b| if a == b { 0.0 } else { 5.0 });
        let found = cluster_heatmap(&heatmap, &ClusterOptions::default()).unwrap();
        assert_eq!(found.level_count(), 1);
    }

    #[test]
    fn empty_heatmap_rejected() {
        let heatmap = Heatmap::new(0);
        assert!(cluster_heatmap(&heatmap, &ClusterOptions::default()).is_err());
    }

    #[test]
    fn single_cpu_flat() {
        let heatmap = Heatmap::new(1);
        let found = cluster_heatmap(&heatmap, &ClusterOptions::default()).unwrap();
        assert_eq!(found.ncpus(), 1);
    }

    #[test]
    fn noise_within_band_gap_is_absorbed() {
        let reference = platforms::tiny();
        // ±5% deterministic "noise", well within the 25% band gap.
        let heatmap = Heatmap::from_fn(8, |a, b| {
            if a == b {
                return 0.0;
            }
            let base = [9.0, 3.0, 1.0][reference.shared_level(a, b)];
            let jitter = 1.0 + 0.05 * (((a * 31 + b * 17) % 7) as f64 - 3.0) / 3.0;
            base * jitter
        });
        let found = cluster_heatmap(&heatmap, &ClusterOptions::default()).unwrap();
        assert_eq!(found.level_count(), 3);
    }

    #[test]
    fn table2_speedups_recovered() {
        let reference = platforms::paper_armv8();
        let heatmap = level_heatmap(&reference, &[7.04, 2.98, 1.76, 1.0]);
        let speedups = cohort_speedups(&heatmap, &reference);
        let get = |name: &str| {
            speedups
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, s)| s)
                .unwrap()
        };
        assert!((get("cache") - 7.04).abs() < 1e-9);
        assert!((get("numa") - 2.98).abs() < 1e-9);
        assert!((get("package") - 1.76).abs() < 1e-9);
        assert!((get("system") - 1.0).abs() < 1e-9);
    }
}
