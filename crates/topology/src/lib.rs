//! Multi-level NUMA hierarchy description and discovery for CLoF.
//!
//! The paper (§3.1) observes that tools like `lscpu` miss hierarchy levels
//! (notably L3 *cache groups*) and instead discovers the real hierarchy
//! experimentally: a two-thread ping-pong microbenchmark is run on every
//! CPU pair, the resulting throughput heatmap (Figure 1) exposes the
//! levels, and the user derives a *hierarchy configuration* from it. This
//! crate implements that pipeline:
//!
//! * [`Hierarchy`] — the hierarchy configuration: an ordered list of
//!   levels (innermost first, e.g. core → cache-group → NUMA node →
//!   package → system), each mapping every CPU to a cohort.
//! * [`platforms`] — faithful models of the two paper machines (96-way
//!   x86 EPYC 7352 and 128-core Armv8 Kunpeng 920) plus small test
//!   topologies.
//! * [`heatmap`] — the ping-pong pair benchmark (host-runnable) and the
//!   [`Heatmap`] container.
//! * [`cluster`] — automatic level identification from a heatmap (the
//!   paper notes this "can be easily automated"; here it is).
//! * [`config`] — a plain-text serialization of hierarchy configurations
//!   (the tuning point where users drop or keep levels).
//! * [`sysfs`] — best-effort host discovery from Linux `/sys`, for the
//!   levels the OS does expose.

#![warn(missing_docs)]

pub mod cluster;
pub mod config;
pub mod heatmap;
pub mod hierarchy;
pub mod platforms;
pub mod sysfs;

pub use cluster::cluster_heatmap;
pub use heatmap::{pingpong_heatmap, Heatmap, PingPongOptions};
pub use hierarchy::{CohortId, CpuId, Hierarchy, LevelIdx, TopologyError};
