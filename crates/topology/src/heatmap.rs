//! The ping-pong pair microbenchmark and its heatmap container (§3.1).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::hierarchy::CpuId;

/// A symmetric CPU-pair throughput matrix (the paper's Figure 1).
///
/// `value(a, b)` is the measured (or modelled) throughput of the
/// two-thread alternating-increment benchmark with one thread on CPU `a`
/// and one on CPU `b`. Only relative magnitudes matter: "the darker the
/// heatmap tile, the higher the throughput — the absolute throughput
/// value is not relevant".
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    n: usize,
    data: Vec<f64>,
}

impl Heatmap {
    /// Creates an all-zero `n × n` heatmap.
    pub fn new(n: usize) -> Self {
        Heatmap {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Builds a heatmap from a function of the CPU pair.
    pub fn from_fn(n: usize, mut f: impl FnMut(CpuId, CpuId) -> f64) -> Self {
        let mut h = Heatmap::new(n);
        for a in 0..n {
            for b in 0..n {
                h.data[a * n + b] = f(a, b);
            }
        }
        h
    }

    /// Matrix dimension (number of CPUs).
    pub fn ncpus(&self) -> usize {
        self.n
    }

    /// Throughput of the pair `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn value(&self, a: CpuId, b: CpuId) -> f64 {
        assert!(a < self.n && b < self.n, "CPU index out of range");
        self.data[a * self.n + b]
    }

    /// Sets the throughput of the pair `(a, b)` (and `(b, a)`).
    pub fn set(&mut self, a: CpuId, b: CpuId, v: f64) {
        assert!(a < self.n && b < self.n, "CPU index out of range");
        self.data[a * self.n + b] = v;
        self.data[b * self.n + a] = v;
    }

    /// Mean of the off-diagonal values (the diagonal measures a thread
    /// pair sharing one CPU, which the paper excludes from analysis).
    pub fn off_diagonal_mean(&self) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for a in 0..self.n {
            for b in 0..self.n {
                if a != b {
                    sum += self.data[a * self.n + b];
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Renders an ASCII shade map (darker = higher throughput), one row
    /// per CPU — a terminal rendition of the paper's Figure 1.
    pub fn render_ascii(&self) -> String {
        const SHADES: &[u8] = b" .:-=+*#%@";
        let max = self
            .data
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max)
            .max(f64::MIN_POSITIVE);
        let mut out = String::with_capacity(self.n * (self.n + 1));
        for a in 0..self.n {
            for b in 0..self.n {
                let v = self.data[a * self.n + b] / max;
                let idx = ((v * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
                out.push(SHADES[idx] as char);
            }
            out.push('\n');
        }
        out
    }

    /// Renders as a binary PGM (grayscale) image, one pixel per CPU
    /// pair, darker = higher throughput — the paper's Figure 1 rendering
    /// convention. Any image viewer opens `.pgm`; `magick fig1.pgm
    /// fig1.png` converts it.
    pub fn to_pgm(&self) -> Vec<u8> {
        let max = self
            .data
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max)
            .max(f64::MIN_POSITIVE);
        let mut out = format!("P5\n{} {}\n255\n", self.n, self.n).into_bytes();
        for a in 0..self.n {
            for b in 0..self.n {
                let v = (self.data[a * self.n + b] / max).clamp(0.0, 1.0);
                // Darker tile = higher throughput.
                out.push((255.0 * (1.0 - v)).round() as u8);
            }
        }
        out
    }

    /// Serializes as CSV (`a,b,value` rows) for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cpu_a,cpu_b,throughput\n");
        for a in 0..self.n {
            for b in 0..self.n {
                out.push_str(&format!("{a},{b},{}\n", self.data[a * self.n + b]));
            }
        }
        out
    }
}

/// Options for the host ping-pong benchmark.
#[derive(Clone)]
pub struct PingPongOptions {
    /// How long each pair is measured.
    pub duration: Duration,
    /// Optional thread-affinity hook: called on each benchmark thread with
    /// the target CPU before measurement. This crate has no libc
    /// dependency, so pinning is delegated to the caller (e.g. a closure
    /// using `sched_setaffinity`); without pinning the heatmap reflects
    /// wherever the OS schedules the threads.
    pub pin: Option<Arc<dyn Fn(CpuId) + Send + Sync>>,
}

impl Default for PingPongOptions {
    fn default() -> Self {
        PingPongOptions {
            duration: Duration::from_millis(20),
            pin: None,
        }
    }
}

/// Runs the paper's hierarchy-discovery microbenchmark on the host.
///
/// For each CPU pair `(a, b)` with `a < b`, two threads take turns
/// incrementing a shared counter for the configured duration: one thread
/// increments when the counter is even, the other when it is odd (§3.1).
/// The resulting increments/second fill a symmetric [`Heatmap`].
///
/// Pairs to measure can be restricted with `cpus` (useful on large
/// machines where all-pairs is quadratic).
pub fn pingpong_heatmap(cpus: &[CpuId], opts: &PingPongOptions) -> Heatmap {
    let n = cpus.iter().copied().max().map_or(0, |m| m + 1);
    let mut heatmap = Heatmap::new(n);
    for (i, &a) in cpus.iter().enumerate() {
        for &b in &cpus[i + 1..] {
            let rate = pingpong_pair(a, b, opts);
            heatmap.set(a, b, rate);
        }
    }
    heatmap
}

/// Measures one CPU pair; returns increments per second.
fn pingpong_pair(a: CpuId, b: CpuId, opts: &PingPongOptions) -> f64 {
    let counter = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let run = |cpu: CpuId, parity: u64| {
        let counter = Arc::clone(&counter);
        let stop = Arc::clone(&stop);
        let pin = opts.pin.clone();
        std::thread::spawn(move || {
            if let Some(pin) = pin {
                pin(cpu);
            }
            let mut spins = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let v = counter.load(Ordering::Acquire);
                if v % 2 == parity {
                    counter.store(v + 1, Ordering::Release);
                    spins = 0;
                } else {
                    spins += 1;
                    if spins > 64 {
                        // Keep the partner runnable on oversubscribed
                        // hosts; the paper's userspace spinning assumes a
                        // dedicated CPU per thread.
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
        })
    };
    let t1 = run(a, 0);
    let t2 = run(b, 1);
    std::thread::sleep(opts.duration);
    stop.store(true, Ordering::Relaxed);
    t1.join().expect("ping-pong thread panicked");
    t2.join().expect("ping-pong thread panicked");
    let incs = counter.load(Ordering::Relaxed);
    incs as f64 / opts.duration.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_set_is_symmetric() {
        let mut h = Heatmap::new(4);
        h.set(1, 3, 7.5);
        assert_eq!(h.value(1, 3), 7.5);
        assert_eq!(h.value(3, 1), 7.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn heatmap_bounds_checked() {
        let h = Heatmap::new(2);
        let _ = h.value(2, 0);
    }

    #[test]
    fn from_fn_fills_all_cells() {
        let h = Heatmap::from_fn(3, |a, b| (a + b) as f64);
        assert_eq!(h.value(2, 1), 3.0);
        assert!(h.off_diagonal_mean() > 0.0);
    }

    #[test]
    fn ascii_render_has_one_row_per_cpu() {
        let h = Heatmap::from_fn(5, |a, b| if a == b { 0.0 } else { 1.0 });
        let s = h.render_ascii();
        assert_eq!(s.lines().count(), 5);
        assert!(s.lines().all(|l| l.len() == 5));
    }

    #[test]
    fn csv_has_header_and_n_squared_rows() {
        let h = Heatmap::new(3);
        let csv = h.to_csv();
        assert_eq!(csv.lines().count(), 1 + 9);
        assert!(csv.starts_with("cpu_a,cpu_b,throughput"));
    }

    #[test]
    fn pgm_has_header_and_pixel_per_pair() {
        let h = Heatmap::from_fn(4, |a, b| if a == b { 0.0 } else { 2.0 });
        let pgm = h.to_pgm();
        assert!(pgm.starts_with(b"P5\n4 4\n255\n"));
        assert_eq!(pgm.len(), b"P5\n4 4\n255\n".len() + 16);
        // Diagonal (zero throughput) renders white, off-diagonal dark.
        let pixels = &pgm[pgm.len() - 16..];
        assert_eq!(pixels[0], 255);
        assert_eq!(pixels[1], 0);
    }

    #[test]
    fn pingpong_pair_measures_progress() {
        // Two logical "CPUs" — on this host the threads are unpinned; we
        // only check the mechanism makes progress and reports a rate.
        let opts = PingPongOptions {
            duration: Duration::from_millis(10),
            pin: None,
        };
        let h = pingpong_heatmap(&[0, 1], &opts);
        assert!(h.value(0, 1) > 0.0);
        assert_eq!(h.value(0, 0), 0.0);
    }

    #[test]
    fn pin_hook_is_invoked() {
        use std::sync::atomic::AtomicUsize;
        let calls = Arc::new(AtomicUsize::new(0));
        let calls2 = Arc::clone(&calls);
        let opts = PingPongOptions {
            duration: Duration::from_millis(5),
            pin: Some(Arc::new(move |_cpu| {
                calls2.fetch_add(1, Ordering::Relaxed);
            })),
        };
        let _ = pingpong_heatmap(&[0, 1], &opts);
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }
}
