//! The hierarchy configuration: levels and cohort maps.

use std::fmt;

/// A CPU index, `0..ncpus`.
pub type CpuId = usize;

/// A cohort index within one level, `0..cohort_count(level)`.
pub type CohortId = usize;

/// An index into [`Hierarchy::levels`], `0` = innermost level.
pub type LevelIdx = usize;

/// Errors produced when building or validating a [`Hierarchy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A level's cohort map does not cover every CPU.
    MapLengthMismatch {
        /// Offending level name.
        level: String,
        /// Entries found.
        found: usize,
        /// Entries expected (`ncpus`).
        expected: usize,
    },
    /// Cohort ids in a level are not dense `0..n`.
    SparseCohortIds {
        /// Offending level name.
        level: String,
    },
    /// Two CPUs share a cohort at an inner level but not at an outer one.
    NotNested {
        /// Inner level name.
        inner: String,
        /// Outer level name.
        outer: String,
        /// Witness CPU pair.
        cpus: (CpuId, CpuId),
    },
    /// A hierarchy must have at least one level and one CPU.
    Empty,
    /// The outermost level must group all CPUs into a single cohort.
    RootNotSingle {
        /// Number of cohorts found at the outermost level.
        cohorts: usize,
    },
    /// Parse error in the text configuration format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::MapLengthMismatch {
                level,
                found,
                expected,
            } => write!(
                f,
                "level `{level}`: cohort map has {found} entries, expected {expected}"
            ),
            TopologyError::SparseCohortIds { level } => {
                write!(f, "level `{level}`: cohort ids are not dense 0..n")
            }
            TopologyError::NotNested { inner, outer, cpus } => write!(
                f,
                "levels not nested: CPUs {} and {} share a `{inner}` cohort \
                 but not a `{outer}` cohort",
                cpus.0, cpus.1
            ),
            TopologyError::Empty => write!(f, "hierarchy needs at least one level and one CPU"),
            TopologyError::RootNotSingle { cohorts } => write!(
                f,
                "outermost level must have exactly 1 cohort, found {cohorts}"
            ),
            TopologyError::Parse { line, message } => {
                write!(f, "config parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// One level of the memory hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Level {
    /// Level name, e.g. `"cache-group"`.
    pub name: String,
    /// `cohort_of[cpu]` = cohort id of `cpu` at this level.
    pub cohort_of: Vec<CohortId>,
    /// Number of cohorts at this level.
    pub cohorts: usize,
}

/// A validated hierarchy configuration (the paper's blue "hierarchy
/// configuration" box in Figure 5).
///
/// Levels are ordered **innermost first**: `levels[0]` is the smallest
/// cohort (e.g. hyperthread pairs of one core) and the last level is
/// always the single system-wide cohort. The invariant maintained by all
/// constructors is *nesting*: if two CPUs share a cohort at level `i`,
/// they share one at every level `j > i`.
///
/// # Examples
///
/// ```
/// use clof_topology::Hierarchy;
///
/// // 8 CPUs: 4 pairs ("cache") inside 2 quads ("numa") inside the system.
/// let h = Hierarchy::regular(&[("cache", 2), ("numa", 4)], 8).unwrap();
/// assert_eq!(h.ncpus(), 8);
/// assert_eq!(h.level_count(), 3); // cache, numa, system
/// assert_eq!(h.shared_level(0, 1), 0); // same pair
/// assert_eq!(h.shared_level(0, 2), 1); // same quad
/// assert_eq!(h.shared_level(0, 7), 2); // system only
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hierarchy {
    levels: Vec<Level>,
    ncpus: usize,
}

impl Hierarchy {
    /// Builds a hierarchy from named cohort maps, innermost first.
    ///
    /// A final system level (single cohort) is appended automatically if
    /// the last provided level has more than one cohort.
    pub fn from_levels(
        named_maps: Vec<(String, Vec<CohortId>)>,
        ncpus: usize,
    ) -> Result<Self, TopologyError> {
        if ncpus == 0 || named_maps.is_empty() {
            return Err(TopologyError::Empty);
        }
        let mut levels = Vec::with_capacity(named_maps.len() + 1);
        for (name, cohort_of) in named_maps {
            if cohort_of.len() != ncpus {
                return Err(TopologyError::MapLengthMismatch {
                    level: name,
                    found: cohort_of.len(),
                    expected: ncpus,
                });
            }
            let cohorts = match cohort_of.iter().max() {
                Some(&max) => max + 1,
                None => 0,
            };
            let mut seen = vec![false; cohorts];
            for &c in &cohort_of {
                seen[c] = true;
            }
            if seen.iter().any(|&s| !s) {
                return Err(TopologyError::SparseCohortIds { level: name });
            }
            levels.push(Level {
                name,
                cohort_of,
                cohorts,
            });
        }
        // Append the implicit system level if needed.
        if levels.last().map(|l| l.cohorts) != Some(1) {
            levels.push(Level {
                name: "system".to_string(),
                cohort_of: vec![0; ncpus],
                cohorts: 1,
            });
        }
        let h = Hierarchy { levels, ncpus };
        h.validate_nesting()?;
        Ok(h)
    }

    /// Builds a regular (balanced) hierarchy.
    ///
    /// `shape` lists, innermost first, `(level_name, cpus_per_cohort)`;
    /// each entry's cohort size must divide the next one's and `ncpus`.
    /// CPUs are numbered contiguously (CPU `c` belongs to cohort
    /// `c / cpus_per_cohort`).
    pub fn regular(shape: &[(&str, usize)], ncpus: usize) -> Result<Self, TopologyError> {
        let maps = shape
            .iter()
            .map(|&(name, size)| {
                let map = (0..ncpus).map(|c| c / size.max(1)).collect();
                (name.to_string(), map)
            })
            .collect();
        Self::from_levels(maps, ncpus)
    }

    /// A single-level ("system" only) hierarchy: the degenerate case in
    /// which a CLoF lock is just its basic system lock.
    pub fn flat(ncpus: usize) -> Result<Self, TopologyError> {
        Self::from_levels(vec![("system".to_string(), vec![0; ncpus])], ncpus)
    }

    fn validate_nesting(&self) -> Result<(), TopologyError> {
        if self.levels.last().map(|l| l.cohorts) != Some(1) {
            return Err(TopologyError::RootNotSingle {
                cohorts: self.levels.last().map(|l| l.cohorts).unwrap_or(0),
            });
        }
        for w in self.levels.windows(2) {
            let (inner, outer) = (&w[0], &w[1]);
            // For each inner cohort, all members must map to one outer
            // cohort.
            let mut outer_of_inner = vec![usize::MAX; inner.cohorts];
            for cpu in 0..self.ncpus {
                let ic = inner.cohort_of[cpu];
                let oc = outer.cohort_of[cpu];
                if outer_of_inner[ic] == usize::MAX {
                    outer_of_inner[ic] = oc;
                } else if outer_of_inner[ic] != oc {
                    let witness = (0..self.ncpus)
                        .find(|&c| inner.cohort_of[c] == ic && outer.cohort_of[c] != oc)
                        .unwrap_or(cpu);
                    return Err(TopologyError::NotNested {
                        inner: inner.name.clone(),
                        outer: outer.name.clone(),
                        cpus: (witness, cpu),
                    });
                }
            }
        }
        Ok(())
    }

    /// Number of CPUs.
    pub fn ncpus(&self) -> usize {
        self.ncpus
    }

    /// Number of levels, including the system level.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The levels, innermost first.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// Level names, innermost first.
    pub fn level_names(&self) -> Vec<&str> {
        self.levels.iter().map(|l| l.name.as_str()).collect()
    }

    /// Cohort of `cpu` at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` or `level` is out of range.
    pub fn cohort(&self, level: LevelIdx, cpu: CpuId) -> CohortId {
        self.levels[level].cohort_of[cpu]
    }

    /// Number of cohorts at `level`.
    pub fn cohort_count(&self, level: LevelIdx) -> usize {
        self.levels[level].cohorts
    }

    /// Average number of CPUs spanned by one cohort at `level` (at least
    /// 1): the topology-distance measure the waiting layer derives
    /// per-level spin budgets from. Inner levels span few CPUs (waiters
    /// are cache-close, a hand-off is cheap, spinning longer pays off);
    /// the outermost level spans the machine (a waiting slot is
    /// expensive, park soon).
    pub fn cohort_span(&self, level: LevelIdx) -> usize {
        (self.ncpus / self.cohort_count(level)).max(1)
    }

    /// The path of cohort ids of `cpu`, innermost level first.
    pub fn path(&self, cpu: CpuId) -> Vec<CohortId> {
        self.levels.iter().map(|l| l.cohort_of[cpu]).collect()
    }

    /// The innermost level at which `a` and `b` share a cohort.
    ///
    /// Two distinct CPUs always share the system level; `shared_level(a, a)`
    /// is `0` by convention (same innermost cohort).
    pub fn shared_level(&self, a: CpuId, b: CpuId) -> LevelIdx {
        for (i, level) in self.levels.iter().enumerate() {
            if level.cohort_of[a] == level.cohort_of[b] {
                return i;
            }
        }
        self.levels.len() - 1
    }

    /// CPUs belonging to cohort `cohort` of `level`.
    pub fn cohort_members(&self, level: LevelIdx, cohort: CohortId) -> Vec<CpuId> {
        (0..self.ncpus)
            .filter(|&c| self.levels[level].cohort_of[c] == cohort)
            .collect()
    }

    /// Derives a new hierarchy keeping only the selected levels (by name),
    /// the paper's first *tuning point* (§5.2.1: e.g. skip the package
    /// level on x86, skip the core level on Armv8).
    ///
    /// The system level is always retained. Returns an error if a name is
    /// unknown.
    pub fn select_levels(&self, names: &[&str]) -> Result<Self, TopologyError> {
        for n in names {
            if !self.levels.iter().any(|l| &l.name == n) {
                return Err(TopologyError::Parse {
                    line: 0,
                    message: format!("unknown level `{n}`"),
                });
            }
        }
        let maps = self
            .levels
            .iter()
            .filter(|l| names.contains(&l.name.as_str()) && l.cohorts > 1)
            .map(|l| (l.name.clone(), l.cohort_of.clone()))
            .collect::<Vec<_>>();
        if maps.is_empty() {
            return Self::flat(self.ncpus);
        }
        Self::from_levels(maps, self.ncpus)
    }

    /// Number of *locks* a CLoF tree over this hierarchy instantiates:
    /// one per cohort per level.
    pub fn total_cohorts(&self) -> usize {
        self.levels.iter().map(|l| l.cohorts).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_two_level() {
        let h = Hierarchy::regular(&[("numa", 4)], 8).unwrap();
        assert_eq!(h.level_count(), 2);
        assert_eq!(h.cohort_count(0), 2);
        assert_eq!(h.cohort_count(1), 1);
        assert_eq!(h.cohort(0, 3), 0);
        assert_eq!(h.cohort(0, 4), 1);
    }

    #[test]
    fn flat_hierarchy() {
        let h = Hierarchy::flat(4).unwrap();
        assert_eq!(h.level_count(), 1);
        assert_eq!(h.shared_level(0, 3), 0);
    }

    #[test]
    fn cohort_span_grows_outwards() {
        let h = Hierarchy::regular(&[("cache", 2), ("numa", 4)], 16).unwrap();
        assert_eq!(h.cohort_span(0), 2);
        assert_eq!(h.cohort_span(1), 8);
        assert_eq!(h.cohort_span(2), 16);
        let flat = Hierarchy::flat(1).unwrap();
        assert_eq!(flat.cohort_span(0), 1, "span is at least 1");
    }

    #[test]
    fn shared_level_and_path() {
        let h = Hierarchy::regular(&[("cache", 2), ("numa", 4)], 16).unwrap();
        assert_eq!(h.path(5), vec![2, 1, 0]);
        assert_eq!(h.shared_level(4, 5), 0);
        assert_eq!(h.shared_level(4, 6), 1);
        assert_eq!(h.shared_level(4, 9), 2);
        assert_eq!(h.shared_level(7, 7), 0);
    }

    #[test]
    fn cohort_members() {
        let h = Hierarchy::regular(&[("pair", 2)], 6).unwrap();
        assert_eq!(h.cohort_members(0, 1), vec![2, 3]);
        assert_eq!(h.cohort_members(1, 0), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn rejects_non_nested() {
        // Inner pairs {0,1},{2,3}; outer groups {0,2},{1,3}: not nested.
        let res = Hierarchy::from_levels(
            vec![
                ("inner".into(), vec![0, 0, 1, 1]),
                ("outer".into(), vec![0, 1, 0, 1]),
            ],
            4,
        );
        assert!(matches!(res, Err(TopologyError::NotNested { .. })));
    }

    #[test]
    fn rejects_sparse_ids() {
        let res = Hierarchy::from_levels(vec![("l".into(), vec![0, 2, 2, 0])], 4);
        assert!(matches!(res, Err(TopologyError::SparseCohortIds { .. })));
    }

    #[test]
    fn rejects_wrong_length() {
        let res = Hierarchy::from_levels(vec![("l".into(), vec![0, 0])], 4);
        assert!(matches!(res, Err(TopologyError::MapLengthMismatch { .. })));
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Hierarchy::from_levels(vec![], 4), Err(TopologyError::Empty));
        let res = Hierarchy::regular(&[("l", 1)], 0);
        assert_eq!(res, Err(TopologyError::Empty));
    }

    #[test]
    fn implicit_system_level_appended() {
        let h = Hierarchy::from_levels(vec![("numa".into(), vec![0, 0, 1, 1])], 4).unwrap();
        assert_eq!(h.level_names(), vec!["numa", "system"]);
    }

    #[test]
    fn explicit_system_level_kept() {
        let h = Hierarchy::from_levels(
            vec![
                ("numa".into(), vec![0, 0, 1, 1]),
                ("system".into(), vec![0, 0, 0, 0]),
            ],
            4,
        )
        .unwrap();
        assert_eq!(h.level_count(), 2);
    }

    #[test]
    fn select_levels_subsets() {
        let h = Hierarchy::regular(&[("core", 2), ("cache", 4), ("numa", 8)], 16).unwrap();
        let s = h.select_levels(&["cache", "numa"]).unwrap();
        assert_eq!(s.level_names(), vec!["cache", "numa", "system"]);
        assert_eq!(s.shared_level(0, 1), 0); // cache cohort of 4 CPUs
        let err = h.select_levels(&["bogus"]);
        assert!(err.is_err());
    }

    #[test]
    fn select_no_levels_gives_flat() {
        let h = Hierarchy::regular(&[("numa", 4)], 8).unwrap();
        let s = h.select_levels(&[]).unwrap();
        assert_eq!(s.level_count(), 1);
    }

    #[test]
    fn total_cohorts_counts_all_levels() {
        let h = Hierarchy::regular(&[("cache", 2), ("numa", 4)], 8).unwrap();
        // 4 cache cohorts + 2 numa cohorts + 1 system.
        assert_eq!(h.total_cohorts(), 7);
    }
}
