//! Models of the paper's evaluation platforms (§5.1.1) and small test
//! topologies.
//!
//! The lock algorithms consume only the hierarchy configuration, so a
//! faithful CPU→cohort map is all that is needed to reproduce the paper's
//! lock *structure* on machines we do not have (see `DESIGN.md` §2).

use crate::hierarchy::Hierarchy;

/// Number of logical CPUs of the paper's x86 server (2× EPYC 7352,
/// 24 cores per package, SMT2).
pub const X86_NCPUS: usize = 96;

/// Number of CPUs of the paper's Armv8 server (2× Kunpeng 920-6426,
/// 64 cores per package, no SMT).
pub const ARM_NCPUS: usize = 128;

/// The paper's x86 server: GIGABYTE R182-Z91 with 2× AMD EPYC 7352.
///
/// Five levels (§3.1): core (2 hyperthreads), cache group (3 cores / 6
/// hyperthreads sharing an L3 partition), NUMA node (24 cores), package
/// (= NUMA node on this machine: 1 node per package), system.
///
/// CPU numbering follows the paper's heatmap (Figure 1a): hyperthread
/// siblings are `c` and `c + 48`, so cache group 0 holds hyperthreads
/// {0, 1, 2, 48, 49, 50}.
pub fn paper_x86() -> Hierarchy {
    let n = X86_NCPUS;
    let core_of = |cpu: usize| cpu % 48; // 48 physical cores
    let cache_of = |cpu: usize| core_of(cpu) / 3; // 16 cache groups
    let numa_of = |cpu: usize| core_of(cpu) / 24; // 2 NUMA nodes
    let maps = vec![
        ("core".to_string(), (0..n).map(core_of).collect()),
        ("cache".to_string(), (0..n).map(cache_of).collect()),
        ("numa".to_string(), (0..n).map(numa_of).collect()),
        // 1 NUMA node per package on EPYC 7352 ⇒ package == numa.
        ("package".to_string(), (0..n).map(numa_of).collect()),
    ];
    Hierarchy::from_levels(maps, n).expect("paper x86 hierarchy is well-formed")
}

/// The paper's Armv8 server: Huawei TaiShan 200 with 2× Kunpeng 920-6426.
///
/// Four populated levels (§3.1): cache group (4 cores sharing an L3 tag
/// partition), NUMA node (32 cores), package (2 NUMA nodes), system.
/// There is no hyperthreading, so no core level.
pub fn paper_armv8() -> Hierarchy {
    let n = ARM_NCPUS;
    let cache_of = |cpu: usize| cpu / 4; // 32 cache groups
    let numa_of = |cpu: usize| cpu / 32; // 4 NUMA nodes
    let pkg_of = |cpu: usize| cpu / 64; // 2 packages
    let maps = vec![
        ("cache".to_string(), (0..n).map(cache_of).collect()),
        ("numa".to_string(), (0..n).map(numa_of).collect()),
        ("package".to_string(), (0..n).map(pkg_of).collect()),
    ];
    Hierarchy::from_levels(maps, n).expect("paper Armv8 hierarchy is well-formed")
}

/// The 4-level x86 tuning of §5.2.1: core, cache, numa, system
/// (package dropped — it equals numa on this machine).
pub fn paper_x86_4level() -> Hierarchy {
    paper_x86()
        .select_levels(&["core", "cache", "numa"])
        .expect("levels exist")
}

/// The 3-level x86 tuning of §5.2.1: cache, numa, system (core dropped —
/// "many applications disable the usage of hyperthreads altogether").
///
/// Note: the paper's §5.2.1 text says "cache, package, system" for x86
/// but package == NUMA node on this machine, and its own Figure 9c labels
/// the hierarchy "cache-numa-system"; we follow the figure.
pub fn paper_x86_3level() -> Hierarchy {
    paper_x86()
        .select_levels(&["cache", "numa"])
        .expect("levels exist")
}

/// The 4-level Armv8 tuning of §5.2.1: cache, numa, package, system.
pub fn paper_armv8_4level() -> Hierarchy {
    paper_armv8()
        .select_levels(&["cache", "numa", "package"])
        .expect("levels exist")
}

/// The 3-level Armv8 tuning of §5.2.1: cache, numa, system (package
/// dropped — the system/package latency difference is thin, Table 2).
pub fn paper_armv8_3level() -> Hierarchy {
    paper_armv8()
        .select_levels(&["cache", "numa"])
        .expect("levels exist")
}

/// A small 3-level topology for tests: 8 CPUs, cache pairs, 2 NUMA quads.
pub fn tiny() -> Hierarchy {
    Hierarchy::regular(&[("cache", 2), ("numa", 4)], 8).expect("tiny hierarchy is well-formed")
}

/// A 2-level topology (NUMA + system), the shape CNA/ShflLock assume.
pub fn two_level(ncpus: usize, numa_nodes: usize) -> Hierarchy {
    assert!(numa_nodes > 0 && ncpus % numa_nodes == 0);
    Hierarchy::regular(&[("numa", ncpus / numa_nodes)], ncpus)
        .expect("two-level hierarchy is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x86_shape_matches_paper() {
        let h = paper_x86();
        assert_eq!(h.ncpus(), 96);
        assert_eq!(
            h.level_names(),
            vec!["core", "cache", "numa", "package", "system"]
        );
        assert_eq!(h.cohort_count(0), 48); // cores
        assert_eq!(h.cohort_count(1), 16); // cache groups
        assert_eq!(h.cohort_count(2), 2); // NUMA nodes
        assert_eq!(h.cohort_count(3), 2); // packages
    }

    #[test]
    fn x86_hyperthread_siblings_share_core() {
        let h = paper_x86();
        assert_eq!(h.shared_level(0, 48), 0); // HT pair
        assert_eq!(h.shared_level(0, 1), 1); // same cache group
        assert_eq!(h.shared_level(0, 50), 1); // sibling's cache neighbour
        assert_eq!(h.shared_level(0, 3), 2); // same NUMA, next group
        assert_eq!(h.shared_level(0, 24), 4); // cross package
    }

    #[test]
    fn x86_cache_group_holds_six_hyperthreads() {
        let h = paper_x86();
        assert_eq!(h.cohort_members(1, 0), vec![0, 1, 2, 48, 49, 50]);
    }

    #[test]
    fn armv8_shape_matches_paper() {
        let h = paper_armv8();
        assert_eq!(h.ncpus(), 128);
        assert_eq!(h.level_names(), vec!["cache", "numa", "package", "system"]);
        assert_eq!(h.cohort_count(0), 32);
        assert_eq!(h.cohort_count(1), 4);
        assert_eq!(h.cohort_count(2), 2);
    }

    #[test]
    fn armv8_levels_nest() {
        let h = paper_armv8();
        assert_eq!(h.shared_level(0, 3), 0); // same cache group
        assert_eq!(h.shared_level(0, 4), 1); // same NUMA node
        assert_eq!(h.shared_level(0, 32), 2); // same package
        assert_eq!(h.shared_level(0, 64), 3); // cross package
    }

    #[test]
    fn tuned_level_counts() {
        assert_eq!(paper_x86_4level().level_count(), 4);
        assert_eq!(paper_x86_3level().level_count(), 3);
        assert_eq!(paper_armv8_4level().level_count(), 4);
        assert_eq!(paper_armv8_3level().level_count(), 3);
    }

    #[test]
    fn tiny_is_consistent() {
        let h = tiny();
        assert_eq!(h.ncpus(), 8);
        assert_eq!(h.level_count(), 3);
    }

    #[test]
    fn two_level_shape() {
        let h = two_level(16, 4);
        assert_eq!(h.cohort_count(0), 4);
        assert_eq!(h.level_count(), 2);
    }
}
