//! C ABI for CLoF locks.
//!
//! The paper evaluates by interposing locks under unmodified applications
//! with `LD_PRELOAD` (§5.1.2). This crate provides the pieces needed to
//! do the same with these locks from C (or a shim library): create a lock
//! from a hierarchy-configuration string and a composition string, create
//! per-thread handles, and acquire/release through them.
//!
//! ```c
//! clof_lock_t   *lock = clof_lock_new("ncpus 8\nlevel numa 0 0 0 0 1 1 1 1\n",
//!                                     "mcs-tkt");
//! clof_handle_t *h    = clof_handle_new(lock, /* cpu = */ sched_getcpu());
//! clof_acquire(h);
//! /* critical section */
//! clof_release(h);
//! clof_handle_free(h);
//! clof_lock_free(lock);
//! ```
//!
//! All functions are panic-safe at the boundary: internal panics are
//! caught and reported as nulls / error codes, never unwound into C.

#![warn(missing_docs)]

use std::ffi::{c_char, c_int, CStr};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use clof::{parse_composition, DynClofLock, DynHandle};
use clof_topology::config;

/// Opaque lock object (a CLoF composition over a hierarchy).
pub struct ClofLockT {
    lock: Arc<DynClofLock>,
    ncpus: usize,
}

/// Opaque per-thread handle.
pub struct ClofHandleT {
    handle: DynHandle,
    held: bool,
}

/// Creates a CLoF lock.
///
/// `hierarchy_config` is the text format of `clof-topology` (see its
/// `config` module); `composition` is the paper notation, innermost level
/// first (e.g. `"mcs-clh-tkt"`). Returns null on any error (bad UTF-8,
/// parse failure, level-count mismatch, unfair component).
///
/// # Safety
///
/// Both pointers must be valid NUL-terminated C strings.
#[no_mangle]
pub unsafe extern "C" fn clof_lock_new(
    hierarchy_config: *const c_char,
    composition: *const c_char,
) -> *mut ClofLockT {
    if hierarchy_config.is_null() || composition.is_null() {
        return std::ptr::null_mut();
    }
    let result = catch_unwind(|| {
        // SAFETY: Caller guarantees valid NUL-terminated strings.
        let config_str = unsafe { CStr::from_ptr(hierarchy_config) }.to_str().ok()?;
        // SAFETY: As above.
        let comp_str = unsafe { CStr::from_ptr(composition) }.to_str().ok()?;
        let hierarchy = config::from_text(config_str).ok()?;
        let kinds = parse_composition(comp_str).ok()?;
        let lock = DynClofLock::build(&hierarchy, &kinds).ok()?;
        Some(ClofLockT {
            lock: Arc::new(lock),
            ncpus: hierarchy.ncpus(),
        })
    });
    match result {
        Ok(Some(lock)) => Box::into_raw(Box::new(lock)),
        _ => std::ptr::null_mut(),
    }
}

/// Number of CPUs the lock's hierarchy covers, or -1 on null input.
///
/// # Safety
///
/// `lock` must be a pointer returned by [`clof_lock_new`] (or null).
#[no_mangle]
pub unsafe extern "C" fn clof_lock_ncpus(lock: *const ClofLockT) -> c_int {
    if lock.is_null() {
        return -1;
    }
    // SAFETY: Caller guarantees `lock` came from `clof_lock_new`.
    unsafe { (*lock).ncpus as c_int }
}

/// Creates a per-thread handle entering at `cpu`'s leaf cohort.
///
/// Returns null if `lock` is null or `cpu` is out of range. Handles are
/// not thread-safe: use one handle per thread.
///
/// # Safety
///
/// `lock` must be a pointer returned by [`clof_lock_new`] and must
/// outlive the handle.
#[no_mangle]
pub unsafe extern "C" fn clof_handle_new(lock: *const ClofLockT, cpu: c_int) -> *mut ClofHandleT {
    if lock.is_null() || cpu < 0 {
        return std::ptr::null_mut();
    }
    // SAFETY: Caller guarantees `lock` validity.
    let lock_ref = unsafe { &*lock };
    if cpu as usize >= lock_ref.ncpus {
        return std::ptr::null_mut();
    }
    let handle = lock_ref.lock.handle(cpu as usize);
    Box::into_raw(Box::new(ClofHandleT {
        handle,
        held: false,
    }))
}

/// Acquires the lock through `handle`. Returns 0 on success, -1 on null
/// input or if the handle already holds the lock (non-reentrant).
///
/// # Safety
///
/// `handle` must be a pointer returned by [`clof_handle_new`], used by
/// one thread at a time.
#[no_mangle]
pub unsafe extern "C" fn clof_acquire(handle: *mut ClofHandleT) -> c_int {
    if handle.is_null() {
        return -1;
    }
    // SAFETY: Caller guarantees exclusive, valid handle.
    let h = unsafe { &mut *handle };
    if h.held {
        return -1;
    }
    let ok = catch_unwind(AssertUnwindSafe(|| h.handle.acquire())).is_ok();
    if ok {
        h.held = true;
        0
    } else {
        -1
    }
}

/// Releases the lock through `handle`. Returns 0 on success, -1 on null
/// input or if the handle does not hold the lock.
///
/// # Safety
///
/// `handle` must be a pointer returned by [`clof_handle_new`], used by
/// one thread at a time.
#[no_mangle]
pub unsafe extern "C" fn clof_release(handle: *mut ClofHandleT) -> c_int {
    if handle.is_null() {
        return -1;
    }
    // SAFETY: Caller guarantees exclusive, valid handle.
    let h = unsafe { &mut *handle };
    if !h.held {
        return -1;
    }
    let ok = catch_unwind(AssertUnwindSafe(|| h.handle.release())).is_ok();
    if ok {
        h.held = false;
        0
    } else {
        -1
    }
}

/// Destroys a handle. Must not be holding the lock.
///
/// # Safety
///
/// `handle` must be a pointer from [`clof_handle_new`], not used after
/// this call. Passing null is a no-op.
#[no_mangle]
pub unsafe extern "C" fn clof_handle_free(handle: *mut ClofHandleT) {
    if !handle.is_null() {
        // SAFETY: Caller transfers ownership; pointer came from Box.
        drop(unsafe { Box::from_raw(handle) });
    }
}

/// Destroys a lock. All handles must be freed first.
///
/// # Safety
///
/// `lock` must be a pointer from [`clof_lock_new`], not used after this
/// call. Passing null is a no-op.
#[no_mangle]
pub unsafe extern "C" fn clof_lock_free(lock: *mut ClofLockT) {
    if !lock.is_null() {
        // SAFETY: Caller transfers ownership; pointer came from Box.
        drop(unsafe { Box::from_raw(lock) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ffi::CString;

    const CONFIG: &str = "ncpus 8\nlevel cache 0 0 1 1 2 2 3 3\nlevel numa 0 0 0 0 1 1 1 1\n";

    fn new_lock(comp: &str) -> *mut ClofLockT {
        let config = CString::new(CONFIG).unwrap();
        let comp = CString::new(comp).unwrap();
        // SAFETY: Valid C strings.
        unsafe { clof_lock_new(config.as_ptr(), comp.as_ptr()) }
    }

    #[test]
    fn create_acquire_release_destroy() {
        let lock = new_lock("mcs-clh-tkt");
        assert!(!lock.is_null());
        // SAFETY: Valid lock pointer.
        unsafe {
            assert_eq!(clof_lock_ncpus(lock), 8);
            let handle = clof_handle_new(lock, 3);
            assert!(!handle.is_null());
            assert_eq!(clof_acquire(handle), 0);
            assert_eq!(clof_acquire(handle), -1); // non-reentrant
            assert_eq!(clof_release(handle), 0);
            assert_eq!(clof_release(handle), -1); // not held
            clof_handle_free(handle);
            clof_lock_free(lock);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        // SAFETY: Null arguments are defined to return null / error.
        unsafe {
            assert!(clof_lock_new(std::ptr::null(), std::ptr::null()).is_null());
            assert!(new_lock("mcs").is_null()); // wrong level count
            assert!(new_lock("mcs-ttas-tkt").is_null()); // unfair component
            assert!(new_lock("bogus-clh-tkt").is_null()); // unknown lock
            let lock = new_lock("tkt-tkt-tkt");
            assert!(clof_handle_new(lock, 8).is_null()); // cpu out of range
            assert!(clof_handle_new(lock, -1).is_null());
            assert!(clof_handle_new(std::ptr::null(), 0).is_null());
            assert_eq!(clof_acquire(std::ptr::null_mut()), -1);
            assert_eq!(clof_release(std::ptr::null_mut()), -1);
            clof_lock_free(lock);
            clof_handle_free(std::ptr::null_mut()); // no-op
            clof_lock_free(std::ptr::null_mut()); // no-op
        }
    }

    #[test]
    fn mutual_exclusion_through_the_c_abi() {
        struct SendPtr<T>(*mut T);
        // SAFETY: The pointees are thread-safe (DynClofLock) or used
        // exclusively per thread (handles).
        unsafe impl<T> Send for SendPtr<T> {}

        let lock = new_lock("tkt-clh-tkt");
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut threads = Vec::new();
        for cpu in 0..8 {
            // SAFETY: Lock is valid and outlives the threads (joined
            // below).
            let handle = unsafe { clof_handle_new(lock, cpu) };
            assert!(!handle.is_null());
            let handle = SendPtr(handle);
            let counter = std::sync::Arc::clone(&counter);
            threads.push(std::thread::spawn(move || {
                let handle = handle;
                for _ in 0..500 {
                    // SAFETY: Exclusive use of this thread's handle.
                    unsafe {
                        assert_eq!(clof_acquire(handle.0), 0);
                        let v = counter.load(std::sync::atomic::Ordering::Relaxed);
                        counter.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                        assert_eq!(clof_release(handle.0), 0);
                    }
                }
                // SAFETY: Last use of the handle.
                unsafe { clof_handle_free(handle.0) };
            }));
        }
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 4000);
        // SAFETY: All handles freed; last use of the lock.
        unsafe { clof_lock_free(lock) };
    }
}
