//! Property tests for the hysteresis adaptation policy: no flapping on
//! steady input, bounded reaction time to a step change, and decision
//! sequences that are a pure function of the observation trace.

use clof_obs::{
    AdaptDecision, FinalistProfile, HysteresisConfig, HysteresisController, WindowObservation,
};
use clof_testkit::gen::{vec_of, Gen};
use clof_testkit::{props, tk_assert, tk_assert_eq, Config};

/// Two finalists with crossing profiles: "local" wins below ~5 threads,
/// "global" wins above, by comfortably more than any margin under test.
fn crossing() -> Vec<FinalistProfile> {
    vec![
        FinalistProfile::new("local", &[(1, 100.0), (4, 80.0), (8, 20.0)]).unwrap(),
        FinalistProfile::new("global", &[(1, 60.0), (4, 70.0), (8, 90.0)]).unwrap(),
    ]
}

/// An observation whose Little's-law concurrency estimate is exactly
/// `n` (λ = n·10⁶/s, acquire+hold = 1 µs per pass).
fn at_concurrency(n: u64) -> WindowObservation {
    WindowObservation {
        acquires_per_sec: n as f64 * 1e6,
        mean_acquire_ns: 500.0,
        mean_hold_ns: 500.0,
    }
}

fn controller(k: u64) -> HysteresisController {
    HysteresisController::new(
        crossing(),
        0,
        HysteresisConfig {
            k: k as u32,
            margin: 0.15,
        },
    )
    .expect("two finalists")
}

props! {
    config: Config::with_cases(64);

    /// Steady input never flaps: however long a constant-rate trace
    /// runs, the controller switches at most once — to the shape that
    /// is best at that concurrency — and then stays.
    fn steady_rates_never_flap(
        n in Gen::<u64>::int_range(1, 12),
        k in Gen::<u64>::int_range(1, 4),
        len in Gen::<u64>::int_range(10, 80),
    ) {
        let mut c = controller(k);
        let mut switches = 0u64;
        for _ in 0..len {
            if let AdaptDecision::Switch(_) = c.observe(&at_concurrency(n)) {
                switches += 1;
            }
        }
        tk_assert!(
            switches <= 1,
            "constant input at L={} produced {} switches (k={})",
            n, switches, k
        );
    }

    /// A step change is answered within k windows of the step (the
    /// issue's "K+1" bound with one window to spare): the low-regime
    /// prefix produces no switch, and the first switch after the step
    /// lands exactly k wins later, targeting the high-regime winner.
    fn step_change_switches_within_k_windows(
        k in Gen::<u64>::int_range(1, 5),
        prefix in Gen::<u64>::int_range(1, 20),
    ) {
        let mut c = controller(k);
        for i in 0..prefix {
            tk_assert_eq!(
                c.observe(&at_concurrency(1)),
                AdaptDecision::Stay,
                "no switch in the low regime (window {})", i
            );
        }
        let mut switched_at = None;
        for i in 0..k + 1 {
            if let AdaptDecision::Switch(target) = c.observe(&at_concurrency(8)) {
                tk_assert_eq!(target, 1, "must switch to the high-regime winner");
                switched_at = Some(i);
                break;
            }
        }
        tk_assert_eq!(
            switched_at,
            Some(k - 1),
            "k={} consecutive wins must trigger on window k", k
        );
    }

    /// A degenerate (zero-traffic) window interrupting the streak
    /// resets it: the switch arrives k wins after the *last* gap, never
    /// earlier. Silence is not evidence.
    fn degenerate_window_resets_the_streak(
        k in Gen::<u64>::int_range(2, 5),
    ) {
        let mut c = controller(k);
        // k-1 wins, then a dead window: no switch may have happened.
        for _ in 0..k - 1 {
            tk_assert_eq!(c.observe(&at_concurrency(8)), AdaptDecision::Stay);
        }
        tk_assert_eq!(
            c.observe(&WindowObservation {
                acquires_per_sec: 0.0,
                mean_acquire_ns: 0.0,
                mean_hold_ns: 0.0,
            }),
            AdaptDecision::Stay
        );
        // The streak restarted: k-1 further wins still must not switch.
        for _ in 0..k - 1 {
            tk_assert_eq!(c.observe(&at_concurrency(8)), AdaptDecision::Stay);
        }
        tk_assert_eq!(c.observe(&at_concurrency(8)), AdaptDecision::Switch(1));
    }

    /// Decisions are a pure function of the rate trace: two controllers
    /// fed the same arbitrary trace (including degenerate windows, where
    /// rate 0 maps to no traffic) emit identical decision sequences and
    /// end on the same active composition.
    fn decision_sequence_is_deterministic(
        trace in vec_of(Gen::<u64>::int_range(0, 10), 1, 60),
        k in Gen::<u64>::int_range(1, 4),
    ) {
        let mut a = controller(k);
        let mut b = controller(k);
        for &n in &trace {
            let obs = at_concurrency(n);
            tk_assert_eq!(a.observe(&obs), b.observe(&obs));
        }
        tk_assert_eq!(a.active(), b.active());
    }
}
