//! End-to-end scrape tests for the telemetry server: a real TCP client
//! against an ephemeral-port server, checking that /metrics and
//! /snapshot render the same counters, that /health flips on a
//! watchdog stall report, and that the server accounts for its own
//! scrape cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use clof_obs::{
    default_rules, http_get, serve, LevelSnapshot, LockSnapshot, LogHistogram, ServeConfig,
    StallReport,
};

/// A snapshot source backed by one shared counter, so the test can
/// advance the "lock" between scrapes and freeze it for comparisons.
fn counter_backed(acquires: Arc<AtomicU64>) -> impl Fn() -> LockSnapshot + Send + Sync {
    move || {
        let n = acquires.load(Ordering::SeqCst);
        let hist = LogHistogram::new();
        for _ in 0..n.min(64) {
            hist.record(250);
        }
        LockSnapshot {
            name: "e2e-lock".into(),
            levels: vec![LevelSnapshot {
                level: 0,
                acquires: n,
                contended_acquires: n / 2,
                passes_taken: n / 3,
                passes_declined: n / 7,
                keep_local_resets: 0,
                hint_fast_hits: 0,
                acquire_ns: hist.snapshot(),
            }],
            hold_ns: hist.snapshot(),
            events_recorded: n,
            events_dropped: 0,
            events: Vec::new(),
        }
    }
}

fn start(acquires: Arc<AtomicU64>) -> clof_obs::ServerHandle {
    serve(
        "127.0.0.1:0",
        Arc::new(counter_backed(acquires)),
        ServeConfig {
            rules: default_rules(1_000_000, 1_000_000),
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

/// Pulls the value of `metric{...}` from a Prometheus text body.
fn prom_value(body: &str, metric_prefix: &str) -> Option<u64> {
    body.lines()
        .find(|l| l.starts_with(metric_prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// Pulls `"field":<n>` out of a JSON body without a parser.
fn json_value(body: &str, field: &str) -> Option<u64> {
    let key = format!("\"{field}\":");
    let at = body.find(&key)? + key.len();
    let rest = &body[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[test]
fn metrics_and_snapshot_agree_on_counter_totals() {
    let acquires = Arc::new(AtomicU64::new(0));
    let server = start(Arc::clone(&acquires));

    // Advance the lock, then freeze it: both endpoints must now render
    // the same totals because they share the snapshot closure.
    acquires.store(4242, Ordering::SeqCst);
    let (s, metrics) = http_get(server.addr(), "/metrics").expect("scrape /metrics");
    assert_eq!(s, 200);
    let (s, snapshot) = http_get(server.addr(), "/snapshot").expect("scrape /snapshot");
    assert_eq!(s, 200);

    let prom = prom_value(&metrics, "clof_acquires_total{lock=\"e2e-lock\",level=\"0\"}")
        .expect("acquires series in /metrics");
    let json = json_value(&snapshot, "acquires").expect("acquires field in /snapshot");
    assert_eq!(prom, 4242, "/metrics renders the live counter");
    assert_eq!(json, 4242, "/snapshot renders the live counter");

    // The JSON side also carries the audit ring and the server's own
    // accounting, which the Prometheus side mirrors as series.
    assert!(snapshot.contains("\"audit\":"), "{snapshot}");
    assert!(snapshot.contains("\"server\":"), "{snapshot}");
    assert!(
        metrics.contains("clof_obs_scrape_duration_ns"),
        "self-accounting series missing: {metrics}"
    );
    assert!(metrics.contains("clof_obs_build_info{version="), "{metrics}");
}

#[test]
fn health_flips_on_stall_and_scrapes_are_self_accounted() {
    let acquires = Arc::new(AtomicU64::new(7));
    let server = start(Arc::clone(&acquires));

    let (s, body) = http_get(server.addr(), "/health").expect("healthy scrape");
    assert_eq!((s, body.as_str()), (200, "ok\n"));

    // A watchdog stall report must flip /health to 503 and surface on
    // /alerts as the liveness pseudo-rule.
    server.note_stall(&StallReport {
        thread: 11,
        waited_ns: 750_000_000,
        epoch: 3,
        holders: vec![(2, 750_000_000)],
        waiting: 4,
        context: "e2e stall".into(),
    });
    let (s, body) = http_get(server.addr(), "/health").expect("stalled scrape");
    assert_eq!((s, body.as_str()), (503, "stalled\n"));
    let (_, alerts) = http_get(server.addr(), "/alerts").expect("alerts scrape");
    assert!(alerts.contains("progress-stall"), "{alerts}");
    assert!(alerts.contains("e2e stall"), "{alerts}");

    // Every hit so far is visible in the server's own accounting: the
    // next /metrics body reports the scrapes that preceded it, and the
    // request counter covers all of them.
    let before = server.requests();
    assert_eq!(before, 3);
    let (_, metrics) = http_get(server.addr(), "/metrics").expect("accounting scrape");
    let health_hits = prom_value(&metrics, "clof_obs_scrapes_total{endpoint=\"health\"}")
        .expect("per-endpoint hit counter");
    assert_eq!(health_hits, 2, "both /health probes are accounted");
    assert_eq!(server.requests(), 4);
}
