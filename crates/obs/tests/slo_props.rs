//! Property tests for the SLO burn-rate evaluator: steady in-budget
//! traffic never alerts, a step to all-bad traffic fires exactly when
//! the slow window fills (plus hysteresis), and evaluation is a pure
//! function of the observation trace.

use clof_obs::{
    LockSnapshot, LogHistogram, render_alerts_json, Sampler, SloEvaluator, SloRule, SloSignal,
    WindowRates,
};
use clof_testkit::gen::{vec_of, Gen};
use clof_testkit::{props, tk_assert, tk_assert_eq, Config};

/// A one-second window whose hold histogram carries `good` samples at
/// 100 ns and `bad` samples at 1 ms, judged against a 1 µs objective.
fn window(good: u64, bad: u64) -> WindowRates {
    let hold = LogHistogram::new();
    for _ in 0..good {
        hold.record(100);
    }
    for _ in 0..bad {
        hold.record(1_000_000);
    }
    let snap = |h: &LogHistogram| LockSnapshot {
        name: "slo-props".into(),
        levels: Vec::new(),
        hold_ns: h.snapshot(),
        events_recorded: 0,
        events_dropped: 0,
        events: Vec::new(),
    };
    let mut s = Sampler::new();
    s.tick_at(0, snap(&LogHistogram::new()));
    s.tick_at(1_000_000_000, snap(&hold))
        .expect("one-second window")
}

/// A hold-time p99 rule whose burn threshold equals the post-step
/// per-tick burn (bad fraction 1.0 / budget 0.01 = 100), so the alert
/// condition is "every tick in both windows is all-bad".
fn rule(fast: usize, slow: usize, k: usize) -> SloRule {
    SloRule {
        name: "hold-p99".into(),
        signal: SloSignal::HoldTime,
        objective_ns: 1_000,
        budget: 0.01,
        fast_window: fast,
        slow_window: slow,
        burn_threshold: 100.0,
        k,
    }
}

props! {
    config: Config::with_cases(64);

    /// However long steady in-budget traffic runs — and whatever the
    /// window/hysteresis geometry — nothing ever fires and the rendered
    /// alert state stays quiet.
    fn steady_good_rates_never_alert(
        fast in Gen::<u64>::int_range(1, 4),
        extra in Gen::<u64>::int_range(0, 8),
        k in Gen::<u64>::int_range(1, 3),
        len in Gen::<u64>::int_range(1, 40),
        good in Gen::<u64>::int_range(1, 500),
    ) {
        let slow = fast + extra;
        let mut eval = SloEvaluator::new(vec![rule(
            fast as usize, slow as usize, k as usize,
        )]);
        for tick in 0..len {
            let transitions = eval.observe(&window(good, 0));
            tk_assert!(
                transitions.is_empty(),
                "steady good traffic produced a transition at tick {}", tick
            );
        }
        tk_assert!(!eval.any_firing(), "evaluator firing after all-good trace");
        tk_assert!(
            render_alerts_json(&eval.alerts()).contains("\"firing\":false"),
            "rendered alert state should be quiet"
        );
    }

    /// After a step from all-good to all-bad traffic, the alert fires
    /// on exactly the (slow_window + k - 1)-th hot tick: the slow
    /// window must fill before the burn condition holds, then the
    /// k-consecutive hysteresis adds k - 1 more ticks. It never fires
    /// earlier, whatever the good-traffic prefix length.
    fn step_fires_exactly_when_the_slow_window_fills(
        fast in Gen::<u64>::int_range(1, 4),
        extra in Gen::<u64>::int_range(0, 6),
        k in Gen::<u64>::int_range(1, 3),
        prefix in Gen::<u64>::int_range(0, 10),
    ) {
        let slow = fast + extra;
        let mut eval = SloEvaluator::new(vec![rule(
            fast as usize, slow as usize, k as usize,
        )]);
        for _ in 0..prefix {
            let transitions = eval.observe(&window(100, 0));
            tk_assert!(transitions.is_empty(), "no alert before the step");
        }
        let expected = slow + k - 1;
        for hot_tick in 1..=expected {
            let transitions = eval.observe(&window(0, 100));
            if hot_tick < expected {
                tk_assert!(
                    transitions.is_empty(),
                    "fired early on hot tick {} (expected {})", hot_tick, expected
                );
            } else {
                tk_assert_eq!(
                    transitions.len(), 1,
                    "exactly one transition on hot tick {}", hot_tick
                );
                tk_assert!(eval.any_firing(), "evaluator firing after the transition");
            }
        }
    }

    /// Evaluation is deterministic: two evaluators fed the identical
    /// observation trace agree on every transition and on the rendered
    /// alert state, byte for byte.
    fn deterministic_sequences(
        fast in Gen::<u64>::int_range(1, 3),
        extra in Gen::<u64>::int_range(0, 4),
        k in Gen::<u64>::int_range(1, 3),
        bads in vec_of(Gen::<u64>::int_range(0, 120), 1, 30),
    ) {
        let slow = fast + extra;
        let mk = || SloEvaluator::new(vec![rule(
            fast as usize, slow as usize, k as usize,
        )]);
        let (mut a, mut b) = (mk(), mk());
        for bad in &bads {
            let (ra, rb) = (
                a.observe(&window(100, *bad)),
                b.observe(&window(100, *bad)),
            );
            tk_assert_eq!(
                format!("{ra:?}"), format!("{rb:?}"),
                "identical traces must yield identical transitions"
            );
        }
        tk_assert_eq!(
            render_alerts_json(&a.alerts()),
            render_alerts_json(&b.alerts()),
            "identical traces must render identical alert state"
        );
    }
}
