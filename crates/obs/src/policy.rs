//! Contention-driven adaptation policy: which finalist composition
//! should be holding the lock *right now*?
//!
//! The offline selector (`clof::select`) ranks compositions per
//! contention regime and leaves a finalist set — typically one winner
//! per regime. At run time the regime drifts; this module decides when
//! the drift is real enough to pay for a hot-swap.
//!
//! The controller is deliberately tiny and fully deterministic:
//!
//! 1. Each window, estimate the offered **concurrency** from observed
//!    rates via Little's law: `L = λ · W`, where `λ` is acquisitions
//!    per second and `W` is the mean time a thread spends per
//!    acquisition (waiting plus holding). `L` approximates "how many
//!    threads are banging on this lock", without asking the OS.
//! 2. Interpolate each finalist's offline throughput profile at `L`
//!    and pick the best (**first index wins ties**, so the decision is
//!    a pure function of the rate trace).
//! 3. **Hysteresis**: only emit [`AdaptDecision::Switch`] after the
//!    *same* challenger has beaten the active composition by at least
//!    `margin` for `k` consecutive windows. Degenerate windows (no
//!    traffic, non-finite inputs) reset the streak — silence is not
//!    evidence.
//!
//! Swaps are expensive (a quiescence drain) and flapping between two
//! near-equal shapes is strictly worse than sticking with either; the
//! `k × margin` debounce is what makes the policy safe to leave on.

use crate::WindowRates;

/// One sampling window, reduced to what the policy needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowObservation {
    /// Lock acquisitions per second in the window.
    pub acquires_per_sec: f64,
    /// Mean time from wanting the lock to holding it (ns).
    pub mean_acquire_ns: f64,
    /// Mean critical-section hold time (ns).
    pub mean_hold_ns: f64,
}

impl WindowObservation {
    /// Reduces a [`WindowRates`] to a policy observation, using the
    /// innermost level's mean acquire latency and the window's mean
    /// hold time.
    pub fn from_rates(rates: &WindowRates) -> Self {
        let mean = |count: u64, sum: u64| {
            if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            }
        };
        let acq = rates
            .delta
            .levels
            .first()
            .map_or(0.0, |l| mean(l.acquire_ns.count, l.acquire_ns.sum));
        WindowObservation {
            acquires_per_sec: rates.acquires_per_sec,
            mean_acquire_ns: acq,
            mean_hold_ns: mean(rates.delta.hold_ns.count, rates.delta.hold_ns.sum),
        }
    }

    /// Little's-law concurrency estimate: mean number of threads
    /// concurrently engaged with the lock (waiting or holding).
    /// Non-finite or negative inputs yield `None` — the window is
    /// unusable as evidence.
    pub fn concurrency(&self) -> Option<f64> {
        let per_pass_s = (self.mean_acquire_ns + self.mean_hold_ns) / 1e9;
        let l = self.acquires_per_sec * per_pass_s;
        (l.is_finite() && l > 0.0).then_some(l)
    }
}

/// A finalist composition's offline throughput profile: measured
/// `(threads, acquisitions/s)` points from the selection benchmark.
#[derive(Debug, Clone)]
pub struct FinalistProfile {
    /// Composition name (e.g. `"mcs-clh-tkt"`), resolvable by the
    /// caller back to a `&[LockKind]`.
    pub name: String,
    points: Vec<(f64, f64)>,
}

impl FinalistProfile {
    /// Builds a profile from `(threads, throughput)` measurements.
    /// Points are sorted by thread count; non-finite entries are
    /// dropped. At least one valid point is required.
    pub fn new(name: impl Into<String>, points: &[(usize, f64)]) -> Option<Self> {
        let mut pts: Vec<(f64, f64)> = points
            .iter()
            .filter(|(_, y)| y.is_finite() && *y >= 0.0)
            .map(|&(x, y)| (x as f64, y))
            .collect();
        if pts.is_empty() {
            return None;
        }
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        Some(FinalistProfile {
            name: name.into(),
            points: pts,
        })
    }

    /// Expected throughput at concurrency `l`: piecewise-linear between
    /// measured points, clamped to the endpoints outside the measured
    /// range (extrapolation invents cliffs the benchmark never saw).
    pub fn throughput_at(&self, l: f64) -> f64 {
        let pts = &self.points;
        if l <= pts[0].0 {
            return pts[0].1;
        }
        if l >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        for w in pts.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            if l <= x1 {
                let t = if x1 > x0 { (l - x0) / (x1 - x0) } else { 0.0 };
                return y0 + t * (y1 - y0);
            }
        }
        pts[pts.len() - 1].1
    }
}

/// Debounce parameters for the hysteresis controller.
#[derive(Debug, Clone, Copy)]
pub struct HysteresisConfig {
    /// Consecutive windows the same challenger must win before a
    /// switch is emitted. `k = 0` behaves as `k = 1` (every decision
    /// needs at least one observation).
    pub k: u32,
    /// Relative advantage required: challenger must predict more than
    /// `active × (1 + margin)` throughput. `0.15` means "15% better".
    pub margin: f64,
}

impl Default for HysteresisConfig {
    fn default() -> Self {
        HysteresisConfig { k: 3, margin: 0.15 }
    }
}

/// What the controller wants done after a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptDecision {
    /// Keep the active composition.
    Stay,
    /// Swap to the finalist at this index (into the profile slice the
    /// controller was built with).
    Switch(usize),
}

/// Streak-counting comparator over the finalist profiles.
///
/// Feed it one [`WindowObservation`] per sampling window; it returns
/// [`AdaptDecision::Switch`] exactly when the hysteresis condition is
/// met, and updates its notion of the active composition when it does
/// (the caller is expected to perform the swap; on failure, call
/// [`set_active`](Self::set_active) to resynchronise).
#[derive(Debug)]
pub struct HysteresisController {
    profiles: Vec<FinalistProfile>,
    config: HysteresisConfig,
    active: usize,
    candidate: Option<usize>,
    streak: u32,
}

impl HysteresisController {
    /// A controller over `profiles`, starting with `active` holding
    /// the lock. Returns `None` if `profiles` is empty or `active` is
    /// out of range.
    pub fn new(
        profiles: Vec<FinalistProfile>,
        active: usize,
        config: HysteresisConfig,
    ) -> Option<Self> {
        if profiles.is_empty() || active >= profiles.len() {
            return None;
        }
        Some(HysteresisController {
            profiles,
            config,
            active,
            candidate: None,
            streak: 0,
        })
    }

    /// Index of the composition the controller believes is active.
    pub fn active(&self) -> usize {
        self.active
    }

    /// The finalist profiles, in controller index order.
    pub fn profiles(&self) -> &[FinalistProfile] {
        &self.profiles
    }

    /// Forces the active index (e.g. after a failed or external swap).
    /// Resets the streak. Out-of-range indices are ignored.
    pub fn set_active(&mut self, active: usize) {
        if active < self.profiles.len() {
            self.active = active;
            self.candidate = None;
            self.streak = 0;
        }
    }

    /// Feeds one window. Deterministic: the decision sequence is a
    /// pure function of the observation sequence.
    ///
    /// Every decision — including holds — is recorded into the global
    /// [`crate::audit`] ring with the inputs that justified it, so an
    /// operator can replay the controller's reasoning from `/snapshot`
    /// or `clof top` after the fact. That is a handful of relaxed
    /// stores once per *window*, nowhere near the lock hot path.
    pub fn observe(&mut self, obs: &WindowObservation) -> AdaptDecision {
        let active = self.active as u32;
        let Some(l) = obs.concurrency() else {
            // No usable evidence this window; a real shift will still
            // be there next window, a glitch won't.
            self.candidate = None;
            self.streak = 0;
            crate::audit::global().record(
                obs.acquires_per_sec,
                0.0,
                active,
                active,
                0.0,
                0,
                crate::audit::AuditReason::NoEvidence,
                0,
            );
            return AdaptDecision::Stay;
        };
        // Best challenger at this concurrency, first index wins ties.
        let (best, best_tp) = self
            .profiles
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.throughput_at(l)))
            .fold((0, f64::NEG_INFINITY), |acc, (i, tp)| {
                if tp > acc.1 {
                    (i, tp)
                } else {
                    acc
                }
            });
        let active_tp = self.profiles[self.active].throughput_at(l);
        let rel_margin = if active_tp > 0.0 {
            best_tp / active_tp - 1.0
        } else {
            0.0
        };
        let audit = |margin: f64, streak: u32, reason: crate::audit::AuditReason| {
            crate::audit::global().record(
                obs.acquires_per_sec,
                l,
                active,
                best as u32,
                margin,
                streak,
                reason,
                0,
            );
        };
        if best == self.active || best_tp <= active_tp * (1.0 + self.config.margin) {
            self.candidate = None;
            self.streak = 0;
            audit(
                rel_margin,
                0,
                if best == self.active {
                    crate::audit::AuditReason::ActiveBest
                } else {
                    crate::audit::AuditReason::WithinMargin
                },
            );
            return AdaptDecision::Stay;
        }
        if self.candidate == Some(best) {
            self.streak += 1;
        } else {
            self.candidate = Some(best);
            self.streak = 1;
        }
        if self.streak >= self.config.k.max(1) {
            audit(rel_margin, self.streak, crate::audit::AuditReason::Switched);
            self.active = best;
            self.candidate = None;
            self.streak = 0;
            AdaptDecision::Switch(best)
        } else {
            audit(
                rel_margin,
                self.streak,
                crate::audit::AuditReason::StreakBuilding,
            );
            AdaptDecision::Stay
        }
    }

    /// [`observe`](Self::observe) straight from a sampler window.
    pub fn observe_rates(&mut self, rates: &WindowRates) -> AdaptDecision {
        self.observe(&WindowObservation::from_rates(rates))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Two shapes with crossing profiles: "local" wins at low
    // concurrency, "global" wins at high.
    fn crossing() -> Vec<FinalistProfile> {
        vec![
            FinalistProfile::new("local", &[(1, 100.0), (4, 80.0), (8, 20.0)]).unwrap(),
            FinalistProfile::new("global", &[(1, 60.0), (4, 70.0), (8, 90.0)]).unwrap(),
        ]
    }

    fn obs(acq_per_sec: f64, per_pass_ns: f64) -> WindowObservation {
        WindowObservation {
            acquires_per_sec: acq_per_sec,
            mean_acquire_ns: per_pass_ns / 2.0,
            mean_hold_ns: per_pass_ns / 2.0,
        }
    }

    // L = λ · W: 1e9/per_pass_ns · per_pass_ns/1e9 · n = n threads.
    fn at_concurrency(n: f64) -> WindowObservation {
        obs(n * 1e6, 1e3)
    }

    #[test]
    fn concurrency_is_littles_law() {
        let l = at_concurrency(6.0).concurrency().unwrap();
        assert!((l - 6.0).abs() < 1e-9, "{l}");
        assert!(obs(0.0, 1e3).concurrency().is_none(), "no traffic, no L");
        assert!(obs(f64::NAN, 1e3).concurrency().is_none());
    }

    #[test]
    fn profile_interpolates_and_clamps() {
        let p = FinalistProfile::new("p", &[(2, 10.0), (4, 30.0)]).unwrap();
        assert_eq!(p.throughput_at(1.0), 10.0, "clamp below");
        assert_eq!(p.throughput_at(9.0), 30.0, "clamp above");
        assert!((p.throughput_at(3.0) - 20.0).abs() < 1e-9, "midpoint");
    }

    #[test]
    fn switch_requires_k_consecutive_wins() {
        let mut c = HysteresisController::new(
            crossing(),
            0,
            HysteresisConfig { k: 3, margin: 0.15 },
        )
        .unwrap();
        // High concurrency: "global" (90) beats "local" (20) by > 15%.
        assert_eq!(c.observe(&at_concurrency(8.0)), AdaptDecision::Stay);
        assert_eq!(c.observe(&at_concurrency(8.0)), AdaptDecision::Stay);
        assert_eq!(c.observe(&at_concurrency(8.0)), AdaptDecision::Switch(1));
        assert_eq!(c.active(), 1);
        // Once switched, the same evidence is no longer a reason to move.
        assert_eq!(c.observe(&at_concurrency(8.0)), AdaptDecision::Stay);
    }

    #[test]
    fn degenerate_window_resets_the_streak() {
        let mut c = HysteresisController::new(
            crossing(),
            0,
            HysteresisConfig { k: 2, margin: 0.1 },
        )
        .unwrap();
        assert_eq!(c.observe(&at_concurrency(8.0)), AdaptDecision::Stay);
        // Silence between wins: streak restarts.
        assert_eq!(c.observe(&obs(0.0, 0.0)), AdaptDecision::Stay);
        assert_eq!(c.observe(&at_concurrency(8.0)), AdaptDecision::Stay);
        assert_eq!(c.observe(&at_concurrency(8.0)), AdaptDecision::Switch(1));
    }

    #[test]
    fn within_margin_never_switches() {
        // "global" at L=4 (70) beats "local" (80)? No — active wins; and
        // even where global edges ahead slightly, margin suppresses it.
        let mut c = HysteresisController::new(
            crossing(),
            0,
            HysteresisConfig { k: 1, margin: 0.15 },
        )
        .unwrap();
        for _ in 0..50 {
            assert_eq!(c.observe(&at_concurrency(4.0)), AdaptDecision::Stay);
        }
        assert_eq!(c.active(), 0);
    }

    #[test]
    fn every_decision_lands_in_the_audit_ring() {
        let ring = crate::audit::global();
        let before = ring.recorded();
        let mut c = HysteresisController::new(
            crossing(),
            0,
            HysteresisConfig { k: 2, margin: 0.15 },
        )
        .unwrap();
        // L = 7 is used by no other test, so this test's records are
        // identifiable in the shared global ring even under concurrent
        // test threads.
        c.observe(&at_concurrency(2.0)); // active best → hold
        c.observe(&obs(0.0, 0.0)); // no evidence
        c.observe(&at_concurrency(7.0)); // streak building
        c.observe(&at_concurrency(7.0)); // switch
        assert!(
            ring.recorded() >= before + 4,
            "one audit record per decision"
        );
        let entries = ring.entries();
        let mine: Vec<_> = entries
            .iter()
            .filter(|r| r.seq >= before && (r.concurrency - 7.0).abs() < 1e-6)
            .collect();
        use crate::audit::AuditReason::*;
        assert!(
            entries.iter().any(|r| r.seq >= before && r.reason == NoEvidence),
            "the no-evidence hold must be audited too"
        );
        assert!(mine.iter().any(|r| r.reason == StreakBuilding));
        let switched = mine.iter().find(|r| r.reason == Switched).unwrap();
        assert_eq!((switched.active, switched.best), (0, 1));
        // local at L=7 interpolates to 35, global to 85: margin ≈ 1.43.
        assert!(switched.margin > 1.0, "{}", switched.margin);
        assert_eq!(switched.streak, 2);
    }

    #[test]
    fn set_active_resynchronises_after_failed_swap() {
        let mut c = HysteresisController::new(
            crossing(),
            0,
            HysteresisConfig { k: 1, margin: 0.1 },
        )
        .unwrap();
        assert_eq!(c.observe(&at_concurrency(8.0)), AdaptDecision::Switch(1));
        // The swap failed; roll the controller back.
        c.set_active(0);
        assert_eq!(c.active(), 0);
        assert_eq!(c.observe(&at_concurrency(8.0)), AdaptDecision::Switch(1));
    }
}
