//! Per-site wait/hold attribution: the contention profiler's data plane.
//!
//! Every registered lock site ([`crate::registry`]) owns one slot of
//! striped accumulators here, written from the lock protocol's existing
//! span hooks:
//!
//! * **wait** — time between acquire-entry and acquire-return, recorded
//!   per site *and* per (level, node) so a hot site can be broken down
//!   into "which node of which level absorbs the waiting".
//! * **hold** — critical-section time, recorded per site on release.
//! * **traffic** — acquires and intra-level lock passes. The pass
//!   counter doubles as the waits-for graph's inversion clock: a waiter
//!   that watches it advance past the `keep_local` bound *H* without
//!   getting the lock is being starved behind local hand-offs
//!   ([`crate::waitgraph`]).
//!
//! The write path is wait-free: one relaxed load of the site id (from
//! the lock's [`SiteAnchor`]) plus relaxed `fetch_add`s on a
//! cache-line-aligned stripe picked by [`thread_tag`]. Counters are
//! cumulative and monotone; [`ProfileSnapshot::delta`] pairs snapshots
//! by (site id, slot epoch), so windowed `clof profile` / `clof top`
//! deltas are exact even while slots are reused between windows.
//!
//! Exporters: [`render_folded`] emits `site;L<level>;n<node> <wait_ns>`
//! folded stacks for standard flamegraph tooling; [`render_profile_json`]
//! is the `/profile` endpoint body.
//!
//! [`SiteAnchor`]: crate::registry::SiteAnchor
//! [`thread_tag`]: crate::thread_tag

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::export::json_escape;
use crate::registry::{self, INVALID_SITE, MAX_SITES};
use crate::waitgraph::GraphFinding;
use crate::{now_ns, thread_tag};

/// Marker literal proving profiler code is linked in: rendered into the
/// `/profile` body and the `clof profile` header, grepped for (absence)
/// in the default binary by CI.
pub const PROFILE_MARKER: &str = "clof-profile-v1";

/// Stripes per accumulator (power of two; threads hash by
/// [`thread_tag`] so concurrent recorders rarely share a line).
pub const PROFILE_STRIPES: usize = 8;

/// One cache line holding a pair of counters.
#[repr(align(128))]
#[derive(Debug, Default)]
struct StripeCell {
    a: AtomicU64,
    b: AtomicU64,
}

/// A pair of striped monotone counters (sum-style `a`, count-style `b`).
#[derive(Debug, Default)]
struct Striped {
    cells: [StripeCell; PROFILE_STRIPES],
}

impl Striped {
    #[inline]
    fn add(&self, a: u64, b: u64) {
        let cell = &self.cells[thread_tag() as usize & (PROFILE_STRIPES - 1)];
        cell.a.fetch_add(a, Ordering::Relaxed);
        cell.b.fetch_add(b, Ordering::Relaxed);
    }

    fn sum(&self) -> (u64, u64) {
        self.cells.iter().fold((0, 0), |(a, b), c| {
            (
                a.wrapping_add(c.a.load(Ordering::Relaxed)),
                b.wrapping_add(c.b.load(Ordering::Relaxed)),
            )
        })
    }

    fn reset(&self) {
        for c in &self.cells {
            c.a.store(0, Ordering::Relaxed);
            c.b.store(0, Ordering::Relaxed);
        }
    }
}

/// Per-(level, node) wait accumulator. Node observers hold an `Arc` to
/// their accumulator and record into it directly — no lookup on the hot
/// path; the profile slot keeps a `Weak` for snapshots, so a dropped
/// lock tree prunes itself.
#[derive(Debug)]
pub struct NodeAcc {
    level: u8,
    node: u32,
    wait: Striped,
}

impl NodeAcc {
    /// Hierarchy level of the node (0 = leaf).
    pub fn level(&self) -> u8 {
        self.level
    }

    /// The node's trace tag.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Records one acquire's wait time at this node.
    #[inline]
    pub fn record_wait(&self, ns: u64) {
        self.wait.add(ns, 1);
    }
}

/// One site's slot of accumulators.
#[derive(Debug, Default)]
struct SiteCell {
    /// Mirrors the registry slot's claim epoch; snapshots pair on it.
    epoch: AtomicU64,
    /// (wait_ns, waits) — whole-acquire wait at the site.
    wait: Striped,
    /// (hold_ns, holds) — critical-section time.
    hold: Striped,
    /// (acquires, passes) — traffic; passes clock the inversion check.
    traffic: Striped,
    /// (park_ns, parks) — time waiters of this site spent blocked in
    /// the spin-then-park waiting layer, and completed park episodes.
    /// Zero unless the `park` feature is compiled into the lock crates.
    park: Striped,
    /// Live node accumulators (pruned of dead `Weak`s on snapshot).
    nodes: Mutex<Vec<Weak<NodeAcc>>>,
}

/// The profiler's fixed site-indexed accumulator table.
#[derive(Debug)]
pub struct ContentionProfile {
    sites: Box<[SiteCell]>,
}

impl ContentionProfile {
    fn new() -> Self {
        ContentionProfile {
            sites: (0..MAX_SITES)
                .map(|_| SiteCell::default())
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    #[inline]
    fn cell(&self, id: u32) -> Option<&SiteCell> {
        if id == INVALID_SITE {
            return None;
        }
        self.sites.get(id as usize)
    }

    /// Zeroes a site's accumulators for a fresh registration (called by
    /// the registry when a slot is claimed).
    pub fn reset_site(&self, id: u32, epoch: u64) {
        if let Some(cell) = self.cell(id) {
            cell.wait.reset();
            cell.hold.reset();
            cell.traffic.reset();
            cell.park.reset();
            cell.nodes
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .clear();
            cell.epoch.store(epoch, Ordering::Release);
        }
    }

    /// Records one acquire's whole wait time at a site.
    #[inline]
    pub fn record_wait(&self, id: u32, ns: u64) {
        if let Some(cell) = self.cell(id) {
            cell.wait.add(ns, 1);
        }
    }

    /// Records one critical section's hold time at a site.
    #[inline]
    pub fn record_hold(&self, id: u32, ns: u64) {
        if let Some(cell) = self.cell(id) {
            cell.hold.add(ns, 1);
        }
    }

    /// Records one completed park episode of `ns` nanoseconds by a
    /// waiter of this site (the site is carried in a thread-local on the
    /// waiter side; the park/wake layer itself is site-oblivious).
    #[inline]
    pub fn record_park(&self, id: u32, ns: u64) {
        if let Some(cell) = self.cell(id) {
            cell.park.add(ns, 1);
        }
    }

    /// Counts one completed acquire at a site.
    #[inline]
    pub fn record_acquire(&self, id: u32) {
        if let Some(cell) = self.cell(id) {
            cell.traffic.add(1, 0);
        }
    }

    /// Counts one intra-level lock pass at a site (the inversion clock).
    #[inline]
    pub fn record_pass(&self, id: u32) {
        if let Some(cell) = self.cell(id) {
            cell.traffic.add(0, 1);
        }
    }

    /// Total passes recorded at a site so far.
    #[inline]
    pub fn passes(&self, id: u32) -> u64 {
        self.cell(id).map_or(0, |c| c.traffic.sum().1)
    }

    /// Registers a (level, node) wait accumulator under a site and
    /// returns the owning handle for the node observer.
    pub fn register_node(&self, id: u32, level: u8, node: u32) -> Arc<NodeAcc> {
        let acc = Arc::new(NodeAcc {
            level,
            node,
            wait: Striped::default(),
        });
        if let Some(cell) = self.cell(id) {
            cell.nodes
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(Arc::downgrade(&acc));
        }
        acc
    }

    /// Re-attaches an existing node accumulator under `id` — the
    /// adaptation rebind path: when a lock adopts another's site, its
    /// per-node history (held alive by the lock's own `Arc`s) follows
    /// it onto the adopted id. The stale `Weak` left in the old site's
    /// cell is cleared when that slot is reclaimed or pruned on
    /// snapshot once the lock drops.
    pub fn attach_node(&self, id: u32, acc: &Arc<NodeAcc>) {
        if let Some(cell) = self.cell(id) {
            cell.nodes
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(Arc::downgrade(acc));
        }
    }

    /// A point-in-time copy of every live site's accumulators, joined
    /// with the registry metadata.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let mut sites = Vec::new();
        for info in registry::global().sites() {
            let Some(cell) = self.cell(info.id) else {
                continue;
            };
            let (wait_ns, waits) = cell.wait.sum();
            let (hold_ns, holds) = cell.hold.sum();
            let (acquires, passes) = cell.traffic.sum();
            let (park_ns, parks) = cell.park.sum();
            let mut nodes = Vec::new();
            {
                let mut list = cell.nodes.lock().unwrap_or_else(|p| p.into_inner());
                list.retain(|w| w.strong_count() > 0);
                for weak in list.iter() {
                    if let Some(acc) = weak.upgrade() {
                        let (w_ns, w_n) = acc.wait.sum();
                        nodes.push(NodeProfile {
                            level: acc.level,
                            node: acc.node,
                            wait_ns: w_ns,
                            waits: w_n,
                        });
                    }
                }
            }
            nodes.sort_by_key(|n| (n.level, n.node));
            sites.push(SiteProfile {
                id: info.id,
                epoch: cell.epoch.load(Ordering::Acquire),
                generation: info.generation,
                refs: info.refs,
                label: info.label,
                shape: info.shape,
                location: format!("{}:{}", info.file, info.line),
                wait_ns,
                waits,
                hold_ns,
                holds,
                acquires,
                passes,
                park_ns,
                parks,
                nodes,
            });
        }
        ProfileSnapshot {
            taken_ns: now_ns(),
            sites,
        }
    }
}

/// The process-global profile table the lock hooks record into.
pub fn global() -> &'static ContentionProfile {
    static PROF: OnceLock<ContentionProfile> = OnceLock::new();
    PROF.get_or_init(ContentionProfile::new)
}

/// One (level, node) wait breakdown within a site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeProfile {
    /// Hierarchy level (0 = leaf).
    pub level: u8,
    /// Node trace tag.
    pub node: u32,
    /// Wait nanoseconds attributed to this node.
    pub wait_ns: u64,
    /// Acquires that waited at this node.
    pub waits: u64,
}

/// One site's profile at snapshot time.
#[derive(Debug, Clone)]
pub struct SiteProfile {
    /// Site id (registry slot).
    pub id: u32,
    /// Slot claim epoch (snapshot pairing key).
    pub epoch: u64,
    /// Adoption generation (adaptation swaps survived).
    pub generation: u64,
    /// Live anchors on the site.
    pub refs: u32,
    /// Composition label.
    pub label: String,
    /// Topology shape line.
    pub shape: String,
    /// Construction `file:line`.
    pub location: String,
    /// Total wait nanoseconds at the site.
    pub wait_ns: u64,
    /// Acquires that recorded a wait.
    pub waits: u64,
    /// Total hold nanoseconds.
    pub hold_ns: u64,
    /// Critical sections completed.
    pub holds: u64,
    /// Acquires completed.
    pub acquires: u64,
    /// Intra-level passes taken.
    pub passes: u64,
    /// Nanoseconds waiters spent parked (blocked) at this site.
    pub park_ns: u64,
    /// Completed park episodes at this site.
    pub parks: u64,
    /// Per-(level, node) wait breakdown.
    pub nodes: Vec<NodeProfile>,
}

impl SiteProfile {
    /// Mean wait per contended acquire, ns.
    pub fn mean_wait_ns(&self) -> u64 {
        if self.waits == 0 {
            0
        } else {
            self.wait_ns / self.waits
        }
    }

    /// Mean hold per critical section, ns.
    pub fn mean_hold_ns(&self) -> u64 {
        if self.holds == 0 {
            0
        } else {
            self.hold_ns / self.holds
        }
    }
}

/// A point-in-time copy of the whole profile table.
#[derive(Debug, Clone)]
pub struct ProfileSnapshot {
    /// When the snapshot was taken ([`now_ns`] epoch).
    pub taken_ns: u64,
    /// Live sites, in id order.
    pub sites: Vec<SiteProfile>,
}

impl ProfileSnapshot {
    /// Exact per-window deltas: counters for each site paired by
    /// (id, epoch) and subtracted. A site absent from `earlier` — or
    /// whose slot was reclaimed in between (epoch mismatch) — is
    /// reported as-is, i.e. re-baselined, never mixed with a stranger's
    /// counters.
    pub fn delta(&self, earlier: &ProfileSnapshot) -> ProfileSnapshot {
        let sites = self
            .sites
            .iter()
            .map(|cur| {
                let Some(prev) = earlier
                    .sites
                    .iter()
                    .find(|p| p.id == cur.id && p.epoch == cur.epoch)
                else {
                    return cur.clone();
                };
                let nodes = cur
                    .nodes
                    .iter()
                    .map(|n| {
                        let base = prev
                            .nodes
                            .iter()
                            .find(|p| p.level == n.level && p.node == n.node);
                        NodeProfile {
                            level: n.level,
                            node: n.node,
                            wait_ns: n.wait_ns - base.map_or(0, |b| b.wait_ns.min(n.wait_ns)),
                            waits: n.waits - base.map_or(0, |b| b.waits.min(n.waits)),
                        }
                    })
                    .collect();
                SiteProfile {
                    wait_ns: cur.wait_ns.saturating_sub(prev.wait_ns),
                    waits: cur.waits.saturating_sub(prev.waits),
                    hold_ns: cur.hold_ns.saturating_sub(prev.hold_ns),
                    holds: cur.holds.saturating_sub(prev.holds),
                    acquires: cur.acquires.saturating_sub(prev.acquires),
                    passes: cur.passes.saturating_sub(prev.passes),
                    park_ns: cur.park_ns.saturating_sub(prev.park_ns),
                    parks: cur.parks.saturating_sub(prev.parks),
                    nodes,
                    ..cur.clone()
                }
            })
            .collect();
        ProfileSnapshot {
            taken_ns: self.taken_ns,
            sites,
        }
    }

    /// The `k` sites with the most wait time, worst first (ties broken
    /// by hold time, then id for determinism).
    pub fn top_k(&self, k: usize) -> Vec<&SiteProfile> {
        let mut refs: Vec<&SiteProfile> = self.sites.iter().collect();
        refs.sort_by(|a, b| {
            b.wait_ns
                .cmp(&a.wait_ns)
                .then(b.hold_ns.cmp(&a.hold_ns))
                .then(a.id.cmp(&b.id))
        });
        refs.truncate(k);
        refs
    }
}

/// Folded-stack frame sanitizer: flamegraph folded format separates
/// frames with `;` and the count with a space.
fn fold_frame(s: &str) -> String {
    s.chars()
        .map(|c| if c == ';' || c.is_whitespace() { '-' } else { c })
        .collect()
}

/// Renders folded stacks (`site;L<level>;n<node> <wait_ns>`), one line
/// per (site, level, node), weighted by wait nanoseconds — pipe into
/// standard flamegraph tooling. Site-level wait not attributed to any
/// node (e.g. the fast-path gate) gets a bare `site <wait_ns>` line.
pub fn render_folded(snap: &ProfileSnapshot) -> String {
    let mut out = String::new();
    for site in &snap.sites {
        let label = fold_frame(&site.label);
        let mut attributed = 0u64;
        for n in &site.nodes {
            if n.wait_ns == 0 {
                continue;
            }
            attributed += n.wait_ns;
            out.push_str(&format!("{label};L{};n{} {}\n", n.level, n.node, n.wait_ns));
        }
        let rest = site.wait_ns.saturating_sub(attributed);
        if rest > 0 || (site.wait_ns == 0 && site.nodes.is_empty() && site.acquires > 0) {
            out.push_str(&format!("{label} {rest}\n"));
        }
    }
    out
}

/// Renders the `/profile` endpoint body: the snapshot, plus any current
/// waits-for graph findings, plus the folded stacks inline.
pub fn render_profile_json(snap: &ProfileSnapshot, findings: &[GraphFinding]) -> String {
    let mut out = String::new();
    out.push_str("{\"profiler\":\"");
    out.push_str(PROFILE_MARKER);
    out.push_str("\",\"taken_ns\":");
    out.push_str(&snap.taken_ns.to_string());
    out.push_str(",\"sites\":[");
    for (i, s) in snap.sites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"epoch\":{},\"generation\":{},\"refs\":{},\
             \"label\":\"{}\",\"shape\":\"{}\",\"location\":\"{}\",\
             \"wait_ns\":{},\"waits\":{},\"hold_ns\":{},\"holds\":{},\
             \"acquires\":{},\"passes\":{},\"park_ns\":{},\"parks\":{},\"nodes\":[",
            s.id,
            s.epoch,
            s.generation,
            s.refs,
            json_escape(&s.label),
            json_escape(&s.shape),
            json_escape(&s.location),
            s.wait_ns,
            s.waits,
            s.hold_ns,
            s.holds,
            s.acquires,
            s.passes,
            s.park_ns,
            s.parks,
        ));
        for (j, n) in s.nodes.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"level\":{},\"node\":{},\"wait_ns\":{},\"waits\":{}}}",
                n.level, n.node, n.wait_ns, n.waits
            ));
        }
        out.push_str("]}");
    }
    out.push_str("],\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&f.to_json());
    }
    out.push_str("],\"folded\":\"");
    out.push_str(&json_escape(&render_folded(snap)));
    out.push_str("\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_counters_accumulate_and_reset() {
        let s = Striped::default();
        s.add(10, 1);
        s.add(32, 1);
        assert_eq!(s.sum(), (42, 2));
        s.reset();
        assert_eq!(s.sum(), (0, 0));
    }

    #[test]
    fn site_records_flow_into_snapshot() {
        let anchor = registry::global().register("prof-flow", "levels=2");
        let id = anchor.id();
        let prof = global();
        prof.record_wait(id, 100);
        prof.record_wait(id, 50);
        prof.record_hold(id, 30);
        prof.record_acquire(id);
        prof.record_acquire(id);
        prof.record_pass(id);
        let node = prof.register_node(id, 0, 7);
        node.record_wait(40);

        let snap = prof.snapshot();
        let s = snap.sites.iter().find(|s| s.id == id).expect("site");
        assert_eq!(s.label, "prof-flow");
        assert_eq!((s.wait_ns, s.waits), (150, 2));
        assert_eq!((s.hold_ns, s.holds), (30, 1));
        assert_eq!(s.acquires, 2);
        assert_eq!(s.passes, 1);
        assert_eq!(prof.passes(id), 1);
        assert_eq!(s.nodes.len(), 1);
        assert_eq!(s.nodes[0], NodeProfile { level: 0, node: 7, wait_ns: 40, waits: 1 });

        // Dropping the node observer prunes its accumulator.
        drop(node);
        let snap = prof.snapshot();
        let s = snap.sites.iter().find(|s| s.id == id).unwrap();
        assert!(s.nodes.is_empty(), "dead node accs are pruned");
    }

    #[test]
    fn invalid_site_records_are_dropped() {
        let prof = global();
        prof.record_wait(INVALID_SITE, 1);
        prof.record_hold(INVALID_SITE, 1);
        prof.record_acquire(INVALID_SITE);
        prof.record_pass(INVALID_SITE);
        assert_eq!(prof.passes(INVALID_SITE), 0);
        let acc = prof.register_node(INVALID_SITE, 0, 0);
        acc.record_wait(1); // records into the orphan acc only
    }

    #[test]
    fn delta_is_exact_and_rebaselines_on_epoch_change() {
        let anchor = registry::global().register("prof-delta", "x");
        let id = anchor.id();
        let prof = global();
        prof.record_wait(id, 100);
        let first = prof.snapshot();
        prof.record_wait(id, 25);
        prof.record_acquire(id);
        let second = prof.snapshot();
        let d = second.delta(&first);
        let s = d.sites.iter().find(|s| s.id == id).unwrap();
        assert_eq!((s.wait_ns, s.waits), (25, 1));
        assert_eq!(s.acquires, 1);

        // Fake an epoch change: the site must be re-baselined (reported
        // as-is), not subtracted against a stranger's counters.
        let mut stale = first.clone();
        for s in &mut stale.sites {
            if s.id == id {
                s.epoch += 1;
                s.wait_ns = 1_000_000;
            }
        }
        let d = second.delta(&stale);
        let s = d.sites.iter().find(|s| s.id == id).unwrap();
        assert_eq!(s.wait_ns, 125, "epoch mismatch re-baselines");
    }

    #[test]
    fn top_k_ranks_by_wait() {
        let a = registry::global().register("prof-top-a", "x");
        let b = registry::global().register("prof-top-b", "x");
        let prof = global();
        prof.record_wait(a.id(), 10);
        prof.record_wait(b.id(), 999_999);
        let snap = prof.snapshot();
        let top = snap.top_k(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].label, "prof-top-b");
    }

    #[test]
    fn folded_output_is_flamegraph_shaped() {
        let anchor = registry::global().register("prof folded;site", "x");
        let id = anchor.id();
        let prof = global();
        let node = prof.register_node(id, 1, 3);
        node.record_wait(70);
        prof.record_wait(id, 100);
        let snap = prof.snapshot();
        let snap = ProfileSnapshot {
            taken_ns: snap.taken_ns,
            sites: snap.sites.into_iter().filter(|s| s.id == id).collect(),
        };
        let folded = render_folded(&snap);
        assert!(
            folded.contains("prof-folded-site;L1;n3 70"),
            "node line with sanitized label: {folded:?}"
        );
        assert!(
            folded.contains("prof-folded-site 30"),
            "unattributed remainder line: {folded:?}"
        );
    }

    #[test]
    fn profile_json_carries_marker_and_folded() {
        let anchor = registry::global().register("prof-json", "x");
        global().record_wait(anchor.id(), 5);
        let snap = global().snapshot();
        let body = render_profile_json(&snap, &[]);
        assert!(body.contains(PROFILE_MARKER));
        assert!(body.contains("\"sites\":["));
        assert!(body.contains("\"findings\":[]"));
        assert!(body.contains("\"folded\":\""));
    }
}
