//! Lock-free log-bucketed latency histograms.
//!
//! Buckets are powers of two (HDR-style): bucket *i* covers
//! `[2^(i-1), 2^i)` nanoseconds (bucket 0 covers `{0}` plus `1ns`).
//! Recording is a single relaxed `fetch_add` into the bucket picked by a
//! leading-zeros count — no floating point, no allocation, wait-free.
//! Quantiles are answered from a [`HistSnapshot`] by walking the bucket
//! counts and reporting the covering bucket's upper bound, so p99 is an
//! upper estimate with at most 2x resolution error — plenty for the
//! order-of-magnitude questions lock selection asks.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets; `u64` values always map into `0..HIST_BUCKETS`.
pub const HIST_BUCKETS: usize = 64;

/// Bucket index for a value: 0 for 0/1, else `64 - leading_zeros(v - 1)`
/// giving `[2^(i-1), 2^i)` coverage.
#[inline]
fn bucket_of(value: u64) -> usize {
    if value <= 1 {
        0
    } else {
        // Clamp: values above 2^62 all land in the last bucket.
        ((64 - (value - 1).leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket (`u64::MAX` for the last).
#[inline]
fn bucket_upper(idx: usize) -> u64 {
    if idx >= 63 {
        u64::MAX
    } else {
        1u64 << idx
    }
}

/// A concurrent histogram of `u64` samples (nanoseconds by convention).
///
/// All operations are relaxed atomics; totals are exact once writers are
/// quiescent. `max` is maintained with a CAS loop (still lock-free).
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram (`const` so statics can hold one directly).
    pub const fn new() -> Self {
        LogHistogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Wait-free except for the `max` CAS loop.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        let mut cur = self.max.load(Ordering::Relaxed);
        while value > cur {
            match self
                .max
                .compare_exchange_weak(cur, value, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Point-in-time copy (exact at quiescence).
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`LogHistogram`], with quantile queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts; bucket *i* covers `[2^(i-1), 2^i)` ns.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (ns).
    pub sum: u64,
    /// Largest sample seen (exact, not bucketed).
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Upper-bound estimate of quantile `q` in `[0, 1]`: the upper edge
    /// of the first bucket whose cumulative count reaches `ceil(q *
    /// count)`. Returns 0 for an empty histogram. The true `max` caps the
    /// answer, so `quantile(1.0) == max` exactly.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (upper-bound estimate).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (upper-bound estimate).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (upper-bound estimate).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean sample (ns); 0 when empty.
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum / self.count
        }
    }

    /// Adds `other`'s samples into `self`.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// `(upper_bound, cumulative_count)` pairs for non-empty prefixes —
    /// the shape Prometheus `_bucket{le=...}` lines want.
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n != 0 {
                out.push((bucket_upper(i), seen));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(5), 3);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(1025), 11);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn bucket_covers_its_range() {
        // Every value maps to a bucket whose upper bound is >= the value.
        for v in [0, 1, 2, 3, 7, 8, 9, 1000, 123_456_789] {
            assert!(bucket_upper(bucket_of(v)) >= v, "value {v}");
        }
    }

    #[test]
    fn quantiles_are_upper_estimates() {
        let h = LogHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        // True p50 = 50, bucket upper bound = 64.
        assert_eq!(s.p50(), 64);
        // p99 rank 99 -> value 99, bucket [65,128) upper 128, capped at max.
        assert_eq!(s.p99(), 100);
        assert_eq!(s.quantile(1.0), 100);
        assert_eq!(s.mean(), 50);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let s = LogHistogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0);
        assert!(s.cumulative().is_empty());
    }

    #[test]
    fn merge_matches_combined_recording() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let combined = LogHistogram::new();
        for v in [3u64, 9, 100, 5000] {
            a.record(v);
            combined.record(v);
        }
        for v in [1u64, 70_000] {
            b.record(v);
            combined.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, combined.snapshot());
    }

    #[test]
    fn concurrent_recording_is_exact_at_quiescence() {
        use std::sync::Arc;
        let h = Arc::new(LogHistogram::new());
        let threads = 4;
        let per = 10_000u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    h.record(t * per + i + 1);
                }
            }));
        }
        for j in handles {
            j.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, threads * per);
        assert_eq!(s.max, threads * per);
        let n = threads * per;
        assert_eq!(s.sum, n * (n + 1) / 2);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }

    #[test]
    fn cumulative_is_monotone() {
        let h = LogHistogram::new();
        for v in [1u64, 5, 5, 300, 70_000] {
            h.record(v);
        }
        let cum = h.snapshot().cumulative();
        assert!(cum.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(cum.last().unwrap().1, 5);
    }
}
