//! Decision audit ring: *why* did the adaptation layer switch (or not)?
//!
//! The hysteresis policy ([`crate::policy`]) and the hot-swap controller
//! (`clof::adapt`) make decisions from windowed telemetry, and those
//! decisions are expensive to second-guess after the fact: by the time
//! an operator asks "why did the lock migrate at 14:02", the window
//! rates that justified it are gone. This module keeps a fixed-capacity,
//! lock-free ring of [`AuditRecord`]s — one per policy decision and one
//! per completed migration — each carrying the decision's *inputs*
//! (window rates, Little's-law concurrency, challenger margin, streak
//! state) and its *output* (switch/hold plus a machine-readable
//! [`AuditReason`]).
//!
//! The write path mirrors [`crate::EventRing`]: claim a slot with one
//! `fetch_add`, publish through a seqlock word (odd while writing,
//! even+ticket when done). Readers ([`AuditRing::entries`]) never
//! disturb the ring, so the `/snapshot` endpoint and `clof top` can
//! render the same records any number of times. Drop accounting is
//! saturating — the counters never wrap, no matter how long the process
//! lives.
//!
//! A process-global ring ([`global`]) is the default sink: the policy
//! controller records into it unconditionally (a handful of relaxed
//! stores per *window*, nowhere near the lock hot path), so any consumer
//! that can see `clof-obs` can replay the controller's reasoning.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::now_ns;

/// Default capacity of the global audit ring.
pub const AUDIT_DEFAULT_CAPACITY: usize = 256;

/// Machine-readable cause attached to every audit record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditReason {
    /// The window carried no usable evidence (no traffic, non-finite
    /// rates); the streak was reset.
    NoEvidence,
    /// The active composition is already the predicted best.
    ActiveBest,
    /// A challenger leads, but within the hysteresis margin.
    WithinMargin,
    /// A challenger beat the margin; the win streak is building but has
    /// not reached `k` yet.
    StreakBuilding,
    /// The streak reached `k`: the policy emitted a switch decision.
    Switched,
    /// A migration completed (recorded by the hot-swap controller;
    /// `detail_ns` holds the measured switch latency).
    MigrationDone,
    /// A commanded migration failed and the active index was rolled
    /// back.
    MigrationFailed,
}

impl AuditReason {
    fn as_u64(self) -> u64 {
        match self {
            AuditReason::NoEvidence => 0,
            AuditReason::ActiveBest => 1,
            AuditReason::WithinMargin => 2,
            AuditReason::StreakBuilding => 3,
            AuditReason::Switched => 4,
            AuditReason::MigrationDone => 5,
            AuditReason::MigrationFailed => 6,
        }
    }

    fn from_u64(v: u64) -> Self {
        match v {
            1 => AuditReason::ActiveBest,
            2 => AuditReason::WithinMargin,
            3 => AuditReason::StreakBuilding,
            4 => AuditReason::Switched,
            5 => AuditReason::MigrationDone,
            6 => AuditReason::MigrationFailed,
            _ => AuditReason::NoEvidence,
        }
    }

    /// Stable lower-case token for exports (`no-evidence`, `switched`,
    /// ...).
    pub fn token(self) -> &'static str {
        match self {
            AuditReason::NoEvidence => "no-evidence",
            AuditReason::ActiveBest => "active-best",
            AuditReason::WithinMargin => "within-margin",
            AuditReason::StreakBuilding => "streak-building",
            AuditReason::Switched => "switched",
            AuditReason::MigrationDone => "migration-done",
            AuditReason::MigrationFailed => "migration-failed",
        }
    }

    /// Whether this reason represents a switch (vs. a hold).
    pub fn is_switch(self) -> bool {
        matches!(self, AuditReason::Switched | AuditReason::MigrationDone)
    }
}

/// One audited decision: the inputs the policy saw and what it did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditRecord {
    /// Nanoseconds since the process observation epoch ([`now_ns`]).
    pub timestamp_ns: u64,
    /// Monotone sequence number assigned by the ring at record time.
    pub seq: u64,
    /// Lock acquisitions per second in the decision window.
    pub acquires_per_sec: f64,
    /// Little's-law concurrency estimate (0 when the window was
    /// unusable).
    pub concurrency: f64,
    /// Index of the composition the controller believed active.
    pub active: u32,
    /// Index of the best-predicted challenger this window.
    pub best: u32,
    /// Challenger's relative advantage over the active composition
    /// (`best_tp / active_tp - 1`; 0 when not computed).
    pub margin: f64,
    /// Consecutive-win streak after this window.
    pub streak: u32,
    /// Why the decision came out the way it did.
    pub reason: AuditReason,
    /// Reason-specific detail: switch latency in ns for
    /// [`AuditReason::MigrationDone`], 0 otherwise.
    pub detail_ns: u64,
}

impl std::fmt::Display for AuditRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "#{:<4} t+{:>12} ns  {:<15}  active {} best {}  L {:6.2}  \
             margin {:+6.1}%  streak {}",
            self.seq,
            self.timestamp_ns,
            self.reason.token(),
            self.active,
            self.best,
            self.concurrency,
            self.margin * 100.0,
            self.streak,
        )?;
        if self.detail_ns > 0 {
            write!(f, "  ({} ns)", self.detail_ns)?;
        }
        Ok(())
    }
}

/// Slot layout: seqlock word + six data words. `seq` is odd while a
/// write is in flight and `2 * ticket + 2` once published (0 = never
/// written), exactly like [`crate::EventRing`]'s slots.
struct Slot {
    seq: AtomicU64,
    ts: AtomicU64,
    acq_bits: AtomicU64,
    conc_bits: AtomicU64,
    margin_bits: AtomicU64,
    packed: AtomicU64,
    detail: AtomicU64,
}

/// Packs active/best/streak/reason into one word:
/// `active | best << 16 | streak << 32 | reason << 48`.
fn pack(active: u32, best: u32, streak: u32, reason: AuditReason) -> u64 {
    (active as u64 & 0xffff)
        | ((best as u64 & 0xffff) << 16)
        | ((streak as u64 & 0xffff) << 32)
        | (reason.as_u64() << 48)
}

fn unpack(word: u64) -> (u32, u32, u32, AuditReason) {
    (
        (word & 0xffff) as u32,
        ((word >> 16) & 0xffff) as u32,
        ((word >> 32) & 0xffff) as u32,
        AuditReason::from_u64(word >> 48),
    )
}

/// Fixed-capacity, lock-free ring of [`AuditRecord`]s keeping the most
/// recent `capacity` decisions (rounded up to a power of two, minimum
/// 8). Writers are wait-free; readers are non-destructive.
pub struct AuditRing {
    slots: Box<[Slot]>,
    mask: u64,
    cursor: AtomicU64,
}

impl std::fmt::Debug for AuditRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

impl AuditRing {
    /// A ring holding the latest `capacity` records (rounded up to a
    /// power of two, minimum 8).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        AuditRing {
            slots: (0..cap)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    ts: AtomicU64::new(0),
                    acq_bits: AtomicU64::new(0),
                    conc_bits: AtomicU64::new(0),
                    margin_bits: AtomicU64::new(0),
                    packed: AtomicU64::new(0),
                    detail: AtomicU64::new(0),
                })
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            mask: (cap - 1) as u64,
            cursor: AtomicU64::new(0),
        }
    }

    /// A ring with [`AUDIT_DEFAULT_CAPACITY`] slots.
    pub fn new() -> Self {
        Self::with_capacity(AUDIT_DEFAULT_CAPACITY)
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever written (saturating — pinned at `u64::MAX`
    /// instead of wrapping).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Records overwritten before they could be read (saturating).
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Records one decision, stamping `timestamp_ns` (if 0) and `seq`
    /// from the ring. Wait-free.
    pub fn record(
        &self,
        acquires_per_sec: f64,
        concurrency: f64,
        active: u32,
        best: u32,
        margin: f64,
        streak: u32,
        reason: AuditReason,
        detail_ns: u64,
    ) {
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        if ticket == u64::MAX {
            // Saturate instead of wrapping: re-pin the cursor at MAX so
            // recorded()/dropped() never jump back to small values. (At
            // one record per ns this branch is ~584 years away; the pin
            // keeps the accounting honest anyway.)
            self.cursor.store(u64::MAX, Ordering::Relaxed);
        }
        let slot = &self.slots[(ticket & self.mask) as usize];
        // Wrapping keeps the seq word well-formed at the saturation
        // boundary; 0 means "never written", so remap it to 2.
        let seq = match ticket.wrapping_mul(2).wrapping_add(2) {
            0 => 2,
            s => s,
        };
        slot.seq.store(seq - 1, Ordering::Release);
        slot.ts.store(now_ns(), Ordering::Relaxed);
        slot.acq_bits
            .store(acquires_per_sec.to_bits(), Ordering::Relaxed);
        slot.conc_bits.store(concurrency.to_bits(), Ordering::Relaxed);
        slot.margin_bits.store(margin.to_bits(), Ordering::Relaxed);
        slot.packed
            .store(pack(active, best, streak, reason), Ordering::Relaxed);
        slot.detail.store(detail_ns, Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Release);
    }

    /// Copies out the surviving records, oldest first (by sequence
    /// number), **without clearing the ring** — rendering twice yields
    /// identical output. Slots caught mid-write are skipped; exact at
    /// quiescence.
    pub fn entries(&self) -> Vec<AuditRecord> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq0 = slot.seq.load(Ordering::Acquire);
            if seq0 == 0 || seq0 % 2 == 1 {
                continue;
            }
            let ts = slot.ts.load(Ordering::Relaxed);
            let acq = slot.acq_bits.load(Ordering::Relaxed);
            let conc = slot.conc_bits.load(Ordering::Relaxed);
            let margin = slot.margin_bits.load(Ordering::Relaxed);
            let packed = slot.packed.load(Ordering::Relaxed);
            let detail = slot.detail.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != seq0 {
                continue; // torn by a concurrent overwrite
            }
            let (active, best, streak, reason) = unpack(packed);
            out.push(AuditRecord {
                timestamp_ns: ts,
                seq: (seq0 - 2) / 2,
                acquires_per_sec: f64::from_bits(acq),
                concurrency: f64::from_bits(conc),
                active,
                best,
                margin: f64::from_bits(margin),
                streak,
                reason,
                detail_ns: detail,
            });
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Zeroes every slot and the cursor (between runs / tests). Not
    /// linearizable against concurrent writers; call at quiescence.
    pub fn reset(&self) {
        for slot in self.slots.iter() {
            slot.seq.store(0, Ordering::Relaxed);
        }
        self.cursor.store(0, Ordering::Relaxed);
    }

    #[cfg(test)]
    fn set_cursor(&self, v: u64) {
        self.cursor.store(v, Ordering::Relaxed);
    }
}

impl Default for AuditRing {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-global audit ring the policy controller records into.
pub fn global() -> &'static AuditRing {
    static RING: OnceLock<AuditRing> = OnceLock::new();
    RING.get_or_init(AuditRing::new)
}

/// Renders audit records as a JSON array (zero-dependency, ASCII-safe;
/// same conventions as [`crate::render_json`]). Floats are emitted with
/// six decimal places, so rendering the same records twice is
/// byte-identical.
pub fn render_audit_json(records: &[AuditRecord]) -> String {
    let mut out = String::from("[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"seq\":{},\"timestamp_ns\":{},\"acquires_per_sec\":{:.6},\
             \"concurrency\":{:.6},\"active\":{},\"best\":{},\"margin\":{:.6},\
             \"streak\":{},\"reason\":\"{}\",\"switch\":{},\"detail_ns\":{}}}",
            r.seq,
            r.timestamp_ns,
            finite(r.acquires_per_sec),
            finite(r.concurrency),
            r.active,
            r.best,
            finite(r.margin),
            r.streak,
            r.reason.token(),
            r.reason.is_switch(),
            r.detail_ns,
        ));
    }
    out.push(']');
    out
}

/// JSON has no NaN/Inf literals; degrade them to 0 rather than emitting
/// invalid documents.
fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ring: &AuditRing, n: u64) {
        for i in 0..n {
            ring.record(
                1000.0 + i as f64,
                4.2,
                0,
                1,
                0.25,
                i as u32 & 0xffff,
                if i % 2 == 0 {
                    AuditReason::StreakBuilding
                } else {
                    AuditReason::Switched
                },
                0,
            );
        }
    }

    #[test]
    fn pack_unpack_round_trip() {
        for reason in [
            AuditReason::NoEvidence,
            AuditReason::ActiveBest,
            AuditReason::WithinMargin,
            AuditReason::StreakBuilding,
            AuditReason::Switched,
            AuditReason::MigrationDone,
            AuditReason::MigrationFailed,
        ] {
            assert_eq!(unpack(pack(3, 7, 11, reason)), (3, 7, 11, reason));
            assert_eq!(AuditReason::from_u64(reason.as_u64()), reason);
        }
    }

    #[test]
    fn entries_survive_repeated_reads() {
        let ring = AuditRing::with_capacity(16);
        sample(&ring, 5);
        let a = ring.entries();
        let b = ring.entries();
        assert_eq!(a.len(), 5);
        assert_eq!(a, b, "entries() is non-destructive");
        assert!(a.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(a[0].acquires_per_sec, 1000.0);
        assert_eq!(a[4].reason, AuditReason::StreakBuilding);
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overwrite_keeps_latest_and_counts_drops() {
        let ring = AuditRing::with_capacity(8);
        sample(&ring, 20);
        let entries = ring.entries();
        assert_eq!(entries.len(), 8);
        assert_eq!(entries[0].seq, 12, "oldest surviving record");
        assert_eq!(ring.recorded(), 20);
        assert_eq!(ring.dropped(), 12);
    }

    #[test]
    fn drop_accounting_saturates_instead_of_wrapping() {
        let ring = AuditRing::with_capacity(8);
        ring.set_cursor(u64::MAX - 2);
        sample(&ring, 6);
        // Without saturation the cursor would wrap to ~3 and dropped()
        // would report 0; pinned at MAX both stay at the ceiling.
        assert_eq!(ring.recorded(), u64::MAX);
        assert_eq!(ring.dropped(), u64::MAX - 8);
    }

    #[test]
    fn json_is_deterministic_and_balanced() {
        let ring = AuditRing::with_capacity(16);
        sample(&ring, 3);
        ring.record(f64::NAN, f64::INFINITY, 0, 0, f64::NAN, 0, AuditReason::NoEvidence, 0);
        let a = render_audit_json(&ring.entries());
        let b = render_audit_json(&ring.entries());
        assert_eq!(a, b, "render twice must be identical");
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert!(a.contains("\"reason\":\"switched\""));
        assert!(a.contains("\"switch\":true"));
        assert!(!a.contains("NaN") && !a.contains("inf"), "{a}");
    }

    #[test]
    fn display_mentions_reason_and_margin() {
        let ring = AuditRing::with_capacity(8);
        ring.record(100.0, 2.0, 0, 1, 0.30, 2, AuditReason::StreakBuilding, 0);
        let line = ring.entries()[0].to_string();
        assert!(line.contains("streak-building"), "{line}");
        assert!(line.contains("+30.0%"), "{line}");
    }

    #[test]
    fn global_ring_is_shared() {
        global().record(1.0, 1.0, 0, 0, 0.0, 0, AuditReason::ActiveBest, 0);
        assert!(global().recorded() >= 1);
    }

    #[test]
    fn reset_clears_entries() {
        let ring = AuditRing::with_capacity(8);
        sample(&ring, 4);
        ring.reset();
        assert!(ring.entries().is_empty());
        assert_eq!(ring.recorded(), 0);
    }
}
