//! Lock telemetry for the CLoF composition layer.
//!
//! CLoF *selects* locks from measurements, but throughput alone cannot
//! explain **why** a composition wins: how often the high lock is passed
//! within a cohort, how often `keep_local` hits its threshold, what the
//! per-level acquisition-latency distribution looks like. This crate is
//! the in-tree answer — the same internal statistics the Compact
//! NUMA-Aware Locks line of work argues from (intra-node hand-offs vs.
//! remote transfers), recorded by the composition protocol itself.
//!
//! Pieces, all zero-dependency and lock-free on the write path:
//!
//! * [`LevelCounters`] — relaxed atomic counters for one hierarchy
//!   level: acquires, contended (pass-inheriting) acquires, lock passes
//!   taken/declined, `keep_local` threshold resets, native waiter-hint
//!   fast-path hits.
//! * [`LogHistogram`] — a power-of-two-bucketed (HDR-style) histogram
//!   for acquire latency and critical-section hold time, with merge and
//!   p50/p90/p99/max queries.
//! * [`EventRing`] — a fixed-capacity MPSC ring of timestamped
//!   lock-passing events, so a failing fairness run can be replayed as a
//!   hand-off trace.
//! * [`LockSnapshot`] + [`render_json`]/[`render_prometheus`] — a
//!   point-in-time copy of everything above, with text exporters and a
//!   human-readable `Display`.
//!
//! The online layer on top (PR 3):
//!
//! * [`trace`] — per-thread lock-free span buffers recording
//!   acquire/hold/release transitions with hand-off causality edges,
//!   exported as Chrome trace-event JSON ([`render_chrome_trace`]) for
//!   Perfetto.
//! * [`analyze`] — ownership-timeline reconstruction, pass-chain length
//!   distribution (the `keep_local` *H* bound, checkable), per-level
//!   wait attribution, and a fairness CDF from a [`Trace`].
//! * [`window`] — [`LockSnapshot::delta`] and a [`Sampler`] turning
//!   cumulative snapshots into per-window rates ([`WindowRates`]) so
//!   telemetry is usable mid-run.
//! * [`watchdog`] — per-thread progress epochs plus a background
//!   [`Watchdog`] flagging waiters stalled past a threshold, with a
//!   diagnostic dump.
//! * [`policy`] — the online adaptation policy: a deterministic
//!   [`HysteresisController`] that estimates offered concurrency from
//!   [`WindowRates`] (Little's law) and decides when a different
//!   finalist composition should take over the lock.
//!
//! The serving layer (PR 7):
//!
//! * [`serve`] — a zero-dependency HTTP/1.1 scrape endpoint
//!   (`/metrics`, `/snapshot`, `/health`, `/alerts`) with bounded
//!   workers, graceful shutdown, and self-accounting
//!   (`clof_obs_scrape_duration_ns` — the server exports its own cost).
//! * [`slo`] — deterministic multi-window burn-rate SLO evaluation over
//!   [`WindowRates`] (p99 hold-time / handover-latency objectives,
//!   k-consecutive hysteresis) plus a liveness alert fed by
//!   [`StallReport`]s.
//! * [`audit`] — a fixed-capacity lock-free ring of adaptation
//!   decisions: every [`policy`] verdict and every hot-swap migration,
//!   with the window rates and margins that justified it.
//!
//! The contention profiler (PR 8):
//!
//! * [`registry`] — a process-global lock-site registry: every
//!   constructed lock auto-registers a site (label + topology shape +
//!   construction `file:line`), survives adaptation swaps with a stable
//!   site id, and deregisters on drop.
//! * [`profile`] — striped per-site wait/hold attribution with a
//!   per-(level, node) breakdown, exact windowed deltas, and a
//!   folded-stack exporter for standard flamegraph tooling.
//! * [`waitgraph`] — a bounded waits-for graph over sites and threads,
//!   with cycle detection (deadlock) and `keep_local`-gap-bound
//!   starvation detection (priority/NUMA inversion), feeding deduped
//!   findings into the `/alerts` path.
//!
//! `clof-core` records into these types only when compiled with its
//! `obs` cargo feature; the default build carries no `clof-obs` symbols
//! at all (the same strictly-compile-time gating as the `testkit` chaos
//! hooks).
//!
//! [`render_json`]: export::render_json
//! [`render_prometheus`]: export::render_prometheus

#![warn(missing_docs)]

pub mod analyze;
pub mod audit;
pub mod counters;
pub mod deadline;
pub mod export;
pub mod hist;
pub mod park;
pub mod policy;
pub mod profile;
pub mod registry;
pub mod ring;
pub mod serve;
pub mod slo;
pub mod trace;
pub mod waitgraph;
pub mod watchdog;
pub mod window;

pub use analyze::{analyze, ownership_timeline, ChainStats, FairnessCdf, LevelWait, TraceAnalysis};
pub use audit::{render_audit_json, AuditReason, AuditRecord, AuditRing};
pub use counters::{LevelCounters, LevelSnapshot};
pub use deadline::{
    deadline_stats, render_deadline_json, render_deadline_prometheus, DeadlineStats,
};
pub use export::{render_json, render_prometheus, LockSnapshot};
pub use hist::{HistSnapshot, LogHistogram, HIST_BUCKETS};
pub use park::{park_stats, render_park_json, render_park_prometheus, ParkStats};
pub use policy::{
    AdaptDecision, FinalistProfile, HysteresisConfig, HysteresisController, WindowObservation,
};
pub use profile::{
    render_folded, render_profile_json, ContentionProfile, NodeProfile, ProfileSnapshot,
    SiteProfile, PROFILE_MARKER,
};
pub use registry::{SiteAnchor, SiteInfo, SiteRegistry, INVALID_SITE, MAX_SITES};
pub use ring::{EventRing, PassEvent, PassKind};
pub use serve::{http_get, serve, ServeConfig, ServerHandle, SnapshotFn};
pub use slo::{
    default_rules, render_alerts_json, AlertStatus, AlertTransition, SloEvaluator, SloRule,
    SloSignal,
};
pub use trace::{render_chrome_trace, SpanEvent, SpanKind, Trace};
pub use waitgraph::{FindingDedup, GraphFinding, GraphReport, WaitTable, MAX_GRAPH_THREADS};
pub use watchdog::{ProgressRegistry, StallReport, Watchdog, WatchdogConfig, WatchdogGuard};
pub use window::{Sampler, WindowRates};

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Nanoseconds since the process-wide observation epoch (the first call).
///
/// Monotonic (backed by [`Instant`]); cheap enough to bracket every
/// acquire. All timestamps in this crate — histogram samples and ring
/// events — share this epoch, so traces from different locks in one
/// process are directly comparable.
#[inline]
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

/// A small dense id for the calling thread (for ring events).
///
/// Ids are assigned on first use per thread, starting at 0; they are
/// process-global, not per-lock. (`std::thread::ThreadId` has no stable
/// integer accessor, and ring slots want a fixed-width field.)
#[inline]
pub fn thread_tag() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    thread_local! {
        static TAG: u32 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TAG.with(|t| *t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ns_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn thread_tags_are_distinct_per_thread() {
        let mine = thread_tag();
        assert_eq!(mine, thread_tag(), "stable within a thread");
        let other = std::thread::spawn(thread_tag).join().unwrap();
        assert_ne!(mine, other);
    }
}
