//! Process-wide park/wake telemetry for the spin-then-park waiting layer.
//!
//! The waiting layer lives in `clof-locks` behind its `park` feature; to
//! keep that crate dependency-free it exposes recorder *hooks*
//! (`set_parked_recorder` / `set_wake_recorder`) and `clof-core` wires
//! them here when both `park` and `obs` are enabled. The state is
//! process-global rather than per-lock because a futex wake cannot tell
//! which lock's waiter it roused — attribution by lock/site happens in
//! the contention profiler (`profile::record_park`), which *does* know
//! the site on the waiter side.
//!
//! Counting convention: a **park** is one completed park episode,
//! recorded at unpark time together with its measured duration (so
//! `parks == parked_ns.count` at quiescence); a **wake** is one
//! releaser-side futex/unpark call that found a parked waiter. Wakes and
//! parks need not match: one `wake_all` may rouse several waiters, and a
//! timed-wait rescue parks without a wake.
//!
//! Rendering composes at the serve layer (`/metrics` and `/snapshot`
//! append the fragments from [`render_park_prometheus`] /
//! [`render_park_json`]) instead of inside `render_json` /
//! `render_prometheus`, which stay pure functions of a [`LockSnapshot`]
//! — process-global state there would break snapshot-determinism.
//!
//! [`LockSnapshot`]: crate::export::LockSnapshot

use std::sync::atomic::{AtomicU64, Ordering};

use crate::export::{json_hist, prom_histogram};
use crate::hist::{HistSnapshot, LogHistogram};

static PARKS: AtomicU64 = AtomicU64::new(0);
static WAKES: AtomicU64 = AtomicU64::new(0);
static PARKED_NS: LogHistogram = LogHistogram::new();

/// Records one completed park episode of `ns` nanoseconds (called from
/// the waiter at unpark; matches `clof_locks::park::set_parked_recorder`).
#[inline]
pub fn record_parked(ns: u64) {
    PARKS.fetch_add(1, Ordering::Relaxed);
    PARKED_NS.record(ns);
}

/// Records one releaser-side wake of a parked waiter (matches
/// `clof_locks::park::set_wake_recorder`).
#[inline]
pub fn record_wake() {
    WAKES.fetch_add(1, Ordering::Relaxed);
}

/// Point-in-time view of the process-wide park statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParkStats {
    /// Completed park episodes (counted at unpark).
    pub parks: u64,
    /// Releaser-side wakes of parked waiters.
    pub wakes: u64,
    /// Distribution of parked durations, in nanoseconds.
    pub parked_ns: HistSnapshot,
}

/// Snapshots the process-wide park statistics.
pub fn park_stats() -> ParkStats {
    ParkStats {
        parks: PARKS.load(Ordering::Relaxed),
        wakes: WAKES.load(Ordering::Relaxed),
        parked_ns: PARKED_NS.snapshot(),
    }
}

/// Renders the park statistics as one JSON object, e.g. for a `"park"`
/// key in the `/snapshot` composite.
pub fn render_park_json(stats: &ParkStats) -> String {
    format!(
        "{{\"parks\":{},\"wakes\":{},\"parked_ns\":{}}}",
        stats.parks,
        stats.wakes,
        json_hist(&stats.parked_ns)
    )
}

/// Renders the park statistics as a Prometheus exposition fragment
/// (appended to `/metrics` by the serving layer).
pub fn render_park_prometheus(stats: &ParkStats) -> String {
    let mut out = String::new();
    out.push_str("# HELP clof_park_parks_total Completed park episodes (counted at unpark).\n");
    out.push_str("# TYPE clof_park_parks_total counter\n");
    out.push_str(&format!(
        "clof_park_parks_total{{scope=\"process\"}} {}\n",
        stats.parks
    ));
    out.push_str("# HELP clof_park_wakes_total Releaser-side wakes of parked waiters.\n");
    out.push_str("# TYPE clof_park_wakes_total counter\n");
    out.push_str(&format!(
        "clof_park_wakes_total{{scope=\"process\"}} {}\n",
        stats.wakes
    ));
    prom_histogram(
        &mut out,
        "clof_park_parked_ns",
        "Parked duration per completed park episode (ns).",
        "scope=\"process\"",
        &stats.parked_ns,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The statics are process-global and tests run in parallel, so
    // assertions are monotonic (deltas >=) rather than exact.

    #[test]
    fn record_bumps_counters_and_histogram() {
        let before = park_stats();
        record_parked(1_500);
        record_parked(3_000_000);
        record_wake();
        let after = park_stats();
        assert!(after.parks >= before.parks + 2);
        assert!(after.wakes >= before.wakes + 1);
        assert!(after.parked_ns.count >= before.parked_ns.count + 2);
        assert!(after.parked_ns.sum >= before.parked_ns.sum + 3_001_500);
    }

    #[test]
    fn json_fragment_is_balanced_and_complete() {
        record_parked(42);
        let s = render_park_json(&park_stats());
        for key in ["\"parks\":", "\"wakes\":", "\"parked_ns\":", "\"buckets\":"] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
        let (mut depth, mut max_depth) = (0i64, 0i64);
        for c in s.chars() {
            match c {
                '{' | '[' => {
                    depth += 1;
                    max_depth = max_depth.max(depth);
                }
                '}' | ']' => depth -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced JSON: {s}");
        assert!(max_depth >= 3);
    }

    #[test]
    fn prometheus_fragment_has_help_type_and_series() {
        record_parked(7);
        record_wake();
        let text = render_park_prometheus(&park_stats());
        for family in [
            "clof_park_parks_total",
            "clof_park_wakes_total",
            "clof_park_parked_ns",
        ] {
            assert!(text.contains(&format!("# HELP {family}")), "{family} HELP");
            assert!(text.contains(&format!("# TYPE {family}")), "{family} TYPE");
        }
        assert!(text.contains("clof_park_parks_total{scope=\"process\"}"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("clof_park_parked_ns_count"));
    }
}
