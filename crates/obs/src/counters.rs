//! Per-level relaxed counters for the composition protocol's decision
//! points.
//!
//! All increments are `Relaxed`: telemetry must never add ordering the
//! protocol does not need (the paper's VSync analysis maximally relaxes
//! every auxiliary access, §4.2.3). Totals are exact at quiescence and
//! approximate while threads are mid-acquire — the same contract as the
//! composition's own read indicator.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for one cohort node (aggregated per level at snapshot time).
#[derive(Debug, Default)]
pub struct LevelCounters {
    /// Low-lock acquisitions through this node.
    acquires: AtomicU64,
    /// Acquisitions that found the high lock already passed to the
    /// cohort (`has_high_lock` set) — the intra-cohort contention
    /// signal. At quiescence this equals `passes_taken`: every pass is
    /// consumed by exactly one successor.
    contended_acquires: AtomicU64,
    /// Release decisions that passed the high lock within the cohort.
    passes_taken: AtomicU64,
    /// Release decisions that surrendered the high lock upward.
    passes_declined: AtomicU64,
    /// Declines forced by the `keep_local` threshold (waiters existed,
    /// but *H* consecutive hand-offs were already spent).
    keep_local_resets: AtomicU64,
    /// Releases whose waiter question was answered by the basic lock's
    /// native `has_waiters` hint (no read-indicator traffic).
    hint_fast_hits: AtomicU64,
}

impl LevelCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one low-lock acquisition; `inherited` is whether the
    /// acquire found the high lock passed to it.
    #[inline]
    pub fn record_acquire(&self, inherited: bool) {
        self.acquires.fetch_add(1, Ordering::Relaxed);
        if inherited {
            self.contended_acquires.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a release that passed the high lock within the cohort.
    #[inline]
    pub fn record_pass_taken(&self) {
        self.passes_taken.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a release that surrendered the high lock. `threshold_hit`
    /// is whether waiters existed but `keep_local` refused (threshold
    /// reset).
    #[inline]
    pub fn record_pass_declined(&self, threshold_hit: bool) {
        self.passes_declined.fetch_add(1, Ordering::Relaxed);
        if threshold_hit {
            self.keep_local_resets.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records that the release consulted the native waiter hint.
    #[inline]
    pub fn record_hint_hit(&self) {
        self.hint_fast_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy (exact at quiescence).
    pub fn snapshot(&self, level: usize) -> LevelSnapshot {
        LevelSnapshot {
            level,
            acquires: self.acquires.load(Ordering::Relaxed),
            contended_acquires: self.contended_acquires.load(Ordering::Relaxed),
            passes_taken: self.passes_taken.load(Ordering::Relaxed),
            passes_declined: self.passes_declined.load(Ordering::Relaxed),
            keep_local_resets: self.keep_local_resets.load(Ordering::Relaxed),
            hint_fast_hits: self.hint_fast_hits.load(Ordering::Relaxed),
            acquire_ns: crate::HistSnapshot::default(),
        }
    }
}

/// Plain-data snapshot of one level's counters (summed across cohorts),
/// plus that level's acquire-latency histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LevelSnapshot {
    /// Level index, 0 = innermost.
    pub level: usize,
    /// Low-lock acquisitions.
    pub acquires: u64,
    /// Acquisitions that inherited a passed high lock.
    pub contended_acquires: u64,
    /// Intra-cohort passes.
    pub passes_taken: u64,
    /// Upward releases.
    pub passes_declined: u64,
    /// Upward releases forced by the `keep_local` threshold.
    pub keep_local_resets: u64,
    /// Releases answered by the native waiter hint.
    pub hint_fast_hits: u64,
    /// Acquire-latency distribution at this level (low-lock wait only).
    pub acquire_ns: crate::HistSnapshot,
}

impl LevelSnapshot {
    /// Fraction of release decisions that stayed local — the locality
    /// this level achieved. 0.0 when no decision was taken (root level).
    pub fn pass_rate(&self) -> f64 {
        let total = self.passes_taken + self.passes_declined;
        if total == 0 {
            0.0
        } else {
            self.passes_taken as f64 / total as f64
        }
    }

    /// Field-wise sum (for aggregating sibling cohorts of one level).
    pub fn merge(&mut self, other: &LevelSnapshot) {
        debug_assert_eq!(self.level, other.level);
        self.acquires += other.acquires;
        self.contended_acquires += other.contended_acquires;
        self.passes_taken += other.passes_taken;
        self.passes_declined += other.passes_declined;
        self.keep_local_resets += other.keep_local_resets;
        self.hint_fast_hits += other.hint_fast_hits;
        self.acquire_ns.merge(&other.acquire_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot_round_trip() {
        let c = LevelCounters::new();
        c.record_acquire(false);
        c.record_acquire(true);
        c.record_pass_taken();
        c.record_pass_declined(true);
        c.record_pass_declined(false);
        c.record_hint_hit();
        let s = c.snapshot(1);
        assert_eq!(s.level, 1);
        assert_eq!(s.acquires, 2);
        assert_eq!(s.contended_acquires, 1);
        assert_eq!(s.passes_taken, 1);
        assert_eq!(s.passes_declined, 2);
        assert_eq!(s.keep_local_resets, 1);
        assert_eq!(s.hint_fast_hits, 1);
        assert!((s.pass_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_fields() {
        let a = LevelCounters::new();
        a.record_acquire(false);
        let b = LevelCounters::new();
        b.record_acquire(true);
        b.record_pass_taken();
        let mut s = a.snapshot(0);
        s.merge(&b.snapshot(0));
        assert_eq!(s.acquires, 2);
        assert_eq!(s.contended_acquires, 1);
        assert_eq!(s.passes_taken, 1);
    }

    #[test]
    fn pass_rate_zero_without_decisions() {
        assert_eq!(LevelCounters::new().snapshot(0).pass_rate(), 0.0);
    }
}
