//! Starvation watchdog: per-thread progress epochs plus a background
//! monitor that flags waiters stalled past a threshold.
//!
//! CLoF's fairness argument is conditional — every component fair, every
//! `keep_local` bounded — and the stress oracle checks it after the
//! fact. The watchdog checks it *during* a run: each thread publishes
//! its lock-protocol phase (idle / waiting / holding) and a progress
//! epoch into a fixed slot of a [`ProgressRegistry`]; a [`Watchdog`]
//! polls the registry and reports any thread that has been `Waiting` on
//! one epoch for longer than the configured threshold, together with a
//! diagnostic dump (who currently holds, how many are waiting, plus a
//! caller-supplied context line — e.g. per-level queue hints and the
//! pass-ring tail).
//!
//! The publishing side is two relaxed stores per transition (phase word
//! and, on release, an epoch bump) into a thread-owned slot — no locks,
//! no RMW on shared lines, safe to leave always-on under `obs`.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crate::now_ns;

/// Progress slots in the global registry. Thread tags at or above this
/// are silently not monitored (the telemetry stays exact; only the
/// watchdog loses sight of them).
pub const MAX_PROGRESS_SLOTS: usize = 512;

// Phase 0 (idle) is implicit: an idle store writes just the timestamp.
const PHASE_WAITING: u64 = 1;
const PHASE_HOLDING: u64 = 2;

/// A thread's current lock-protocol phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Outside the lock.
    Idle,
    /// Between acquire-entry and acquire-return.
    Waiting,
    /// Between acquire-return and release.
    Holding,
}

/// One slot: `state` packs `since_ns << 2 | phase`; `epoch` counts
/// completed critical sections (bumped on release).
#[derive(Debug)]
struct ProgressSlot {
    state: AtomicU64,
    epoch: AtomicU64,
}

/// Fixed-slot table of per-thread progress state, indexed by
/// [`crate::thread_tag`].
#[derive(Debug)]
pub struct ProgressRegistry {
    slots: Box<[ProgressSlot]>,
}

impl ProgressRegistry {
    /// A registry with [`MAX_PROGRESS_SLOTS`] slots.
    pub fn new() -> Self {
        Self::with_slots(MAX_PROGRESS_SLOTS)
    }

    /// A registry with an explicit slot count (tests).
    pub fn with_slots(slots: usize) -> Self {
        ProgressRegistry {
            slots: (0..slots.max(1))
                .map(|_| ProgressSlot {
                    state: AtomicU64::new(0),
                    epoch: AtomicU64::new(0),
                })
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    #[inline]
    fn set(&self, thread: u32, phase: u64) {
        if let Some(slot) = self.slots.get(thread as usize) {
            slot.state
                .store((now_ns() << 2) | phase, Ordering::Relaxed);
        }
    }

    /// Thread `thread` entered an acquire (one relaxed store).
    #[inline]
    pub fn note_wait(&self, thread: u32) {
        self.set(thread, PHASE_WAITING);
    }

    /// Thread `thread` won the lock (one relaxed store).
    #[inline]
    pub fn note_hold(&self, thread: u32) {
        self.set(thread, PHASE_HOLDING);
    }

    /// Thread `thread` released the lock: phase goes idle and its
    /// progress epoch advances (two relaxed stores).
    #[inline]
    pub fn note_idle(&self, thread: u32) {
        if let Some(slot) = self.slots.get(thread as usize) {
            slot.epoch.fetch_add(1, Ordering::Relaxed);
            slot.state.store(now_ns() << 2, Ordering::Relaxed);
        }
    }

    /// Every thread that has ever published (phase != idle-at-epoch-0),
    /// with its current phase, when it entered it, and its epoch.
    pub fn sample(&self) -> Vec<ThreadProgress> {
        let mut out = Vec::new();
        for (tag, slot) in self.slots.iter().enumerate() {
            let state = slot.state.load(Ordering::Relaxed);
            let epoch = slot.epoch.load(Ordering::Relaxed);
            if state == 0 && epoch == 0 {
                continue;
            }
            let phase = match state & 0x3 {
                PHASE_WAITING => Phase::Waiting,
                PHASE_HOLDING => Phase::Holding,
                _ => Phase::Idle,
            };
            out.push(ThreadProgress {
                thread: tag as u32,
                phase,
                since_ns: state >> 2,
                epoch,
            });
        }
        out
    }

    /// Zeroes every slot (between runs).
    pub fn reset(&self) {
        for slot in self.slots.iter() {
            slot.state.store(0, Ordering::Relaxed);
            slot.epoch.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for ProgressRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// One thread's progress state at sample time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadProgress {
    /// Thread tag ([`crate::thread_tag`]).
    pub thread: u32,
    /// Current phase.
    pub phase: Phase,
    /// When the phase was entered (ns, [`now_ns`] epoch).
    pub since_ns: u64,
    /// Completed critical sections.
    pub epoch: u64,
}

/// The process-global registry the lock hooks publish into.
pub fn global() -> &'static Arc<ProgressRegistry> {
    static REG: OnceLock<Arc<ProgressRegistry>> = OnceLock::new();
    REG.get_or_init(|| Arc::new(ProgressRegistry::new()))
}

/// [`ProgressRegistry::note_wait`] on the global registry.
#[inline]
pub fn note_wait(thread: u32) {
    global().note_wait(thread);
}

/// [`ProgressRegistry::note_hold`] on the global registry.
#[inline]
pub fn note_hold(thread: u32) {
    global().note_hold(thread);
}

/// [`ProgressRegistry::note_idle`] on the global registry.
#[inline]
pub fn note_idle(thread: u32) {
    global().note_idle(thread);
}

/// Watchdog tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// A thread `Waiting` longer than this is reported as stalled.
    pub stall_ns: u64,
    /// Poll cadence of the background monitor thread.
    pub poll: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            // 100 ms: geologic time for a spinlock, short enough to
            // catch a livelock long before a CI timeout would.
            stall_ns: 100_000_000,
            poll: Duration::from_millis(50),
        }
    }
}

/// A stalled waiter, with enough context to start debugging.
#[derive(Debug, Clone)]
pub struct StallReport {
    /// The stalled thread's tag.
    pub thread: u32,
    /// How long it has been waiting (ns).
    pub waited_ns: u64,
    /// Its progress epoch (critical sections completed before stalling).
    pub epoch: u64,
    /// Threads currently `Holding`, with how long they have held (ns) —
    /// a long-held lock and a stalled waiter are different bugs.
    pub holders: Vec<(u32, u64)>,
    /// Total threads currently `Waiting`.
    pub waiting: usize,
    /// Caller-supplied diagnostic line (e.g. per-level queue hints and
    /// the pass-ring tail); empty if none was configured.
    pub context: String,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "STALL: thread {} waiting {:.1} ms (epoch {}); {} waiting total; holders: ",
            self.thread,
            self.waited_ns as f64 / 1e6,
            self.epoch,
            self.waiting,
        )?;
        if self.holders.is_empty() {
            write!(f, "none")?;
        } else {
            for (i, (t, held)) in self.holders.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "thread {t} ({:.1} ms)", *held as f64 / 1e6)?;
            }
        }
        if !self.context.is_empty() {
            write!(f, "; {}", self.context)?;
        }
        Ok(())
    }
}

type DiagFn = dyn Fn() -> String + Send + Sync;

/// Polls a [`ProgressRegistry`] for stalled waiters.
pub struct Watchdog {
    registry: Arc<ProgressRegistry>,
    config: WatchdogConfig,
    diag: Option<Box<DiagFn>>,
}

impl Watchdog {
    /// A watchdog over the [`global`] registry.
    pub fn new(config: WatchdogConfig) -> Self {
        Self::with_registry(Arc::clone(global()), config)
    }

    /// A watchdog over an explicit registry (tests, multiple locks).
    pub fn with_registry(registry: Arc<ProgressRegistry>, config: WatchdogConfig) -> Self {
        Watchdog {
            registry,
            config,
            diag: None,
        }
    }

    /// Attaches a diagnostic closure whose output lands in every
    /// [`StallReport::context`] — typically the lock's per-level queue
    /// hints and ring tail.
    pub fn with_diag(mut self, diag: impl Fn() -> String + Send + Sync + 'static) -> Self {
        self.diag = Some(Box::new(diag));
        self
    }

    /// One synchronous poll: every thread `Waiting` past the threshold,
    /// worst first.
    pub fn check(&self) -> Vec<StallReport> {
        let now = now_ns();
        let sample = self.registry.sample();
        let holders: Vec<(u32, u64)> = sample
            .iter()
            .filter(|p| p.phase == Phase::Holding)
            .map(|p| (p.thread, now.saturating_sub(p.since_ns)))
            .collect();
        let waiting = sample.iter().filter(|p| p.phase == Phase::Waiting).count();
        let mut out: Vec<StallReport> = sample
            .iter()
            .filter(|p| {
                p.phase == Phase::Waiting
                    && now.saturating_sub(p.since_ns) > self.config.stall_ns
            })
            .map(|p| StallReport {
                thread: p.thread,
                waited_ns: now.saturating_sub(p.since_ns),
                epoch: p.epoch,
                holders: holders.clone(),
                waiting,
                context: self.diag.as_ref().map_or_else(String::new, |d| d()),
            })
            .collect();
        out.sort_by_key(|r| std::cmp::Reverse(r.waited_ns));
        out
    }

    /// Spawns the background monitor. `on_stall` runs on the monitor
    /// thread for each *newly observed* stall (a waiter stuck across
    /// multiple polls is reported once per stall, not once per poll).
    /// The monitor stops when the returned guard is dropped.
    pub fn spawn(self, mut on_stall: impl FnMut(&StallReport) + Send + 'static) -> WatchdogGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let stalls = Arc::new(AtomicU64::new(0));
        let handle = {
            let stop = Arc::clone(&stop);
            let stalls = Arc::clone(&stalls);
            std::thread::spawn(move || {
                // (thread, wait-phase entry time) pairs already reported.
                let mut seen: Vec<(u32, u64)> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let now = now_ns();
                    for report in self.check() {
                        let key = (report.thread, now.saturating_sub(report.waited_ns));
                        // Entry times within one poll period of a seen
                        // stall are the same stall (ns jitter aside).
                        let poll_ns = self.config.poll.as_nanos() as u64;
                        if seen
                            .iter()
                            .any(|&(t, s)| t == key.0 && s.abs_diff(key.1) < poll_ns.max(1))
                        {
                            continue;
                        }
                        seen.push(key);
                        stalls.fetch_add(1, Ordering::Relaxed);
                        on_stall(&report);
                    }
                    std::thread::sleep(self.config.poll);
                }
            })
        };
        WatchdogGuard {
            stop,
            stalls,
            handle: Some(handle),
        }
    }
}

/// Keeps the background monitor alive; stops and joins it on drop.
pub struct WatchdogGuard {
    stop: Arc<AtomicBool>,
    stalls: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl WatchdogGuard {
    /// Distinct stalls reported so far.
    pub fn stalls(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }

    /// Stops the monitor and returns the stall count.
    pub fn stop(mut self) -> u64 {
        self.shutdown();
        self.stalls()
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for WatchdogGuard {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that touch the global registry.
    static GLOBAL_REG_TESTS: Mutex<()> = Mutex::new(());

    fn tiny_config() -> WatchdogConfig {
        WatchdogConfig {
            stall_ns: 1, // everything counts as stalled
            poll: Duration::from_millis(1),
        }
    }

    #[test]
    fn waiting_thread_past_threshold_is_reported() {
        let reg = Arc::new(ProgressRegistry::with_slots(16));
        reg.note_wait(3);
        reg.note_hold(7);
        // Ensure measurable elapsed time on coarse clocks.
        std::thread::sleep(Duration::from_millis(2));
        let wd = Watchdog::with_registry(Arc::clone(&reg), tiny_config());
        let reports = wd.check();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.thread, 3);
        assert!(r.waited_ns > 0);
        assert_eq!(r.waiting, 1);
        assert_eq!(r.holders.len(), 1);
        assert_eq!(r.holders[0].0, 7);
        assert!(r.context.is_empty());
    }

    #[test]
    fn generous_threshold_reports_nothing() {
        let reg = Arc::new(ProgressRegistry::with_slots(16));
        reg.note_wait(3);
        let wd = Watchdog::with_registry(
            reg,
            WatchdogConfig {
                stall_ns: u64::MAX,
                poll: Duration::from_millis(1),
            },
        );
        assert!(wd.check().is_empty());
    }

    #[test]
    fn progressing_thread_is_not_stalled() {
        let reg = Arc::new(ProgressRegistry::with_slots(16));
        reg.note_wait(2);
        reg.note_hold(2);
        reg.note_idle(2);
        std::thread::sleep(Duration::from_millis(2));
        let wd = Watchdog::with_registry(Arc::clone(&reg), tiny_config());
        assert!(wd.check().is_empty());
        let sample = reg.sample();
        let p = sample.iter().find(|p| p.thread == 2).unwrap();
        assert_eq!(p.phase, Phase::Idle);
        assert_eq!(p.epoch, 1);
    }

    #[test]
    fn diag_context_lands_in_reports() {
        let reg = Arc::new(ProgressRegistry::with_slots(16));
        reg.note_wait(1);
        std::thread::sleep(Duration::from_millis(2));
        let wd = Watchdog::with_registry(Arc::clone(&reg), tiny_config())
            .with_diag(|| "queue hints: L0=2".to_string());
        let reports = wd.check();
        assert_eq!(reports[0].context, "queue hints: L0=2");
        let line = reports[0].to_string();
        assert!(line.contains("STALL: thread 1"), "{line}");
        assert!(line.contains("queue hints"), "{line}");
    }

    #[test]
    fn out_of_range_tags_are_ignored() {
        let reg = ProgressRegistry::with_slots(4);
        reg.note_wait(1000);
        reg.note_idle(1000);
        assert!(reg.sample().is_empty());
    }

    #[test]
    fn background_monitor_flags_a_stall_once() {
        let reg = Arc::new(ProgressRegistry::with_slots(16));
        reg.note_wait(5);
        std::thread::sleep(Duration::from_millis(2));
        let wd = Watchdog::with_registry(Arc::clone(&reg), tiny_config());
        let guard = wd.spawn(|_| {});
        std::thread::sleep(Duration::from_millis(30));
        let stalls = guard.stop();
        assert_eq!(stalls, 1, "one stall, many polls, one report");
    }

    #[test]
    fn global_helpers_publish_to_global_registry() {
        let _g = GLOBAL_REG_TESTS.lock().unwrap_or_else(|p| p.into_inner());
        global().reset();
        note_wait(0);
        note_hold(0);
        note_idle(0);
        let sample = global().sample();
        let p = sample.iter().find(|p| p.thread == 0).unwrap();
        assert_eq!(p.epoch, 1);
        global().reset();
    }
}
