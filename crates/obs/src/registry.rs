//! Process-global lock-site registry.
//!
//! Every constructed CLoF lock (a `DynClofLock`, the `FastClof` wrapper,
//! or a kvstore lock built on either) registers a **site** here: a
//! static label (the composition name), a topology shape line, and the
//! source location of the construction call (captured via
//! `#[track_caller]` in the lock builders). The registry is the spine of
//! the contention profiler: the per-site accumulators in [`crate::profile`]
//! and the waits-for graph in [`crate::waitgraph`] are both keyed by the
//! site ids handed out here.
//!
//! Design constraints, in order:
//!
//! * **Wait-free hot path.** The lock protocol never touches the
//!   registry after construction; it carries an [`Arc<SiteAnchor>`] and
//!   reads the site id with one relaxed load. Registration and
//!   deregistration (cold paths) claim slots with a single CAS each.
//! * **Stable ids across adaptation swaps.** `AdaptiveLock::swap_to`
//!   builds a fresh tree per generation; [`SiteRegistry::adopt`] +
//!   [`SiteAnchor::rebind`] let the incoming tree take over the outgoing
//!   tree's slot (refcounted), so `clof top`/`clof profile` deltas keep
//!   attributing to one logical site while generations churn underneath.
//! * **Deregistration on drop.** The last [`SiteAnchor`] clone for a
//!   slot releases it; [`SiteRegistry::len`] returns to baseline once a
//!   lock (and every generation that adopted its site) is gone.
//!
//! Slots are a fixed-capacity table ([`MAX_SITES`]). If the table is
//! ever full, registration degrades gracefully: the lock still works,
//! it just profiles into the void ([`INVALID_SITE`]).
//!
//! [`Arc<SiteAnchor>`]: SiteAnchor

use std::panic::Location;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::now_ns;

/// Capacity of the global site table. Live locks above this count are
/// not registered (they still work; they are just invisible to the
/// profiler).
pub const MAX_SITES: usize = 256;

/// Sentinel site id for "not registered" (table full). All profiler
/// paths treat it as a no-op.
pub const INVALID_SITE: u32 = u32::MAX;

/// Slot metadata, written under the slot mutex at registration /
/// relabel / adoption time and copied out by [`SiteRegistry::sites`].
#[derive(Debug, Clone)]
struct SiteMeta {
    label: String,
    shape: String,
    file: &'static str,
    line: u32,
    registered_ns: u64,
    generation: u64,
}

/// One registry slot: `refs == 0` means free; a claim CASes 0 → 1.
/// `epoch` counts claims of this slot, so samplers can tell a reused
/// slot from the site they were watching.
#[derive(Debug)]
struct SiteSlot {
    refs: AtomicU32,
    epoch: AtomicU64,
    meta: Mutex<Option<SiteMeta>>,
}

/// A point-in-time copy of one registered site.
#[derive(Debug, Clone)]
pub struct SiteInfo {
    /// The site id (slot index).
    pub id: u32,
    /// Claim count of the slot when sampled (slot-reuse detector).
    pub epoch: u64,
    /// Live [`SiteAnchor`] clones holding the slot.
    pub refs: u32,
    /// Static label — the composition name (e.g. `mcs-clh-tkt`,
    /// `tas+clh-clh-tkt`, or a caller-supplied store name).
    pub label: String,
    /// Topology shape line (levels, leaf count, CPU count).
    pub shape: String,
    /// Source file of the construction call.
    pub file: &'static str,
    /// Source line of the construction call.
    pub line: u32,
    /// When the site was registered ([`now_ns`] epoch).
    pub registered_ns: u64,
    /// Adoption generation: 0 for the original registration, bumped
    /// every time an adaptation swap rebinds a new tree onto the site.
    pub generation: u64,
}

impl SiteInfo {
    /// `file:line` of the construction call.
    pub fn location(&self) -> String {
        format!("{}:{}", self.file, self.line)
    }
}

/// Fixed-capacity, CAS-claimed table of lock sites.
#[derive(Debug)]
pub struct SiteRegistry {
    slots: Box<[SiteSlot]>,
    /// Only the process-global registry resets the (global) profile
    /// accumulators on slot claim; private tables (tests) must not
    /// touch profiler state they do not own.
    wired_to_profile: bool,
}

impl SiteRegistry {
    /// An empty registry with [`MAX_SITES`] slots.
    pub fn new() -> Self {
        SiteRegistry {
            slots: (0..MAX_SITES)
                .map(|_| SiteSlot {
                    refs: AtomicU32::new(0),
                    epoch: AtomicU64::new(0),
                    meta: Mutex::new(None),
                })
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            wired_to_profile: false,
        }
    }

    /// Registers a new site and returns its anchor. The caller's source
    /// location is captured automatically; lock builders re-export this
    /// with their own `#[track_caller]` chain so the location names the
    /// user's construction call, not the builder internals.
    #[track_caller]
    pub fn register(&self, label: &str, shape: &str) -> SiteAnchor {
        self.register_at(label, shape, Location::caller())
    }

    /// [`register`](Self::register) with an explicit caller location
    /// (forwarded from a `#[track_caller]` builder).
    pub fn register_at(
        &self,
        label: &str,
        shape: &str,
        loc: &'static Location<'static>,
    ) -> SiteAnchor {
        for (id, slot) in self.slots.iter().enumerate() {
            if slot
                .refs
                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            let epoch = slot.epoch.fetch_add(1, Ordering::AcqRel) + 1;
            *slot.meta.lock().unwrap_or_else(|p| p.into_inner()) = Some(SiteMeta {
                label: label.to_string(),
                shape: shape.to_string(),
                file: loc.file(),
                line: loc.line(),
                registered_ns: now_ns(),
                generation: 0,
            });
            if self.wired_to_profile {
                crate::profile::global().reset_site(id as u32, epoch);
            }
            return SiteAnchor {
                id: AtomicU32::new(id as u32),
            };
        }
        // Table full: hand out a dead anchor; the lock still works.
        SiteAnchor {
            id: AtomicU32::new(INVALID_SITE),
        }
    }

    /// Takes an additional reference on a live site (the adoption half
    /// of an adaptation swap). Returns `false` if the site is not live,
    /// in which case the caller keeps its own registration.
    pub fn adopt(&self, id: u32) -> bool {
        let Some(slot) = self.slots.get(id as usize) else {
            return false;
        };
        let mut refs = slot.refs.load(Ordering::Acquire);
        loop {
            if refs == 0 {
                return false;
            }
            match slot.refs.compare_exchange_weak(
                refs,
                refs + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    if let Some(meta) = slot
                        .meta
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .as_mut()
                    {
                        meta.generation += 1;
                    }
                    return true;
                }
                Err(cur) => refs = cur,
            }
        }
    }

    /// Drops one reference; frees the slot when the last goes.
    fn release(&self, id: u32) {
        let Some(slot) = self.slots.get(id as usize) else {
            return;
        };
        if slot.refs.fetch_sub(1, Ordering::AcqRel) == 1 {
            *slot.meta.lock().unwrap_or_else(|p| p.into_inner()) = None;
        }
    }

    /// Replaces a live site's label (e.g. `FastClof` renaming its inner
    /// tree's site to `tas+<composition>`).
    pub fn relabel(&self, id: u32, label: &str) {
        if let Some(slot) = self.slots.get(id as usize) {
            if let Some(meta) = slot
                .meta
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .as_mut()
            {
                meta.label = label.to_string();
            }
        }
    }

    /// Live sites (slots with a nonzero refcount), in id order.
    pub fn sites(&self) -> Vec<SiteInfo> {
        let mut out = Vec::new();
        for (id, slot) in self.slots.iter().enumerate() {
            let refs = slot.refs.load(Ordering::Acquire);
            if refs == 0 {
                continue;
            }
            let meta = slot.meta.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(m) = meta.as_ref() {
                out.push(SiteInfo {
                    id: id as u32,
                    epoch: slot.epoch.load(Ordering::Acquire),
                    refs,
                    label: m.label.clone(),
                    shape: m.shape.clone(),
                    file: m.file,
                    line: m.line,
                    registered_ns: m.registered_ns,
                    generation: m.generation,
                });
            }
        }
        out
    }

    /// One site's metadata, if live.
    pub fn site(&self, id: u32) -> Option<SiteInfo> {
        self.sites().into_iter().find(|s| s.id == id)
    }

    /// Number of live sites.
    pub fn len(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.refs.load(Ordering::Acquire) > 0)
            .count()
    }

    /// `true` when no site is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SiteRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-global registry every lock builder registers into.
pub fn global() -> &'static SiteRegistry {
    static REG: OnceLock<SiteRegistry> = OnceLock::new();
    REG.get_or_init(|| SiteRegistry {
        wired_to_profile: true,
        ..SiteRegistry::new()
    })
}

/// A lock's handle on its registry slot.
///
/// The lock stores this in an `Arc` and clones it into every hook that
/// needs the site id (node observers, hold observers, the fast-path
/// gate); the hot path reads the id with a single relaxed load. The last
/// clone to drop releases the slot.
///
/// The id is interior-mutable so an adaptation swap can [`rebind`] a
/// freshly built tree onto the outgoing tree's site without rebuilding
/// the tree's observer graph.
///
/// [`rebind`]: SiteAnchor::rebind
#[derive(Debug)]
pub struct SiteAnchor {
    id: AtomicU32,
}

impl SiteAnchor {
    /// An anchor that is not registered anywhere (profiles into the
    /// void). Used by non-CLoF baseline locks and as a fallback.
    pub fn dead() -> Self {
        SiteAnchor {
            id: AtomicU32::new(INVALID_SITE),
        }
    }

    /// The current site id ([`INVALID_SITE`] when unregistered).
    #[inline]
    pub fn id(&self) -> u32 {
        self.id.load(Ordering::Relaxed)
    }

    /// `true` when this anchor holds a live registry slot.
    #[inline]
    pub fn is_live(&self) -> bool {
        self.id() != INVALID_SITE
    }

    /// Adopts `donor`'s site: takes a reference on the donor's slot,
    /// points this anchor at it, and releases this anchor's previous
    /// slot. After this, both the outgoing and incoming lock trees
    /// attribute to one site id; the incoming label wins.
    ///
    /// No-op (keeping the existing registration) if the donor is dead
    /// or already the same site.
    pub fn rebind(&self, donor: &SiteAnchor, label: &str) {
        let target = donor.id();
        let mine = self.id();
        if target == INVALID_SITE || target == mine {
            return;
        }
        if !global().adopt(target) {
            return;
        }
        let prev = self.id.swap(target, Ordering::AcqRel);
        if prev != INVALID_SITE {
            global().release(prev);
        }
        global().relabel(target, label);
    }
}

impl Drop for SiteAnchor {
    fn drop(&mut self) {
        let id = self.id();
        if id != INVALID_SITE {
            global().release(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests use the private registry constructor where possible,
    // but anchor drop/rebind go through the process-global table, so
    // they use unique labels and count those instead of absolute len.
    fn count_label(label: &str) -> usize {
        global().sites().iter().filter(|s| s.label == label).count()
    }

    #[test]
    fn register_and_drop_round_trip() {
        let label = "reg-test-round-trip";
        assert_eq!(count_label(label), 0);
        let a = global().register(label, "levels=3");
        assert!(a.is_live());
        assert_eq!(count_label(label), 1);
        let info = global().site(a.id()).expect("live site");
        assert_eq!(info.label, label);
        assert_eq!(info.shape, "levels=3");
        assert!(info.file.ends_with("registry.rs"));
        assert_eq!(info.generation, 0);
        drop(a);
        assert_eq!(count_label(label), 0);
    }

    #[test]
    fn rebind_keeps_one_site_and_bumps_generation() {
        let old = global().register("reb-old", "levels=3");
        let old_id = old.id();
        let fresh = global().register("reb-new", "levels=3");
        assert_ne!(fresh.id(), old_id);

        fresh.rebind(&old, "reb-new");
        assert_eq!(fresh.id(), old_id, "incoming anchor adopted the site");
        assert_eq!(count_label("reb-new"), 1, "label follows the adoption");
        assert_eq!(count_label("reb-old"), 0);
        let info = global().site(old_id).unwrap();
        assert_eq!(info.generation, 1);
        assert_eq!(info.refs, 2);

        drop(old);
        assert_eq!(count_label("reb-new"), 1, "site survives the donor");
        drop(fresh);
        assert_eq!(count_label("reb-new"), 0, "last anchor frees the slot");
    }

    #[test]
    fn rebind_to_dead_donor_is_a_no_op() {
        let a = global().register("reb-dead", "x");
        let id = a.id();
        a.rebind(&SiteAnchor::dead(), "renamed");
        assert_eq!(a.id(), id);
        assert_eq!(count_label("reb-dead"), 1);
    }

    #[test]
    fn relabel_updates_live_meta() {
        let a = global().register("relabel-before", "x");
        global().relabel(a.id(), "relabel-after");
        assert_eq!(count_label("relabel-after"), 1);
        assert_eq!(count_label("relabel-before"), 0);
    }

    #[test]
    fn full_table_degrades_to_dead_anchors() {
        // A private table, so the global registry is untouched. Anchors
        // release into the *global* table on drop, so these must be
        // forgotten, not dropped — this test only exercises claiming.
        let reg = SiteRegistry::new();
        for i in 0..MAX_SITES {
            let a = reg.register_at(
                &format!("fill-{i}"),
                "x",
                std::panic::Location::caller(),
            );
            assert!(a.is_live());
            std::mem::forget(a);
        }
        assert_eq!(reg.len(), MAX_SITES);
        let overflow = reg.register_at("overflow", "x", std::panic::Location::caller());
        assert!(!overflow.is_live());
        assert_eq!(overflow.id(), INVALID_SITE);
        std::mem::forget(overflow);
    }

    #[test]
    fn slot_reuse_bumps_epoch() {
        let a = global().register("epoch-a", "x");
        let id = a.id();
        let e1 = global().site(id).unwrap().epoch;
        drop(a);
        // Claim slots until we land on the same one (single-threaded,
        // lowest-free-slot allocation makes this the very next claim
        // unless a parallel test grabbed it; either way the epoch of
        // whatever slot we get is fresh).
        let b = global().register("epoch-b", "x");
        if b.id() == id {
            let e2 = global().site(id).unwrap().epoch;
            assert!(e2 > e1, "reused slot advanced its epoch");
        }
    }
}
