//! Trace analysis: ownership timeline, pass-chain distribution, wait
//! attribution, and a fairness CDF from a [`Trace`].
//!
//! The properties checked here are the ones the paper argues, restated
//! over observed spans instead of code:
//!
//! * **Mutual exclusion** — whole-lock `Hold` spans must form a total
//!   order ([`ownership_timeline`]); two overlapping holds mean either a
//!   broken lock or an interleaved trace of two different locks.
//! * **Bounded hand-off chains** — within one cohort node, consecutive
//!   `Pass` decisions form a chain that `keep_local` must cut at *H*
//!   passes (§4.3); [`ChainStats::max`] makes the bound checkable.
//! * **Fairness** — the per-thread distribution of completed holds,
//!   summarized as a CDF plus Jain's fairness index.
//!
//! Exact claims require a complete trace ([`Trace::is_complete`]); on a
//! wrapped ring the analysis still runs but flags itself
//! [`TraceAnalysis::truncated`] and the chain bound becomes advisory
//! (a dropped `ReleaseUp` can merge two chains into a long false one).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{SpanKind, Trace};

/// Wait-time attribution for one hierarchy level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelWait {
    /// Hierarchy level (0 = innermost).
    pub level: u8,
    /// Wait spans observed at this level.
    pub spans: u64,
    /// How many of them inherited a passed high lock.
    pub inherited: u64,
    /// Total time spent waiting at this level (ns).
    pub total_wait_ns: u64,
    /// Longest single wait (ns).
    pub max_wait_ns: u64,
}

impl LevelWait {
    /// Mean wait at this level (ns; 0 when empty).
    pub fn mean_wait_ns(&self) -> u64 {
        if self.spans == 0 {
            0
        } else {
            self.total_wait_ns / self.spans
        }
    }
}

/// Pass-chain length distribution for one hierarchy level.
///
/// A chain is a maximal run of consecutive `Pass` decisions at one
/// cohort node; it is cut by a `ReleaseUp` (counted with length 0 when
/// no pass preceded it — the cohort surrendered immediately).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainStats {
    /// Hierarchy level the chains live at.
    pub level: u8,
    /// Completed chains (terminated by a `ReleaseUp`).
    pub chains: u64,
    /// Chains still open at trace end (no terminating `ReleaseUp` seen).
    pub open_chains: u64,
    /// Total passes across all chains.
    pub total_passes: u64,
    /// Longest chain observed (passes; open chains included).
    pub max: u64,
    /// Chains cut by the threshold (`ReleaseUp { forced: true }`).
    pub forced_cuts: u64,
    /// Length histogram: `lengths[l]` = chains of exactly `l` passes,
    /// saturating into the last bucket.
    pub lengths: Vec<u64>,
}

impl ChainStats {
    /// Mean completed-chain length (passes; 0 when empty).
    pub fn mean(&self) -> f64 {
        if self.chains == 0 {
            0.0
        } else {
            self.total_passes as f64 / self.chains as f64
        }
    }
}

/// Per-thread completed-hold counts, as a fairness summary.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessCdf {
    /// `(thread, holds)` sorted by holds ascending.
    pub per_thread: Vec<(u32, u64)>,
    /// Jain's fairness index over the hold counts (1.0 = perfectly
    /// fair, `1/n` = one thread took everything; 1.0 when empty).
    pub jain: f64,
}

impl FairnessCdf {
    /// Share of total holds owned by the most-served thread (0 when
    /// empty). 1/n under perfect fairness.
    pub fn max_share(&self) -> f64 {
        let total: u64 = self.per_thread.iter().map(|&(_, h)| h).sum();
        if total == 0 {
            return 0.0;
        }
        self.per_thread
            .iter()
            .map(|&(_, h)| h as f64 / total as f64)
            .fold(0.0, f64::max)
    }
}

/// Everything [`analyze`] derives from a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnalysis {
    /// Completed whole-lock holds in the trace.
    pub holds: u64,
    /// Total hold time (ns).
    pub hold_ns: u64,
    /// The ring wrapped somewhere: counts are lower bounds and the
    /// chain bound is advisory, not exact.
    pub truncated: bool,
    /// Wait attribution per level, innermost first.
    pub levels: Vec<LevelWait>,
    /// Pass-chain distribution per level (levels with passes or
    /// release-ups only), innermost first.
    pub chains: Vec<ChainStats>,
    /// Per-thread hold fairness.
    pub fairness: FairnessCdf,
}

impl TraceAnalysis {
    /// Longest pass chain observed at any level (0 when none).
    pub fn max_chain(&self) -> u64 {
        self.chains.iter().map(|c| c.max).max().unwrap_or(0)
    }

    /// Checks the `keep_local` bound: every chain at every level is at
    /// most `h` passes. `Err` carries a human-readable violation. Only
    /// meaningful on a complete trace; truncated traces return `Ok`
    /// with the check skipped (and `truncated` already says so).
    pub fn check_chain_bound(&self, h: u64) -> Result<(), String> {
        if self.truncated {
            return Ok(());
        }
        for c in &self.chains {
            if c.max > h {
                return Err(format!(
                    "level {}: pass chain of {} exceeds keep_local bound {}",
                    c.level, c.max, h
                ));
            }
        }
        Ok(())
    }

    /// Plain-text report (one line per level + fairness summary).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace analysis: {} holds, {:.3} ms held{}",
            self.holds,
            self.hold_ns as f64 / 1e6,
            if self.truncated {
                " (TRUNCATED: ring wrapped, counts are lower bounds)"
            } else {
                ""
            }
        );
        for l in &self.levels {
            let _ = writeln!(
                out,
                "  L{} wait: {:>8} spans ({} inherited)  mean {:>8} ns  max {:>10} ns",
                l.level,
                l.spans,
                l.inherited,
                l.mean_wait_ns(),
                l.max_wait_ns
            );
        }
        for c in &self.chains {
            let _ = writeln!(
                out,
                "  L{} chains: {:>6} closed ({} open)  mean {:>6.1}  max {:>4}  threshold cuts {}",
                c.level, c.chains, c.open_chains, c.mean(), c.max, c.forced_cuts
            );
        }
        if !self.fairness.per_thread.is_empty() {
            let _ = writeln!(
                out,
                "  fairness: jain {:.4}  max-share {:.3}  threads {}",
                self.fairness.jain,
                self.fairness.max_share(),
                self.fairness.per_thread.len()
            );
            let n = self.fairness.per_thread.len();
            let total: u64 = self.fairness.per_thread.iter().map(|&(_, h)| h).sum();
            if total > 0 {
                let mut cum = 0u64;
                let mut cdf = String::new();
                for (i, &(_, h)) in self.fairness.per_thread.iter().enumerate() {
                    cum += h;
                    // Quartile points of the CDF keep the line short.
                    if (i + 1) * 4 % n < 4 && ((i + 1) * 4 / n) > (i * 4) / n {
                        let _ = write!(
                            cdf,
                            " p{:.0}={:.3}",
                            (i + 1) as f64 / n as f64 * 100.0,
                            cum as f64 / total as f64
                        );
                    }
                }
                let _ = writeln!(out, "  hold-share CDF:{cdf}");
            }
        }
        out
    }
}

/// Reconstructs the whole-lock ownership timeline: every completed
/// `Hold` span as `(start_ns, end_ns, thread)`, time-sorted. `Err` if
/// two holds overlap — the trace then does not describe one mutex
/// (broken lock, or two locks traced at once).
pub fn ownership_timeline(trace: &Trace) -> Result<Vec<(u64, u64, u32)>, String> {
    let mut holds: Vec<(u64, u64, u32)> = trace
        .events
        .iter()
        .filter(|e| e.kind == SpanKind::Hold)
        .map(|e| (e.start_ns, e.end_ns, e.thread))
        .collect();
    holds.sort();
    for w in holds.windows(2) {
        let (_, end_a, thread_a) = w[0];
        let (start_b, _, thread_b) = w[1];
        if start_b < end_a {
            return Err(format!(
                "holds overlap: thread {thread_a} until {end_a} ns vs thread {thread_b} from {start_b} ns"
            ));
        }
    }
    Ok(holds)
}

/// Length histogram bucket count (chains of `CHAIN_HIST_MAX..` share
/// the last bucket).
const CHAIN_HIST_MAX: usize = 256;

/// Analyzes a trace: wait attribution, pass-chain distribution, and
/// fairness. Pure function of the trace — no tracer state touched.
pub fn analyze(trace: &Trace) -> TraceAnalysis {
    let mut holds = 0u64;
    let mut hold_ns = 0u64;
    let mut levels: BTreeMap<u8, LevelWait> = BTreeMap::new();
    let mut per_thread: BTreeMap<u32, u64> = BTreeMap::new();
    // Chain state per (level, node): current run length of consecutive
    // passes. Separated per node so sibling cohorts of one level never
    // interleave into a false chain.
    let mut runs: BTreeMap<(u8, u32), u64> = BTreeMap::new();
    let mut stats: BTreeMap<u8, ChainStats> = BTreeMap::new();

    fn chain_stats(stats: &mut BTreeMap<u8, ChainStats>, level: u8) -> &mut ChainStats {
        stats.entry(level).or_insert_with(|| ChainStats {
            level,
            chains: 0,
            open_chains: 0,
            total_passes: 0,
            max: 0,
            forced_cuts: 0,
            lengths: vec![0; CHAIN_HIST_MAX + 1],
        })
    }

    for e in &trace.events {
        match e.kind {
            SpanKind::Hold => {
                holds += 1;
                hold_ns += e.duration_ns();
                *per_thread.entry(e.thread).or_insert(0) += 1;
            }
            SpanKind::Wait { inherited } => {
                let l = levels.entry(e.level).or_insert_with(|| LevelWait {
                    level: e.level,
                    spans: 0,
                    inherited: 0,
                    total_wait_ns: 0,
                    max_wait_ns: 0,
                });
                l.spans += 1;
                l.inherited += inherited as u64;
                let d = e.duration_ns();
                l.total_wait_ns += d;
                l.max_wait_ns = l.max_wait_ns.max(d);
            }
            SpanKind::Pass => {
                let run = runs.entry((e.level, e.node)).or_insert(0);
                *run += 1;
                let s = chain_stats(&mut stats, e.level);
                s.total_passes += 1;
                s.max = s.max.max(*run);
            }
            SpanKind::ReleaseUp { forced } => {
                let run = runs.remove(&(e.level, e.node)).unwrap_or(0);
                let s = chain_stats(&mut stats, e.level);
                s.chains += 1;
                s.forced_cuts += forced as u64;
                s.lengths[(run as usize).min(CHAIN_HIST_MAX)] += 1;
            }
            // Gate decisions and migrations carry no per-level wait or
            // chain information; migrations are whole-lock instants the
            // timeline shows via their flow edge.
            SpanKind::Gate { .. } | SpanKind::Migrate { .. } => {}
        }
    }

    // Runs with no terminating ReleaseUp were cut by trace end.
    for ((level, _), run) in runs {
        let s = chain_stats(&mut stats, level);
        s.open_chains += 1;
        s.lengths[(run as usize).min(CHAIN_HIST_MAX)] += 1;
    }

    let mut per_thread: Vec<(u32, u64)> = per_thread.into_iter().collect();
    per_thread.sort_by_key(|&(t, h)| (h, t));
    let jain = {
        let n = per_thread.len() as f64;
        let sum: f64 = per_thread.iter().map(|&(_, h)| h as f64).sum();
        let sq: f64 = per_thread.iter().map(|&(_, h)| (h as f64) * (h as f64)).sum();
        if sq == 0.0 {
            1.0
        } else {
            sum * sum / (n * sq)
        }
    };

    TraceAnalysis {
        holds,
        hold_ns,
        truncated: !trace.is_complete(),
        levels: levels.into_values().collect(),
        chains: stats.into_values().collect(),
        fairness: FairnessCdf { per_thread, jain },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanEvent;

    fn ev(start: u64, end: u64, level: u8, node: u32, thread: u32, kind: SpanKind) -> SpanEvent {
        SpanEvent {
            start_ns: start,
            end_ns: end,
            level,
            node,
            thread,
            kind,
            flow_in: 0,
            flow_out: 0,
        }
    }

    fn trace(events: Vec<SpanEvent>) -> Trace {
        let recorded = events.len() as u64;
        Trace {
            events,
            recorded,
            dropped: 0,
        }
    }

    #[test]
    fn ownership_timeline_orders_disjoint_holds() {
        let t = trace(vec![
            ev(10, 20, 0, 0, 1, SpanKind::Hold),
            ev(0, 10, 0, 0, 0, SpanKind::Hold),
            ev(20, 25, 0, 0, 2, SpanKind::Hold),
        ]);
        let tl = ownership_timeline(&t).expect("disjoint holds are a total order");
        assert_eq!(tl, vec![(0, 10, 0), (10, 20, 1), (20, 25, 2)]);
    }

    #[test]
    fn ownership_timeline_rejects_overlap() {
        let t = trace(vec![
            ev(0, 15, 0, 0, 0, SpanKind::Hold),
            ev(10, 20, 0, 0, 1, SpanKind::Hold),
        ]);
        let err = ownership_timeline(&t).unwrap_err();
        assert!(err.contains("overlap"), "{err}");
    }

    #[test]
    fn chains_count_consecutive_passes_per_node() {
        // Node 1: pass, pass, release-up (chain of 2, forced).
        // Node 2 (same level): one pass interleaved — must not extend
        // node 1's chain; left open at trace end.
        let t = trace(vec![
            ev(1, 1, 0, 1, 0, SpanKind::Pass),
            ev(2, 2, 0, 2, 5, SpanKind::Pass),
            ev(3, 3, 0, 1, 1, SpanKind::Pass),
            ev(4, 4, 0, 1, 2, SpanKind::ReleaseUp { forced: true }),
        ]);
        let a = analyze(&t);
        assert_eq!(a.chains.len(), 1);
        let c = &a.chains[0];
        assert_eq!(c.level, 0);
        assert_eq!(c.chains, 1);
        assert_eq!(c.open_chains, 1);
        assert_eq!(c.total_passes, 3);
        assert_eq!(c.max, 2, "sibling node must not extend the chain");
        assert_eq!(c.forced_cuts, 1);
        assert_eq!(c.lengths[2], 1, "closed chain of 2");
        assert_eq!(c.lengths[1], 1, "open chain of 1");
        assert_eq!(a.max_chain(), 2);
    }

    #[test]
    fn immediate_release_up_is_a_zero_length_chain() {
        let t = trace(vec![ev(1, 1, 1, 3, 0, SpanKind::ReleaseUp { forced: false })]);
        let a = analyze(&t);
        assert_eq!(a.chains[0].chains, 1);
        assert_eq!(a.chains[0].lengths[0], 1);
        assert_eq!(a.chains[0].max, 0);
    }

    #[test]
    fn chain_bound_check_flags_violations_on_complete_traces() {
        let mut events = Vec::new();
        for i in 0..5u64 {
            events.push(ev(i, i, 0, 1, 0, SpanKind::Pass));
        }
        events.push(ev(9, 9, 0, 1, 0, SpanKind::ReleaseUp { forced: true }));
        let t = trace(events);
        let a = analyze(&t);
        assert!(a.check_chain_bound(5).is_ok());
        let err = a.check_chain_bound(4).unwrap_err();
        assert!(err.contains("exceeds keep_local bound 4"), "{err}");

        // A truncated trace skips the check (advisory only).
        let mut tr = analyze(&t);
        tr.truncated = true;
        assert!(tr.check_chain_bound(1).is_ok());
    }

    #[test]
    fn wait_attribution_splits_levels_and_inheritance() {
        let t = trace(vec![
            ev(0, 100, 0, 1, 0, SpanKind::Wait { inherited: false }),
            ev(0, 50, 0, 1, 1, SpanKind::Wait { inherited: true }),
            ev(0, 400, 1, 2, 0, SpanKind::Wait { inherited: false }),
        ]);
        let a = analyze(&t);
        assert_eq!(a.levels.len(), 2);
        assert_eq!(a.levels[0].level, 0);
        assert_eq!(a.levels[0].spans, 2);
        assert_eq!(a.levels[0].inherited, 1);
        assert_eq!(a.levels[0].total_wait_ns, 150);
        assert_eq!(a.levels[0].mean_wait_ns(), 75);
        assert_eq!(a.levels[0].max_wait_ns, 100);
        assert_eq!(a.levels[1].level, 1);
        assert_eq!(a.levels[1].total_wait_ns, 400);
    }

    #[test]
    fn fairness_is_perfect_when_equal_and_low_when_skewed() {
        let fair = analyze(&trace(vec![
            ev(0, 1, 0, 0, 0, SpanKind::Hold),
            ev(1, 2, 0, 0, 1, SpanKind::Hold),
            ev(2, 3, 0, 0, 2, SpanKind::Hold),
            ev(3, 4, 0, 0, 3, SpanKind::Hold),
        ]));
        assert!((fair.fairness.jain - 1.0).abs() < 1e-9);
        assert!((fair.fairness.max_share() - 0.25).abs() < 1e-9);

        let mut events: Vec<SpanEvent> = (0..9u64)
            .map(|i| ev(i, i + 1, 0, 0, 0, SpanKind::Hold))
            .collect();
        events.push(ev(9, 10, 0, 0, 1, SpanKind::Hold));
        let skew = analyze(&trace(events));
        assert!(skew.fairness.jain < 0.65, "jain {}", skew.fairness.jain);
        assert!((skew.fairness.max_share() - 0.9).abs() < 1e-9);
        // Sorted ascending: the starved thread first.
        assert_eq!(skew.fairness.per_thread[0], (1, 1));
    }

    #[test]
    fn truncated_traces_are_flagged() {
        let mut t = trace(vec![ev(0, 1, 0, 0, 0, SpanKind::Hold)]);
        t.dropped = 3;
        let a = analyze(&t);
        assert!(a.truncated);
        assert!(a.render().contains("TRUNCATED"));
    }

    #[test]
    fn render_mentions_every_section() {
        let t = trace(vec![
            ev(0, 10, 0, 1, 0, SpanKind::Wait { inherited: false }),
            ev(10, 20, 0, 0, 0, SpanKind::Hold),
            ev(20, 20, 0, 1, 0, SpanKind::Pass),
            ev(21, 21, 0, 1, 1, SpanKind::ReleaseUp { forced: false }),
        ]);
        let out = analyze(&t).render();
        assert!(out.contains("trace analysis: 1 holds"), "{out}");
        assert!(out.contains("L0 wait"), "{out}");
        assert!(out.contains("L0 chains"), "{out}");
        assert!(out.contains("jain"), "{out}");
    }
}
