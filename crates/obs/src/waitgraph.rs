//! Bounded waits-for graph over registered lock sites.
//!
//! Each thread owns a fixed slot (indexed by [`thread_tag`], same
//! scheme as the watchdog's progress registry) recording *which site it
//! is waiting on* and *which sites it currently holds*. The publishing
//! side is the lock protocol's existing hold-observer transitions —
//! two or three relaxed stores per acquire, single-writer per slot, so
//! it is safe to leave always-on under `obs`.
//!
//! [`WaitTable::analyze`] samples the table and reports:
//!
//! * **Deadlock** — a cycle in the thread-level waits-for relation
//!   (thread A waits on a site held by B, who waits on a site held by
//!   A, …). Real CLoF compositions cannot deadlock on a single lock,
//!   but *stacks* of locks (kvstore transactions over several stores)
//!   can, and injected occupancy lets CI prove the detector works.
//! * **Inversion** — a waiter that has watched the site's intra-level
//!   pass counter ([`crate::profile`]) advance beyond the `keep_local`
//!   gap bound *H* (§4.1) without being served: the signature of a
//!   remote waiter starved behind repeated local hand-offs.
//!
//! Findings carry stable dedup keys; [`FindingDedup`] suppresses
//! repeats across polls, and the SLO evaluator folds findings into
//! `/alerts` (deduplicated against plain watchdog stalls, so one stuck
//! site fires one alert).
//!
//! [`thread_tag`]: crate::thread_tag

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::export::json_escape;
use crate::registry::INVALID_SITE;
use crate::{now_ns, profile, registry, thread_tag};

/// Thread slots in the global wait table. Thread tags at or above this
/// are not tracked (the rest of the telemetry stays exact).
pub const MAX_GRAPH_THREADS: usize = 512;

/// Maximum simultaneously held sites tracked per thread (nested locks
/// deeper than this are invisible to the graph, never wrong — missing
/// edges can only hide a cycle, not invent one).
pub const MAX_HELD_SITES: usize = 4;

/// One thread's occupancy slot. `waiting_site`/`held` store `site + 1`
/// (0 = empty). Single-writer: only the owning thread stores.
#[derive(Debug, Default)]
struct ThreadCell {
    waiting_site: AtomicU32,
    wait_since: AtomicU64,
    wait_passes: AtomicU64,
    held: [AtomicU32; MAX_HELD_SITES],
}

/// Fixed-slot table of per-thread lock occupancy.
#[derive(Debug)]
pub struct WaitTable {
    cells: Box<[ThreadCell]>,
}

impl WaitTable {
    /// An empty table with [`MAX_GRAPH_THREADS`] slots.
    pub fn new() -> Self {
        WaitTable {
            cells: (0..MAX_GRAPH_THREADS)
                .map(|_| ThreadCell::default())
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    #[inline]
    fn cell(&self, thread: u32) -> Option<&ThreadCell> {
        self.cells.get(thread as usize)
    }

    /// Thread `thread` started waiting on `site`. Snapshots the site's
    /// pass counter as the inversion baseline.
    #[inline]
    pub fn note_wait(&self, thread: u32, site: u32) {
        if site == INVALID_SITE {
            return;
        }
        if let Some(cell) = self.cell(thread) {
            cell.wait_passes
                .store(profile::global().passes(site), Ordering::Relaxed);
            cell.wait_since.store(now_ns(), Ordering::Relaxed);
            cell.waiting_site.store(site + 1, Ordering::Relaxed);
        }
    }

    /// Thread `thread` acquired `site`: no longer waiting, now holding.
    #[inline]
    pub fn note_acquired(&self, thread: u32, site: u32) {
        if site == INVALID_SITE {
            return;
        }
        if let Some(cell) = self.cell(thread) {
            cell.waiting_site.store(0, Ordering::Relaxed);
            for slot in &cell.held {
                if slot.load(Ordering::Relaxed) == 0 {
                    slot.store(site + 1, Ordering::Relaxed);
                    break;
                }
            }
        }
    }

    /// Thread `thread` stopped waiting on `site` *without* acquiring it
    /// (deadline abandonment): the wait edge is cleared and nothing is
    /// added to the held set. Without this, a timed-out waiter would
    /// look permanently blocked to the cycle/stall analyzer.
    #[inline]
    pub fn note_wait_cancelled(&self, thread: u32, site: u32) {
        if site == INVALID_SITE {
            return;
        }
        if let Some(cell) = self.cell(thread) {
            cell.waiting_site.store(0, Ordering::Relaxed);
        }
    }

    /// Thread `thread` released `site`.
    #[inline]
    pub fn note_released(&self, thread: u32, site: u32) {
        if site == INVALID_SITE {
            return;
        }
        if let Some(cell) = self.cell(thread) {
            // Innermost-first: clear the last matching slot.
            for slot in cell.held.iter().rev() {
                if slot.load(Ordering::Relaxed) == site + 1 {
                    slot.store(0, Ordering::Relaxed);
                    break;
                }
            }
        }
    }

    /// Overwrites a thread slot with synthetic occupancy — the test/CI
    /// injection point (`clof profile --inject-deadlock` builds its
    /// 2-cycle here instead of actually deadlocking the process). The
    /// inversion baseline is the site's *current* pass count; advance
    /// it afterwards via [`profile::ContentionProfile::record_pass`] to
    /// stage an inversion.
    pub fn inject(&self, thread: u32, held: &[u32], waiting_on: Option<u32>) {
        if let Some(cell) = self.cell(thread) {
            for (i, slot) in cell.held.iter().enumerate() {
                slot.store(
                    held.get(i).map_or(0, |s| s + 1),
                    Ordering::Relaxed,
                );
            }
            match waiting_on {
                Some(site) => {
                    cell.wait_passes
                        .store(profile::global().passes(site), Ordering::Relaxed);
                    cell.wait_since.store(now_ns(), Ordering::Relaxed);
                    cell.waiting_site.store(site + 1, Ordering::Relaxed);
                }
                None => cell.waiting_site.store(0, Ordering::Relaxed),
            }
        }
    }

    /// Clears one thread slot.
    pub fn clear_thread(&self, thread: u32) {
        self.inject(thread, &[], None);
    }

    /// Clears every slot (between runs).
    pub fn reset(&self) {
        for t in 0..self.cells.len() {
            self.clear_thread(t as u32);
        }
    }

    /// Samples the table and reports cycles (deadlock) and waiters
    /// starved past `h_bound` hand-offs (inversion).
    pub fn analyze(&self, h_bound: u64) -> GraphReport {
        let now = now_ns();
        // (thread, waiting site, since, passes-at-entry)
        let mut waiters: Vec<(u32, u32, u64, u64)> = Vec::new();
        // (thread, held site)
        let mut holds: Vec<(u32, u32)> = Vec::new();
        for (tag, cell) in self.cells.iter().enumerate() {
            let w = cell.waiting_site.load(Ordering::Relaxed);
            if w != 0 {
                waiters.push((
                    tag as u32,
                    w - 1,
                    cell.wait_since.load(Ordering::Relaxed),
                    cell.wait_passes.load(Ordering::Relaxed),
                ));
            }
            for slot in &cell.held {
                let h = slot.load(Ordering::Relaxed);
                if h != 0 {
                    holds.push((tag as u32, h - 1));
                }
            }
        }

        // Thread-level waits-for edges: waiter -> each holder of its
        // site, annotated with the site.
        let mut edges: Vec<(u32, u32, u32)> = Vec::new();
        for &(t, site, _, _) in &waiters {
            for &(h, held) in &holds {
                if held == site && h != t {
                    edges.push((t, site, h));
                }
            }
        }

        let mut findings = Vec::new();
        for cycle in find_cycles(&edges) {
            let mut sites: Vec<u32> = cycle
                .iter()
                .filter_map(|t| {
                    waiters
                        .iter()
                        .find(|(w, _, _, _)| w == t)
                        .map(|&(_, s, _, _)| s)
                })
                .collect();
            sites.sort_unstable();
            sites.dedup();
            findings.push(GraphFinding::Deadlock {
                threads: cycle,
                sites,
            });
        }

        for &(t, site, since, base) in &waiters {
            let handoffs = profile::global().passes(site).saturating_sub(base);
            if handoffs > h_bound {
                findings.push(GraphFinding::Inversion {
                    thread: t,
                    site,
                    handoffs,
                    h_bound,
                    waited_ns: now.saturating_sub(since),
                });
            }
        }

        GraphReport {
            threads_waiting: waiters.len(),
            holds: holds.len(),
            edges: edges.len(),
            findings,
        }
    }
}

impl Default for WaitTable {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-global wait table the lock hooks publish into.
pub fn global() -> &'static WaitTable {
    static TABLE: OnceLock<WaitTable> = OnceLock::new();
    TABLE.get_or_init(WaitTable::new)
}

/// [`WaitTable::note_wait`] on the global table for the calling thread.
#[inline]
pub fn note_wait(site: u32) {
    global().note_wait(thread_tag(), site);
}

/// [`WaitTable::note_acquired`] on the global table for the calling
/// thread.
#[inline]
pub fn note_acquired(site: u32) {
    global().note_acquired(thread_tag(), site);
}

/// [`WaitTable::note_wait_cancelled`] on the global table for the
/// calling thread.
#[inline]
pub fn note_wait_cancelled(site: u32) {
    global().note_wait_cancelled(thread_tag(), site);
}

/// [`WaitTable::note_released`] on the global table for the calling
/// thread.
#[inline]
pub fn note_released(site: u32) {
    global().note_released(thread_tag(), site);
}

/// Cycles in a thread-level edge list `(waiter, site, holder)`, each
/// reported once as a sorted thread list.
fn find_cycles(edges: &[(u32, u32, u32)]) -> Vec<Vec<u32>> {
    let mut nodes: Vec<u32> = edges.iter().flat_map(|&(a, _, b)| [a, b]).collect();
    nodes.sort_unstable();
    nodes.dedup();

    let succ = |t: u32| -> Vec<u32> {
        edges
            .iter()
            .filter(|&&(a, _, _)| a == t)
            .map(|&(_, _, b)| b)
            .collect()
    };

    let mut cycles: Vec<Vec<u32>> = Vec::new();
    // Bounded DFS from every node; path-based back-edge detection. The
    // table caps nodes at MAX_GRAPH_THREADS, so this stays small.
    for &start in &nodes {
        let mut stack: Vec<(u32, Vec<u32>)> = vec![(start, vec![start])];
        while let Some((node, path)) = stack.pop() {
            for next in succ(node) {
                if let Some(pos) = path.iter().position(|&p| p == next) {
                    let mut cycle = path[pos..].to_vec();
                    cycle.sort_unstable();
                    cycle.dedup();
                    if !cycles.contains(&cycle) {
                        cycles.push(cycle);
                    }
                } else if path.len() < MAX_GRAPH_THREADS {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
    cycles
}

/// One waits-for graph verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphFinding {
    /// A cycle in the waits-for relation: every listed thread waits on
    /// a site held by another listed thread.
    Deadlock {
        /// Threads on the cycle (sorted, deduped).
        threads: Vec<u32>,
        /// Sites involved (sorted, deduped).
        sites: Vec<u32>,
    },
    /// A waiter starved past the `keep_local` gap bound: the site
    /// handed off `handoffs > h_bound` times while this thread waited.
    Inversion {
        /// The starved thread.
        thread: u32,
        /// The site it waits on.
        site: u32,
        /// Hand-offs observed since it started waiting.
        handoffs: u64,
        /// The gap bound it exceeded.
        h_bound: u64,
        /// How long it has been waiting (ns).
        waited_ns: u64,
    },
}

impl GraphFinding {
    /// `"deadlock"` or `"inversion"`.
    pub fn kind(&self) -> &'static str {
        match self {
            GraphFinding::Deadlock { .. } => "deadlock",
            GraphFinding::Inversion { .. } => "inversion",
        }
    }

    /// Threads implicated in the finding.
    pub fn threads(&self) -> Vec<u32> {
        match self {
            GraphFinding::Deadlock { threads, .. } => threads.clone(),
            GraphFinding::Inversion { thread, .. } => vec![*thread],
        }
    }

    /// A stable dedup key: kind + the implicated thread/site identity,
    /// *not* the evolving measurements — repeated polls of one ongoing
    /// finding produce one key.
    pub fn key(&self) -> String {
        match self {
            GraphFinding::Deadlock { threads, sites } => {
                format!("deadlock:t{threads:?}:s{sites:?}")
            }
            GraphFinding::Inversion { thread, site, .. } => {
                format!("inversion:t{thread}:s{site}")
            }
        }
    }

    fn site_label(site: u32) -> String {
        registry::global()
            .site(site)
            .map(|s| s.label)
            .unwrap_or_else(|| format!("site-{site}"))
    }

    /// A one-line human description (site ids resolved to labels).
    pub fn detail(&self) -> String {
        match self {
            GraphFinding::Deadlock { threads, sites } => {
                let labels: Vec<String> =
                    sites.iter().map(|&s| Self::site_label(s)).collect();
                format!(
                    "waits-for cycle: threads {threads:?} over sites {} ({sites:?})",
                    labels.join(", ")
                )
            }
            GraphFinding::Inversion {
                thread,
                site,
                handoffs,
                h_bound,
                waited_ns,
            } => format!(
                "inversion: thread {thread} starved on {} (site {site}) for {:.1} ms \
                 while {handoffs} hand-offs passed it (gap bound H={h_bound})",
                Self::site_label(*site),
                *waited_ns as f64 / 1e6,
            ),
        }
    }

    /// JSON object for `/profile` and `/alerts` payloads.
    pub fn to_json(&self) -> String {
        match self {
            GraphFinding::Deadlock { threads, sites } => {
                let t: Vec<String> = threads.iter().map(u32::to_string).collect();
                let s: Vec<String> = sites.iter().map(u32::to_string).collect();
                format!(
                    "{{\"kind\":\"deadlock\",\"threads\":[{}],\"sites\":[{}],\"detail\":\"{}\"}}",
                    t.join(","),
                    s.join(","),
                    json_escape(&self.detail())
                )
            }
            GraphFinding::Inversion {
                thread,
                site,
                handoffs,
                h_bound,
                waited_ns,
            } => format!(
                "{{\"kind\":\"inversion\",\"thread\":{thread},\"site\":{site},\
                 \"handoffs\":{handoffs},\"h_bound\":{h_bound},\"waited_ns\":{waited_ns},\
                 \"detail\":\"{}\"}}",
                json_escape(&self.detail())
            ),
        }
    }
}

/// One [`WaitTable::analyze`] pass.
#[derive(Debug, Clone)]
pub struct GraphReport {
    /// Threads currently waiting on some site.
    pub threads_waiting: usize,
    /// (thread, site) hold pairs observed.
    pub holds: usize,
    /// Waits-for edges built.
    pub edges: usize,
    /// Deadlock / inversion findings, deadlocks first.
    pub findings: Vec<GraphFinding>,
}

impl GraphReport {
    /// `true` when the graph is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Suppresses findings already reported on a previous poll. A finding
/// whose key disappears and later reappears is reported again (it is a
/// new incident).
#[derive(Debug, Default)]
pub struct FindingDedup {
    seen: Vec<String>,
}

impl FindingDedup {
    /// An empty dedup window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the findings not present on the previous poll and makes
    /// the given set the new baseline.
    pub fn fresh(&mut self, findings: &[GraphFinding]) -> Vec<GraphFinding> {
        let keys: Vec<String> = findings.iter().map(GraphFinding::key).collect();
        let fresh = findings
            .iter()
            .filter(|f| !self.seen.contains(&f.key()))
            .cloned()
            .collect();
        self.seen = keys;
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injected_two_cycle_is_detected_as_deadlock() {
        let table = WaitTable::new();
        // Threads 1 and 2, sites 10 and 11: classic 2-cycle.
        table.inject(1, &[10], Some(11));
        table.inject(2, &[11], Some(10));
        let report = table.analyze(u64::MAX);
        assert_eq!(report.threads_waiting, 2);
        assert_eq!(report.edges, 2);
        let deadlocks: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.kind() == "deadlock")
            .collect();
        assert_eq!(deadlocks.len(), 1, "{:?}", report.findings);
        match deadlocks[0] {
            GraphFinding::Deadlock { threads, sites } => {
                assert_eq!(threads, &vec![1, 2]);
                assert_eq!(sites, &vec![10, 11]);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn waiting_without_a_cycle_is_clean() {
        let table = WaitTable::new();
        table.inject(1, &[], Some(10));
        table.inject(2, &[10], None);
        let report = table.analyze(u64::MAX);
        assert_eq!(report.edges, 1);
        assert!(report.is_clean(), "{:?}", report.findings);
    }

    #[test]
    fn handoffs_past_h_bound_flag_an_inversion() {
        // Needs a real registered site so the pass clock exists.
        let anchor = registry::global().register("wg-inv", "x");
        let site = anchor.id();
        let table = WaitTable::new();
        table.inject(3, &[], Some(site));
        for _ in 0..5 {
            profile::global().record_pass(site);
        }
        let report = table.analyze(4);
        let inv: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.kind() == "inversion")
            .collect();
        assert_eq!(inv.len(), 1, "{:?}", report.findings);
        match inv[0] {
            GraphFinding::Inversion {
                thread,
                site: s,
                handoffs,
                h_bound,
                ..
            } => {
                assert_eq!(*thread, 3);
                assert_eq!(*s, site);
                assert_eq!(*handoffs, 5);
                assert_eq!(*h_bound, 4);
            }
            other => panic!("expected inversion, got {other:?}"),
        }
        // At the bound is fine; only past it fires.
        assert!(table.analyze(5).is_clean());
        let detail = inv[0].detail();
        assert!(detail.contains("wg-inv"), "{detail}");
    }

    #[test]
    fn protocol_transitions_build_and_tear_down_edges() {
        let table = WaitTable::new();
        table.note_acquired(7, 42);
        table.note_wait(8, 42);
        let report = table.analyze(u64::MAX);
        assert_eq!(report.edges, 1);
        table.note_released(7, 42);
        table.note_acquired(8, 42);
        let report = table.analyze(u64::MAX);
        assert_eq!(report.edges, 0);
        assert_eq!(report.threads_waiting, 0);
        table.note_released(8, 42);
        assert_eq!(table.analyze(u64::MAX).holds, 0);
    }

    #[test]
    fn dedup_reports_each_incident_once_until_it_clears() {
        let f = GraphFinding::Inversion {
            thread: 1,
            site: 2,
            handoffs: 10,
            h_bound: 4,
            waited_ns: 1,
        };
        let mut dedup = FindingDedup::new();
        assert_eq!(dedup.fresh(std::slice::from_ref(&f)).len(), 1);
        // Same incident, later poll (measurements moved): suppressed.
        let f2 = GraphFinding::Inversion {
            thread: 1,
            site: 2,
            handoffs: 99,
            h_bound: 4,
            waited_ns: 500,
        };
        assert_eq!(dedup.fresh(std::slice::from_ref(&f2)).len(), 0);
        // Cleared, then recurs: reported again.
        assert_eq!(dedup.fresh(&[]).len(), 0);
        assert_eq!(dedup.fresh(std::slice::from_ref(&f)).len(), 1);
    }

    #[test]
    fn findings_render_json() {
        let d = GraphFinding::Deadlock {
            threads: vec![1, 2],
            sites: vec![3],
        };
        let j = d.to_json();
        assert!(j.contains("\"kind\":\"deadlock\""));
        assert!(j.contains("\"threads\":[1,2]"));
        assert!(j.contains("\"sites\":[3]"));
    }
}
