//! Process-wide deadline/poison telemetry for the bounded-acquisition
//! layer.
//!
//! The deadline layer lives in `clof-locks` behind its `deadline`
//! feature; to keep that crate dependency-free it exposes recorder
//! *hooks* (`set_abandon_recorder` / `set_skip_recorder`) and
//! `clof-core` wires them here when both `deadline` and `obs` are
//! enabled. Timeouts and poisonings are recorded by the composition
//! layer directly (a basic lock only knows its own wait gave up; only
//! the composed acquire knows the *whole attempt* timed out).
//!
//! Counting convention:
//!
//! * **timeout** — one composed acquisition attempt that ran out of
//!   budget (counted once per attempt, at the handle).
//! * **abandon** — one waiter-side bailout at a single wait: a queue
//!   node marked abandoned (MCS/CLH/Hemlock), a slot turn cancelled or
//!   handed forward (ticket/Anderson), or a bounded composition wait
//!   (fast-path gate, adaptation baton) giving up. One timeout may
//!   produce several abandons (one per level it had to back out of) or
//!   none (expired before any queue was entered).
//! * **skip** — one releaser-side reclaim of an abandoned queue node.
//! * **poison** — one panic-while-holding detection by an RAII guard.
//!
//! Rendering composes at the serve layer, same as `park`: `/metrics`
//! and `/snapshot` append these fragments so `render_json` /
//! `render_prometheus` stay pure functions of a snapshot.

use std::sync::atomic::{AtomicU64, Ordering};

static TIMEOUTS: AtomicU64 = AtomicU64::new(0);
static ABANDONS: AtomicU64 = AtomicU64::new(0);
static SKIPS: AtomicU64 = AtomicU64::new(0);
static POISONS: AtomicU64 = AtomicU64::new(0);

/// Records one composed acquisition attempt that timed out.
#[inline]
pub fn record_timeout() {
    TIMEOUTS.fetch_add(1, Ordering::Relaxed);
}

/// Records one waiter-side bailout (matches
/// `clof_locks::deadline::set_abandon_recorder`).
#[inline]
pub fn record_abandon() {
    ABANDONS.fetch_add(1, Ordering::Relaxed);
}

/// Records one releaser-side abandoned-node reclaim (matches
/// `clof_locks::deadline::set_skip_recorder`).
#[inline]
pub fn record_skip() {
    SKIPS.fetch_add(1, Ordering::Relaxed);
}

/// Records one panic-while-holding poisoning.
#[inline]
pub fn record_poison() {
    POISONS.fetch_add(1, Ordering::Relaxed);
}

/// Point-in-time view of the process-wide deadline statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineStats {
    /// Composed acquisition attempts that timed out.
    pub timeouts: u64,
    /// Waiter-side bailouts (nodes abandoned, turns handed forward,
    /// bounded composition waits given up).
    pub abandons: u64,
    /// Releaser-side reclaims of abandoned queue nodes.
    pub skips: u64,
    /// Panic-while-holding poisonings detected by RAII guards.
    pub poisons: u64,
}

/// Snapshots the process-wide deadline statistics.
pub fn deadline_stats() -> DeadlineStats {
    DeadlineStats {
        timeouts: TIMEOUTS.load(Ordering::Relaxed),
        abandons: ABANDONS.load(Ordering::Relaxed),
        skips: SKIPS.load(Ordering::Relaxed),
        poisons: POISONS.load(Ordering::Relaxed),
    }
}

/// Renders the deadline statistics as one JSON object, for a
/// `"deadline"` key in the `/snapshot` composite.
pub fn render_deadline_json(stats: &DeadlineStats) -> String {
    format!(
        "{{\"timeouts\":{},\"abandons\":{},\"skips\":{},\"poisons\":{}}}",
        stats.timeouts, stats.abandons, stats.skips, stats.poisons
    )
}

/// Renders the deadline statistics as a Prometheus exposition fragment
/// (appended to `/metrics` by the serving layer).
pub fn render_deadline_prometheus(stats: &DeadlineStats) -> String {
    let mut out = String::new();
    for (family, help, value) in [
        (
            "clof_deadline_timeouts_total",
            "Composed acquisition attempts that timed out.",
            stats.timeouts,
        ),
        (
            "clof_deadline_abandons_total",
            "Waiter-side bailouts (queue nodes abandoned, turns handed forward).",
            stats.abandons,
        ),
        (
            "clof_deadline_skips_total",
            "Releaser-side reclaims of abandoned queue nodes.",
            stats.skips,
        ),
        (
            "clof_deadline_poisons_total",
            "Panic-while-holding poisonings detected by RAII guards.",
            stats.poisons,
        ),
    ] {
        out.push_str(&format!("# HELP {family} {help}\n"));
        out.push_str(&format!("# TYPE {family} counter\n"));
        out.push_str(&format!("{family}{{scope=\"process\"}} {value}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The statics are process-global and tests run in parallel, so
    // assertions are monotonic (deltas >=) rather than exact.

    #[test]
    fn record_bumps_every_counter() {
        let before = deadline_stats();
        record_timeout();
        record_abandon();
        record_abandon();
        record_skip();
        record_poison();
        let after = deadline_stats();
        assert!(after.timeouts >= before.timeouts + 1);
        assert!(after.abandons >= before.abandons + 2);
        assert!(after.skips >= before.skips + 1);
        assert!(after.poisons >= before.poisons + 1);
    }

    #[test]
    fn json_fragment_is_balanced_and_complete() {
        let s = render_deadline_json(&deadline_stats());
        for key in ["\"timeouts\":", "\"abandons\":", "\"skips\":", "\"poisons\":"] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn prometheus_fragment_has_help_type_and_series() {
        record_timeout();
        let text = render_deadline_prometheus(&deadline_stats());
        for family in [
            "clof_deadline_timeouts_total",
            "clof_deadline_abandons_total",
            "clof_deadline_skips_total",
            "clof_deadline_poisons_total",
        ] {
            assert!(text.contains(&format!("# HELP {family}")), "{family} HELP");
            assert!(text.contains(&format!("# TYPE {family}")), "{family} TYPE");
            assert!(
                text.contains(&format!("{family}{{scope=\"process\"}}")),
                "{family} series"
            );
        }
    }
}
