//! Windowed telemetry: snapshot deltas and a rate sampler.
//!
//! Counters and histograms are cumulative — perfect for a finished run,
//! useless mid-run ("how many acquires/s *now*?"). This module turns
//! two cumulative [`LockSnapshot`]s into a window: `later.delta(&earlier)`
//! subtracts every counter and histogram bucket, and a [`Sampler`]
//! timestamps successive snapshots to convert deltas into rates.
//!
//! Delta semantics: counters subtract exactly (they are monotone at
//! quiescence); histogram buckets subtract per bucket, so windowed
//! quantiles are exact to bucket resolution. The windowed `max` is the
//! later snapshot's cumulative max — an upper bound for the window, not
//! the window's own max (a histogram cannot un-see an old maximum); it
//! still caps quantiles correctly since windowed samples are a subset.
//! The event list is left empty in a delta — ring events don't subtract;
//! use the ring (or the tracer) directly for event-level views.

use crate::{now_ns, HistSnapshot, LevelSnapshot, LockSnapshot, HIST_BUCKETS};

impl HistSnapshot {
    /// Samples recorded after `earlier` was taken, bucket-wise.
    /// Saturating per field, so a mismatched pair degrades to zeros
    /// instead of wrapping. `max` is inherited from `self` (see module
    /// docs).
    pub fn delta(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        HistSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: if self.count > earlier.count {
                self.max
            } else {
                0
            },
        }
    }
}

impl LevelSnapshot {
    /// Counter-wise difference `self - earlier` (same level).
    pub fn delta(&self, earlier: &LevelSnapshot) -> LevelSnapshot {
        debug_assert_eq!(self.level, earlier.level);
        LevelSnapshot {
            level: self.level,
            acquires: self.acquires.saturating_sub(earlier.acquires),
            contended_acquires: self
                .contended_acquires
                .saturating_sub(earlier.contended_acquires),
            passes_taken: self.passes_taken.saturating_sub(earlier.passes_taken),
            passes_declined: self.passes_declined.saturating_sub(earlier.passes_declined),
            keep_local_resets: self
                .keep_local_resets
                .saturating_sub(earlier.keep_local_resets),
            hint_fast_hits: self.hint_fast_hits.saturating_sub(earlier.hint_fast_hits),
            acquire_ns: self.acquire_ns.delta(&earlier.acquire_ns),
        }
    }
}

impl LockSnapshot {
    /// Everything that happened between `earlier` and `self`: per-level
    /// counter and histogram deltas, hold-time delta, and event totals.
    /// The per-event list is empty (see module docs). Levels present in
    /// `self` but not `earlier` pass through unchanged.
    pub fn delta(&self, earlier: &LockSnapshot) -> LockSnapshot {
        let levels = self
            .levels
            .iter()
            .map(|l| match earlier.levels.iter().find(|e| e.level == l.level) {
                Some(e) => l.delta(e),
                None => l.clone(),
            })
            .collect();
        LockSnapshot {
            name: self.name.clone(),
            levels,
            hold_ns: self.hold_ns.delta(&earlier.hold_ns),
            events_recorded: self.events_recorded.saturating_sub(earlier.events_recorded),
            events_dropped: self.events_dropped.saturating_sub(earlier.events_dropped),
            events: Vec::new(),
        }
    }
}

/// Rates computed from one sampling window.
#[derive(Debug, Clone)]
pub struct WindowRates {
    /// Window length in nanoseconds.
    pub window_ns: u64,
    /// The raw delta the rates were computed from.
    pub delta: LockSnapshot,
    /// Innermost-level acquisitions per second (== lock acquisitions).
    pub acquires_per_sec: f64,
    /// Intra-cohort passes per second, summed over non-root levels.
    pub passes_per_sec: f64,
    /// Upward releases per second, summed over non-root levels.
    pub releases_up_per_sec: f64,
    /// p99 of the innermost level's acquire latency within the window
    /// (ns; bucket-resolution upper estimate).
    pub acquire_p99_ns: u64,
    /// p99 critical-section hold time within the window (ns).
    pub hold_p99_ns: u64,
    /// Ring events lost to overwrite during the window.
    pub events_dropped: u64,
}

impl WindowRates {
    fn from_delta(window_ns: u64, delta: LockSnapshot) -> Self {
        let secs = (window_ns.max(1)) as f64 / 1e9;
        let acquires = delta.total_acquires();
        let non_root = &delta.levels[..delta.levels.len().saturating_sub(1)];
        let passes: u64 = non_root.iter().map(|l| l.passes_taken).sum();
        let ups: u64 = non_root.iter().map(|l| l.passes_declined).sum();
        WindowRates {
            window_ns,
            acquires_per_sec: acquires as f64 / secs,
            passes_per_sec: passes as f64 / secs,
            releases_up_per_sec: ups as f64 / secs,
            acquire_p99_ns: delta.levels.first().map_or(0, |l| l.acquire_ns.p99()),
            hold_p99_ns: delta.hold_ns.p99(),
            events_dropped: delta.events_dropped,
            delta,
        }
    }
}

impl std::fmt::Display for WindowRates {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:8.1} ms window: {:>10.0} acq/s  {:>10.0} pass/s  {:>8.0} up/s  \
             p99 acq {} ns  p99 hold {} ns  drops {}",
            self.window_ns as f64 / 1e6,
            self.acquires_per_sec,
            self.passes_per_sec,
            self.releases_up_per_sec,
            self.acquire_p99_ns,
            self.hold_p99_ns,
            self.events_dropped,
        )
    }
}

/// Turns a stream of cumulative snapshots into windowed rates.
///
/// Feed it [`LockSnapshot`]s (`DynClofLock::obs_snapshot`, kvstore
/// `stats()`, ...) at whatever cadence; each [`tick`](Sampler::tick)
/// returns the rates since the previous tick (`None` on the first —
/// there is no window yet).
#[derive(Debug, Default)]
pub struct Sampler {
    prev: Option<(u64, LockSnapshot)>,
}

impl Sampler {
    /// A sampler with no baseline yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds the next cumulative snapshot, timestamped now.
    pub fn tick(&mut self, snap: LockSnapshot) -> Option<WindowRates> {
        self.tick_at(now_ns(), snap)
    }

    /// [`tick`](Self::tick) with an explicit timestamp (same epoch as
    /// [`now_ns`]) — deterministic windows for tests.
    ///
    /// Degenerate windows yield `None` and restart the baseline instead
    /// of fabricating rates:
    ///
    /// * **zero-duration window** (`at_ns <=` previous tick, e.g. two
    ///   ticks inside one timer quantum) — a rate over no time is not a
    ///   number we want anyone dividing by;
    /// * **non-monotone snapshot** — the counters regressed or the lock's
    ///   name changed since the baseline. That happens when the lock
    ///   behind the sampler was hot-swapped (the new composition's
    ///   counters start at zero): the stale baseline belongs to a
    ///   different lock, so the "delta" would be garbage held below zero
    ///   only by saturation. The new snapshot becomes the fresh baseline.
    pub fn tick_at(&mut self, at_ns: u64, snap: LockSnapshot) -> Option<WindowRates> {
        let out = match &self.prev {
            Some((t0, earlier)) => {
                let window = at_ns.saturating_sub(*t0);
                if window == 0 || !monotone_since(earlier, &snap) {
                    None
                } else {
                    Some(WindowRates::from_delta(window, snap.delta(earlier)))
                }
            }
            None => None,
        };
        self.prev = Some((at_ns, snap));
        out
    }

    /// Drops the baseline; the next tick starts a fresh window.
    pub fn reset(&mut self) {
        self.prev = None;
    }
}

/// `later` plausibly continues the counter stream `earlier` came from:
/// same lock name, and the cumulative totals have not gone backwards.
fn monotone_since(earlier: &LockSnapshot, later: &LockSnapshot) -> bool {
    later.name == earlier.name
        && later.total_acquires() >= earlier.total_acquires()
        && later.hold_ns.count >= earlier.hold_ns.count
        && later.events_recorded >= earlier.events_recorded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LevelCounters, LogHistogram};

    fn snap_with(acquires: u64, passes: u64, hold_samples: &[u64]) -> LockSnapshot {
        let c0 = LevelCounters::new();
        let c1 = LevelCounters::new();
        let acq_hist = LogHistogram::new();
        for i in 0..acquires {
            c0.record_acquire(i < passes);
            acq_hist.record(100 + i);
        }
        for _ in 0..passes {
            c0.record_pass_taken();
        }
        for _ in 0..acquires.saturating_sub(passes) {
            c0.record_pass_declined(false);
            c1.record_acquire(false);
        }
        let hold = LogHistogram::new();
        for &v in hold_samples {
            hold.record(v);
        }
        let mut l0 = c0.snapshot(0);
        l0.acquire_ns = acq_hist.snapshot();
        LockSnapshot {
            name: "w".into(),
            levels: vec![l0, c1.snapshot(1)],
            hold_ns: hold.snapshot(),
            events_recorded: acquires,
            events_dropped: 0,
            events: Vec::new(),
        }
    }

    #[test]
    fn delta_subtracts_counters_and_buckets() {
        let early = snap_with(10, 4, &[50, 60]);
        let late = snap_with(25, 9, &[50, 60, 70, 80]);
        let d = late.delta(&early);
        assert_eq!(d.levels[0].acquires, 15);
        assert_eq!(d.levels[0].passes_taken, 5);
        assert_eq!(d.levels[0].acquire_ns.count, 15);
        assert_eq!(d.hold_ns.count, 2);
        assert_eq!(
            d.levels[0].acquire_ns.buckets.iter().sum::<u64>(),
            15,
            "bucket-wise subtraction must preserve the count"
        );
        assert!(d.events.is_empty());
    }

    #[test]
    fn delta_of_identical_snapshots_is_zero() {
        let s = snap_with(10, 4, &[50]);
        let d = s.delta(&s);
        assert_eq!(d.total_acquires(), 0);
        assert_eq!(d.hold_ns.count, 0);
        assert_eq!(d.hold_ns.p99(), 0);
        assert_eq!(d.hold_ns.max, 0, "empty window reports no max");
    }

    #[test]
    fn sampler_first_tick_has_no_window() {
        let mut s = Sampler::new();
        assert!(s.tick_at(1_000, snap_with(5, 0, &[])).is_none());
        let r = s
            .tick_at(2_000_000_000 + 1_000, snap_with(105, 20, &[40]))
            .expect("second tick closes a window");
        assert_eq!(r.window_ns, 2_000_000_000);
        // 100 acquires over 2 s.
        assert!((r.acquires_per_sec - 50.0).abs() < 1e-9);
        assert!((r.passes_per_sec - 10.0).abs() < 1e-9);
        assert_eq!(r.delta.total_acquires(), 100);
    }

    #[test]
    fn sampler_reset_restarts_baseline() {
        let mut s = Sampler::new();
        s.tick_at(0, snap_with(5, 0, &[]));
        s.reset();
        assert!(s.tick_at(10, snap_with(6, 0, &[])).is_none());
    }

    #[test]
    fn windowed_p99_reflects_only_the_window() {
        // Early snapshot has a huge outlier; the window after it only
        // has small samples, so the windowed p99 must be small.
        let h = LogHistogram::new();
        h.record(1 << 30);
        let early = h.snapshot();
        for _ in 0..100 {
            h.record(100);
        }
        let d = h.snapshot().delta(&early);
        assert_eq!(d.count, 100);
        assert!(d.p99() <= 128, "windowed p99 {} must ignore the old outlier", d.p99());
    }

    #[test]
    fn zero_duration_window_yields_no_rates() {
        let mut s = Sampler::new();
        s.tick_at(1_000, snap_with(5, 0, &[]));
        // Same timestamp again: no time has passed, so there is no rate.
        assert!(s.tick_at(1_000, snap_with(50, 0, &[])).is_none());
        // And a timestamp that went *backwards* (clock quantum, reordered
        // readers) is the same degenerate case.
        assert!(s.tick_at(500, snap_with(60, 0, &[])).is_none());
        // The degenerate tick still re-baselined: the next well-formed
        // window measures from it, finite and non-negative.
        let r = s
            .tick_at(1_000_000_500, snap_with(70, 0, &[]))
            .expect("fresh baseline closes the next window");
        assert!(r.acquires_per_sec.is_finite());
        assert!(r.acquires_per_sec >= 0.0);
        assert_eq!(r.delta.total_acquires(), 10);
    }

    #[test]
    fn stale_baseline_across_swap_resets_instead_of_lying() {
        // A hot-swap replaces the lock behind the sampler: the new
        // composition's counters restart from zero and its name differs.
        // The sampler must not "subtract" the old lock's totals.
        let mut s = Sampler::new();
        s.tick_at(0, snap_with(1_000, 100, &[40]));
        let mut swapped = snap_with(3, 0, &[]);
        swapped.name = "post-swap".into();
        assert!(
            s.tick_at(1_000_000_000, swapped).is_none(),
            "cross-swap delta must be discarded, not fabricated"
        );
        // Window after the reset covers only post-swap traffic.
        let mut later = snap_with(53, 0, &[40]);
        later.name = "post-swap".into();
        let r = s.tick_at(2_000_000_000, later).expect("post-swap window");
        assert_eq!(r.delta.total_acquires(), 50);
        assert!((r.acquires_per_sec - 50.0).abs() < 1e-9);
        assert!(r.acquires_per_sec.is_finite() && r.acquires_per_sec >= 0.0);
    }

    #[test]
    fn counter_regression_without_name_change_also_resets() {
        // Same name, but totals went backwards (swap to an identical
        // composition, or a counter reset): still a new baseline.
        let mut s = Sampler::new();
        s.tick_at(0, snap_with(1_000, 100, &[40, 50]));
        assert!(s.tick_at(1_000_000_000, snap_with(10, 0, &[])).is_none());
        let r = s
            .tick_at(2_000_000_000, snap_with(20, 0, &[]))
            .expect("window after regression reset");
        assert_eq!(r.delta.total_acquires(), 10);
        assert!(!r.acquires_per_sec.is_nan());
    }

    #[test]
    fn display_renders_rates() {
        let mut s = Sampler::new();
        s.tick_at(0, snap_with(0, 0, &[]));
        let r = s.tick_at(1_000_000_000, snap_with(50, 10, &[30])).unwrap();
        let line = r.to_string();
        assert!(line.contains("acq/s"), "{line}");
        assert!(line.contains("pass/s"), "{line}");
    }
}
