//! Deterministic SLO evaluation over windowed telemetry.
//!
//! An SLO here is a latency objective over one windowed signal — "99% of
//! critical-section holds finish within 50 µs", "99% of lock handovers
//! within 20 µs" — evaluated against the [`WindowRates`] stream a
//! [`crate::Sampler`] already produces. Each evaluation tick computes
//! the window's *bad fraction* (samples over the objective, estimated
//! conservatively from histogram buckets), converts it into a **burn
//! rate** (bad fraction ÷ error budget: burn 1.0 spends the budget
//! exactly, burn 10 spends it ten times too fast), and feeds two
//! zero-padded moving windows — a *fast* one that reacts to incidents
//! and a *slow* one that ignores blips — in the multi-window burn-rate
//! style of SRE alerting. An alert fires only when **both** windows sit
//! at or above the burn threshold for `k` consecutive ticks, and clears
//! only after `k` consecutive calm ticks — the same k-consecutive
//! hysteresis [`crate::policy`] uses for switch decisions, so a single
//! noisy window can neither fire nor clear an alert.
//!
//! Everything is a pure function of the fed sequence: no clocks, no
//! randomness. Feeding the same `WindowRates` twice yields the same
//! alert transitions, which is what makes the burn-rate math
//! property-testable (`tests/slo_props.rs`).
//!
//! The watchdog's [`StallReport`] stream plugs into the same evaluator
//! via [`SloEvaluator::note_stall`]: a stall is treated as an
//! instant-fire liveness alert that decays after
//! [`STALL_HOLD_TICKS`] calm evaluation ticks.
//!
//! Waits-for graph findings ([`crate::waitgraph`]) plug in via
//! [`SloEvaluator::note_graph_finding`] and surface as
//! `waitgraph-deadlock` / `waitgraph-inversion` pseudo-rules. Stalls
//! and graph findings describe the same stuck threads from two vantage
//! points, so they are **deduplicated**: a stall whose thread is
//! already implicated in an active graph finding is absorbed, and a
//! graph finding supersedes an active stall for the same thread — one
//! stuck site fires one alert on `/alerts`, not two.

use std::collections::VecDeque;

use crate::waitgraph::GraphFinding;
use crate::{HistSnapshot, StallReport, WindowRates};

/// Evaluation ticks a stall alert stays up after the last report.
pub const STALL_HOLD_TICKS: u64 = 3;

/// Evaluation ticks a waits-for graph alert stays up after the finding
/// was last re-observed (same decay policy as stalls).
pub const GRAPH_HOLD_TICKS: u64 = STALL_HOLD_TICKS;

/// Which windowed latency series an SLO rule watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloSignal {
    /// Critical-section hold time (`LockSnapshot::hold_ns` delta).
    HoldTime,
    /// Lock handover latency: the innermost level's acquire latency
    /// (`levels[0].acquire_ns` delta) — the time between wanting the
    /// lock and holding it.
    HandoverLatency,
}

impl SloSignal {
    /// Stable token for exports.
    pub fn token(self) -> &'static str {
        match self {
            SloSignal::HoldTime => "hold_time",
            SloSignal::HandoverLatency => "handover_latency",
        }
    }

    fn extract<'a>(self, rates: &'a WindowRates) -> Option<&'a HistSnapshot> {
        match self {
            SloSignal::HoldTime => Some(&rates.delta.hold_ns),
            SloSignal::HandoverLatency => {
                rates.delta.levels.first().map(|l| &l.acquire_ns)
            }
        }
    }
}

/// One SLO rule: objective, budget, and burn-rate alert policy.
#[derive(Debug, Clone)]
pub struct SloRule {
    /// Rule name (label on `/alerts`).
    pub name: String,
    /// Signal the rule watches.
    pub signal: SloSignal,
    /// Latency objective in ns; samples above it are "bad".
    pub objective_ns: u64,
    /// Error budget: allowed bad fraction (e.g. `0.01` = 99% objective).
    pub budget: f64,
    /// Fast window length in evaluation ticks (reacts to incidents).
    pub fast_window: usize,
    /// Slow window length in ticks (confirms them); `>= fast_window`.
    pub slow_window: usize,
    /// Mean burn rate both windows must reach to be considered hot.
    pub burn_threshold: f64,
    /// Consecutive hot ticks to fire, and calm ticks to clear.
    pub k: usize,
}

impl SloRule {
    /// A rule with the common shape: 99%-ile objective (budget 0.01),
    /// 3-tick fast / 12-tick slow windows, burn threshold 2.0, k = 2.
    pub fn p99(name: &str, signal: SloSignal, objective_ns: u64) -> Self {
        SloRule {
            name: name.to_string(),
            signal,
            objective_ns,
            budget: 0.01,
            fast_window: 3,
            slow_window: 12,
            burn_threshold: 2.0,
            k: 2,
        }
    }
}

/// Default rule set: p99 hold-time and p99 handover-latency objectives.
pub fn default_rules(hold_objective_ns: u64, handover_objective_ns: u64) -> Vec<SloRule> {
    vec![
        SloRule::p99("hold-p99", SloSignal::HoldTime, hold_objective_ns),
        SloRule::p99(
            "handover-p99",
            SloSignal::HandoverLatency,
            handover_objective_ns,
        ),
    ]
}

/// Fraction of `h`'s samples strictly over `objective_ns`, estimated
/// conservatively from the log buckets: a bucket counts as *good* only
/// when its entire range is at or under the objective, so the answer is
/// an upper bound on the true bad fraction (same bias as
/// [`HistSnapshot::p99`]'s upper estimate). Empty windows are 0 — no
/// samples is no evidence of badness.
pub fn bad_fraction(h: &HistSnapshot, objective_ns: u64) -> f64 {
    if h.count == 0 {
        return 0.0;
    }
    let mut good = 0u64;
    for (upper, cum) in h.cumulative() {
        if upper <= objective_ns {
            good = cum;
        }
    }
    (h.count - good) as f64 / h.count as f64
}

/// An alert transition produced by one evaluation tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlertTransition {
    /// The named rule started firing at this tick.
    Fired {
        /// Rule name.
        rule: String,
        /// Evaluation tick the transition happened at.
        tick: u64,
    },
    /// The named rule stopped firing at this tick.
    Cleared {
        /// Rule name.
        rule: String,
        /// Evaluation tick the transition happened at.
        tick: u64,
    },
}

/// Point-in-time status of one rule, for `/alerts`.
#[derive(Debug, Clone)]
pub struct AlertStatus {
    /// Rule name.
    pub name: String,
    /// Signal token (`hold_time`, `handover_latency`, `liveness`).
    pub signal: String,
    /// Whether the alert is currently firing.
    pub firing: bool,
    /// Latest window's bad fraction.
    pub bad_fraction: f64,
    /// Mean burn rate over the fast window (zero-padded).
    pub burn_fast: f64,
    /// Mean burn rate over the slow window (zero-padded).
    pub burn_slow: f64,
    /// The rule's objective in ns (0 for the liveness pseudo-rule).
    pub objective_ns: u64,
    /// The rule's error budget.
    pub budget: f64,
    /// Tick the alert last fired at (meaningful while `firing`).
    pub since_tick: u64,
    /// Free-form detail (stall context for the liveness pseudo-rule).
    pub detail: String,
}

#[derive(Debug)]
struct RuleState {
    rule: SloRule,
    burns: VecDeque<f64>,
    last_bad: f64,
    fire_streak: usize,
    clear_streak: usize,
    firing: bool,
    since_tick: u64,
}

impl RuleState {
    fn new(rule: SloRule) -> Self {
        RuleState {
            rule,
            burns: VecDeque::new(),
            last_bad: 0.0,
            fire_streak: 0,
            clear_streak: 0,
            firing: false,
            since_tick: 0,
        }
    }

    /// Mean of the last `window` burns, zero-padded: history shorter
    /// than the window reads as calm, so a fresh evaluator cannot fire
    /// off one hot tick unless the threshold allows it.
    fn window_mean(&self, window: usize) -> f64 {
        let window = window.max(1);
        let take = self.burns.len().min(window);
        let sum: f64 = self.burns.iter().rev().take(take).sum();
        sum / window as f64
    }

    fn observe(&mut self, rates: &WindowRates, tick: u64) -> Option<AlertTransition> {
        let frac = self
            .rule
            .signal
            .extract(rates)
            .map_or(0.0, |h| bad_fraction(h, self.rule.objective_ns));
        self.last_bad = frac;
        let burn = if self.rule.budget > 0.0 {
            frac / self.rule.budget
        } else if frac > 0.0 {
            f64::MAX
        } else {
            0.0
        };
        self.burns.push_back(burn);
        while self.burns.len() > self.rule.slow_window.max(self.rule.fast_window).max(1) {
            self.burns.pop_front();
        }

        let hot = self.window_mean(self.rule.fast_window) >= self.rule.burn_threshold
            && self.window_mean(self.rule.slow_window) >= self.rule.burn_threshold;
        if hot {
            self.fire_streak += 1;
            self.clear_streak = 0;
        } else {
            self.clear_streak += 1;
            self.fire_streak = 0;
        }

        let k = self.rule.k.max(1);
        if !self.firing && self.fire_streak >= k {
            self.firing = true;
            self.since_tick = tick;
            return Some(AlertTransition::Fired {
                rule: self.rule.name.clone(),
                tick,
            });
        }
        if self.firing && self.clear_streak >= k {
            self.firing = false;
            return Some(AlertTransition::Cleared {
                rule: self.rule.name.clone(),
                tick,
            });
        }
        None
    }

    fn status(&self) -> AlertStatus {
        AlertStatus {
            name: self.rule.name.clone(),
            signal: self.rule.signal.token().to_string(),
            firing: self.firing,
            bad_fraction: self.last_bad,
            burn_fast: self.window_mean(self.rule.fast_window),
            burn_slow: self.window_mean(self.rule.slow_window),
            objective_ns: self.rule.objective_ns,
            budget: self.rule.budget,
            since_tick: self.since_tick,
            detail: String::new(),
        }
    }
}

/// One active waits-for graph finding tracked by the evaluator.
#[derive(Debug)]
struct GraphAlert {
    key: String,
    kind: &'static str,
    threads: Vec<u32>,
    detail: String,
    since_tick: u64,
    last_seen_tick: u64,
}

/// Evaluates a set of [`SloRule`]s over a [`WindowRates`] stream, plus
/// a liveness pseudo-rule fed by the watchdog's [`StallReport`]s and
/// waits-for graph pseudo-rules fed by [`crate::waitgraph`] findings.
#[derive(Debug)]
pub struct SloEvaluator {
    rules: Vec<RuleState>,
    tick: u64,
    /// (since tick, stalled thread, detail line).
    stall: Option<(u64, u32, String)>,
    stalls_seen: u64,
    graph: Vec<GraphAlert>,
    graph_findings_seen: u64,
}

impl SloEvaluator {
    /// An evaluator over the given rules.
    pub fn new(rules: Vec<SloRule>) -> Self {
        SloEvaluator {
            rules: rules.into_iter().map(RuleState::new).collect(),
            tick: 0,
            stall: None,
            stalls_seen: 0,
            graph: Vec::new(),
            graph_findings_seen: 0,
        }
    }

    /// Evaluation ticks consumed so far.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Total stall reports ingested.
    pub fn stalls_seen(&self) -> u64 {
        self.stalls_seen
    }

    /// Feeds one window; returns the alert transitions it caused.
    /// Deterministic: same sequence in, same transitions out.
    pub fn observe(&mut self, rates: &WindowRates) -> Vec<AlertTransition> {
        let tick = self.tick;
        self.tick += 1;
        let mut out: Vec<AlertTransition> = self
            .rules
            .iter_mut()
            .filter_map(|r| r.observe(rates, tick))
            .collect();
        // Liveness decay: a stall alert clears after STALL_HOLD_TICKS
        // calm ticks.
        if let Some((at, _, _)) = self.stall {
            if tick.saturating_sub(at) >= STALL_HOLD_TICKS {
                self.stall = None;
                out.push(AlertTransition::Cleared {
                    rule: "progress-stall".to_string(),
                    tick,
                });
            }
        }
        // Graph findings decay once they stop being re-observed.
        self.graph.retain(|g| {
            if tick.saturating_sub(g.last_seen_tick) >= GRAPH_HOLD_TICKS {
                out.push(AlertTransition::Cleared {
                    rule: format!("waitgraph-{}", g.kind),
                    tick,
                });
                false
            } else {
                true
            }
        });
        out
    }

    /// Ingests a watchdog stall report: the liveness pseudo-rule fires
    /// immediately (a stalled waiter is never a blip worth debouncing).
    ///
    /// Deduplicated against the waits-for graph: a stall whose thread
    /// is already implicated in an active graph finding is absorbed by
    /// that finding — one stuck site, one active alert.
    pub fn note_stall(&mut self, report: &StallReport) {
        self.stalls_seen += 1;
        if self
            .graph
            .iter()
            .any(|g| g.threads.contains(&report.thread))
        {
            return;
        }
        self.stall = Some((
            self.tick,
            report.thread,
            format!(
                "thread {} waited {} ms (epoch {}, {} waiting, {} holding): {}",
                report.thread,
                report.waited_ns / 1_000_000,
                report.epoch,
                report.waiting,
                report.holders.len(),
                report.context,
            ),
        ));
    }

    /// Ingests one waits-for graph finding (deadlock or inversion).
    /// Re-observing the same incident (same [`GraphFinding::key`])
    /// refreshes it rather than duplicating the alert; a graph finding
    /// **supersedes** an active plain stall for the same thread, since
    /// it explains the stall rather than merely observing it.
    pub fn note_graph_finding(&mut self, finding: &GraphFinding) {
        self.graph_findings_seen += 1;
        let key = finding.key();
        let threads = finding.threads();
        if let Some((_, thread, _)) = &self.stall {
            if threads.contains(thread) {
                self.stall = None;
            }
        }
        if let Some(existing) = self.graph.iter_mut().find(|g| g.key == key) {
            existing.last_seen_tick = self.tick;
            existing.detail = finding.detail();
            return;
        }
        self.graph.push(GraphAlert {
            key,
            kind: finding.kind(),
            threads,
            detail: finding.detail(),
            since_tick: self.tick,
            last_seen_tick: self.tick,
        });
    }

    /// Total waits-for graph findings ingested.
    pub fn graph_findings_seen(&self) -> u64 {
        self.graph_findings_seen
    }

    /// Whether any alert (SLO, liveness, or waits-for graph) is
    /// currently firing.
    pub fn any_firing(&self) -> bool {
        self.stall.is_some() || !self.graph.is_empty() || self.rules.iter().any(|r| r.firing)
    }

    /// Point-in-time status of every rule plus the active pseudo-rules.
    /// Stable order: rules as configured, then liveness, then waits-for
    /// graph findings in arrival order.
    pub fn alerts(&self) -> Vec<AlertStatus> {
        let mut out: Vec<AlertStatus> = self.rules.iter().map(|r| r.status()).collect();
        if let Some((at, _, detail)) = &self.stall {
            out.push(AlertStatus {
                name: "progress-stall".to_string(),
                signal: "liveness".to_string(),
                firing: true,
                bad_fraction: 1.0,
                burn_fast: f64::MAX,
                burn_slow: f64::MAX,
                objective_ns: 0,
                budget: 0.0,
                since_tick: *at,
                detail: detail.clone(),
            });
        }
        for g in &self.graph {
            out.push(AlertStatus {
                name: format!("waitgraph-{}", g.kind),
                signal: "waitgraph".to_string(),
                firing: true,
                bad_fraction: 1.0,
                burn_fast: f64::MAX,
                burn_slow: f64::MAX,
                objective_ns: 0,
                budget: 0.0,
                since_tick: g.since_tick,
                detail: g.detail.clone(),
            });
        }
        out
    }
}

/// Renders alert statuses as a JSON array (zero-dependency; NaN/Inf
/// degrade to large-but-valid literals so the document always parses).
pub fn render_alerts_json(alerts: &[AlertStatus]) -> String {
    let mut out = String::from("[");
    for (i, a) in alerts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"signal\":\"{}\",\"firing\":{},\
             \"bad_fraction\":{:.6},\"burn_fast\":{:.3},\"burn_slow\":{:.3},\
             \"objective_ns\":{},\"budget\":{:.6},\"since_tick\":{},\
             \"detail\":\"{}\"}}",
            crate::export::json_escape(&a.name),
            a.signal,
            a.firing,
            clamp_json(a.bad_fraction),
            clamp_json(a.burn_fast),
            clamp_json(a.burn_slow),
            a.objective_ns,
            clamp_json(a.budget),
            a.since_tick,
            crate::export::json_escape(&a.detail),
        ));
    }
    out.push(']');
    out
}

/// JSON has no NaN/Inf literals; map them to 0 / a large sentinel.
fn clamp_json(v: f64) -> f64 {
    if v.is_nan() || v == 0.0 {
        0.0 // normalizes -0.0 so renders are byte-identical across runs
    } else {
        v.clamp(-1e12, 1e12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LockSnapshot, LogHistogram};

    /// A window whose hold histogram holds `good` samples at 100 ns and
    /// `bad` samples at 1 ms, against a 1 µs objective.
    fn window(good: u64, bad: u64) -> WindowRates {
        let hold = LogHistogram::new();
        for _ in 0..good {
            hold.record(100);
        }
        for _ in 0..bad {
            hold.record(1_000_000);
        }
        let snap = LockSnapshot {
            name: "slo-test".into(),
            levels: Vec::new(),
            hold_ns: hold.snapshot(),
            events_recorded: 0,
            events_dropped: 0,
            events: Vec::new(),
        };
        let zero = LockSnapshot {
            name: "slo-test".into(),
            levels: Vec::new(),
            hold_ns: LogHistogram::new().snapshot(),
            events_recorded: 0,
            events_dropped: 0,
            events: Vec::new(),
        };
        let mut s = crate::Sampler::new();
        s.tick_at(0, zero);
        s.tick_at(1_000_000_000, snap).expect("one-second window")
    }

    fn rule(fast: usize, slow: usize, threshold: f64, k: usize) -> SloRule {
        SloRule {
            name: "hold-p99".into(),
            signal: SloSignal::HoldTime,
            objective_ns: 1_000,
            budget: 0.01,
            fast_window: fast,
            slow_window: slow,
            burn_threshold: threshold,
            k,
        }
    }

    #[test]
    fn bad_fraction_is_conservative_but_exact_at_boundaries() {
        let h = LogHistogram::new();
        for _ in 0..99 {
            h.record(100); // bucket [65,128), upper 128
        }
        h.record(1_000_000);
        let s = h.snapshot();
        // Objective 1024 (a bucket upper bound): the 99 good samples'
        // bucket is entirely under it → exactly 1% bad.
        assert!((bad_fraction(&s, 1_024) - 0.01).abs() < 1e-12);
        // Objective inside the good bucket: conservatively all bad.
        assert!((bad_fraction(&s, 100) - 1.0).abs() < 1e-12);
        // Objective above everything: 0 bad.
        assert_eq!(bad_fraction(&s, u64::MAX), 0.0);
        // Empty histogram: no evidence, 0 bad.
        assert_eq!(bad_fraction(&LogHistogram::new().snapshot(), 1), 0.0);
    }

    #[test]
    fn steady_good_rates_never_alert() {
        let mut ev = SloEvaluator::new(vec![rule(3, 6, 1.0, 1)]);
        for _ in 0..50 {
            let t = ev.observe(&window(1_000, 0));
            assert!(t.is_empty(), "steady in-objective traffic must not alert");
        }
        assert!(!ev.any_firing());
        assert_eq!(ev.alerts()[0].burn_slow, 0.0);
    }

    #[test]
    fn step_fires_exactly_when_the_slow_window_fills() {
        // Step to all-bad windows: burn = 1.0/0.01 = 100 per tick. With
        // threshold 100 and zero-padded means, the slow mean reaches the
        // threshold exactly when all `slow` entries are hot.
        let (fast, slow) = (2usize, 4usize);
        let mut ev = SloEvaluator::new(vec![rule(fast, slow, 100.0, 1)]);
        for _ in 0..6 {
            assert!(ev.observe(&window(1_000, 0)).is_empty());
        }
        let mut fired_at = None;
        for i in 0..8 {
            for t in ev.observe(&window(0, 1_000)) {
                if let AlertTransition::Fired { tick, .. } = t {
                    fired_at = Some((i, tick));
                }
            }
        }
        // Hot windows at post-step indices 0..; the slow mean hits 100
        // on the 4th hot window (index 3).
        assert_eq!(fired_at.map(|(i, _)| i), Some(slow - 1));
        assert!(ev.any_firing());
    }

    #[test]
    fn one_bad_window_is_debounced_by_k() {
        let mut ev = SloEvaluator::new(vec![rule(1, 1, 1.0, 2)]);
        assert!(ev.observe(&window(0, 1_000)).is_empty(), "k=2 needs two");
        let t = ev.observe(&window(0, 1_000));
        assert!(matches!(&t[..], [AlertTransition::Fired { tick: 1, .. }]));
        // Clearing also needs two calm ticks.
        assert!(ev.observe(&window(1_000, 0)).is_empty());
        let t = ev.observe(&window(1_000, 0));
        assert!(matches!(&t[..], [AlertTransition::Cleared { .. }]));
        assert!(!ev.any_firing());
    }

    #[test]
    fn deterministic_sequences() {
        let feed = |ev: &mut SloEvaluator| {
            let mut log = Vec::new();
            for i in 0..20u64 {
                let w = if i % 5 == 4 {
                    window(0, 100)
                } else {
                    window(100, 0)
                };
                log.extend(ev.observe(&w));
            }
            log
        };
        let mut a = SloEvaluator::new(vec![rule(2, 4, 10.0, 2)]);
        let mut b = SloEvaluator::new(vec![rule(2, 4, 10.0, 2)]);
        assert_eq!(feed(&mut a), feed(&mut b));
    }

    #[test]
    fn stall_reports_fire_and_decay() {
        let mut ev = SloEvaluator::new(default_rules(50_000, 20_000));
        assert!(!ev.any_firing());
        ev.note_stall(&StallReport {
            thread: 7,
            waited_ns: 250_000_000,
            epoch: 42,
            holders: vec![(3, 1_000_000)],
            waiting: 2,
            context: "queue hints: [1, 0]".into(),
        });
        assert!(ev.any_firing());
        let alerts = ev.alerts();
        let stall = alerts.last().unwrap();
        assert_eq!(stall.name, "progress-stall");
        assert!(stall.detail.contains("thread 7"), "{}", stall.detail);
        assert_eq!(ev.stalls_seen(), 1);
        // Decays after STALL_HOLD_TICKS calm ticks.
        let mut cleared = false;
        for _ in 0..STALL_HOLD_TICKS + 1 {
            for t in ev.observe(&window(100, 0)) {
                if matches!(&t, AlertTransition::Cleared { rule, .. } if rule == "progress-stall")
                {
                    cleared = true;
                }
            }
        }
        assert!(cleared);
        assert!(!ev.any_firing());
    }

    fn stall_for(thread: u32) -> StallReport {
        StallReport {
            thread,
            waited_ns: 250_000_000,
            epoch: 1,
            holders: Vec::new(),
            waiting: 1,
            context: String::new(),
        }
    }

    fn inversion_for(thread: u32) -> GraphFinding {
        GraphFinding::Inversion {
            thread,
            site: 9,
            handoffs: 20,
            h_bound: 4,
            waited_ns: 300_000_000,
        }
    }

    /// Satellite regression: one stuck site must produce exactly one
    /// active alert, whichever of the watchdog and the waits-for graph
    /// reports it first (and even when both do).
    #[test]
    fn stall_and_graph_finding_dedupe_to_one_alert() {
        let active = |ev: &SloEvaluator| ev.alerts().iter().filter(|a| a.firing).count();

        // Stall alone: exactly one active alert.
        let mut ev = SloEvaluator::new(default_rules(50_000, 20_000));
        ev.note_stall(&stall_for(7));
        assert_eq!(active(&ev), 1);

        // Graph finding for the same thread supersedes the stall.
        ev.note_graph_finding(&inversion_for(7));
        assert_eq!(active(&ev), 1, "graph finding replaces the stall");
        assert_eq!(ev.alerts().last().unwrap().name, "waitgraph-inversion");

        // Reverse order: an active graph finding absorbs a later stall.
        let mut ev = SloEvaluator::new(default_rules(50_000, 20_000));
        ev.note_graph_finding(&inversion_for(7));
        ev.note_stall(&stall_for(7));
        assert_eq!(active(&ev), 1, "stall absorbed by the graph finding");
        assert_eq!(ev.stalls_seen(), 1, "the report is still counted");

        // An unrelated thread's stall is a distinct incident.
        ev.note_stall(&stall_for(8));
        assert_eq!(active(&ev), 2);
    }

    #[test]
    fn graph_finding_refreshes_and_decays() {
        let mut ev = SloEvaluator::new(Vec::new());
        ev.note_graph_finding(&inversion_for(3));
        ev.note_graph_finding(&inversion_for(3));
        assert_eq!(
            ev.alerts().iter().filter(|a| a.firing).count(),
            1,
            "re-observed incident does not duplicate"
        );
        assert_eq!(ev.graph_findings_seen(), 2);
        assert!(ev.any_firing());
        let mut cleared = false;
        for _ in 0..GRAPH_HOLD_TICKS + 1 {
            for t in ev.observe(&window(100, 0)) {
                if matches!(&t, AlertTransition::Cleared { rule, .. } if rule == "waitgraph-inversion")
                {
                    cleared = true;
                }
            }
        }
        assert!(cleared);
        assert!(!ev.any_firing());

        // Recurrence after clearing is a fresh incident.
        ev.note_graph_finding(&inversion_for(3));
        assert!(ev.any_firing());
    }

    #[test]
    fn deadlock_finding_surfaces_with_detail() {
        let mut ev = SloEvaluator::new(Vec::new());
        ev.note_graph_finding(&GraphFinding::Deadlock {
            threads: vec![1, 2],
            sites: vec![10, 11],
        });
        let alerts = ev.alerts();
        let a = alerts.last().unwrap();
        assert_eq!(a.name, "waitgraph-deadlock");
        assert_eq!(a.signal, "waitgraph");
        assert!(a.detail.contains("waits-for cycle"), "{}", a.detail);
        let json = render_alerts_json(&alerts);
        assert!(json.contains("waitgraph-deadlock"));
    }

    #[test]
    fn alerts_json_is_valid_and_deterministic() {
        let mut ev = SloEvaluator::new(default_rules(1_000, 1_000));
        ev.observe(&window(50, 50));
        let a = render_alerts_json(&ev.alerts());
        let b = render_alerts_json(&ev.alerts());
        assert_eq!(a, b);
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert!(a.contains("\"signal\":\"hold_time\""), "{a}");
        assert!(a.contains("\"signal\":\"handover_latency\""), "{a}");
        assert!(!a.contains("inf") && !a.contains("NaN"), "{a}");
    }

    #[test]
    fn handover_signal_reads_level_zero() {
        // A window with no levels yields bad fraction 0 for handover.
        let mut ev = SloEvaluator::new(vec![SloRule::p99(
            "handover-p99",
            SloSignal::HandoverLatency,
            1_000,
        )]);
        ev.observe(&window(0, 100));
        assert_eq!(ev.alerts()[0].bad_fraction, 0.0);
    }
}
