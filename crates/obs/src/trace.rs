//! Causal span tracing: per-thread lock-free buffers of acquire / hold /
//! release spans with hand-off causality edges.
//!
//! Counters say *how often* the high lock stayed local; a trace says
//! *which* thread passed to which, and when — the intra-node hand-off
//! chains CNA and ShflLock reason about, observable one edge at a time.
//! The design constraints, in order:
//!
//! 1. **Wait-free hot path.** A traced transition is one write into a
//!    thread-local single-writer ring — six relaxed/release word stores,
//!    no allocation, no CAS loop, no shared cache line with any other
//!    writer. When tracing is disabled (the default at runtime, and
//!    always in non-`obs` builds) the hot path is a single relaxed load.
//! 2. **Causality is explicit.** A pass records a fresh flow id and
//!    parks it in the passing node; the inheriting acquire reads it back
//!    into its wait span. The id travels through the same low-lock
//!    release→acquire edge that publishes the pass flag itself, so the
//!    edge is exactly as reliable as the protocol it describes.
//! 3. **Standard output format.** [`render_chrome_trace`] emits Chrome
//!    trace-event JSON (the `traceEvents` array form), which Perfetto
//!    and `chrome://tracing` load directly: spans as `"X"` complete
//!    events per thread track, hand-offs as `"s"`/`"f"` flow arrows.
//!
//! The tracer is process-global (like [`crate::thread_tag`]): enable it,
//! run the workload, [`snapshot`] at quiescence, [`clear`] between runs.
//! Tracing two locks at once interleaves their spans; trace one lock at
//! a time for ownership-timeline analysis ([`crate::analyze`]).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::thread_tag;

/// Default per-thread buffer capacity (events) when [`enable`] callers
/// have no opinion.
pub const TRACE_DEFAULT_CAPACITY: usize = 4096;

/// What a span records about a lock-protocol transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Waiting for (then winning) a level's low lock. `inherited` is
    /// whether the winner found the high lock already passed to its
    /// cohort — the consuming end of a hand-off edge.
    Wait {
        /// The acquire inherited a passed high lock.
        inherited: bool,
    },
    /// Critical-section hold (acquire-return to release-entry),
    /// whole-lock rather than per-level; `level`/`node` are 0.
    Hold,
    /// A release decision that passed the high lock within the cohort
    /// (instant; the producing end of a hand-off edge).
    Pass,
    /// A release decision that surrendered the high lock upward
    /// (instant). `forced` is whether waiters existed but the
    /// `keep_local` threshold refused — a chain cut by *H*, not by an
    /// idle cohort.
    ReleaseUp {
        /// Decline forced by the keep_local threshold.
        forced: bool,
    },
    /// A fast-path gate decision (`FastClof`): `fast` is whether the
    /// test-and-set gate was won directly (no composition walk).
    Gate {
        /// Gate won on the fast path.
        fast: bool,
    },
    /// A live-lock migration instant (the `adapt` layer): `complete`
    /// distinguishes the epoch flip that arms the hand-over from the
    /// observed baton arrival that completes it. The two are linked by
    /// a flow edge, so the timeline shows each migration as an arrow
    /// spanning the drain.
    Migrate {
        /// `false` = hand-over armed (epoch flipped); `true` = baton
        /// arrived at the incoming generation.
        complete: bool,
    },
}

/// One traced transition: a time interval (instants have `start_ns ==
/// end_ns`), its place in the hierarchy, and its causality edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span start, ns since the process observation epoch
    /// ([`crate::now_ns`]).
    pub start_ns: u64,
    /// Span end; equals `start_ns` for instant events.
    pub end_ns: u64,
    /// Hierarchy level of the recording node (0 = innermost; 0 for
    /// whole-lock spans).
    pub level: u8,
    /// Dense process-wide node tag ([`node_tag`]) distinguishing sibling
    /// cohorts of one level; 0 for whole-lock spans.
    pub node: u32,
    /// Recording thread ([`thread_tag`]).
    pub thread: u32,
    /// Transition kind plus its flag.
    pub kind: SpanKind,
    /// Flow id consumed by this span (a `Wait { inherited: true }`
    /// terminating a hand-off edge); 0 = none.
    pub flow_in: u64,
    /// Flow id produced by this span (a `Pass` starting a hand-off
    /// edge); 0 = none.
    pub flow_out: u64,
}

impl SpanEvent {
    /// Span duration in nanoseconds (0 for instants).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A quiescent copy of every thread's buffer, merged and time-sorted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// All surviving spans, sorted by `(start_ns, end_ns)`.
    pub events: Vec<SpanEvent>,
    /// Total spans ever recorded while enabled (monotone).
    pub recorded: u64,
    /// Spans overwritten before the snapshot (per-thread ring wrapped).
    pub dropped: u64,
}

impl Trace {
    /// Whether every recorded span survived into `events`. Analyses that
    /// assert exact protocol properties (chain bounds, total order)
    /// should require this — a wrapped ring truncates chains silently.
    pub fn is_complete(&self) -> bool {
        self.dropped == 0
    }
}

// ---------------------------------------------------------------------
// Packing: kind + flag + level + node share one word.
// ---------------------------------------------------------------------

const KIND_WAIT: u64 = 0;
const KIND_HOLD: u64 = 1;
const KIND_PASS: u64 = 2;
const KIND_RELEASE_UP: u64 = 3;
const KIND_GATE: u64 = 4;
const KIND_MIGRATE: u64 = 5;

fn pack(level: u8, node: u32, kind: SpanKind) -> u64 {
    let (code, flag) = match kind {
        SpanKind::Wait { inherited } => (KIND_WAIT, inherited),
        SpanKind::Hold => (KIND_HOLD, false),
        SpanKind::Pass => (KIND_PASS, false),
        SpanKind::ReleaseUp { forced } => (KIND_RELEASE_UP, forced),
        SpanKind::Gate { fast } => (KIND_GATE, fast),
        SpanKind::Migrate { complete } => (KIND_MIGRATE, complete),
    };
    level as u64 | (code << 8) | ((flag as u64) << 11) | ((node as u64) << 32)
}

fn unpack(word: u64) -> (u8, u32, SpanKind) {
    let level = (word & 0xff) as u8;
    let flag = (word >> 11) & 1 == 1;
    let kind = match (word >> 8) & 0x7 {
        KIND_WAIT => SpanKind::Wait { inherited: flag },
        KIND_HOLD => SpanKind::Hold,
        KIND_PASS => SpanKind::Pass,
        KIND_RELEASE_UP => SpanKind::ReleaseUp { forced: flag },
        KIND_MIGRATE => SpanKind::Migrate { complete: flag },
        _ => SpanKind::Gate { fast: flag },
    };
    (level, (word >> 32) as u32, kind)
}

// ---------------------------------------------------------------------
// Per-thread single-writer ring.
// ---------------------------------------------------------------------

/// One span slot. The seqlock word is odd while its single writer is
/// mid-store and `2 * ticket + 2` when published; a snapshot re-checks
/// it around the data loads and skips torn slots (only possible while
/// the owner thread is still running).
struct TraceSlot {
    seq: AtomicU64,
    start: AtomicU64,
    end: AtomicU64,
    packed: AtomicU64,
    flow_in: AtomicU64,
    flow_out: AtomicU64,
}

struct ThreadBuf {
    thread: u32,
    mask: u64,
    /// Write cursor; single writer, so a plain load+store pair suffices.
    head: AtomicU64,
    slots: Box<[TraceSlot]>,
}

impl ThreadBuf {
    fn new(thread: u32, capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        let slots = (0..cap)
            .map(|_| TraceSlot {
                seq: AtomicU64::new(0),
                start: AtomicU64::new(0),
                end: AtomicU64::new(0),
                packed: AtomicU64::new(0),
                flow_in: AtomicU64::new(0),
                flow_out: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ThreadBuf {
            thread,
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            slots,
        }
    }

    /// The one per-transition buffer write: no allocation, no locks, no
    /// contended cache line (the buffer belongs to this thread alone).
    #[inline]
    fn record(&self, start: u64, end: u64, packed: u64, flow_in: u64, flow_out: u64) {
        let ticket = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(ticket & self.mask) as usize];
        let seq = 2 * ticket + 2;
        slot.seq.store(seq - 1, Ordering::Release);
        slot.start.store(start, Ordering::Relaxed);
        slot.end.store(end, Ordering::Relaxed);
        slot.packed.store(packed, Ordering::Relaxed);
        slot.flow_in.store(flow_in, Ordering::Relaxed);
        slot.flow_out.store(flow_out, Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Release);
        self.head.store(ticket + 1, Ordering::Release);
    }

    /// Seqlock read of every published slot (exact at quiescence).
    fn collect(&self, out: &mut Vec<SpanEvent>) -> (u64, u64) {
        let recorded = self.head.load(Ordering::Acquire);
        for slot in self.slots.iter() {
            let seq0 = slot.seq.load(Ordering::Acquire);
            if seq0 == 0 || seq0 % 2 == 1 {
                continue;
            }
            let start = slot.start.load(Ordering::Relaxed);
            let end = slot.end.load(Ordering::Relaxed);
            let packed = slot.packed.load(Ordering::Relaxed);
            let flow_in = slot.flow_in.load(Ordering::Relaxed);
            let flow_out = slot.flow_out.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != seq0 {
                continue;
            }
            let (level, node, kind) = unpack(packed);
            out.push(SpanEvent {
                start_ns: start,
                end_ns: end,
                level,
                node,
                thread: self.thread,
                kind,
                flow_in,
                flow_out,
            });
        }
        let dropped = recorded.saturating_sub(self.slots.len() as u64);
        (recorded, dropped)
    }

    /// Resets the ring. Only sound at quiescence of the owner thread
    /// (the registry clears between runs, not mid-run).
    fn reset(&self) {
        for slot in self.slots.iter() {
            slot.seq.store(0, Ordering::Relaxed);
        }
        self.head.store(0, Ordering::Release);
    }
}

// ---------------------------------------------------------------------
// Global registry.
// ---------------------------------------------------------------------

struct Registry {
    enabled: AtomicBool,
    capacity: AtomicUsize,
    /// Bumped by `enable`/`clear`; a thread whose cached buffer carries
    /// a stale epoch re-registers a fresh one (registration is the only
    /// locked path, and it runs once per thread per epoch).
    epoch: AtomicU64,
    bufs: Mutex<Vec<Arc<ThreadBuf>>>,
}

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Registry {
        enabled: AtomicBool::new(false),
        capacity: AtomicUsize::new(TRACE_DEFAULT_CAPACITY),
        epoch: AtomicU64::new(1),
        bufs: Mutex::new(Vec::new()),
    })
}

thread_local! {
    static TLS_BUF: std::cell::RefCell<Option<(u64, Arc<ThreadBuf>)>> =
        const { std::cell::RefCell::new(None) };
}

/// Whether the tracer is currently recording. One relaxed load — this
/// is the entire hot-path cost while tracing is off.
#[inline]
pub fn is_enabled() -> bool {
    registry().enabled.load(Ordering::Relaxed)
}

/// Turns tracing on with `capacity_per_thread` span slots per thread
/// (rounded up to a power of two, minimum 8). Discards any previous
/// trace. Size generously: a wrapped per-thread ring truncates silently
/// (visible as [`Trace::dropped`]).
pub fn enable(capacity_per_thread: usize) {
    let reg = registry();
    let mut bufs = reg.bufs.lock().expect("trace registry poisoned");
    bufs.clear();
    reg.capacity.store(capacity_per_thread, Ordering::Relaxed);
    reg.epoch.fetch_add(1, Ordering::Relaxed);
    reg.enabled.store(true, Ordering::Relaxed);
}

/// Stops recording. Buffers keep their contents for [`snapshot`].
pub fn disable() {
    registry().enabled.store(false, Ordering::Relaxed);
}

/// Discards all buffered spans (and detaches every thread's buffer;
/// threads re-register on their next traced transition if enabled).
pub fn clear() {
    let reg = registry();
    let mut bufs = reg.bufs.lock().expect("trace registry poisoned");
    for buf in bufs.iter() {
        buf.reset();
    }
    bufs.clear();
    reg.epoch.fetch_add(1, Ordering::Relaxed);
}

/// Records one span. Callers should guard with [`is_enabled`] to skip
/// argument computation when tracing is off; this re-checks anyway.
#[inline]
pub fn record(
    start_ns: u64,
    end_ns: u64,
    level: u8,
    node: u32,
    kind: SpanKind,
    flow_in: u64,
    flow_out: u64,
) {
    let reg = registry();
    if !reg.enabled.load(Ordering::Relaxed) {
        return;
    }
    let packed = pack(level, node, kind);
    let epoch = reg.epoch.load(Ordering::Relaxed);
    TLS_BUF.with(|tls| {
        let mut tls = tls.borrow_mut();
        let stale = match &*tls {
            Some((e, _)) => *e != epoch,
            None => true,
        };
        if stale {
            // Cold path: first traced transition of this thread in this
            // epoch. The registry mutex is never taken on the hot path.
            let buf = Arc::new(ThreadBuf::new(
                thread_tag(),
                reg.capacity.load(Ordering::Relaxed),
            ));
            reg.bufs
                .lock()
                .expect("trace registry poisoned")
                .push(Arc::clone(&buf));
            *tls = Some((epoch, buf));
        }
        let (_, buf) = tls.as_ref().expect("registered above");
        buf.record(start_ns, end_ns, packed, flow_in, flow_out);
    });
}

/// Merges every thread's buffer into a time-sorted [`Trace`]. Exact at
/// quiescence (no traced thread mid-transition); torn slots are skipped.
pub fn snapshot() -> Trace {
    let reg = registry();
    let bufs = reg.bufs.lock().expect("trace registry poisoned");
    let mut events = Vec::new();
    let mut recorded = 0u64;
    let mut dropped = 0u64;
    for buf in bufs.iter() {
        let (r, d) = buf.collect(&mut events);
        recorded += r;
        dropped += d;
    }
    events.sort_by_key(|e| (e.start_ns, e.end_ns, e.thread));
    Trace {
        events,
        recorded,
        dropped,
    }
}

/// A fresh process-unique flow id for a hand-off edge (never 0).
#[inline]
pub fn next_flow_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// A fresh process-unique node tag (never 0; 0 means "whole lock").
/// Locks assign one per cohort node at build time so the analyzer can
/// separate sibling cohorts sharing a level.
#[inline]
pub fn node_tag() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Chrome trace-event / Perfetto export.
// ---------------------------------------------------------------------

/// Microseconds with ns precision, as Chrome's `ts`/`dur` expect.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn span_name(e: &SpanEvent) -> String {
    match e.kind {
        SpanKind::Wait { inherited: true } => format!("wait L{} (inherited)", e.level),
        SpanKind::Wait { inherited: false } => format!("wait L{}", e.level),
        SpanKind::Hold => "hold".to_string(),
        SpanKind::Pass => format!("pass L{}", e.level),
        SpanKind::ReleaseUp { forced: true } => format!("release-up L{} (H hit)", e.level),
        SpanKind::ReleaseUp { forced: false } => format!("release-up L{}", e.level),
        SpanKind::Gate { fast: true } => "gate fast".to_string(),
        SpanKind::Gate { fast: false } => "gate slow".to_string(),
        SpanKind::Migrate { complete: true } => "migrate done".to_string(),
        SpanKind::Migrate { complete: false } => "migrate armed".to_string(),
    }
}

/// Renders a trace as Chrome trace-event JSON (object form with a
/// `traceEvents` array), loadable by Perfetto (<https://ui.perfetto.dev>)
/// and `chrome://tracing`. One track per thread (`tid` = thread tag);
/// wait/hold spans as `"X"` complete events, pass / release-up
/// decisions as `"i"` instants, and each hand-off as an `"s"` → `"f"`
/// flow arrow from the pass to the inheriting wait.
pub fn render_chrome_trace(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.events.len() * 128 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };
    push(
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"clof\"}}"
            .to_string(),
        &mut first,
    );
    for e in &trace.events {
        let name = span_name(e);
        let args = format!(
            "{{\"level\":{},\"node\":{}}}",
            e.level, e.node
        );
        match e.kind {
            SpanKind::Wait { .. } | SpanKind::Hold | SpanKind::Gate { .. } => {
                push(
                    format!(
                        "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{name}\",\"cat\":\"clof\",\"args\":{args}}}",
                        e.thread,
                        us(e.start_ns),
                        us(e.duration_ns()),
                    ),
                    &mut first,
                );
                if e.flow_in != 0 {
                    // Terminate the hand-off arrow where the wait ends —
                    // that is when the successor actually takes over.
                    push(
                        format!(
                            "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":{},\"ts\":{},\"id\":{},\"name\":\"handoff\",\"cat\":\"handoff\"}}",
                            e.thread,
                            us(e.end_ns),
                            e.flow_in,
                        ),
                        &mut first,
                    );
                }
            }
            SpanKind::Pass | SpanKind::ReleaseUp { .. } => {
                push(
                    format!(
                        "{{\"ph\":\"i\",\"pid\":0,\"tid\":{},\"ts\":{},\"s\":\"t\",\"name\":\"{name}\",\"cat\":\"clof\",\"args\":{args}}}",
                        e.thread,
                        us(e.start_ns),
                    ),
                    &mut first,
                );
                if e.flow_out != 0 {
                    push(
                        format!(
                            "{{\"ph\":\"s\",\"pid\":0,\"tid\":{},\"ts\":{},\"id\":{},\"name\":\"handoff\",\"cat\":\"handoff\"}}",
                            e.thread,
                            us(e.start_ns),
                            e.flow_out,
                        ),
                        &mut first,
                    );
                }
            }
            SpanKind::Migrate { .. } => {
                // Instants on the controller's track; the armed→done
                // pair is linked by a "migration" flow arrow spanning
                // the drain.
                push(
                    format!(
                        "{{\"ph\":\"i\",\"pid\":0,\"tid\":{},\"ts\":{},\"s\":\"p\",\"name\":\"{name}\",\"cat\":\"clof\",\"args\":{args}}}",
                        e.thread,
                        us(e.start_ns),
                    ),
                    &mut first,
                );
                if e.flow_out != 0 {
                    push(
                        format!(
                            "{{\"ph\":\"s\",\"pid\":0,\"tid\":{},\"ts\":{},\"id\":{},\"name\":\"migration\",\"cat\":\"migration\"}}",
                            e.thread,
                            us(e.start_ns),
                            e.flow_out,
                        ),
                        &mut first,
                    );
                }
                if e.flow_in != 0 {
                    push(
                        format!(
                            "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":{},\"ts\":{},\"id\":{},\"name\":\"migration\",\"cat\":\"migration\"}}",
                            e.thread,
                            us(e.end_ns),
                            e.flow_in,
                        ),
                        &mut first,
                    );
                }
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tracer is process-global; tests that use it serialize here so
    /// parallel test threads never interleave their spans.
    static TRACER: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TRACER.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn pack_unpack_round_trip() {
        let kinds = [
            SpanKind::Wait { inherited: false },
            SpanKind::Wait { inherited: true },
            SpanKind::Hold,
            SpanKind::Pass,
            SpanKind::ReleaseUp { forced: false },
            SpanKind::ReleaseUp { forced: true },
            SpanKind::Gate { fast: false },
            SpanKind::Gate { fast: true },
            SpanKind::Migrate { complete: false },
            SpanKind::Migrate { complete: true },
        ];
        for level in [0u8, 1, 3, 255] {
            for node in [0u32, 1, 77, u32::MAX] {
                for kind in kinds {
                    assert_eq!(unpack(pack(level, node, kind)), (level, node, kind));
                }
            }
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let _g = locked();
        clear();
        disable();
        record(1, 2, 0, 1, SpanKind::Hold, 0, 0);
        assert_eq!(snapshot().recorded, 0);
    }

    #[test]
    fn spans_survive_into_a_sorted_snapshot() {
        let _g = locked();
        enable(64);
        record(10, 20, 0, 1, SpanKind::Wait { inherited: false }, 0, 0);
        record(20, 30, 0, 0, SpanKind::Hold, 0, 0);
        record(5, 5, 1, 2, SpanKind::Pass, 0, 9);
        disable();
        let t = snapshot();
        clear();
        assert_eq!(t.recorded, 3);
        assert_eq!(t.dropped, 0);
        assert!(t.is_complete());
        assert_eq!(t.events.len(), 3);
        assert!(t
            .events
            .windows(2)
            .all(|w| w[0].start_ns <= w[1].start_ns));
        assert_eq!(t.events[0].kind, SpanKind::Pass);
        assert_eq!(t.events[0].flow_out, 9);
        assert_eq!(t.events[2].kind, SpanKind::Hold);
    }

    #[test]
    fn per_thread_ring_wraps_and_counts_drops() {
        let _g = locked();
        enable(8);
        for i in 0..20u64 {
            record(i, i, 0, 1, SpanKind::Hold, 0, 0);
        }
        disable();
        let t = snapshot();
        clear();
        assert_eq!(t.recorded, 20);
        assert_eq!(t.dropped, 12);
        assert!(!t.is_complete());
        assert_eq!(t.events.len(), 8);
        // Latest events survive.
        assert!(t.events.iter().all(|e| e.start_ns >= 12));
    }

    #[test]
    fn threads_get_separate_buffers() {
        let _g = locked();
        enable(64);
        record(1, 2, 0, 1, SpanKind::Hold, 0, 0);
        let joins: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    record(3, 4, 0, 1, SpanKind::Hold, 0, 0);
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        disable();
        let t = snapshot();
        clear();
        assert_eq!(t.recorded, 4);
        let threads: std::collections::HashSet<u32> =
            t.events.iter().map(|e| e.thread).collect();
        assert_eq!(threads.len(), 4, "one track per thread");
    }

    #[test]
    fn enable_discards_previous_trace() {
        let _g = locked();
        enable(64);
        record(1, 2, 0, 1, SpanKind::Hold, 0, 0);
        enable(64);
        disable();
        let t = snapshot();
        clear();
        assert_eq!(t.recorded, 0);
    }

    #[test]
    fn flow_ids_and_node_tags_are_unique_and_nonzero() {
        let a = next_flow_id();
        let b = next_flow_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        let n1 = node_tag();
        let n2 = node_tag();
        assert_ne!(n1, 0);
        assert_ne!(n1, n2);
    }

    #[test]
    fn chrome_export_is_balanced_json_with_flow_pairs() {
        let t = Trace {
            events: vec![
                SpanEvent {
                    start_ns: 1_000,
                    end_ns: 1_000,
                    level: 0,
                    node: 1,
                    thread: 0,
                    kind: SpanKind::Pass,
                    flow_in: 0,
                    flow_out: 42,
                },
                SpanEvent {
                    start_ns: 1_100,
                    end_ns: 2_500,
                    level: 0,
                    node: 1,
                    thread: 1,
                    kind: SpanKind::Wait { inherited: true },
                    flow_in: 42,
                    flow_out: 0,
                },
                SpanEvent {
                    start_ns: 2_500,
                    end_ns: 3_000,
                    level: 0,
                    node: 0,
                    thread: 1,
                    kind: SpanKind::Hold,
                    flow_in: 0,
                    flow_out: 0,
                },
            ],
            recorded: 3,
            dropped: 0,
        };
        let json = render_chrome_trace(&t);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // The hand-off appears as a start/finish flow pair with one id.
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert_eq!(json.matches("\"id\":42").count(), 2);
        // Timestamps are microseconds with ns precision.
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":1.400"));
        // Spans and instants both present.
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn concurrent_tracing_is_exact_at_quiescence() {
        let _g = locked();
        enable(4096);
        let per = 500u64;
        let joins: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..per {
                        record(i, i + 1, 0, t, SpanKind::Hold, 0, 0);
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        disable();
        let t = snapshot();
        clear();
        assert_eq!(t.recorded, 4 * per);
        assert_eq!(t.dropped, 0);
        assert_eq!(t.events.len(), (4 * per) as usize);
    }
}
