//! Snapshot assembly and text exporters (JSON, Prometheus, human).
//!
//! Serialization is hand-rolled — the crate is zero-dependency by
//! design, and the schema is small enough that a formatter is cheaper
//! than a serde tree. `render_prometheus` follows the text exposition
//! format version 0.0.4 (`# HELP`/`# TYPE` comments, `_bucket{le=...}` /
//! `_sum` / `_count` histogram series with a `+Inf` bucket).

use std::fmt;

use crate::{HistSnapshot, LevelSnapshot, PassEvent, PassKind};

/// Everything observed about one composed lock at a point in time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LockSnapshot {
    /// Lock name for labels (e.g. the composition string `"tkt>mcs"`).
    pub name: String,
    /// Per-level counters + acquire-latency histograms, level 0 first.
    pub levels: Vec<LevelSnapshot>,
    /// Critical-section hold time (acquire-return to release-entry),
    /// whole-lock (not per level).
    pub hold_ns: HistSnapshot,
    /// Total events recorded into the pass ring.
    pub events_recorded: u64,
    /// Events overwritten before draining.
    pub events_dropped: u64,
    /// The ring's surviving events at snapshot time, oldest first.
    pub events: Vec<PassEvent>,
}

impl LockSnapshot {
    /// Total acquisitions at the innermost level (== lock acquisitions).
    pub fn total_acquires(&self) -> u64 {
        self.levels.first().map_or(0, |l| l.acquires)
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn json_hist(h: &HistSnapshot) -> String {
    let buckets = h
        .cumulative()
        .iter()
        .map(|(le, n)| format!("{{\"le\":{le},\"count\":{n}}}"))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[{buckets}]}}",
        h.count,
        h.sum,
        h.max,
        h.p50(),
        h.p90(),
        h.p99()
    )
}

/// Renders a snapshot as a single JSON object (no external deps; the
/// output is plain ASCII-safe JSON suitable for `jq`).
pub fn render_json(snap: &LockSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"lock\":\"{}\",", json_escape(&snap.name)));
    out.push_str("\"levels\":[");
    for (i, l) in snap.levels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"level\":{},\"acquires\":{},\"contended_acquires\":{},\"passes_taken\":{},\"passes_declined\":{},\"keep_local_resets\":{},\"hint_fast_hits\":{},\"pass_rate\":{:.6},\"acquire_ns\":{}}}",
            l.level,
            l.acquires,
            l.contended_acquires,
            l.passes_taken,
            l.passes_declined,
            l.keep_local_resets,
            l.hint_fast_hits,
            l.pass_rate(),
            json_hist(&l.acquire_ns),
        ));
    }
    out.push_str("],");
    out.push_str(&format!("\"hold_ns\":{},", json_hist(&snap.hold_ns)));
    out.push_str(&format!(
        "\"events\":{{\"recorded\":{},\"dropped\":{},\"buffered\":{}}}}}",
        snap.events_recorded,
        snap.events_dropped,
        snap.events.len()
    ));
    out
}

fn prom_counter(
    out: &mut String,
    metric: &str,
    help: &str,
    lock: &str,
    series: impl Iterator<Item = (usize, u64)>,
) {
    out.push_str(&format!("# HELP {metric} {help}\n# TYPE {metric} counter\n"));
    for (level, value) in series {
        out.push_str(&format!(
            "{metric}{{lock=\"{lock}\",level=\"{level}\"}} {value}\n"
        ));
    }
}

/// Escapes a Prometheus label *value* (exposition format: backslash,
/// double quote, and newline must be escaped inside `label="..."`).
pub(crate) fn prom_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn prom_histogram(out: &mut String, metric: &str, help: &str, labels: &str, h: &HistSnapshot) {
    out.push_str(&format!(
        "# HELP {metric} {help}\n# TYPE {metric} histogram\n"
    ));
    for (le, n) in h.cumulative() {
        out.push_str(&format!("{metric}_bucket{{{labels},le=\"{le}\"}} {n}\n"));
    }
    out.push_str(&format!(
        "{metric}_bucket{{{labels},le=\"+Inf\"}} {}\n",
        h.count
    ));
    out.push_str(&format!("{metric}_sum{{{labels}}} {}\n", h.sum));
    out.push_str(&format!("{metric}_count{{{labels}}} {}\n", h.count));
    // Companion quantile gauges (summary-style `quantile` label, own
    // family so the histogram family stays exposition-format pure).
    // Values are the same bucket-upper-bound quantiles `/snapshot` JSON
    // reports, so dashboards can mix both without disagreement.
    out.push_str(&format!(
        "# HELP {metric}_quantile Bucket-upper-bound quantiles of {metric} (matches the JSON snapshot's p50/p90/p99).\n\
         # TYPE {metric}_quantile gauge\n"
    ));
    for (q, v) in [(0.5, h.p50()), (0.9, h.p90()), (0.99, h.p99())] {
        out.push_str(&format!(
            "{metric}_quantile{{{labels},quantile=\"{q}\"}} {v}\n"
        ));
    }
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// One scrape body: per-level counters as `counter` series labelled
/// `{lock=...,level=...}` and two `histogram` families
/// (`clof_acquire_latency_ns` per level, `clof_hold_time_ns` whole-lock).
pub fn render_prometheus(snap: &LockSnapshot) -> String {
    let lock = &prom_escape(&snap.name);
    let mut out = String::new();
    out.push_str(&format!(
        "# HELP clof_obs_build_info Build metadata of the clof-obs exporter (constant 1).\n\
         # TYPE clof_obs_build_info gauge\n\
         clof_obs_build_info{{version=\"{}\"}} 1\n",
        prom_escape(env!("CARGO_PKG_VERSION"))
    ));
    prom_counter(
        &mut out,
        "clof_acquires_total",
        "Low-lock acquisitions per hierarchy level.",
        lock,
        snap.levels.iter().map(|l| (l.level, l.acquires)),
    );
    prom_counter(
        &mut out,
        "clof_contended_acquires_total",
        "Acquisitions that inherited a passed high lock.",
        lock,
        snap.levels.iter().map(|l| (l.level, l.contended_acquires)),
    );
    prom_counter(
        &mut out,
        "clof_passes_taken_total",
        "Release decisions that passed the high lock within the cohort.",
        lock,
        snap.levels.iter().map(|l| (l.level, l.passes_taken)),
    );
    prom_counter(
        &mut out,
        "clof_passes_declined_total",
        "Release decisions that surrendered the high lock upward.",
        lock,
        snap.levels.iter().map(|l| (l.level, l.passes_declined)),
    );
    prom_counter(
        &mut out,
        "clof_keep_local_resets_total",
        "Upward releases forced by the keep_local threshold.",
        lock,
        snap.levels.iter().map(|l| (l.level, l.keep_local_resets)),
    );
    prom_counter(
        &mut out,
        "clof_waiter_hint_hits_total",
        "Releases answered by the basic lock's native waiter hint.",
        lock,
        snap.levels.iter().map(|l| (l.level, l.hint_fast_hits)),
    );
    for l in &snap.levels {
        prom_histogram(
            &mut out,
            "clof_acquire_latency_ns",
            "Time to win the low lock at a hierarchy level (ns).",
            &format!("lock=\"{lock}\",level=\"{}\"", l.level),
            &l.acquire_ns,
        );
    }
    prom_histogram(
        &mut out,
        "clof_hold_time_ns",
        "Critical-section hold time (ns).",
        &format!("lock=\"{lock}\""),
        &snap.hold_ns,
    );
    out.push_str(&format!(
        "# HELP clof_pass_events_total Lock-passing events recorded into the trace ring.\n\
         # TYPE clof_pass_events_total counter\n\
         clof_pass_events_total{{lock=\"{lock}\"}} {}\n",
        snap.events_recorded
    ));
    out.push_str(&format!(
        "# HELP clof_pass_events_dropped_total Ring events overwritten before export (truncated trace detector).\n\
         # TYPE clof_pass_events_dropped_total counter\n\
         clof_pass_events_dropped_total{{lock=\"{lock}\"}} {}\n",
        snap.events_dropped
    ));
    out
}

impl fmt::Display for LockSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "lock {} — {} acquisitions", self.name, self.total_acquires())?;
        for l in &self.levels {
            writeln!(
                f,
                "  level {}: acquires {} (contended {}), passes {}/{} (rate {:.1}%), \
                 keep_local resets {}, hint hits {}",
                l.level,
                l.acquires,
                l.contended_acquires,
                l.passes_taken,
                l.passes_taken + l.passes_declined,
                100.0 * l.pass_rate(),
                l.keep_local_resets,
                l.hint_fast_hits,
            )?;
            if l.acquire_ns.count > 0 {
                writeln!(
                    f,
                    "    acquire ns: p50 {} p90 {} p99 {} max {}",
                    l.acquire_ns.p50(),
                    l.acquire_ns.p90(),
                    l.acquire_ns.p99(),
                    l.acquire_ns.max,
                )?;
            }
        }
        if self.hold_ns.count > 0 {
            writeln!(
                f,
                "  hold ns: p50 {} p90 {} p99 {} max {}",
                self.hold_ns.p50(),
                self.hold_ns.p90(),
                self.hold_ns.p99(),
                self.hold_ns.max,
            )?;
        }
        write!(
            f,
            "  pass events: {} recorded, {} dropped, {} buffered",
            self.events_recorded,
            self.events_dropped,
            self.events.len()
        )
    }
}

/// Human-readable kind for event dumps.
impl fmt::Display for PassKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassKind::Pass => write!(f, "pass"),
            PassKind::ReleaseUp => write!(f, "release-up"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventRing, LevelCounters, LogHistogram};

    fn sample_snapshot() -> LockSnapshot {
        let c0 = LevelCounters::new();
        let c1 = LevelCounters::new();
        for i in 0..100 {
            c0.record_acquire(i % 2 == 0);
        }
        for _ in 0..50 {
            c0.record_pass_taken();
        }
        for _ in 0..50 {
            c0.record_pass_declined(false);
        }
        for _ in 0..50 {
            c1.record_acquire(false);
        }
        let h = LogHistogram::new();
        for v in [100u64, 200, 400, 90_000] {
            h.record(v);
        }
        let hold = LogHistogram::new();
        hold.record(1_000);
        let ring = EventRing::with_capacity(8);
        ring.record(0, PassKind::Pass, 1);
        ring.record(0, PassKind::ReleaseUp, 2);
        let mut l0 = c0.snapshot(0);
        l0.acquire_ns = h.snapshot();
        let l1 = c1.snapshot(1);
        LockSnapshot {
            name: "tkt>mcs".into(),
            levels: vec![l0, l1],
            hold_ns: hold.snapshot(),
            events_recorded: ring.recorded(),
            events_dropped: ring.dropped(),
            events: ring.events(),
        }
    }

    #[test]
    fn json_contains_all_sections_and_balances() {
        let s = sample_snapshot();
        let json = render_json(&s);
        assert!(json.contains("\"lock\":\"tkt>mcs\""));
        assert!(json.contains("\"levels\":["));
        assert!(json.contains("\"hold_ns\":"));
        assert!(json.contains("\"recorded\":2"));
        // Structural sanity: braces and brackets balance, no raw newlines.
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains('\n'));
    }

    #[test]
    fn json_escapes_lock_names() {
        let mut s = sample_snapshot();
        s.name = "we\"ird\\name".into();
        let json = render_json(&s);
        assert!(json.contains("\"lock\":\"we\\\"ird\\\\name\""));
    }

    /// A minimal parser for the Prometheus text format: every non-comment
    /// line must be `name{labels} value` or `name value`, every metric
    /// must have HELP and TYPE comments before its first sample, and
    /// histogram `_count` must equal the `+Inf` bucket.
    fn check_prometheus(body: &str) {
        use std::collections::{HashMap, HashSet};
        let mut typed: HashSet<String> = HashSet::new();
        let mut helped: HashSet<String> = HashSet::new();
        let mut inf_buckets: HashMap<String, u64> = HashMap::new();
        let mut counts: HashMap<String, u64> = HashMap::new();
        for line in body.lines() {
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                helped.insert(rest.split_whitespace().next().unwrap().to_string());
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().unwrap().to_string();
                let ty = it.next().unwrap();
                assert!(
                    matches!(ty, "counter" | "gauge" | "histogram"),
                    "bad type: {line}"
                );
                typed.insert(name);
                continue;
            }
            assert!(!line.starts_with('#'), "unknown comment: {line}");
            // Sample line: name[{labels}] value
            let (series, value) = line.rsplit_once(' ').expect("sample must have a value");
            value.parse::<f64>().unwrap_or_else(|_| panic!("bad value in: {line}"));
            let name = series.split('{').next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in: {line}"
            );
            if series.contains('{') {
                assert!(series.ends_with('}'), "unbalanced labels in: {line}");
                let labels = &series[name.len() + 1..series.len() - 1];
                for pair in labels.split(',') {
                    let (k, v) = pair.split_once('=').expect("label must be k=v");
                    assert!(!k.is_empty());
                    assert!(
                        v.starts_with('"') && v.ends_with('"') && v.len() >= 2,
                        "label value must be quoted in: {line}"
                    );
                }
            }
            // The family name for _bucket/_sum/_count is the stem.
            let family = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .unwrap_or(name);
            assert!(typed.contains(family), "sample before TYPE: {line}");
            assert!(helped.contains(family), "sample before HELP: {line}");
            if name.ends_with("_bucket") && series.contains("le=\"+Inf\"") {
                let key = series.split("le=").next().unwrap().to_string();
                inf_buckets.insert(key, value.parse::<u64>().unwrap());
            }
            if name.ends_with("_count") && typed.contains(family) && name != family {
                counts.insert(series.replace("_count", "_bucket"), value.parse().unwrap());
            }
        }
        for (series, count) in &counts {
            // Match the +Inf bucket for the same label set prefix.
            let key = format!("{},le=", &series[..series.len() - 1]).replace("},le=", ",le=");
            let inf = inf_buckets
                .iter()
                .find(|(k, _)| k.starts_with(key.split("le=").next().unwrap()))
                .map(|(_, v)| *v);
            if let Some(inf) = inf {
                assert_eq!(inf, *count, "+Inf bucket != _count for {series}");
            }
        }
    }

    #[test]
    fn prometheus_output_is_well_formed() {
        let s = sample_snapshot();
        let prom = render_prometheus(&s);
        check_prometheus(&prom);
        assert!(prom.contains("clof_acquires_total{lock=\"tkt>mcs\",level=\"0\"} 100"));
        assert!(prom.contains("clof_passes_taken_total{lock=\"tkt>mcs\",level=\"0\"} 50"));
        assert!(prom.contains("clof_acquire_latency_ns_bucket{lock=\"tkt>mcs\",level=\"0\",le=\"+Inf\"} 4"));
        assert!(prom.contains("clof_hold_time_ns_count{lock=\"tkt>mcs\"} 1"));
        assert!(prom.contains("clof_pass_events_total{lock=\"tkt>mcs\"} 2"));
        assert!(prom.contains("clof_pass_events_dropped_total{lock=\"tkt>mcs\"} 0"));
    }

    #[test]
    fn prometheus_emits_build_info_and_help_type_for_every_family() {
        let prom = render_prometheus(&sample_snapshot());
        assert!(prom.contains("# TYPE clof_obs_build_info gauge"));
        assert!(prom.contains(&format!(
            "clof_obs_build_info{{version=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION")
        )));
        // check_prometheus already rejects any sample whose family lacks
        // HELP/TYPE; assert the inverse too — every HELP has a TYPE.
        let helps: Vec<_> = prom
            .lines()
            .filter_map(|l| l.strip_prefix("# HELP "))
            .map(|l| l.split_whitespace().next().unwrap())
            .collect();
        assert!(!helps.is_empty());
        for family in helps {
            assert!(
                prom.contains(&format!("# TYPE {family} ")),
                "family {family} has HELP but no TYPE"
            );
        }
        check_prometheus(&prom);
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let mut s = sample_snapshot();
        s.name = "we\"ird\\na\nme".into();
        let prom = render_prometheus(&s);
        check_prometheus(&prom);
        assert!(
            prom.contains("lock=\"we\\\"ird\\\\na\\nme\""),
            "label values must be escaped: {prom}"
        );
        assert!(!prom.contains("we\"ird"), "raw quote must not survive");
    }

    /// Render-agreement: the Prometheus histogram series (cumulative
    /// `_bucket`/`_sum`/`_count`) and its companion quantile gauges
    /// must report exactly the numbers the `/snapshot` JSON carries for
    /// the same histogram — one source of truth, two encodings.
    #[test]
    fn prometheus_histograms_and_quantiles_agree_with_json() {
        let s = sample_snapshot();
        let prom = render_prometheus(&s);
        check_prometheus(&prom);
        let json = render_json(&s);

        let h = &s.levels[0].acquire_ns;
        // Quantile gauges match the JSON's p50/p90/p99 fields.
        for (q, v) in [(0.5, h.p50()), (0.9, h.p90()), (0.99, h.p99())] {
            let gauge = format!(
                "clof_acquire_latency_ns_quantile{{lock=\"tkt>mcs\",level=\"0\",quantile=\"{q}\"}} {v}"
            );
            assert!(prom.contains(&gauge), "missing gauge: {gauge}");
        }
        assert!(json.contains(&format!("\"p50\":{}", h.p50())));
        assert!(json.contains(&format!("\"p90\":{}", h.p90())));
        assert!(json.contains(&format!("\"p99\":{}", h.p99())));

        // Native buckets match the JSON's cumulative bucket list.
        for (le, n) in h.cumulative() {
            let bucket = format!(
                "clof_acquire_latency_ns_bucket{{lock=\"tkt>mcs\",level=\"0\",le=\"{le}\"}} {n}"
            );
            assert!(prom.contains(&bucket), "missing bucket: {bucket}");
            assert!(json.contains(&format!("{{\"le\":{le},\"count\":{n}}}")));
        }
        assert!(prom.contains(&format!(
            "clof_acquire_latency_ns_sum{{lock=\"tkt>mcs\",level=\"0\"}} {}",
            h.sum
        )));
        assert!(json.contains(&format!("\"sum\":{}", h.sum)));

        // Hold-time family gets the same treatment, whole-lock labels.
        let hold = &s.hold_ns;
        assert!(prom.contains(&format!(
            "clof_hold_time_ns_quantile{{lock=\"tkt>mcs\",quantile=\"0.99\"}} {}",
            hold.p99()
        )));
    }

    #[test]
    fn dropped_events_surface_in_both_exporters() {
        let mut s = sample_snapshot();
        s.events_recorded = 100;
        s.events_dropped = 37;
        let prom = render_prometheus(&s);
        check_prometheus(&prom);
        assert!(prom.contains("clof_pass_events_dropped_total{lock=\"tkt>mcs\"} 37"));
        let json = render_json(&s);
        assert!(json.contains("\"dropped\":37"));
    }

    #[test]
    fn rendering_a_snapshot_twice_is_identical() {
        // Regression for destructive rendering: assembling from
        // `EventRing::events()` and re-rendering must not change output.
        let ring = EventRing::with_capacity(8);
        ring.record(0, PassKind::Pass, 1);
        ring.record(1, PassKind::ReleaseUp, 2);
        let snap_once = |ring: &EventRing| LockSnapshot {
            name: "twice".into(),
            levels: vec![LevelCounters::new().snapshot(0)],
            hold_ns: LogHistogram::new().snapshot(),
            events_recorded: ring.recorded(),
            events_dropped: ring.dropped(),
            events: ring.events(),
        };
        let a = snap_once(&ring);
        let b = snap_once(&ring);
        assert_eq!(render_json(&a), render_json(&b));
        assert_eq!(render_prometheus(&a), render_prometheus(&b));
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(a.events.len(), 2, "events survive both renders");
    }

    #[test]
    fn display_mentions_every_level_and_pass_rate() {
        let s = sample_snapshot();
        let text = s.to_string();
        assert!(text.contains("lock tkt>mcs — 100 acquisitions"));
        assert!(text.contains("level 0"));
        assert!(text.contains("level 1"));
        assert!(text.contains("rate 50.0%"));
        assert!(text.contains("pass events: 2 recorded"));
    }
}
