//! Fixed-capacity MPSC ring of lock-passing events.
//!
//! Writers are the releasing threads inside the composition protocol, so
//! the write path must be wait-free and allocation-free: claim a slot
//! with one `fetch_add` on a global cursor, then publish through the
//! slot's sequence word (seqlock-style: odd while writing, even+ticket
//! when done). The ring keeps the **latest** `capacity` events — older
//! slots are overwritten, and `dropped()` reports how many.
//!
//! Readers come in two flavors: [`EventRing::events`] snapshots without
//! disturbing the ring (exporters may render the same events any number
//! of times), while [`EventRing::drain`] consumes — it empties the ring
//! so a hand-off replay sees each event exactly once. Both are
//! best-effort under concurrency: a slot being overwritten mid-read is
//! detected by the sequence re-check and skipped; read at quiescence for
//! exact traces.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::now_ns;

/// What a lock-passing event records about the release decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassKind {
    /// The high lock was passed within the cohort (stayed local).
    Pass,
    /// The high lock was released upward toward the root.
    ReleaseUp,
}

/// One timestamped hand-off decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassEvent {
    /// Nanoseconds since the process observation epoch ([`now_ns`]).
    pub timestamp_ns: u64,
    /// Hierarchy level of the deciding node (0 = innermost).
    pub level: u8,
    /// Dense process-wide tag of the releasing thread
    /// ([`crate::thread_tag`]).
    pub thread: u32,
    /// Pass vs. release-to-root.
    pub kind: PassKind,
}

/// Slot layout: `seq` (odd = write in progress; even = `2 * ticket + 2`
/// of the event it holds), `ts`, and the packed level/kind/thread word.
struct Slot {
    seq: AtomicU64,
    ts: AtomicU64,
    packed: AtomicU64,
}

/// Packs level/kind/thread into one word: `level | kind << 8 | thread << 32`.
fn pack(level: u8, kind: PassKind, thread: u32) -> u64 {
    let k = match kind {
        PassKind::Pass => 0u64,
        PassKind::ReleaseUp => 1u64,
    };
    level as u64 | (k << 8) | ((thread as u64) << 32)
}

fn unpack(word: u64) -> (u8, PassKind, u32) {
    let level = (word & 0xff) as u8;
    let kind = if (word >> 8) & 1 == 0 {
        PassKind::Pass
    } else {
        PassKind::ReleaseUp
    };
    let thread = (word >> 32) as u32;
    (level, kind, thread)
}

/// A concurrent ring buffer of [`PassEvent`]s keeping the most recent
/// `capacity` (rounded up to a power of two, minimum 8).
#[derive(Debug)]
pub struct EventRing {
    slots: Box<[Slot]>,
    mask: u64,
    cursor: AtomicU64,
}

impl std::fmt::Debug for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slot")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl EventRing {
    /// Default capacity when callers have no opinion.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// A ring holding the latest `capacity` events (rounded up to a
    /// power of two, minimum 8).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        let slots = (0..cap)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                ts: AtomicU64::new(0),
                packed: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        EventRing {
            slots,
            mask: (cap - 1) as u64,
            cursor: AtomicU64::new(0),
        }
    }

    /// A ring with [`EventRing::DEFAULT_CAPACITY`] slots.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (monotone; may exceed `capacity`).
    /// Saturating: pinned at `u64::MAX` instead of wrapping back to
    /// small values, so `dropped()` never lies after an overflow.
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Events overwritten before they could be drained (saturating —
    /// mirrored verbatim into both the JSON and Prometheus exporters as
    /// the truncated-trace detector, so it must never wrap to 0).
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Records one event, stamped with [`now_ns`] now. Wait-free.
    #[inline]
    pub fn record(&self, level: u8, kind: PassKind, thread: u32) {
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        if ticket == u64::MAX {
            // The cursor just wrapped to 0. Re-pin it at MAX so the
            // recorded/dropped accounting saturates instead of lying;
            // waiting for the unreachable boundary (584 years at 1
            // event/ns) keeps the hot path a plain fetch_add with no
            // CAS loop, preserving wait-freedom.
            self.cursor.store(u64::MAX, Ordering::Relaxed);
        }
        let slot = &self.slots[(ticket & self.mask) as usize];
        // Wrapping keeps the seq word well-formed at the saturation
        // boundary; 0 means "never written", so remap it to 2 (an
        // ancient-generation collision there is harmless — seq only
        // distinguishes published/in-progress/empty).
        let seq = match ticket.wrapping_mul(2).wrapping_add(2) {
            0 => 2,
            s => s,
        };
        // Mark write-in-progress (odd). Release orders it before the data
        // for the reader's first load; failure to observe just drops the
        // slot from a concurrent drain.
        slot.seq.store(seq - 1, Ordering::Release);
        slot.ts.store(now_ns(), Ordering::Relaxed);
        slot.packed
            .store(pack(level, kind, thread), Ordering::Relaxed);
        // Publish (even): Release orders the data before the new seq.
        slot.seq.store(seq, Ordering::Release);
    }

    /// Copies out the currently-held events, oldest first (sorted by
    /// timestamp), **without clearing the ring** — rendering a snapshot
    /// twice yields identical output. Slots caught mid-write are
    /// skipped. Exact at quiescence.
    pub fn events(&self) -> Vec<PassEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq0 = slot.seq.load(Ordering::Acquire);
            if seq0 == 0 || seq0 % 2 == 1 {
                continue; // never written, or write in progress
            }
            let ts = slot.ts.load(Ordering::Relaxed);
            let packed = slot.packed.load(Ordering::Relaxed);
            // Torn-read check: a concurrent overwrite bumped seq.
            if slot.seq.load(Ordering::Acquire) != seq0 {
                continue;
            }
            let (level, kind, thread) = unpack(packed);
            out.push(PassEvent {
                timestamp_ns: ts,
                level,
                thread,
                kind,
            });
        }
        out.sort_by_key(|e| e.timestamp_ns);
        out
    }

    /// [`events`](Self::events), then empties the ring: a second drain
    /// returns nothing. For hand-off replay, where each event should be
    /// consumed exactly once; exporters use the non-consuming
    /// [`events`](Self::events) instead. `recorded()`/`dropped()` are
    /// monotone and unaffected. Only exact at quiescence (a concurrent
    /// writer may publish into a cleared slot and survive).
    pub fn drain(&self) -> Vec<PassEvent> {
        let out = self.events();
        for slot in self.slots.iter() {
            slot.seq.store(0, Ordering::Release);
        }
        out
    }

    #[cfg(test)]
    fn set_cursor(&self, v: u64) {
        self.cursor.store(v, Ordering::Relaxed);
    }
}

impl Default for EventRing {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        for level in [0u8, 1, 2, 255] {
            for kind in [PassKind::Pass, PassKind::ReleaseUp] {
                for thread in [0u32, 1, 7, u32::MAX] {
                    assert_eq!(unpack(pack(level, kind, thread)), (level, kind, thread));
                }
            }
        }
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(EventRing::with_capacity(0).capacity(), 8);
        assert_eq!(EventRing::with_capacity(100).capacity(), 128);
        assert_eq!(EventRing::with_capacity(1024).capacity(), 1024);
    }

    #[test]
    fn events_returns_recorded_events_in_timestamp_order() {
        let ring = EventRing::with_capacity(64);
        ring.record(0, PassKind::Pass, 3);
        ring.record(1, PassKind::ReleaseUp, 4);
        ring.record(0, PassKind::Pass, 3);
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].timestamp_ns <= w[1].timestamp_ns));
        assert_eq!(events[0].level, 0);
        assert_eq!(events[0].kind, PassKind::Pass);
        assert_eq!(events[1].level, 1);
        assert_eq!(events[1].kind, PassKind::ReleaseUp);
        assert_eq!(ring.recorded(), 3);
        assert_eq!(ring.dropped(), 0);
        // events() does not clear: a second read is identical.
        assert_eq!(ring.events(), events);
    }

    #[test]
    fn drain_consumes_exactly_once() {
        let ring = EventRing::with_capacity(64);
        ring.record(0, PassKind::Pass, 1);
        ring.record(1, PassKind::ReleaseUp, 2);
        assert_eq!(ring.events().len(), 2, "snapshot before drain");
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.drain().is_empty(), "drain consumes");
        assert!(ring.events().is_empty());
        // Monotone counters survive the drain; the ring is reusable.
        assert_eq!(ring.recorded(), 2);
        ring.record(0, PassKind::Pass, 3);
        assert_eq!(ring.events().len(), 1);
        assert_eq!(ring.recorded(), 3);
    }

    #[test]
    fn overwrite_keeps_latest_events() {
        let ring = EventRing::with_capacity(8);
        for i in 0..20u32 {
            ring.record(0, PassKind::Pass, i);
        }
        let events = ring.drain();
        assert_eq!(events.len(), 8);
        // Latest capacity-many writers survive: tags 12..20.
        let mut tags: Vec<u32> = events.iter().map(|e| e.thread).collect();
        tags.sort_unstable();
        assert_eq!(tags, (12..20).collect::<Vec<_>>());
        assert_eq!(ring.recorded(), 20);
        assert_eq!(ring.dropped(), 12);
    }

    #[test]
    fn drop_accounting_saturates_instead_of_wrapping() {
        let ring = EventRing::with_capacity(8);
        ring.set_cursor(u64::MAX - 2);
        for i in 0..6u32 {
            ring.record(0, PassKind::Pass, i);
        }
        // Without saturation the cursor would wrap to ~3: recorded()
        // would collapse from 2^64 to a tiny number and dropped() to 0,
        // hiding ~2^64 lost events. Pinned at MAX, both stay at the
        // ceiling and stay monotone.
        assert_eq!(ring.recorded(), u64::MAX);
        assert_eq!(ring.dropped(), u64::MAX - 8);
        // The ring still functions for reads after saturating.
        assert!(!ring.events().is_empty());
        // And the exporters mirror the saturated counter verbatim.
        let snap = crate::LockSnapshot {
            name: "sat".into(),
            levels: Vec::new(),
            hold_ns: crate::LogHistogram::new().snapshot(),
            events_recorded: ring.recorded(),
            events_dropped: ring.dropped(),
            events: Vec::new(),
        };
        let json = crate::render_json(&snap);
        assert!(json.contains(&format!("\"dropped\":{}", u64::MAX - 8)), "{json}");
        let prom = crate::render_prometheus(&snap);
        assert!(
            prom.contains(&format!(
                "clof_pass_events_dropped_total{{lock=\"sat\"}} {}",
                u64::MAX - 8
            )),
            "{prom}"
        );
    }

    #[test]
    fn concurrent_writers_drain_cleanly_at_quiescence() {
        use std::sync::Arc;
        let ring = Arc::new(EventRing::with_capacity(1024));
        let threads = 4;
        let per = 200u32;
        let mut handles = Vec::new();
        for t in 0..threads {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                for _ in 0..per {
                    ring.record(1, PassKind::Pass, t);
                }
            }));
        }
        for j in handles {
            j.join().unwrap();
        }
        let events = ring.drain();
        assert_eq!(events.len(), (threads * per) as usize);
        assert!(events.windows(2).all(|w| w[0].timestamp_ns <= w[1].timestamp_ns));
        for t in 0..threads {
            assert_eq!(
                events.iter().filter(|e| e.thread == t).count(),
                per as usize
            );
        }
    }
}
