//! Zero-dependency telemetry server: scrape what the lock is doing.
//!
//! All the rich in-process telemetry — counters, histograms, windowed
//! rates, SLO alerts, the decision audit ring — is worthless to an
//! operator who cannot see it while the workload runs. This module is
//! the serving layer: a std-only blocking HTTP/1.1 server (one
//! nonblocking [`TcpListener`] accept loop, a bounded worker pool fed by
//! a [`sync_channel`], a graceful shutdown flag) exposing
//!
//! | endpoint    | body                                                    |
//! |-------------|---------------------------------------------------------|
//! | `/metrics`  | Prometheus text format ([`render_prometheus`]) plus the |
//! |             | server's own cost series (`clof_obs_scrape_*`) and the  |
//! |             | audit-ring counters                                     |
//! | `/snapshot` | JSON: the full [`LockSnapshot`] ([`render_json`]), the  |
//! |             | audit-ring tail, current alerts, server self-accounting |
//! | `/health`   | `200 ok` / `503 stalled` — flips on watchdog stalls     |
//! |             | and waits-for graph findings                            |
//! | `/alerts`   | JSON array of [`AlertStatus`] from the SLO evaluator    |
//! | `/profile`  | JSON: the contention profiler's per-site wait/hold      |
//! |             | attribution + a live waits-for graph verdict            |
//! |             | ([`crate::profile::render_profile_json`]);              |
//! |             | `?format=folded` returns bare folded stacks             |
//!
//! HTTP/1.1 is deliberately minimal: `GET` only, `Connection: close`,
//! no keep-alive, no TLS — this is an intra-host scrape endpoint, not a
//! web server. Overload degrades loudly instead of queueing unboundedly:
//! when the worker queue is full the accept loop answers `503` inline.
//!
//! **Self-accounting**: observability that cannot state its own cost is
//! asking to be trusted blindly. Every scrape's render time lands in a
//! [`LogHistogram`] exported as `clof_obs_scrape_duration_ns` on the
//! very endpoint it measures, next to per-endpoint request counters and
//! the audit/event ring drop counters.
//!
//! Every response carries `Server: clof-obs-serve` — that literal only
//! exists in this obs-gated crate, so its absence from a default build
//! binary proves no server code was compiled in (checked by ci.sh).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::export::{prom_histogram, render_json, render_prometheus};
use crate::slo::{render_alerts_json, SloEvaluator, SloRule};
use crate::{audit, now_ns, LockSnapshot, LogHistogram};

/// The marker literal stamped into every response's `Server:` header.
/// ci.sh greps the default binary for its absence (zero-cost proof) and
/// the obs binary for its presence.
pub const SERVER_MARKER: &str = "clof-obs-serve";

/// Produces the cumulative snapshot a scrape should render. Called once
/// per `/metrics` / `/snapshot` request, on a worker thread.
pub type SnapshotFn = Arc<dyn Fn() -> LockSnapshot + Send + Sync>;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling requests (≥ 1).
    pub workers: usize,
    /// Accepted-connection queue depth; overflow answers `503`.
    pub queue_depth: usize,
    /// Per-connection read timeout (slowloris guard).
    pub read_timeout: Duration,
    /// SLO rules the embedded evaluator starts with.
    pub rules: Vec<SloRule>,
    /// `keep_local` gap bound *H* the `/profile` endpoint's waits-for
    /// graph analysis uses for inversion detection. `u64::MAX` (the
    /// default) disables inversion findings; cycle (deadlock) detection
    /// is always on.
    pub graph_h_bound: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_depth: 16,
            read_timeout: Duration::from_secs(2),
            rules: Vec::new(),
            graph_h_bound: u64::MAX,
        }
    }
}

struct Shared {
    snapshot: SnapshotFn,
    slo: Mutex<SloEvaluator>,
    healthy: AtomicBool,
    shutdown: AtomicBool,
    scrape_ns: LogHistogram,
    hits_metrics: AtomicU64,
    hits_snapshot: AtomicU64,
    hits_health: AtomicU64,
    hits_alerts: AtomicU64,
    hits_profile: AtomicU64,
    hits_other: AtomicU64,
    rejected: AtomicU64,
    graph_h_bound: u64,
}

impl Shared {
    fn requests_total(&self) -> u64 {
        self.hits_metrics.load(Ordering::Relaxed)
            + self.hits_snapshot.load(Ordering::Relaxed)
            + self.hits_health.load(Ordering::Relaxed)
            + self.hits_alerts.load(Ordering::Relaxed)
            + self.hits_profile.load(Ordering::Relaxed)
            + self.hits_other.load(Ordering::Relaxed)
    }
}

/// A running telemetry server. Dropping the handle shuts it down
/// gracefully (flag, join accept loop, drain workers).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("requests", &self.shared.requests_total())
            .finish()
    }
}

impl ServerHandle {
    /// The actually-bound address (resolves `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `http://<addr>` for log lines.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Marks the process healthy/stalled; `/health` answers `503` while
    /// unhealthy. Wire a watchdog's `on_stall` to
    /// `handle.set_healthy(false)`.
    pub fn set_healthy(&self, healthy: bool) {
        self.shared.healthy.store(healthy, Ordering::Relaxed);
    }

    /// Current health flag (also considers a firing liveness alert).
    pub fn healthy(&self) -> bool {
        self.shared.healthy.load(Ordering::Relaxed)
            && !self.shared.slo.lock().map(|s| s.any_firing()).unwrap_or(false)
    }

    /// Feeds one telemetry window into the embedded SLO evaluator (from
    /// whatever sampling loop the caller runs).
    pub fn observe_window(&self, rates: &crate::WindowRates) {
        if let Ok(mut slo) = self.shared.slo.lock() {
            slo.observe(rates);
        }
    }

    /// Feeds a watchdog stall report: fires the liveness alert and flips
    /// `/health` (unless an active waits-for graph finding already
    /// covers the stalled thread — one stuck site, one alert).
    pub fn note_stall(&self, report: &crate::StallReport) {
        if let Ok(mut slo) = self.shared.slo.lock() {
            slo.note_stall(report);
        }
    }

    /// Feeds a waits-for graph finding (deadlock / inversion) from the
    /// caller's analysis loop: fires a `waitgraph-*` alert, flips
    /// `/health`, and supersedes any plain stall for the same thread.
    pub fn note_graph_finding(&self, finding: &crate::GraphFinding) {
        if let Ok(mut slo) = self.shared.slo.lock() {
            slo.note_graph_finding(finding);
        }
    }

    /// Total requests served so far (all endpoints).
    pub fn requests(&self) -> u64 {
        self.shared.requests_total()
    }

    /// Stops accepting, drains workers, and joins all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(j) = self.accept.take() {
            let _ = j.join();
        }
        for j in self.workers.drain(..) {
            let _ = j.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Starts the telemetry server on `addr` (use `127.0.0.1:0` for an
/// ephemeral port; read the real one back from
/// [`ServerHandle::addr`]). Returns immediately; requests are served on
/// background threads until the handle is dropped or
/// [`shutdown`](ServerHandle::shutdown).
pub fn serve(addr: &str, snapshot: SnapshotFn, config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;

    let shared = Arc::new(Shared {
        snapshot,
        slo: Mutex::new(SloEvaluator::new(config.rules.clone())),
        healthy: AtomicBool::new(true),
        shutdown: AtomicBool::new(false),
        scrape_ns: LogHistogram::new(),
        hits_metrics: AtomicU64::new(0),
        hits_snapshot: AtomicU64::new(0),
        hits_health: AtomicU64::new(0),
        hits_alerts: AtomicU64::new(0),
        hits_profile: AtomicU64::new(0),
        hits_other: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        graph_h_bound: config.graph_h_bound,
    });

    let (tx, rx) = sync_channel::<TcpStream>(config.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));

    let mut workers = Vec::new();
    for i in 0..config.workers.max(1) {
        let rx = Arc::clone(&rx);
        let shared = Arc::clone(&shared);
        let read_timeout = config.read_timeout;
        workers.push(
            std::thread::Builder::new()
                .name(format!("clof-obs-serve-{i}"))
                .spawn(move || worker_loop(&rx, &shared, read_timeout))
                .expect("spawn obs worker"),
        );
    }

    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("clof-obs-accept".to_string())
        .spawn(move || {
            while !accept_shared.shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(stream)) => {
                            accept_shared.rejected.fetch_add(1, Ordering::Relaxed);
                            reject_overloaded(stream);
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    },
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            // tx drops here; workers see Disconnected and exit.
        })
        .expect("spawn obs accept loop");

    Ok(ServerHandle {
        addr: local,
        shared,
        accept: Some(accept),
        workers,
    })
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, shared: &Arc<Shared>, read_timeout: Duration) {
    loop {
        let stream = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(_) => return,
            };
            match guard.recv_timeout(Duration::from_millis(100)) {
                Ok(s) => Some(s),
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => None,
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
            }
        };
        match stream {
            Some(s) => handle_connection(s, shared, read_timeout),
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>, read_timeout: Duration) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(read_timeout));
    let path = match read_request_path(&mut stream) {
        Some(p) => p,
        None => {
            let _ = write_response(&mut stream, 400, "text/plain", "bad request\n");
            return;
        }
    };
    let t0 = now_ns();
    let (status, ctype, body) = route(&path, shared);
    shared.scrape_ns.record(now_ns().saturating_sub(t0));
    let _ = write_response(&mut stream, status, ctype, &body);
}

/// Routes one request path to `(status, content-type, body)`. The
/// render time (not the socket time) is what lands in the duration
/// histogram — it is the part proportional to telemetry volume.
fn route(path: &str, shared: &Arc<Shared>) -> (u16, &'static str, String) {
    // Strip any query string; scrapers love cache-busters. `/profile`
    // honors one query: `format=folded` for bare folded stacks.
    let path_wants_folded = path
        .split_once('?')
        .is_some_and(|(_, q)| q.split('&').any(|kv| kv == "format=folded"));
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => {
            shared.hits_metrics.fetch_add(1, Ordering::Relaxed);
            let snap = (shared.snapshot)();
            let mut body = render_prometheus(&snap);
            body.push_str(&crate::park::render_park_prometheus(&crate::park::park_stats()));
            body.push_str(&crate::deadline::render_deadline_prometheus(
                &crate::deadline::deadline_stats(),
            ));
            body.push_str(&self_metrics(shared));
            (200, "text/plain; version=0.0.4", body)
        }
        "/snapshot" => {
            shared.hits_snapshot.fetch_add(1, Ordering::Relaxed);
            let snap = (shared.snapshot)();
            let alerts = shared
                .slo
                .lock()
                .map(|s| render_alerts_json(&s.alerts()))
                .unwrap_or_else(|_| "[]".to_string());
            let ring = audit::global();
            let body = format!(
                "{{\"snapshot\":{},\"audit\":{},\"alerts\":{},\"park\":{},\"deadline\":{},\"server\":{}}}",
                render_json(&snap),
                audit::render_audit_json(&ring.entries()),
                alerts,
                crate::park::render_park_json(&crate::park::park_stats()),
                crate::deadline::render_deadline_json(&crate::deadline::deadline_stats()),
                self_json(shared),
            );
            (200, "application/json", body)
        }
        "/health" => {
            shared.hits_health.fetch_add(1, Ordering::Relaxed);
            let stalled = shared
                .slo
                .lock()
                .map(|s| {
                    s.any_firing()
                        && s.alerts()
                            .iter()
                            .any(|a| a.signal == "liveness" || a.signal == "waitgraph")
                })
                .unwrap_or(false);
            if shared.healthy.load(Ordering::Relaxed) && !stalled {
                (200, "text/plain", "ok\n".to_string())
            } else {
                (503, "text/plain", "stalled\n".to_string())
            }
        }
        "/alerts" => {
            shared.hits_alerts.fetch_add(1, Ordering::Relaxed);
            let body = shared
                .slo
                .lock()
                .map(|s| render_alerts_json(&s.alerts()))
                .unwrap_or_else(|_| "[]".to_string());
            (200, "application/json", body)
        }
        "/profile" => {
            shared.hits_profile.fetch_add(1, Ordering::Relaxed);
            let snap = crate::profile::global().snapshot();
            let report = crate::waitgraph::global().analyze(shared.graph_h_bound);
            if path_wants_folded {
                (200, "text/plain", crate::profile::render_folded(&snap))
            } else {
                (
                    200,
                    "application/json",
                    crate::profile::render_profile_json(&snap, &report.findings),
                )
            }
        }
        _ => {
            shared.hits_other.fetch_add(1, Ordering::Relaxed);
            (
                404,
                "text/plain",
                "not found; try /metrics /snapshot /health /alerts /profile\n".to_string(),
            )
        }
    }
}

/// The server's own cost, in the Prometheus body it serves: scrape
/// counters per endpoint, render-duration histogram, queue rejections,
/// and the audit ring's record/drop totals.
fn self_metrics(shared: &Arc<Shared>) -> String {
    let mut out = String::new();
    out.push_str(
        "# HELP clof_obs_scrapes_total Requests served by the telemetry endpoint.\n\
         # TYPE clof_obs_scrapes_total counter\n",
    );
    for (endpoint, n) in [
        ("metrics", &shared.hits_metrics),
        ("snapshot", &shared.hits_snapshot),
        ("health", &shared.hits_health),
        ("alerts", &shared.hits_alerts),
        ("profile", &shared.hits_profile),
        ("other", &shared.hits_other),
    ] {
        out.push_str(&format!(
            "clof_obs_scrapes_total{{endpoint=\"{endpoint}\"}} {}\n",
            n.load(Ordering::Relaxed)
        ));
    }
    out.push_str(&format!(
        "# HELP clof_obs_scrapes_rejected_total Connections answered 503 because the worker queue was full.\n\
         # TYPE clof_obs_scrapes_rejected_total counter\n\
         clof_obs_scrapes_rejected_total {}\n",
        shared.rejected.load(Ordering::Relaxed)
    ));
    prom_histogram(
        &mut out,
        "clof_obs_scrape_duration_ns",
        "Render time per scrape (ns) — the server accounting for itself.",
        "endpoint=\"all\"",
        &shared.scrape_ns.snapshot(),
    );
    let ring = audit::global();
    out.push_str(&format!(
        "# HELP clof_obs_audit_records_total Adaptation decisions written to the audit ring (saturating).\n\
         # TYPE clof_obs_audit_records_total counter\n\
         clof_obs_audit_records_total {}\n\
         # HELP clof_obs_audit_dropped_total Audit records overwritten before scrape (saturating).\n\
         # TYPE clof_obs_audit_dropped_total counter\n\
         clof_obs_audit_dropped_total {}\n",
        ring.recorded(),
        ring.dropped()
    ));
    out
}

fn self_json(shared: &Arc<Shared>) -> String {
    let h = shared.scrape_ns.snapshot();
    format!(
        "{{\"requests\":{},\"rejected\":{},\"scrape_ns_p50\":{},\"scrape_ns_p99\":{},\
         \"scrape_ns_max\":{},\"audit_recorded\":{},\"audit_dropped\":{}}}",
        shared.requests_total(),
        shared.rejected.load(Ordering::Relaxed),
        h.p50(),
        h.p99(),
        h.max,
        audit::global().recorded(),
        audit::global().dropped(),
    )
}

/// Reads one request head and returns the path of a `GET`; `None` on
/// anything malformed (worker answers 400).
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) if path.starts_with('/') => Some(path.to_string()),
        _ => None,
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    ctype: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nServer: {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        status_text(status),
        SERVER_MARKER,
        ctype,
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Best-effort `503` straight from the accept loop when the worker
/// queue is full — overload must degrade loudly, not queue silently.
fn reject_overloaded(mut stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = write_response(&mut stream, 503, "text/plain", "overloaded\n");
}

/// Minimal blocking HTTP GET against a local address: returns `(status,
/// body)`. Shared by the e2e tests, `clof serve --once`, and the
/// kvstore round-trip test so none of them hand-roll a client.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw).into_owned();
    let status: u16 = text
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))?;
    let body = match text.find("\r\n\r\n") {
        Some(i) => text[i + 4..].to_string(),
        None => String::new(),
    };
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LevelCounters;

    fn test_snapshot() -> LockSnapshot {
        let c = LevelCounters::new();
        for _ in 0..10 {
            c.record_acquire(false);
        }
        LockSnapshot {
            name: "serve-test".into(),
            levels: vec![c.snapshot(0)],
            hold_ns: LogHistogram::new().snapshot(),
            events_recorded: 10,
            events_dropped: 0,
            events: Vec::new(),
        }
    }

    fn start() -> ServerHandle {
        serve(
            "127.0.0.1:0",
            Arc::new(test_snapshot),
            ServeConfig {
                workers: 1,
                ..ServeConfig::default()
            },
        )
        .expect("bind ephemeral port")
    }

    #[test]
    fn serves_all_four_endpoints() {
        let h = start();
        let (s, body) = http_get(h.addr(), "/health").unwrap();
        assert_eq!((s, body.as_str()), (200, "ok\n"));
        let (s, body) = http_get(h.addr(), "/metrics").unwrap();
        assert_eq!(s, 200);
        assert!(body.contains("clof_acquires_total{lock=\"serve-test\",level=\"0\"} 10"), "{body}");
        assert!(body.contains("clof_obs_scrape_duration_ns_count"), "{body}");
        assert!(body.contains("clof_obs_scrapes_total{endpoint=\"metrics\"} 1"), "{body}");
        let (s, body) = http_get(h.addr(), "/snapshot").unwrap();
        assert_eq!(s, 200);
        assert!(body.starts_with("{\"snapshot\":{"), "{body}");
        assert!(body.contains("\"audit\":["), "{body}");
        assert!(body.contains("\"server\":{"), "{body}");
        assert_eq!(body.matches('{').count(), body.matches('}').count());
        let (s, body) = http_get(h.addr(), "/alerts").unwrap();
        assert_eq!(s, 200);
        assert!(body.starts_with('[') && body.ends_with(']'), "{body}");
        assert!(h.requests() >= 4);
        h.shutdown();
    }

    #[test]
    fn unknown_path_is_404_and_bad_method_is_400() {
        let h = start();
        let (s, _) = http_get(h.addr(), "/nope").unwrap();
        assert_eq!(s, 404);
        // A non-GET request head.
        let mut stream = TcpStream::connect(h.addr()).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        assert!(out.contains(SERVER_MARKER), "marker header on every response");
    }

    #[test]
    fn health_flips_on_stall_and_recovers() {
        let h = start();
        h.set_healthy(false);
        let (s, body) = http_get(h.addr(), "/health").unwrap();
        assert_eq!((s, body.as_str()), (503, "stalled\n"));
        h.set_healthy(true);
        let (s, _) = http_get(h.addr(), "/health").unwrap();
        assert_eq!(s, 200);
    }

    #[test]
    fn stall_report_surfaces_in_alerts_and_health() {
        let h = start();
        h.note_stall(&crate::StallReport {
            thread: 3,
            waited_ns: 500_000_000,
            epoch: 1,
            holders: Vec::new(),
            waiting: 1,
            context: "test stall".into(),
        });
        let (s, _) = http_get(h.addr(), "/health").unwrap();
        assert_eq!(s, 503, "liveness alert must flip /health");
        let (_, body) = http_get(h.addr(), "/alerts").unwrap();
        assert!(body.contains("progress-stall"), "{body}");
        assert!(body.contains("test stall"), "{body}");
        assert!(!h.healthy());
    }

    #[test]
    fn query_strings_are_ignored() {
        let h = start();
        let (s, _) = http_get(h.addr(), "/metrics?ts=123").unwrap();
        assert_eq!(s, 200);
    }

    #[test]
    fn profile_endpoint_serves_json_and_folded_stacks() {
        let h = start();
        let (s, body) = http_get(h.addr(), "/profile").unwrap();
        assert_eq!(s, 200);
        assert!(body.contains(crate::PROFILE_MARKER), "{body}");
        assert!(body.contains("\"sites\":["), "{body}");
        assert!(body.contains("\"findings\":["), "{body}");
        // Folded variant is plain text (possibly empty when no site has
        // recorded waits) — it must not be the JSON document.
        let (s, folded) = http_get(h.addr(), "/profile?format=folded").unwrap();
        assert_eq!(s, 200);
        assert!(!folded.contains(crate::PROFILE_MARKER), "{folded}");
        let (_, metrics) = http_get(h.addr(), "/metrics").unwrap();
        assert!(
            metrics.contains("clof_obs_scrapes_total{endpoint=\"profile\"} 2"),
            "{metrics}"
        );
        h.shutdown();
    }

    #[test]
    fn graph_finding_flips_health_and_surfaces_in_alerts() {
        let h = start();
        h.note_graph_finding(&crate::GraphFinding::Deadlock {
            threads: vec![7, 8],
            sites: vec![0, 1],
        });
        let (s, _) = http_get(h.addr(), "/health").unwrap();
        assert_eq!(s, 503, "waits-for finding must flip /health");
        let (_, body) = http_get(h.addr(), "/alerts").unwrap();
        assert!(body.contains("waitgraph-deadlock"), "{body}");
        // A stall on a thread the graph already covers is absorbed: still
        // exactly one active alert for the incident.
        h.note_stall(&crate::StallReport {
            thread: 7,
            waited_ns: 500_000_000,
            epoch: 1,
            holders: Vec::new(),
            waiting: 1,
            context: "same incident".into(),
        });
        let (_, body) = http_get(h.addr(), "/alerts").unwrap();
        assert!(!body.contains("progress-stall"), "{body}");
        assert_eq!(body.matches("waitgraph-deadlock").count(), 1, "{body}");
        h.shutdown();
    }

    #[test]
    fn shutdown_joins_and_frees_the_port() {
        let h = start();
        let addr = h.addr();
        h.shutdown();
        // The port is released: a fresh bind to it succeeds (best-effort
        // check; another process could steal it, so only assert when the
        // bind works).
        if let Ok(l) = TcpListener::bind(addr) {
            drop(l);
        }
        // A connect now either fails or gets no HTTP answer.
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
            let _ = s.write_all(b"GET /health HTTP/1.1\r\n\r\n");
            let mut out = String::new();
            let _ = s.read_to_string(&mut out);
            assert!(!out.contains("HTTP/1.1 200"), "server must be gone: {out}");
        }
    }
}
