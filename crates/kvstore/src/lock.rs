//! The pluggable-lock layer: one mutex type, many lock algorithms.
//!
//! This is the library analogue of the paper's `LD_PRELOAD` interposition
//! (§5.1.2): the same storage engine runs under any lock by switching a
//! [`LockChoice`], without touching engine code.

use std::cell::UnsafeCell;
use std::sync::Arc;

#[cfg(feature = "adapt")]
use clof::{AdaptHandle, AdaptiveLock};
use clof::{ClofError, ClofParams, DynClofLock, DynHandle, FastClof, FastClofHandle, LockKind};
use clof_baselines::{CnaHandle, CnaLock, HmcsHandle, HmcsLock, ShflHandle, ShflLock};
use clof_topology::{CpuId, Hierarchy};

/// Which lock algorithm guards the store.
#[derive(Debug, Clone)]
pub enum LockChoice {
    /// A CLoF composition (innermost level first), paper notation e.g.
    /// `tkt-clh-tkt`.
    Clof(Vec<LockKind>),
    /// A CLoF composition behind a test-and-set fast path (the paper-§6
    /// extension).
    ClofFast(Vec<LockKind>),
    /// HMCS with the hierarchy's level count and threshold 128.
    Hmcs,
    /// CNA (two-level NUMA-aware).
    Cna,
    /// ShflLock (adapted; two-level NUMA-aware with TAS fast path).
    Shfl,
    /// A single NUMA-oblivious basic lock.
    Basic(LockKind),
    /// `std::sync::Mutex` (OS futex) — the "whatever libc gives you"
    /// baseline.
    Std,
}

enum LockImpl {
    Clof(Arc<DynClofLock>),
    #[cfg(feature = "adapt")]
    Adaptive(Arc<AdaptiveLock>),
    ClofFast(Arc<FastClof>),
    Hmcs(Arc<HmcsLock>),
    Cna(Arc<CnaLock>),
    Shfl(Arc<ShflLock>),
    Std(std::sync::Mutex<()>),
}

/// A mutex protecting store state `T` with any [`LockChoice`].
pub struct DbMutex<T: ?Sized> {
    lock: LockImpl,
    /// Set when a store operation panicked while holding the lock (the
    /// data may be mid-mutation). Kept at this layer so poisoning works
    /// uniformly across every [`LockChoice`], including ones whose raw
    /// lock carries no flag of its own.
    #[cfg(feature = "deadline")]
    poisoned: std::sync::atomic::AtomicBool,
    data: UnsafeCell<T>,
}

// SAFETY: All lock variants provide mutual exclusion over `data`.
unsafe impl<T: ?Sized + Send> Send for DbMutex<T> {}
// SAFETY: As above.
unsafe impl<T: ?Sized + Send> Sync for DbMutex<T> {}

impl<T> DbMutex<T> {
    /// Creates the mutex for a machine described by `hierarchy`.
    ///
    /// # Errors
    ///
    /// Propagates CLoF composition errors (wrong level count, unfair
    /// component).
    pub fn new(value: T, hierarchy: &Hierarchy, choice: &LockChoice) -> Result<Self, ClofError> {
        let lock = match choice {
            LockChoice::Clof(kinds) => {
                LockImpl::Clof(Arc::new(DynClofLock::build(hierarchy, kinds)?))
            }
            LockChoice::ClofFast(kinds) => LockImpl::ClofFast(FastClof::build(hierarchy, kinds)?),
            LockChoice::Basic(kind) => {
                let flat = Hierarchy::flat(hierarchy.ncpus()).expect("ncpus > 0");
                LockImpl::Clof(Arc::new(DynClofLock::build_with(
                    &flat,
                    &[*kind],
                    ClofParams::default(),
                    true,
                )?))
            }
            LockChoice::Hmcs => LockImpl::Hmcs(Arc::new(HmcsLock::new(hierarchy, 128))),
            LockChoice::Cna => LockImpl::Cna(Arc::new(CnaLock::new(hierarchy))),
            LockChoice::Shfl => LockImpl::Shfl(Arc::new(ShflLock::new(hierarchy))),
            LockChoice::Std => LockImpl::Std(std::sync::Mutex::new(())),
        };
        Ok(DbMutex {
            lock,
            #[cfg(feature = "deadline")]
            poisoned: std::sync::atomic::AtomicBool::new(false),
            data: UnsafeCell::new(value),
        })
    }

    /// Consumes the mutex and returns the inner value — the
    /// `Mutex::into_inner` recovery idiom: being able to consume the
    /// mutex proves no handle (and so no holder) remains, so after a
    /// poisoning panic the owner can extract the data, repair or
    /// discard it, and rebuild the store.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// Telemetry snapshot of the underlying lock, when it is one that
    /// records telemetry: the CLoF variants ([`LockChoice::Clof`],
    /// [`LockChoice::ClofFast`], [`LockChoice::Basic`]) return per-level
    /// counters and latency distributions; the baselines and
    /// [`LockChoice::Std`] return `None` — their internals are not
    /// instrumented, which is the point of comparing against them.
    #[cfg(feature = "obs")]
    pub fn stats(&self) -> Option<clof::obs::LockSnapshot> {
        match &self.lock {
            LockImpl::Clof(l) => Some(l.obs_snapshot()),
            #[cfg(feature = "adapt")]
            LockImpl::Adaptive(l) => Some(l.obs_snapshot()),
            LockImpl::ClofFast(l) => Some(l.obs_snapshot()),
            LockImpl::Hmcs(_) | LockImpl::Cna(_) | LockImpl::Shfl(_) | LockImpl::Std(_) => None,
        }
    }

    /// The contention-profiler site id of the underlying lock, for the
    /// instrumented CLoF variants (`None` for the baselines and `Std`,
    /// which register no site). Stable across adaptive hot-swaps.
    #[cfg(feature = "obs")]
    pub fn site_id(&self) -> Option<u32> {
        match &self.lock {
            LockImpl::Clof(l) => Some(l.site_id()),
            #[cfg(feature = "adapt")]
            LockImpl::Adaptive(l) => Some(l.site_id()),
            LockImpl::ClofFast(l) => Some(l.site_id()),
            LockImpl::Hmcs(_) | LockImpl::Cna(_) | LockImpl::Shfl(_) | LockImpl::Std(_) => None,
        }
    }

    /// The store lock's row in the process-global contention profile:
    /// wait/hold attribution, traffic, and the per-(level, node)
    /// breakdown. `None` for uninstrumented lock choices and when the
    /// site table was full at construction.
    #[cfg(feature = "obs")]
    pub fn profile(&self) -> Option<clof::obs::SiteProfile> {
        match &self.lock {
            LockImpl::Clof(l) => l.site_profile(),
            #[cfg(feature = "adapt")]
            LockImpl::Adaptive(l) => l.site_profile(),
            LockImpl::ClofFast(l) => l.site_profile(),
            LockImpl::Hmcs(_) | LockImpl::Cna(_) | LockImpl::Shfl(_) | LockImpl::Std(_) => None,
        }
    }

    /// Windowed telemetry: feeds the current [`Self::stats`] snapshot to
    /// `sampler` and returns the rates since the sampler's previous
    /// tick. `None` on the first tick (it only sets the baseline) and
    /// for lock choices that do not record telemetry.
    ///
    /// Keep one [`clof::obs::Sampler`] per observer; it is cumulative
    /// state, not lock state, so independent observers can sample the
    /// same store at different cadences.
    #[cfg(feature = "obs")]
    pub fn stats_window(&self, sampler: &mut clof::obs::Sampler) -> Option<clof::obs::WindowRates> {
        sampler.tick(self.stats()?)
    }

    /// Starts the zero-dependency telemetry server on `addr` (use
    /// `"127.0.0.1:0"` for an ephemeral port), scraping this store's
    /// lock: `GET /metrics`, `/snapshot`, `/health`, `/alerts`. The
    /// server lives until the returned handle is dropped; it holds its
    /// own `Arc` to the store, so the store outlives any in-flight
    /// scrape.
    ///
    /// # Errors
    ///
    /// A `String` describing either an uninstrumented lock choice (the
    /// baselines and `Std` record no telemetry — there is nothing to
    /// serve) or the bind failure.
    #[cfg(feature = "obs")]
    pub fn serve_stats(
        self: &Arc<Self>,
        addr: &str,
    ) -> Result<clof::obs::ServerHandle, String>
    where
        T: Send + 'static,
    {
        if self.stats().is_none() {
            return Err(
                "this lock choice records no telemetry (baseline or std lock); \
                 use a CLoF composition"
                    .to_string(),
            );
        }
        let store = Arc::clone(self);
        let snapshot: clof::obs::SnapshotFn = Arc::new(move || {
            store.stats().expect("instrumented choice checked above")
        });
        clof::obs::serve::serve(
            addr,
            snapshot,
            clof::obs::ServeConfig {
                rules: clof::obs::default_rules(1_000_000, 1_000_000),
                ..clof::obs::ServeConfig::default()
            },
        )
        .map_err(|e| format!("bind {addr}: {e}"))
    }

    /// Replaces a [`LockChoice::Clof`] lock with an adaptive wrapper
    /// holding the same composition, so the store's lock can be
    /// hot-swapped at run time via [`Self::adaptive`]. Call before
    /// wrapping the mutex in an [`Arc`] (existing handles would keep
    /// the old lock).
    ///
    /// # Errors
    ///
    /// [`ClofError::AdaptationUnsupported`] for every other lock choice
    /// — only the dynamic CLoF composition can migrate — plus ordinary
    /// composition errors if `hierarchy` does not match the original
    /// build.
    #[cfg(feature = "adapt")]
    pub fn enable_adaptation(self, hierarchy: &Hierarchy) -> Result<Self, ClofError> {
        let DbMutex {
            lock,
            #[cfg(feature = "deadline")]
            poisoned,
            data,
        } = self;
        let lock = match lock {
            LockImpl::Clof(l) => {
                LockImpl::Adaptive(Arc::new(AdaptiveLock::new(hierarchy, l.composition())?))
            }
            LockImpl::Adaptive(l) => LockImpl::Adaptive(l),
            other => {
                let choice = match other {
                    LockImpl::ClofFast(_) => "clof-fast",
                    LockImpl::Hmcs(_) => "hmcs",
                    LockImpl::Cna(_) => "cna",
                    LockImpl::Shfl(_) => "shfl",
                    LockImpl::Std(_) => "std",
                    LockImpl::Clof(_) | LockImpl::Adaptive(_) => unreachable!(),
                };
                return Err(ClofError::AdaptationUnsupported {
                    choice: choice.into(),
                });
            }
        };
        Ok(DbMutex {
            lock,
            #[cfg(feature = "deadline")]
            poisoned,
            data,
        })
    }

    /// The adaptive lock behind this mutex, if
    /// [`enable_adaptation`](Self::enable_adaptation) was applied —
    /// hand it to a controller to drive `swap_to`.
    #[cfg(feature = "adapt")]
    pub fn adaptive(&self) -> Option<&Arc<AdaptiveLock>> {
        match &self.lock {
            LockImpl::Adaptive(l) => Some(l),
            _ => None,
        }
    }

    /// A handle for a thread running on `cpu`.
    pub fn handle(self: &Arc<Self>, cpu: CpuId) -> DbHandle<T> {
        let inner = match &self.lock {
            LockImpl::Clof(l) => HandleImpl::Clof(l.handle(cpu)),
            #[cfg(feature = "adapt")]
            LockImpl::Adaptive(l) => HandleImpl::Adaptive(l.handle(cpu)),
            LockImpl::ClofFast(l) => HandleImpl::ClofFast(l.handle(cpu)),
            LockImpl::Hmcs(l) => HandleImpl::Hmcs(l.handle(cpu)),
            LockImpl::Cna(l) => HandleImpl::Cna(l.handle(cpu)),
            LockImpl::Shfl(l) => HandleImpl::Shfl(l.handle(cpu)),
            LockImpl::Std(_) => HandleImpl::Std,
        };
        DbHandle {
            mutex: Arc::clone(self),
            inner,
        }
    }
}

#[cfg(feature = "deadline")]
impl<T: ?Sized> DbMutex<T> {
    /// Whether a store operation panicked while holding the lock. Set
    /// by the release guard in [`DbHandle::with`] /
    /// [`DbHandle::try_with_until`]; surfaced as
    /// [`ClofError::Poisoned`] by the deadline-bounded entry points.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Clears the poison flag after the caller has repaired (or chosen
    /// to trust) the store state. For full extraction, use
    /// [`into_inner`](Self::into_inner) instead.
    pub fn clear_poison(&self) {
        self.poisoned
            .store(false, std::sync::atomic::Ordering::Release);
        match &self.lock {
            LockImpl::Clof(l) => l.clear_poison(),
            LockImpl::ClofFast(l) => l.clear_poison(),
            _ => {}
        }
    }

    fn mark_poisoned(&self) {
        self.poisoned
            .store(true, std::sync::atomic::Ordering::Release);
        // Mirror into the raw CLoF flag where one exists, so callers
        // holding the raw lock (and the poison telemetry counter) see
        // the event too.
        match &self.lock {
            LockImpl::Clof(l) => l.poison(),
            LockImpl::ClofFast(l) => l.poison(),
            _ => {}
        }
    }
}

enum HandleImpl {
    Clof(DynHandle),
    #[cfg(feature = "adapt")]
    Adaptive(AdaptHandle),
    ClofFast(FastClofHandle),
    Hmcs(HmcsHandle),
    Cna(CnaHandle),
    Shfl(ShflHandle),
    Std,
}

/// Per-thread handle on a [`DbMutex`].
pub struct DbHandle<T: ?Sized> {
    mutex: Arc<DbMutex<T>>,
    inner: HandleImpl,
}

/// Releases the store lock when dropped — on ordinary return *and* on
/// unwind out of the user closure, so a panicking store operation can
/// never strand waiters behind a dead holder. On the unwind path the
/// store is poisoned first (deadline builds), ordered before the
/// release edge the next acquirer synchronizes on.
struct OpGuard<'a, T: ?Sized> {
    inner: &'a mut HandleImpl,
    mutex: &'a DbMutex<T>,
    /// Held alive across the closure for the Std variant; its own drop
    /// is the release (and `std::sync::Mutex` self-poisons on panic).
    std_guard: Option<std::sync::MutexGuard<'a, ()>>,
}

impl<T: ?Sized> Drop for OpGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(feature = "deadline")]
        if std::thread::panicking() {
            self.mutex.mark_poisoned();
        }
        match &mut *self.inner {
            HandleImpl::Clof(h) => h.release(),
            #[cfg(feature = "adapt")]
            HandleImpl::Adaptive(h) => h.release(),
            HandleImpl::ClofFast(h) => h.release(),
            HandleImpl::Hmcs(h) => h.release(),
            HandleImpl::Cna(h) => h.release(),
            HandleImpl::Shfl(h) => h.release(),
            HandleImpl::Std => drop(self.std_guard.take()),
        }
    }
}

impl<T: ?Sized> DbHandle<T> {
    /// Runs `f` under the lock with exclusive access to the data.
    pub fn with<R>(&mut self, f: impl FnOnce(&mut T) -> R) -> R {
        let DbHandle { mutex, inner } = self;
        let mutex: &DbMutex<T> = mutex;
        let mut std_guard = None;
        match (&mut *inner, &mutex.lock) {
            (HandleImpl::Clof(h), _) => h.acquire(),
            #[cfg(feature = "adapt")]
            (HandleImpl::Adaptive(h), _) => h.acquire(),
            (HandleImpl::ClofFast(h), _) => h.acquire(),
            (HandleImpl::Hmcs(h), _) => h.acquire(),
            (HandleImpl::Cna(h), _) => h.acquire(),
            (HandleImpl::Shfl(h), _) => h.acquire(),
            (HandleImpl::Std, LockImpl::Std(m)) => {
                std_guard = Some(m.lock().expect("DbMutex poisoned"));
            }
            (HandleImpl::Std, _) => unreachable!("handle/lock variant mismatch"),
        }
        let guard = OpGuard {
            inner,
            mutex,
            std_guard,
        };
        // SAFETY: The matching lock is held until `guard` drops, which
        // happens after `f` on both the return and the unwind path.
        f(unsafe { &mut *guard.mutex.data.get() })
    }

    /// Deadline-bounded [`with`](Self::with): runs `f` under the lock
    /// only if it is acquired by `deadline`.
    ///
    /// # Errors
    ///
    /// [`ClofError::Timeout`] if the budget ran out (the attempt is
    /// fully unwound; the handle is immediately reusable),
    /// [`ClofError::Poisoned`] if a store operation panicked while
    /// holding the lock (checked before spending the budget and
    /// re-checked after winning), and [`ClofError::DeadlineUnsupported`]
    /// for lock choices without a bounded-wait protocol (the baselines
    /// and `Std` — their unmodified algorithms are the comparison
    /// point).
    #[cfg(feature = "deadline")]
    pub fn try_with_until<R>(
        &mut self,
        deadline: std::time::Instant,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, ClofError> {
        let DbHandle { mutex, inner } = self;
        let mutex: &DbMutex<T> = mutex;
        if mutex.is_poisoned() {
            return Err(ClofError::Poisoned);
        }
        let unsupported = |choice: &str| ClofError::DeadlineUnsupported {
            choice: choice.into(),
        };
        let won = match &mut *inner {
            HandleImpl::Clof(h) => h.try_acquire_until(deadline),
            #[cfg(feature = "adapt")]
            HandleImpl::Adaptive(h) => h.try_acquire_until(deadline),
            HandleImpl::ClofFast(h) => h.try_acquire_until(deadline),
            HandleImpl::Hmcs(_) => return Err(unsupported("hmcs")),
            HandleImpl::Cna(_) => return Err(unsupported("cna")),
            HandleImpl::Shfl(_) => return Err(unsupported("shfl")),
            HandleImpl::Std => return Err(unsupported("std")),
        };
        if !won {
            return Err(ClofError::Timeout);
        }
        let guard = OpGuard {
            inner,
            mutex,
            std_guard: None,
        };
        if mutex.is_poisoned() {
            // A panic landed between the pre-check and our win: the
            // guard's drop releases, and `f` never sees suspect data.
            return Err(ClofError::Poisoned);
        }
        // SAFETY: As in `with`.
        Ok(f(unsafe { &mut *guard.mutex.data.get() }))
    }

    /// [`try_with_until`](Self::try_with_until) with a relative budget
    /// measured from now.
    ///
    /// # Errors
    ///
    /// As [`try_with_until`](Self::try_with_until).
    #[cfg(feature = "deadline")]
    pub fn try_with_for<R>(
        &mut self,
        budget: std::time::Duration,
        f: impl FnOnce(&mut T) -> R,
    ) -> Result<R, ClofError> {
        self.try_with_until(std::time::Instant::now() + budget, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clof_topology::platforms;

    fn choices() -> Vec<LockChoice> {
        vec![
            LockChoice::Clof(vec![LockKind::Mcs, LockKind::Clh, LockKind::Ticket]),
            LockChoice::ClofFast(vec![LockKind::Mcs, LockKind::Clh, LockKind::Ticket]),
            LockChoice::Hmcs,
            LockChoice::Cna,
            LockChoice::Shfl,
            LockChoice::Basic(LockKind::Mcs),
            LockChoice::Basic(LockKind::Ttas),
            LockChoice::Std,
        ]
    }

    #[test]
    fn every_choice_counts_correctly() {
        let h = platforms::tiny();
        for choice in choices() {
            let m = Arc::new(DbMutex::new(0usize, &h, &choice).unwrap());
            let mut threads = Vec::new();
            for cpu in 0..8 {
                let mut handle = m.handle(cpu);
                threads.push(std::thread::spawn(move || {
                    for _ in 0..500 {
                        handle.with(|v| *v += 1);
                    }
                }));
            }
            for t in threads {
                t.join().unwrap();
            }
            let total = m.handle(0).with(|v| *v);
            assert_eq!(total, 4000, "{choice:?}");
        }
    }

    #[test]
    fn clof_choice_validates_levels() {
        let h = platforms::tiny();
        let err = DbMutex::new((), &h, &LockChoice::Clof(vec![LockKind::Mcs]));
        assert!(err.is_err());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn stats_window_reports_rates_between_ticks() {
        let h = platforms::tiny();
        let m = Arc::new(
            DbMutex::new(
                0usize,
                &h,
                &LockChoice::Clof(vec![LockKind::Mcs, LockKind::Clh, LockKind::Ticket]),
            )
            .unwrap(),
        );
        let mut sampler = clof::obs::Sampler::new();
        // First tick is baseline only.
        assert!(m.stats_window(&mut sampler).is_none());
        let mut handle = m.handle(0);
        for _ in 0..100 {
            handle.with(|v| *v += 1);
        }
        let rates = m.stats_window(&mut sampler).expect("second tick");
        assert_eq!(rates.delta.total_acquires(), 100);
        assert!(rates.acquires_per_sec > 0.0);
        // Uninstrumented choices never produce a window.
        let std = Arc::new(DbMutex::new(0usize, &h, &LockChoice::Std).unwrap());
        let mut s2 = clof::obs::Sampler::new();
        assert!(std.stats_window(&mut s2).is_none());
        assert!(std.stats_window(&mut s2).is_none());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn profile_attributes_store_traffic_to_a_registered_site() {
        let h = platforms::tiny();
        for choice in [
            LockChoice::Clof(vec![LockKind::Mcs, LockKind::Clh, LockKind::Ticket]),
            LockChoice::ClofFast(vec![LockKind::Mcs, LockKind::Clh, LockKind::Ticket]),
        ] {
            let m = Arc::new(DbMutex::new(0usize, &h, &choice).unwrap());
            let id = m.site_id().expect("instrumented store registers a site");
            let before = m.profile().expect("site row exists");
            let mut handle = m.handle(0);
            for _ in 0..100 {
                handle.with(|v| *v += 1);
            }
            let after = m.profile().expect("site row persists");
            assert_eq!(after.id, id, "{choice:?}");
            assert_eq!(
                after.acquires - before.acquires,
                100,
                "{choice:?}: every store op is attributed to the site"
            );
            assert!(
                after.hold_ns >= before.hold_ns,
                "{choice:?}: hold attribution is monotone"
            );
        }
        // Uninstrumented choices expose no site and no profile.
        let std_store = DbMutex::new(0usize, &h, &LockChoice::Std).unwrap();
        assert!(std_store.site_id().is_none());
        assert!(std_store.profile().is_none());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn serve_stats_scrapes_live_lock_telemetry() {
        let h = platforms::tiny();
        let m = Arc::new(
            DbMutex::new(
                0usize,
                &h,
                &LockChoice::Clof(vec![LockKind::Mcs, LockKind::Clh, LockKind::Ticket]),
            )
            .unwrap(),
        );
        let mut handle = m.handle(0);
        for _ in 0..50 {
            handle.with(|v| *v += 1);
        }
        let server = m.serve_stats("127.0.0.1:0").expect("ephemeral bind");
        let (status, body) = clof::obs::http_get(server.addr(), "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("clof_acquires_total{lock=\"mcs-clh-tkt\",level=\"0\"} 50"),
            "{body}"
        );
        let (status, body) = clof::obs::http_get(server.addr(), "/snapshot").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"lock\":\"mcs-clh-tkt\""), "{body}");
        let (status, _) = clof::obs::http_get(server.addr(), "/health").unwrap();
        assert_eq!(status, 200);
        server.shutdown();
        // Uninstrumented choices refuse to serve rather than lie.
        let std_store = Arc::new(DbMutex::new(0usize, &h, &LockChoice::Std).unwrap());
        assert!(std_store.serve_stats("127.0.0.1:0").is_err());
    }

    #[cfg(feature = "adapt")]
    #[test]
    fn adaptive_store_counts_across_hot_swaps() {
        let h = platforms::tiny();
        let m = DbMutex::new(
            0usize,
            &h,
            &LockChoice::Clof(vec![LockKind::Mcs, LockKind::Clh, LockKind::Ticket]),
        )
        .unwrap()
        .enable_adaptation(&h)
        .unwrap();
        let m = Arc::new(m);
        let adaptive = Arc::clone(m.adaptive().expect("adaptation enabled"));
        let mut threads = Vec::new();
        for cpu in 0..8 {
            let mut handle = m.handle(cpu);
            threads.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    handle.with(|v| *v += 1);
                }
            }));
        }
        // Migrate the live store's lock mid-increment, twice.
        adaptive
            .swap_to(&[LockKind::Ticket, LockKind::Ticket, LockKind::Ticket])
            .unwrap();
        adaptive
            .swap_to(&[LockKind::Mcs, LockKind::Clh, LockKind::Ticket])
            .unwrap();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.handle(0).with(|v| *v), 4000);
        assert_eq!(adaptive.migration_stats().swaps, 2);
    }

    #[cfg(feature = "adapt")]
    #[test]
    fn adaptation_rejects_non_clof_choices() {
        let h = platforms::tiny();
        for choice in [LockChoice::Hmcs, LockChoice::Std, LockChoice::Shfl] {
            let res = DbMutex::new((), &h, &choice).unwrap().enable_adaptation(&h);
            match res {
                Err(ClofError::AdaptationUnsupported { .. }) => {}
                Err(other) => panic!("{choice:?}: wrong error {other}"),
                Ok(_) => panic!("{choice:?}: adaptation unexpectedly accepted"),
            }
        }
    }

    #[cfg(feature = "deadline")]
    #[test]
    fn try_with_times_out_then_recovers() {
        use std::time::{Duration, Instant};
        let h = platforms::tiny();
        for choice in [
            LockChoice::Clof(vec![LockKind::Mcs, LockKind::Clh, LockKind::Ticket]),
            LockChoice::ClofFast(vec![LockKind::Mcs, LockKind::Clh, LockKind::Ticket]),
        ] {
            let m = Arc::new(DbMutex::new(0usize, &h, &choice).unwrap());
            let hold = Arc::new(std::sync::atomic::AtomicBool::new(true));
            let entered = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let holder = {
                let m = Arc::clone(&m);
                let hold = Arc::clone(&hold);
                let entered = Arc::clone(&entered);
                std::thread::spawn(move || {
                    m.handle(0).with(|_| {
                        entered.store(true, std::sync::atomic::Ordering::Release);
                        while hold.load(std::sync::atomic::Ordering::Acquire) {
                            std::hint::spin_loop();
                        }
                    })
                })
            };
            while !entered.load(std::sync::atomic::Ordering::Acquire) {
                std::thread::yield_now();
            }
            let mut waiter = m.handle(2);
            let start = Instant::now();
            assert!(matches!(
                waiter.try_with_until(start + Duration::from_millis(40), |_| ()),
                Err(ClofError::Timeout)
            ));
            assert!(start.elapsed() < Duration::from_secs(5), "{choice:?}");
            hold.store(false, std::sync::atomic::Ordering::Release);
            holder.join().unwrap();
            let got = waiter
                .try_with_for(Duration::from_secs(10), |v| {
                    *v += 1;
                    *v
                })
                .expect("uncontended after release");
            assert_eq!(got, 1, "{choice:?}");
        }
    }

    #[cfg(feature = "deadline")]
    #[test]
    fn baselines_report_deadline_unsupported() {
        use std::time::Duration;
        let h = platforms::tiny();
        for choice in [LockChoice::Hmcs, LockChoice::Cna, LockChoice::Shfl, LockChoice::Std] {
            let m = Arc::new(DbMutex::new((), &h, &choice).unwrap());
            match m.handle(0).try_with_for(Duration::from_millis(1), |_| ()) {
                Err(ClofError::DeadlineUnsupported { .. }) => {}
                other => panic!("{choice:?}: expected DeadlineUnsupported, got {other:?}"),
            }
        }
    }

    #[cfg(feature = "deadline")]
    #[test]
    fn panicking_store_op_poisons_but_never_strands_waiters() {
        use std::time::Duration;
        let h = platforms::tiny();
        let m = Arc::new(
            DbMutex::new(
                vec![1u8],
                &h,
                &LockChoice::Clof(vec![LockKind::Mcs, LockKind::Clh, LockKind::Ticket]),
            )
            .unwrap(),
        );
        let panicker = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                m.handle(1).with(|v| {
                    v.clear();
                    panic!("die mid-mutation");
                })
            })
        };
        assert!(panicker.join().is_err());
        assert!(m.is_poisoned());
        // The release guard ran on the unwind path: a *blocking* store
        // op completes instead of hanging on the dead holder...
        assert_eq!(m.handle(3).with(|v| v.len()), 0);
        // ...and the bounded entry point reports the poisoning.
        let mut handle = m.handle(3);
        assert!(matches!(
            handle.try_with_for(Duration::from_secs(10), |_| ()),
            Err(ClofError::Poisoned)
        ));
        // Recovery path 1: clear and continue in place.
        m.clear_poison();
        handle
            .try_with_for(Duration::from_secs(10), |v| v.push(9))
            .expect("cleared poison unlocks the store");
        // Recovery path 2: consume the mutex and extract the data.
        drop(handle);
        let m = Arc::try_unwrap(m).ok().expect("all handles dropped");
        assert_eq!(m.into_inner(), vec![9]);
    }

    #[test]
    fn with_returns_closure_value() {
        let h = platforms::tiny();
        let m = Arc::new(DbMutex::new(41, &h, &LockChoice::Std).unwrap());
        let got = m.handle(0).with(|v| {
            *v += 1;
            *v
        });
        assert_eq!(got, 42);
    }
}
