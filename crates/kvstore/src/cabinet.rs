//! CabinetDb: a hash-bucket store in the Kyoto Cabinet HashDB mould.
//!
//! Kyoto Cabinet's in-memory HashDB is a chained hash table whose
//! operations serialize on the database lock — the paper uses it as the
//! cross-validation workload (§5.1.2). This stand-in reproduces that
//! contention profile: a fixed bucket array with separate chaining, all
//! access under one pluggable [`DbMutex`].

use std::sync::Arc;

use clof::ClofError;
use clof_topology::{CpuId, Hierarchy};

use crate::lock::{DbHandle, DbMutex, LockChoice};

/// FNV-1a, the flavour of multiplicative hashing Kyoto-style stores use.
fn fnv1a(key: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

struct Inner {
    buckets: Vec<Vec<(Vec<u8>, Vec<u8>)>>,
    len: usize,
}

impl Inner {
    fn bucket(&self, key: &[u8]) -> usize {
        (fnv1a(key) % self.buckets.len() as u64) as usize
    }

    fn set(&mut self, key: Vec<u8>, value: Vec<u8>) {
        let b = self.bucket(&key);
        let chain = &mut self.buckets[b];
        for entry in chain.iter_mut() {
            if entry.0 == key {
                entry.1 = value;
                return;
            }
        }
        chain.push((key, value));
        self.len += 1;
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let b = self.bucket(key);
        self.buckets[b]
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    }

    fn remove(&mut self, key: &[u8]) -> bool {
        let b = self.bucket(key);
        let chain = &mut self.buckets[b];
        if let Some(pos) = chain.iter().position(|(k, _)| k == key) {
            chain.swap_remove(pos);
            self.len -= 1;
            true
        } else {
            false
        }
    }
}

/// The Kyoto Cabinet stand-in store.
///
/// # Examples
///
/// ```
/// use clof_kvstore::{CabinetDb, LockChoice};
/// use clof_topology::platforms;
///
/// let db = CabinetDb::open(&platforms::tiny(), &LockChoice::Hmcs, 1024).unwrap();
/// let mut handle = db.handle(0);
/// handle.set(b"k".to_vec(), b"v".to_vec());
/// assert_eq!(handle.get(b"k"), Some(b"v".to_vec()));
/// ```
pub struct CabinetDb {
    inner: Arc<DbMutex<Inner>>,
}

impl CabinetDb {
    /// Opens an empty store with `buckets` hash buckets.
    ///
    /// # Errors
    ///
    /// Propagates lock-composition errors.
    pub fn open(
        hierarchy: &Hierarchy,
        choice: &LockChoice,
        buckets: usize,
    ) -> Result<Self, ClofError> {
        Ok(CabinetDb {
            inner: Arc::new(DbMutex::new(
                Inner {
                    buckets: vec![Vec::new(); buckets.max(1)],
                    len: 0,
                },
                hierarchy,
                choice,
            )?),
        })
    }

    /// A store handle for a thread running on `cpu`.
    pub fn handle(&self, cpu: CpuId) -> CabinetHandle {
        CabinetHandle {
            handle: self.inner.handle(cpu),
        }
    }

    /// Telemetry snapshot of the store's lock (`None` for lock choices
    /// that do not record telemetry); see [`DbMutex::stats`].
    #[cfg(feature = "obs")]
    pub fn stats(&self) -> Option<clof::obs::LockSnapshot> {
        self.inner.stats()
    }

    /// Windowed lock-telemetry rates since `sampler`'s previous tick;
    /// see [`DbMutex::stats_window`].
    #[cfg(feature = "obs")]
    pub fn stats_window(&self, sampler: &mut clof::obs::Sampler) -> Option<clof::obs::WindowRates> {
        self.inner.stats_window(sampler)
    }
}

/// Per-thread handle on a [`CabinetDb`].
pub struct CabinetHandle {
    handle: DbHandle<Inner>,
}

impl CabinetHandle {
    /// Inserts or overwrites a record.
    pub fn set(&mut self, key: Vec<u8>, value: Vec<u8>) {
        self.handle.with(|db| db.set(key, value));
    }

    /// Retrieves a record.
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.handle.with(|db| db.get(key))
    }

    /// Removes a record; returns whether it existed.
    pub fn remove(&mut self, key: &[u8]) -> bool {
        self.handle.with(|db| db.remove(key))
    }

    /// Number of records.
    pub fn len(&mut self) -> usize {
        self.handle.with(|db| db.len)
    }

    /// Whether the store is empty.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// The Kyoto-style mixed benchmark: `ops` operations, 80% get / 20%
    /// set, over `key_space` keys. Returns the number of successful gets.
    pub fn mixed_workload(&mut self, ops: usize, key_space: usize, seed: u64) -> usize {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut hits = 0;
        for _ in 0..ops {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            let key = (r % key_space.max(1) as u64).to_be_bytes().to_vec();
            if r % 5 == 0 {
                self.set(key, vec![0xCD; 24]);
            } else if self.get(&key).is_some() {
                hits += 1;
            }
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clof::LockKind;
    use clof_topology::platforms;

    fn open_tiny() -> CabinetDb {
        CabinetDb::open(
            &platforms::tiny(),
            &LockChoice::Clof(vec![LockKind::Ticket, LockKind::Clh, LockKind::Ticket]),
            64,
        )
        .unwrap()
    }

    #[test]
    fn set_get_remove_roundtrip() {
        let db = open_tiny();
        let mut h = db.handle(0);
        assert!(h.is_empty());
        h.set(b"a".to_vec(), b"1".to_vec());
        h.set(b"b".to_vec(), b"2".to_vec());
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(b"a"), Some(b"1".to_vec()));
        assert!(h.remove(b"a"));
        assert!(!h.remove(b"a"));
        assert_eq!(h.get(b"a"), None);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn overwrite_keeps_len() {
        let db = open_tiny();
        let mut h = db.handle(0);
        h.set(b"k".to_vec(), b"1".to_vec());
        h.set(b"k".to_vec(), b"2".to_vec());
        assert_eq!(h.len(), 1);
        assert_eq!(h.get(b"k"), Some(b"2".to_vec()));
    }

    #[test]
    fn chaining_survives_collisions() {
        // One bucket ⇒ every key collides; the chain must still work.
        let db = CabinetDb::open(&platforms::tiny(), &LockChoice::Std, 1).unwrap();
        let mut h = db.handle(0);
        for i in 0..100u32 {
            h.set(i.to_be_bytes().to_vec(), vec![i as u8]);
        }
        assert_eq!(h.len(), 100);
        for i in 0..100u32 {
            assert_eq!(h.get(&i.to_be_bytes()), Some(vec![i as u8]));
        }
    }

    #[test]
    fn mixed_workload_deterministic_and_progressing() {
        let db = open_tiny();
        let mut h = db.handle(0);
        for i in 0..256u64 {
            h.set(i.to_be_bytes().to_vec(), vec![1]);
        }
        let a = h.mixed_workload(1000, 256, 9);
        assert!(a > 0);
        // Note: the workload mutates (sets), so back-to-back runs are not
        // compared; determinism is exercised across two fresh stores.
        let db2 = open_tiny();
        let mut h2 = db2.handle(0);
        for i in 0..256u64 {
            h2.set(i.to_be_bytes().to_vec(), vec![1]);
        }
        assert_eq!(h2.mixed_workload(1000, 256, 9), a);
    }

    #[test]
    fn concurrent_mixed_workload_under_hmcs() {
        let db = Arc::new(CabinetDb::open(&platforms::tiny(), &LockChoice::Hmcs, 128).unwrap());
        {
            let mut h = db.handle(0);
            for i in 0..512u64 {
                h.set(i.to_be_bytes().to_vec(), vec![2]);
            }
        }
        let mut threads = Vec::new();
        for cpu in 0..8 {
            let db = Arc::clone(&db);
            threads.push(std::thread::spawn(move || {
                db.handle(cpu).mixed_workload(500, 512, cpu as u64)
            }));
        }
        for t in threads {
            assert!(t.join().unwrap() > 0);
        }
    }
}
