//! MiniDb: an LSM-flavoured ordered key-value store (LevelDB stand-in).
//!
//! Like LevelDB, reads and writes go through a *memtable* (mutable,
//! ordered) backed by immutable sorted *runs*; the memtable is flushed
//! when full, and runs are merge-compacted when too numerous. Unlike
//! LevelDB there is no disk — runs live in memory — because the paper's
//! `readrandom` benchmark measures lock hand-off around the store's
//! shared state, not I/O. All engine state sits behind one [`DbMutex`],
//! exactly the contention profile the paper exercises.

use std::collections::BTreeMap;
use std::sync::Arc;

use clof::ClofError;
use clof_topology::{CpuId, Hierarchy};

use crate::lock::{DbHandle, DbMutex, LockChoice};

/// Tuning knobs for [`MiniDb`].
#[derive(Debug, Clone, Copy)]
pub struct MiniDbOptions {
    /// Entries in the memtable before it is flushed to a run.
    pub memtable_limit: usize,
    /// Runs allowed before a merge compaction.
    pub max_runs: usize,
}

impl Default for MiniDbOptions {
    fn default() -> Self {
        MiniDbOptions {
            memtable_limit: 4096,
            max_runs: 8,
        }
    }
}

/// A value or a deletion marker.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Slot {
    Value(Vec<u8>),
    Tombstone,
}

/// Engine state (guarded by the pluggable lock).
#[derive(Debug)]
struct Inner {
    memtable: BTreeMap<Vec<u8>, Slot>,
    /// Immutable sorted runs, newest first.
    runs: Vec<Vec<(Vec<u8>, Slot)>>,
    options: MiniDbOptions,
    flushes: u64,
    compactions: u64,
}

impl Inner {
    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        if let Some(slot) = self.memtable.get(key) {
            return match slot {
                Slot::Value(v) => Some(v.clone()),
                Slot::Tombstone => None,
            };
        }
        for run in &self.runs {
            if let Ok(idx) = run.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                return match &run[idx].1 {
                    Slot::Value(v) => Some(v.clone()),
                    Slot::Tombstone => None,
                };
            }
        }
        None
    }

    fn put(&mut self, key: Vec<u8>, slot: Slot) {
        self.memtable.insert(key, slot);
        if self.memtable.len() >= self.options.memtable_limit {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let run: Vec<(Vec<u8>, Slot)> = std::mem::take(&mut self.memtable).into_iter().collect();
        self.runs.insert(0, run);
        self.flushes += 1;
        if self.runs.len() > self.options.max_runs {
            self.compact();
        }
    }

    /// Merges all runs into one, newest value wins, dropping tombstones.
    fn compact(&mut self) {
        let mut merged: BTreeMap<Vec<u8>, Slot> = BTreeMap::new();
        // Oldest first so newer runs overwrite.
        for run in self.runs.drain(..).rev() {
            for (k, s) in run {
                merged.insert(k, s);
            }
        }
        let merged: Vec<(Vec<u8>, Slot)> = merged
            .into_iter()
            .filter(|(_, s)| *s != Slot::Tombstone)
            .collect();
        if !merged.is_empty() {
            self.runs.push(merged);
        }
        self.compactions += 1;
    }

    fn len_estimate(&self) -> usize {
        self.memtable.len() + self.runs.iter().map(Vec::len).sum::<usize>()
    }

    /// Ordered scan of `[start, end)`, newest value per key, tombstones
    /// elided — the LSM merge over memtable + runs.
    fn scan(&self, start: &[u8], end: &[u8], limit: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut merged: BTreeMap<Vec<u8>, Slot> = BTreeMap::new();
        // Oldest runs first so newer sources overwrite.
        for run in self.runs.iter().rev() {
            let from = run.partition_point(|(k, _)| k.as_slice() < start);
            for (k, slot) in run[from..]
                .iter()
                .take_while(|(k, _)| k.as_slice() < end)
            {
                merged.insert(k.clone(), slot.clone());
            }
        }
        for (k, slot) in self
            .memtable
            .range::<[u8], _>((std::ops::Bound::Included(start), std::ops::Bound::Excluded(end)))
        {
            merged.insert(k.clone(), slot.clone());
        }
        merged
            .into_iter()
            .filter_map(|(k, slot)| match slot {
                Slot::Value(v) => Some((k, v)),
                Slot::Tombstone => None,
            })
            .take(limit)
            .collect()
    }
}

/// The LevelDB stand-in store.
///
/// # Examples
///
/// ```
/// use clof::LockKind;
/// use clof_kvstore::{LockChoice, MiniDb, MiniDbOptions};
/// use clof_topology::platforms;
///
/// let hierarchy = platforms::tiny();
/// let db = MiniDb::open(
///     &hierarchy,
///     &LockChoice::Clof(vec![LockKind::Mcs, LockKind::Clh, LockKind::Ticket]),
///     MiniDbOptions::default(),
/// )
/// .unwrap();
/// let mut handle = db.handle(0);
/// handle.put(b"k".to_vec(), b"v".to_vec());
/// assert_eq!(handle.get(b"k"), Some(b"v".to_vec()));
/// ```
pub struct MiniDb {
    inner: Arc<DbMutex<Inner>>,
}

impl MiniDb {
    /// Opens an empty store guarded by `choice` on `hierarchy`.
    ///
    /// # Errors
    ///
    /// Propagates lock-composition errors.
    pub fn open(
        hierarchy: &Hierarchy,
        choice: &LockChoice,
        options: MiniDbOptions,
    ) -> Result<Self, ClofError> {
        let inner = Inner {
            memtable: BTreeMap::new(),
            runs: Vec::new(),
            options,
            flushes: 0,
            compactions: 0,
        };
        Ok(MiniDb {
            inner: Arc::new(DbMutex::new(inner, hierarchy, choice)?),
        })
    }

    /// A store handle for a thread running on `cpu`.
    pub fn handle(&self, cpu: CpuId) -> MiniDbHandle {
        MiniDbHandle {
            handle: self.inner.handle(cpu),
        }
    }

    /// Telemetry snapshot of the store's lock (`None` for lock choices
    /// that do not record telemetry); see [`DbMutex::stats`].
    #[cfg(feature = "obs")]
    pub fn stats(&self) -> Option<clof::obs::LockSnapshot> {
        self.inner.stats()
    }

    /// Windowed lock-telemetry rates since `sampler`'s previous tick;
    /// see [`DbMutex::stats_window`].
    #[cfg(feature = "obs")]
    pub fn stats_window(&self, sampler: &mut clof::obs::Sampler) -> Option<clof::obs::WindowRates> {
        self.inner.stats_window(sampler)
    }
}

/// Per-thread handle on a [`MiniDb`].
pub struct MiniDbHandle {
    handle: DbHandle<Inner>,
}

impl MiniDbHandle {
    /// Inserts or overwrites a key.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) {
        self.handle.with(|db| db.put(key, Slot::Value(value)));
    }

    /// Looks a key up.
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.handle.with(|db| db.get(key))
    }

    /// Deletes a key (tombstone).
    pub fn delete(&mut self, key: Vec<u8>) {
        self.handle.with(|db| db.put(key, Slot::Tombstone));
    }

    /// Ordered range scan `[start, end)` (up to `limit` entries): the
    /// newest value per key, deletions elided — LevelDB's iterator
    /// semantics over memtable and runs.
    pub fn scan(&mut self, start: &[u8], end: &[u8], limit: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.handle.with(|db| db.scan(start, end, limit))
    }

    /// Number of entries across memtable and runs (over-counts
    /// overwritten keys until compaction, like LevelDB's table counts).
    pub fn len_estimate(&mut self) -> usize {
        self.handle.with(|db| db.len_estimate())
    }

    /// `(flushes, compactions)` so far.
    pub fn maintenance_counters(&mut self) -> (u64, u64) {
        self.handle.with(|db| (db.flushes, db.compactions))
    }

    /// Loads `n` sequential keys (`fillseq` in LevelDB's benchmark
    /// terms): key = 8-byte big-endian index, value = 16 bytes.
    pub fn fill_seq(&mut self, n: usize) {
        for i in 0..n {
            let key = (i as u64).to_be_bytes().to_vec();
            self.put(key, vec![0xAB; 16]);
        }
    }

    /// LevelDB's `readrandom`: `reads` random point lookups over a key
    /// space of `key_space` sequential keys; returns the number found.
    /// Deterministic for a given `seed`.
    pub fn read_random(&mut self, reads: usize, key_space: usize, seed: u64) -> usize {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut found = 0;
        for _ in 0..reads {
            // xorshift64*.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            let idx = (r % key_space.max(1) as u64).to_be_bytes().to_vec();
            if self.get(&idx).is_some() {
                found += 1;
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clof::LockKind;
    use clof_topology::platforms;

    fn open_tiny() -> MiniDb {
        MiniDb::open(
            &platforms::tiny(),
            &LockChoice::Clof(vec![LockKind::Mcs, LockKind::Clh, LockKind::Ticket]),
            MiniDbOptions {
                memtable_limit: 16,
                max_runs: 3,
            },
        )
        .unwrap()
    }

    #[test]
    fn put_get_roundtrip() {
        let db = open_tiny();
        let mut h = db.handle(0);
        h.put(b"alpha".to_vec(), b"1".to_vec());
        h.put(b"beta".to_vec(), b"2".to_vec());
        assert_eq!(h.get(b"alpha"), Some(b"1".to_vec()));
        assert_eq!(h.get(b"beta"), Some(b"2".to_vec()));
        assert_eq!(h.get(b"gamma"), None);
    }

    #[test]
    fn overwrite_returns_latest() {
        let db = open_tiny();
        let mut h = db.handle(0);
        for i in 0..100u32 {
            h.put(b"k".to_vec(), i.to_be_bytes().to_vec());
        }
        assert_eq!(h.get(b"k"), Some(99u32.to_be_bytes().to_vec()));
    }

    #[test]
    fn delete_shadows_older_values_across_flushes() {
        let db = open_tiny();
        let mut h = db.handle(0);
        h.put(b"k".to_vec(), b"v".to_vec());
        // Force the value into a run.
        for i in 0..40u32 {
            h.put(format!("fill{i}").into_bytes(), vec![0]);
        }
        h.delete(b"k".to_vec());
        assert_eq!(h.get(b"k"), None);
        // Push the tombstone through a compaction too.
        for i in 0..200u32 {
            h.put(format!("more{i}").into_bytes(), vec![0]);
        }
        assert_eq!(h.get(b"k"), None);
    }

    #[test]
    fn flush_and_compaction_fire() {
        let db = open_tiny();
        let mut h = db.handle(0);
        h.fill_seq(200);
        let (flushes, compactions) = h.maintenance_counters();
        assert!(flushes >= 10, "flushes {flushes}");
        assert!(compactions >= 1, "compactions {compactions}");
        // Data survives maintenance.
        for i in [0u64, 99, 199] {
            assert!(h.get(&i.to_be_bytes()).is_some(), "key {i}");
        }
    }

    #[test]
    fn scan_merges_memtable_and_runs() {
        let db = open_tiny();
        let mut h = db.handle(0);
        // Force some keys into runs, keep others in the memtable.
        h.fill_seq(64); // flushes at 16-entry memtable limit
        h.put(5u64.to_be_bytes().to_vec(), b"updated".to_vec());
        h.delete(6u64.to_be_bytes().to_vec());
        let got = h.scan(&4u64.to_be_bytes(), &8u64.to_be_bytes(), 100);
        let keys: Vec<u64> = got
            .iter()
            .map(|(k, _)| u64::from_be_bytes(k.as_slice().try_into().unwrap()))
            .collect();
        assert_eq!(keys, vec![4, 5, 7]); // 6 deleted
        assert_eq!(got[1].1, b"updated".to_vec()); // newest wins
    }

    #[test]
    fn scan_respects_limit_and_order() {
        let db = open_tiny();
        let mut h = db.handle(0);
        h.fill_seq(100);
        let got = h.scan(&10u64.to_be_bytes(), &90u64.to_be_bytes(), 5);
        assert_eq!(got.len(), 5);
        let keys: Vec<u64> = got
            .iter()
            .map(|(k, _)| u64::from_be_bytes(k.as_slice().try_into().unwrap()))
            .collect();
        assert_eq!(keys, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn scan_empty_range() {
        let db = open_tiny();
        let mut h = db.handle(0);
        h.fill_seq(10);
        assert!(h.scan(b"zzz", b"zzzz", 10).is_empty());
        assert!(h.scan(&5u64.to_be_bytes(), &5u64.to_be_bytes(), 10).is_empty());
    }

    #[test]
    fn read_random_finds_loaded_keys() {
        let db = open_tiny();
        let mut h = db.handle(0);
        h.fill_seq(500);
        let found = h.read_random(200, 500, 42);
        assert_eq!(found, 200); // all keys in range exist
        let found = h.read_random(200, 1000, 42);
        assert!(found < 200); // half the space is unpopulated
    }

    #[test]
    fn read_random_is_deterministic() {
        let db = open_tiny();
        let mut h = db.handle(0);
        h.fill_seq(100);
        assert_eq!(
            h.read_random(100, 200, 7),
            h.read_random(100, 200, 7)
        );
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let db = Arc::new(open_tiny());
        db.handle(0).fill_seq(300);
        let mut threads = Vec::new();
        for cpu in 0..8 {
            let db = Arc::clone(&db);
            threads.push(std::thread::spawn(move || {
                let mut h = db.handle(cpu);
                if cpu % 2 == 0 {
                    h.read_random(300, 300, cpu as u64)
                } else {
                    for i in 0..100usize {
                        h.put(
                            format!("w{cpu}-{i}").into_bytes(),
                            vec![cpu as u8],
                        );
                    }
                    100
                }
            }));
        }
        for t in threads {
            assert!(t.join().unwrap() > 0);
        }
        // Readers on even CPUs found everything; writers' data is there.
        let mut h = db.handle(0);
        assert_eq!(h.get(b"w1-99"), Some(vec![1]));
    }

    mod props {
        use super::*;
        use clof_testkit::gen::{any_u8, one_of, vec_of, zip, Gen};
        use clof_testkit::{props, tk_assert_eq, Config};

        #[derive(Debug, Clone)]
        enum Op {
            Put(u8, u8),
            Delete(u8),
            Get(u8),
            Scan(u8, u8),
        }

        fn op() -> Gen<Op> {
            one_of(vec![
                zip(any_u8(), any_u8()).map(|(k, v)| Op::Put(k, v)),
                any_u8().map(Op::Delete),
                any_u8().map(Op::Get),
                zip(any_u8(), any_u8()).map(|(a, b)| Op::Scan(a.min(b), a.max(b))),
            ])
        }

        props! {
            config: Config::with_cases(32);

            /// MiniDb behaves exactly like a `BTreeMap` reference model
            /// under arbitrary operation sequences, across flushes and
            /// compactions (tiny memtable forces constant maintenance).
            fn matches_btreemap_model(ops in vec_of(op(), 1, 120)) {
                let db = MiniDb::open(
                    &platforms::tiny(),
                    &LockChoice::Clof(vec![
                        LockKind::Ticket,
                        LockKind::Ticket,
                        LockKind::Ticket,
                    ]),
                    MiniDbOptions { memtable_limit: 4, max_runs: 2 },
                )
                .unwrap();
                let mut h = db.handle(0);
                let mut model: std::collections::BTreeMap<Vec<u8>, Vec<u8>> =
                    std::collections::BTreeMap::new();
                for op in ops {
                    match op {
                        Op::Put(k, v) => {
                            h.put(vec![k], vec![v]);
                            model.insert(vec![k], vec![v]);
                        }
                        Op::Delete(k) => {
                            h.delete(vec![k]);
                            model.remove(&vec![k]);
                        }
                        Op::Get(k) => {
                            tk_assert_eq!(h.get(&[k]), model.get(&vec![k]).cloned());
                        }
                        Op::Scan(a, b) => {
                            let got = h.scan(&[a], &[b], usize::MAX);
                            let want: Vec<(Vec<u8>, Vec<u8>)> = model
                                .range(vec![a]..vec![b])
                                .map(|(k, v)| (k.clone(), v.clone()))
                                .collect();
                            tk_assert_eq!(got, want);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn works_under_every_lock_choice() {
        let h = platforms::tiny();
        for choice in [
            LockChoice::Hmcs,
            LockChoice::Cna,
            LockChoice::Shfl,
            LockChoice::Std,
            LockChoice::Basic(LockKind::Ticket),
        ] {
            let db = MiniDb::open(&h, &choice, MiniDbOptions::default()).unwrap();
            let mut handle = db.handle(3);
            handle.fill_seq(50);
            assert_eq!(handle.read_random(50, 50, 1), 50, "{choice:?}");
        }
    }
}
