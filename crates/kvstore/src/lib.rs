//! Runnable lock-contention workloads: a LevelDB-like store and a
//! Kyoto-Cabinet-like store, generic over the guarding lock.
//!
//! The paper evaluates locks by interposing `pthread` locks under
//! LevelDB's `readrandom` benchmark and Kyoto Cabinet (§5.1.2,
//! `LD_PRELOAD`). This crate provides the equivalent experiment as a
//! library: two small but real storage engines whose shared state is
//! guarded by a *pluggable* lock — any CLoF composition, HMCS, CNA,
//! ShflLock, or `std::sync::Mutex` — so the same workload runs under every
//! lock in the repo:
//!
//! * [`MiniDb`] — an LSM-flavoured ordered store (memtable + sorted runs
//!   + merge compaction) with a `readrandom`-style benchmark.
//! * [`CabinetDb`] — a hash-bucket store in the Kyoto Cabinet HashDB
//!   mould.
//! * [`DbMutex`] / [`LockChoice`] — the pluggable-lock layer (the
//!   `LD_PRELOAD` analogue).

#![warn(missing_docs)]

pub mod cabinet;
pub mod lock;
pub mod minidb;

pub use cabinet::CabinetDb;
pub use lock::{DbHandle, DbMutex, LockChoice};
pub use minidb::{MiniDb, MiniDbHandle, MiniDbOptions};
