//! CLH queue lock (Craig, Landin & Hagersten \[19\]): fair, spins on the
//! predecessor's node.

use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, Ordering};

#[cfg(feature = "deadline")]
use crate::park::ABANDONED;
use crate::park::{WaitWord, SPIN_FOREVER};
use crate::raw::{LockInfo, RawLock};

/// A CLH queue node: a single wait word the *successor* waits on.
#[derive(Debug)]
struct ClhNode {
    /// Armed while the node's current owner holds or waits for the lock;
    /// with the `park` feature the successor blocks on this word once its
    /// spin budget runs out and the releaser futex-wakes it.
    locked: WaitWord,
    /// Escape pointer an abandoning owner leaves behind (the `deadline`
    /// feature): where this node's owner was itself waiting. A successor
    /// that observes the abandoned marker in `locked` redirects its wait
    /// to this predecessor, frees the abandoned node, and carries on —
    /// the CLH analogue of the MCS releaser-side skip. Published by the
    /// `Release` swap that abandons `locked`; read after the successor's
    /// `Acquire` observation of the marker.
    #[cfg(feature = "deadline")]
    pred: AtomicPtr<ClhNode>,
}

impl ClhNode {
    fn boxed(locked: bool) -> NonNull<ClhNode> {
        let node = Box::new(ClhNode {
            locked: if locked {
                WaitWord::new_wait()
            } else {
                WaitWord::new_go()
            },
            #[cfg(feature = "deadline")]
            pred: AtomicPtr::new(std::ptr::null_mut()),
        });
        NonNull::new(Box::into_raw(node)).expect("Box::into_raw returned null")
    }
}

/// Per-slot context of [`ClhLock`].
///
/// CLH recycles nodes across threads: on release, a thread abandons the
/// node it enqueued and adopts its predecessor's node for the next
/// acquisition, so the context tracks *which* node it currently owns.
#[derive(Debug)]
pub struct ClhContext {
    /// Node this context will enqueue next (exclusively owned while not
    /// enqueued).
    node: NonNull<ClhNode>,
    /// Predecessor node recorded by the last acquire; adopted on release.
    pred: Option<NonNull<ClhNode>>,
}

// SAFETY: The context carries pointers to heap nodes whose only shared
// field is an atomic; the ownership protocol (see `acquire`/`release`)
// guarantees exclusive reuse.
unsafe impl Send for ClhContext {}
// SAFETY: As above.
unsafe impl Sync for ClhContext {}

impl Default for ClhContext {
    fn default() -> Self {
        ClhContext {
            node: ClhNode::boxed(false),
            pred: None,
        }
    }
}

impl Drop for ClhContext {
    fn drop(&mut self) {
        // SAFETY: By the `RawLock` contract the context is idle: its
        // current `node` is not enqueued anywhere and this is the unique
        // owner of that allocation. (`pred` is only set while the lock is
        // held and is consumed by `release`, so it is not freed here.)
        unsafe { drop(Box::from_raw(self.node.as_ptr())) };
    }
}

/// The CLH queue lock.
///
/// An *implicit* queue: each thread swaps its node into `tail` and spins
/// on the `locked` flag of the node it received back (its predecessor's).
/// Used e.g. as the big kernel lock of seL4 (paper §2.1). On the paper's
/// Armv8 server, CLH is the best basic lock at the NUMA-node level
/// (Figure 3b); the best Armv8 CLoF compositions are built around it.
///
/// # Examples
///
/// ```
/// use clof_locks::{ClhContext, ClhLock, RawLock};
///
/// let lock = ClhLock::default();
/// let mut ctx = ClhContext::default();
/// lock.acquire(&mut ctx);
/// lock.release(&mut ctx);
/// ```
#[derive(Debug)]
pub struct ClhLock {
    /// Most recently enqueued node; initially a dummy unlocked node owned
    /// by the lock.
    tail: AtomicPtr<ClhNode>,
}

impl ClhLock {
    /// Creates an unlocked CLH lock.
    pub fn new() -> Self {
        ClhLock {
            tail: AtomicPtr::new(ClhNode::boxed(false).as_ptr()),
        }
    }

    /// Whether the lock is currently held or queued (racy; diagnostics).
    pub fn is_locked(&self) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        // SAFETY: `tail` always points to a live node: either the lock's
        // dummy or a node owned by a context that cannot legally be
        // dropped while enqueued.
        unsafe { !(*tail).locked.is_go() }
    }

    fn acquire_inner(&self, ctx: &mut ClhContext, budget: u32) {
        debug_assert!(ctx.pred.is_none(), "context invariant violated: re-acquire");
        let node = ctx.node;
        // SAFETY: We exclusively own `node` until the swap publishes it.
        unsafe { node.as_ref().locked.prime() };
        // AcqRel: Release publishes our armed word with the node; Acquire
        // orders us after the predecessor's publication.
        let pred = self.tail.swap(node.as_ptr(), Ordering::AcqRel);
        crate::chaos::point("clh-acquire-enqueued");
        // SAFETY: `pred` stays alive while we wait: its owner either is
        // the lock itself (dummy) or cannot reuse/free it before we stop
        // observing it — the releaser abandons the node to us. The wait's
        // Acquire pairs with the releaser's `release_raw` swap.
        #[cfg(not(feature = "deadline"))]
        unsafe {
            (*pred).locked.wait(budget)
        };
        #[cfg(not(feature = "deadline"))]
        {
            ctx.pred = NonNull::new(pred);
        }
        // With deadlines compiled in, any predecessor may abandon its
        // position mid-wait (even though *this* acquire is unbounded),
        // so the wait must observe both terminal values and follow the
        // abandoned node's escape pointer.
        #[cfg(feature = "deadline")]
        {
            ctx.pred = NonNull::new(self.wait_at(pred, budget));
        }
    }

    /// Waits at `pred` until a grant, redirecting past (and reclaiming)
    /// any predecessors that abandon. Returns the node the grant
    /// arrived through — the node this waiter now exclusively owns.
    #[cfg(feature = "deadline")]
    fn wait_at(&self, mut pred: *mut ClhNode, budget: u32) -> *mut ClhNode {
        loop {
            // SAFETY: `pred` is alive: its owner cannot reuse/free it
            // before granting or abandoning, and an abandoned node
            // belongs to us (its sole observer) the moment we see the
            // marker.
            let v = unsafe { (*pred).locked.wait_observe(budget) };
            if v & ABANDONED == 0 {
                return pred;
            }
            // The predecessor gave up: adopt *its* predecessor as ours
            // and reclaim the abandoned node. The escape pointer was
            // published before the marker (Release/Acquire on the word).
            let further = unsafe { (*pred).pred.load(Ordering::Relaxed) };
            debug_assert!(!further.is_null(), "abandoned node without an escape");
            crate::deadline::on_skip();
            // SAFETY: We are the only thread that can still reach the
            // abandoned node (its owner left, only direct successors
            // observe a CLH node, and we are the unique one).
            unsafe { drop(Box::from_raw(pred)) };
            pred = further;
        }
    }

    /// Deadline-bounded acquire with node abandonment. Two exits on
    /// expiry:
    ///
    /// * **Tail restore** — if our node is still the tail (no successor
    ///   yet), a `tail` CAS back to our predecessor erases us from the
    ///   queue entirely: we keep our node, nothing is leaked, nobody
    ///   ever knew we were queued.
    /// * **Abandon** — otherwise a successor is already waiting on our
    ///   word: publish our predecessor as the escape pointer and swap
    ///   the abandoned marker into our word. The successor redirects to
    ///   our predecessor and frees our node; the context takes a fresh
    ///   one.
    ///
    /// Either way the unconsumed grant (if our predecessor released
    /// while we gave up) is not lost: it stays visible in the
    /// predecessor's word, where the redirected successor — or, after a
    /// tail restore, the next enqueuer — finds it.
    #[cfg(feature = "deadline")]
    fn try_acquire_inner(&self, ctx: &mut ClhContext, deadline: std::time::Instant) -> bool {
        debug_assert!(ctx.pred.is_none(), "context invariant violated: re-acquire");
        let node = ctx.node;
        // SAFETY: We exclusively own `node` until the swap publishes it.
        unsafe { node.as_ref().locked.prime() };
        let mut pred = self.tail.swap(node.as_ptr(), Ordering::AcqRel);
        crate::chaos::point("clh-acquire-enqueued");
        loop {
            // SAFETY: As in `wait_at`.
            match unsafe { (*pred).locked.wait_deadline(deadline, "clh-wait") } {
                Some(v) if v & ABANDONED == 0 => {
                    // Granted (possibly at the deadline edge): acquired.
                    ctx.pred = NonNull::new(pred);
                    return true;
                }
                Some(_) => {
                    // Predecessor abandoned: redirect as in `wait_at`.
                    let further = unsafe { (*pred).pred.load(Ordering::Relaxed) };
                    debug_assert!(!further.is_null(), "abandoned node without an escape");
                    crate::deadline::on_skip();
                    // SAFETY: As in `wait_at`.
                    unsafe { drop(Box::from_raw(pred)) };
                    pred = further;
                }
                None => break,
            }
        }
        // Expired. Try to erase ourselves: if the tail is still our
        // node, no successor observed us and the CAS atomically puts
        // our predecessor back in our place. (The tail can never ABA
        // back to our node while we wait — the queue behind us cannot
        // advance past our armed word.)
        if self
            .tail
            .compare_exchange(node.as_ptr(), pred, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            crate::deadline::on_abandon();
            crate::chaos::point("clh-restore-tail");
            return false;
        }
        // A successor waits on our word. Leave it the escape pointer
        // and the abandoned marker; it reclaims our node (and any
        // pending grant at `pred`). Publication order matters: the
        // escape store must precede the marker's Release swap.
        // SAFETY: Our own node; the successor only reads these fields.
        unsafe {
            node.as_ref().pred.store(pred, Ordering::Relaxed);
            node.as_ref().locked.abandon();
        }
        crate::deadline::on_abandon();
        ctx.node = ClhNode::boxed(false);
        false
    }
}

impl Default for ClhLock {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ClhLock {
    fn drop(&mut self) {
        // SAFETY: No operation is in flight when the lock is dropped, so
        // the node left in `tail` is owned by the lock (it is the dummy,
        // or the node abandoned by the last releaser, whose releaser
        // adopted its predecessor's allocation in exchange).
        #[cfg(not(feature = "deadline"))]
        unsafe {
            drop(Box::from_raw(self.tail.load(Ordering::Relaxed)))
        };
        // With deadlines, a waiter that abandoned while it was the last
        // in line leaves its marked node in the tail with an escape
        // pointer to its predecessor — adopted by the next enqueuer, or
        // by nobody if none ever came. Walk the escape chain here so
        // those orphans are reclaimed with the lock.
        #[cfg(feature = "deadline")]
        {
            let mut node = self.tail.load(Ordering::Relaxed);
            while !node.is_null() {
                // SAFETY: Quiescent at drop; every node on the escape
                // chain is owned by the lock (abandoned, never adopted)
                // down to the terminal non-abandoned node (the dummy).
                let abandoned = unsafe { !(*node).locked.is_go() };
                let next = if abandoned {
                    // SAFETY: As above.
                    unsafe { (*node).pred.load(Ordering::Relaxed) }
                } else {
                    std::ptr::null_mut()
                };
                // SAFETY: As above; sole owner of the allocation.
                unsafe { drop(Box::from_raw(node)) };
                node = next;
            }
        }
    }
}

impl RawLock for ClhLock {
    type Context = ClhContext;

    const INFO: LockInfo = LockInfo {
        name: "clh",
        full_name: "CLH lock",
        fair: true,
        local_spinning: true,
        needs_context: true,
        waiter_hint: true,
    };

    fn acquire(&self, ctx: &mut ClhContext) {
        self.acquire_inner(ctx, SPIN_FOREVER);
    }

    #[cfg(feature = "park")]
    fn acquire_budgeted(&self, ctx: &mut ClhContext, budget: u32) {
        self.acquire_inner(ctx, budget);
    }

    #[cfg(feature = "deadline")]
    fn try_acquire_until(&self, ctx: &mut ClhContext, deadline: std::time::Instant) -> bool {
        self.try_acquire_inner(ctx, deadline)
    }

    fn release(&self, ctx: &mut ClhContext) {
        let pred = ctx
            .pred
            .take()
            .expect("ClhLock::release called without a matching acquire");
        crate::chaos::point("clh-release-window");
        // SAFETY: Our node is still ours to signal through; the successor
        // (or nobody) waits on it. The grant's Release swap publishes the
        // critical section to the successor's Acquire wait, after which
        // the successor adopts the node — `release_raw` wakes by address
        // and never dereferences past that hand-over.
        unsafe { WaitWord::release_raw(std::ptr::addr_of!((*ctx.node.as_ptr()).locked)) };
        // Adopt the predecessor's node for the next acquisition; our old
        // node now belongs to our successor (or to the lock if none).
        ctx.node = pred;
    }

    fn has_waiters_hint(&self, ctx: &Self::Context) -> Option<bool> {
        // If the tail is not our node, someone enqueued after us.
        Some(self.tail.load(Ordering::Relaxed) != ctx.node.as_ptr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn uncontended_roundtrip() {
        let lock = ClhLock::new();
        let mut ctx = ClhContext::default();
        assert!(!lock.is_locked());
        lock.acquire(&mut ctx);
        assert!(lock.is_locked());
        assert_eq!(lock.has_waiters_hint(&ctx), Some(false));
        lock.release(&mut ctx);
        assert!(!lock.is_locked());
    }

    #[test]
    fn node_recycling_many_rounds() {
        let lock = ClhLock::new();
        let mut ctx = ClhContext::default();
        for _ in 0..1000 {
            lock.acquire(&mut ctx);
            lock.release(&mut ctx);
        }
    }

    #[test]
    #[should_panic(expected = "without a matching acquire")]
    fn release_without_acquire_panics() {
        let lock = ClhLock::new();
        let mut ctx = ClhContext::default();
        lock.release(&mut ctx);
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        const THREADS: usize = 4;
        const ITERS: usize = 2_000;
        let lock = Arc::new(ClhLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut ctx = ClhContext::default();
                for _ in 0..ITERS {
                    lock.acquire(&mut ctx);
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.release(&mut ctx);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS * ITERS);
    }

    #[test]
    fn thread_oblivious_release() {
        let lock = Arc::new(ClhLock::new());
        let mut ctx = ClhContext::default();
        lock.acquire(&mut ctx);
        let lock2 = Arc::clone(&lock);
        std::thread::scope(|s| {
            s.spawn(|| {
                lock2.release(&mut ctx);
            });
        });
        let mut ctx2 = ClhContext::default();
        lock.acquire(&mut ctx2);
        lock.release(&mut ctx2);
    }

    #[test]
    fn contexts_and_lock_drop_in_any_order() {
        // Exercises the node-ownership shuffle: contexts allocated, used,
        // and dropped before/after the lock without double frees (verified
        // under the default allocator; a double free would abort).
        let lock = ClhLock::new();
        let mut a = ClhContext::default();
        let mut b = ClhContext::default();
        lock.acquire(&mut a);
        lock.release(&mut a);
        lock.acquire(&mut b);
        lock.release(&mut b);
        drop(a);
        drop(lock);
        drop(b);
    }

    #[test]
    fn info_is_fair_local_spinning() {
        assert!(ClhLock::INFO.fair);
        assert!(ClhLock::INFO.local_spinning);
        assert!(ClhLock::INFO.needs_context);
    }

    #[cfg(feature = "deadline")]
    mod deadline {
        use super::*;
        use std::time::{Duration, Instant};

        fn soon() -> Instant {
            Instant::now() + Duration::from_millis(5)
        }

        #[test]
        fn try_acquire_uncontended_succeeds() {
            let lock = ClhLock::new();
            let mut ctx = ClhContext::default();
            assert!(lock.try_acquire_until(&mut ctx, soon()));
            lock.release(&mut ctx);
            assert!(!lock.is_locked());
        }

        #[test]
        fn last_in_line_timeout_restores_the_tail() {
            // With no successor the timed-out waiter erases itself via
            // the tail CAS: no node changes hands, no abandon marker.
            let lock = ClhLock::new();
            let mut holder = ClhContext::default();
            lock.acquire(&mut holder);
            let mut waiter = ClhContext::default();
            let skips = crate::deadline::skips();
            assert!(!lock.try_acquire_until(&mut waiter, soon()));
            lock.release(&mut holder);
            assert!(!lock.is_locked());
            assert_eq!(
                crate::deadline::skips(),
                skips,
                "tail restore leaves nothing to skip"
            );
            // Both contexts stay usable; drop order stays arbitrary.
            lock.acquire(&mut waiter);
            lock.release(&mut waiter);
        }

        #[test]
        fn abandoned_node_redirects_blocked_successor() {
            // holder <- w1 (abandons) <- w2 (blocks): w2 must observe
            // w1's marker, adopt w1's predecessor, and still acquire.
            let lock = Arc::new(ClhLock::new());
            let mut holder = ClhContext::default();
            lock.acquire(&mut holder);
            let mut w1 = ClhContext::default();
            // Enqueue w2 first so w1's timeout cannot tail-restore.
            let t = {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    let mut ctx = ClhContext::default();
                    lock.acquire(&mut ctx);
                    lock.release(&mut ctx);
                })
            };
            // w1 enqueues between holder and (soon) w2 — ordering is
            // racy either way, and both orders must come out clean.
            let skips = crate::deadline::skips();
            assert!(!lock.try_acquire_until(&mut w1, soon()));
            lock.release(&mut holder);
            t.join().expect("w2 acquires despite the abandonment");
            assert!(!lock.is_locked());
            let _ = skips; // whichever exit w1 took, state must be clean
            lock.acquire(&mut w1);
            lock.release(&mut w1);
        }

        /// Hand-builds the orphan state the abandon/restore race can
        /// leave behind: an abandoned node at the tail (its abandoner
        /// gone, its one-time successor tail-restored and gone too),
        /// escape pointing at the previous tail.
        fn plant_orphan(lock: &ClhLock) {
            let old = lock.tail.load(Ordering::Relaxed);
            let orphan = ClhNode::boxed(true);
            // SAFETY: The orphan is private until the tail store below.
            unsafe {
                orphan.as_ref().pred.store(old, Ordering::Relaxed);
                orphan.as_ref().locked.abandon();
            }
            lock.tail.store(orphan.as_ptr(), Ordering::Relaxed);
        }

        #[test]
        fn orphaned_abandoned_tail_is_adopted_by_next_enqueuer() {
            let lock = ClhLock::new();
            plant_orphan(&lock);
            let skips = crate::deadline::skips();
            // The next acquire lands on the orphan, redirects past it
            // to the dummy, and reclaims it.
            let mut ctx = ClhContext::default();
            lock.acquire(&mut ctx);
            lock.release(&mut ctx);
            assert!(crate::deadline::skips() > skips);
            assert!(!lock.is_locked());
        }

        #[test]
        fn orphaned_abandoned_tail_is_reclaimed_on_drop() {
            // Nobody ever adopts the orphan: the lock's Drop walks the
            // escape chain and frees it along with the dummy (verified
            // under the default allocator; a double free would abort,
            // a leak shows up under the oracle's allocation checks).
            let lock = ClhLock::new();
            plant_orphan(&lock);
            drop(lock);
        }

        #[test]
        fn timeout_leaves_other_traffic_unharmed() {
            const THREADS: usize = 4;
            const ITERS: usize = 300;
            let lock = Arc::new(ClhLock::new());
            let counter = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for i in 0..THREADS {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                handles.push(std::thread::spawn(move || {
                    let mut ctx = ClhContext::default();
                    let mut held = 0usize;
                    for _ in 0..ITERS {
                        if i % 2 == 0 {
                            let d = Instant::now() + Duration::from_micros(50);
                            if !lock.try_acquire_until(&mut ctx, d) {
                                continue;
                            }
                        } else {
                            lock.acquire(&mut ctx);
                        }
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        held += 1;
                        lock.release(&mut ctx);
                    }
                    held
                }));
            }
            let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(counter.load(Ordering::Relaxed), total);
        }
    }
}
