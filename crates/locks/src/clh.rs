//! CLH queue lock (Craig, Landin & Hagersten \[19\]): fair, spins on the
//! predecessor's node.

use std::ptr::NonNull;
use std::sync::atomic::{AtomicPtr, Ordering};

use crate::park::{WaitWord, SPIN_FOREVER};
use crate::raw::{LockInfo, RawLock};

/// A CLH queue node: a single wait word the *successor* waits on.
#[derive(Debug)]
struct ClhNode {
    /// Armed while the node's current owner holds or waits for the lock;
    /// with the `park` feature the successor blocks on this word once its
    /// spin budget runs out and the releaser futex-wakes it.
    locked: WaitWord,
}

impl ClhNode {
    fn boxed(locked: bool) -> NonNull<ClhNode> {
        let node = Box::new(ClhNode {
            locked: if locked {
                WaitWord::new_wait()
            } else {
                WaitWord::new_go()
            },
        });
        NonNull::new(Box::into_raw(node)).expect("Box::into_raw returned null")
    }
}

/// Per-slot context of [`ClhLock`].
///
/// CLH recycles nodes across threads: on release, a thread abandons the
/// node it enqueued and adopts its predecessor's node for the next
/// acquisition, so the context tracks *which* node it currently owns.
#[derive(Debug)]
pub struct ClhContext {
    /// Node this context will enqueue next (exclusively owned while not
    /// enqueued).
    node: NonNull<ClhNode>,
    /// Predecessor node recorded by the last acquire; adopted on release.
    pred: Option<NonNull<ClhNode>>,
}

// SAFETY: The context carries pointers to heap nodes whose only shared
// field is an atomic; the ownership protocol (see `acquire`/`release`)
// guarantees exclusive reuse.
unsafe impl Send for ClhContext {}
// SAFETY: As above.
unsafe impl Sync for ClhContext {}

impl Default for ClhContext {
    fn default() -> Self {
        ClhContext {
            node: ClhNode::boxed(false),
            pred: None,
        }
    }
}

impl Drop for ClhContext {
    fn drop(&mut self) {
        // SAFETY: By the `RawLock` contract the context is idle: its
        // current `node` is not enqueued anywhere and this is the unique
        // owner of that allocation. (`pred` is only set while the lock is
        // held and is consumed by `release`, so it is not freed here.)
        unsafe { drop(Box::from_raw(self.node.as_ptr())) };
    }
}

/// The CLH queue lock.
///
/// An *implicit* queue: each thread swaps its node into `tail` and spins
/// on the `locked` flag of the node it received back (its predecessor's).
/// Used e.g. as the big kernel lock of seL4 (paper §2.1). On the paper's
/// Armv8 server, CLH is the best basic lock at the NUMA-node level
/// (Figure 3b); the best Armv8 CLoF compositions are built around it.
///
/// # Examples
///
/// ```
/// use clof_locks::{ClhContext, ClhLock, RawLock};
///
/// let lock = ClhLock::default();
/// let mut ctx = ClhContext::default();
/// lock.acquire(&mut ctx);
/// lock.release(&mut ctx);
/// ```
#[derive(Debug)]
pub struct ClhLock {
    /// Most recently enqueued node; initially a dummy unlocked node owned
    /// by the lock.
    tail: AtomicPtr<ClhNode>,
}

impl ClhLock {
    /// Creates an unlocked CLH lock.
    pub fn new() -> Self {
        ClhLock {
            tail: AtomicPtr::new(ClhNode::boxed(false).as_ptr()),
        }
    }

    /// Whether the lock is currently held or queued (racy; diagnostics).
    pub fn is_locked(&self) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        // SAFETY: `tail` always points to a live node: either the lock's
        // dummy or a node owned by a context that cannot legally be
        // dropped while enqueued.
        unsafe { !(*tail).locked.is_go() }
    }

    fn acquire_inner(&self, ctx: &mut ClhContext, budget: u32) {
        debug_assert!(ctx.pred.is_none(), "context invariant violated: re-acquire");
        let node = ctx.node;
        // SAFETY: We exclusively own `node` until the swap publishes it.
        unsafe { node.as_ref().locked.prime() };
        // AcqRel: Release publishes our armed word with the node; Acquire
        // orders us after the predecessor's publication.
        let pred = self.tail.swap(node.as_ptr(), Ordering::AcqRel);
        crate::chaos::point("clh-acquire-enqueued");
        // SAFETY: `pred` stays alive while we wait: its owner either is
        // the lock itself (dummy) or cannot reuse/free it before we stop
        // observing it — the releaser abandons the node to us. The wait's
        // Acquire pairs with the releaser's `release_raw` swap.
        unsafe { (*pred).locked.wait(budget) };
        // We now exclusively own `pred` (its previous owner adopted *its*
        // predecessor's node and will never touch `pred` again).
        ctx.pred = NonNull::new(pred);
    }
}

impl Default for ClhLock {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ClhLock {
    fn drop(&mut self) {
        // SAFETY: No operation is in flight when the lock is dropped, so
        // the node left in `tail` is owned by the lock (it is the dummy,
        // or the node abandoned by the last releaser, whose releaser
        // adopted its predecessor's allocation in exchange).
        unsafe { drop(Box::from_raw(self.tail.load(Ordering::Relaxed))) };
    }
}

impl RawLock for ClhLock {
    type Context = ClhContext;

    const INFO: LockInfo = LockInfo {
        name: "clh",
        full_name: "CLH lock",
        fair: true,
        local_spinning: true,
        needs_context: true,
        waiter_hint: true,
    };

    fn acquire(&self, ctx: &mut ClhContext) {
        self.acquire_inner(ctx, SPIN_FOREVER);
    }

    #[cfg(feature = "park")]
    fn acquire_budgeted(&self, ctx: &mut ClhContext, budget: u32) {
        self.acquire_inner(ctx, budget);
    }

    fn release(&self, ctx: &mut ClhContext) {
        let pred = ctx
            .pred
            .take()
            .expect("ClhLock::release called without a matching acquire");
        crate::chaos::point("clh-release-window");
        // SAFETY: Our node is still ours to signal through; the successor
        // (or nobody) waits on it. The grant's Release swap publishes the
        // critical section to the successor's Acquire wait, after which
        // the successor adopts the node — `release_raw` wakes by address
        // and never dereferences past that hand-over.
        unsafe { WaitWord::release_raw(std::ptr::addr_of!((*ctx.node.as_ptr()).locked)) };
        // Adopt the predecessor's node for the next acquisition; our old
        // node now belongs to our successor (or to the lock if none).
        ctx.node = pred;
    }

    fn has_waiters_hint(&self, ctx: &Self::Context) -> Option<bool> {
        // If the tail is not our node, someone enqueued after us.
        Some(self.tail.load(Ordering::Relaxed) != ctx.node.as_ptr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn uncontended_roundtrip() {
        let lock = ClhLock::new();
        let mut ctx = ClhContext::default();
        assert!(!lock.is_locked());
        lock.acquire(&mut ctx);
        assert!(lock.is_locked());
        assert_eq!(lock.has_waiters_hint(&ctx), Some(false));
        lock.release(&mut ctx);
        assert!(!lock.is_locked());
    }

    #[test]
    fn node_recycling_many_rounds() {
        let lock = ClhLock::new();
        let mut ctx = ClhContext::default();
        for _ in 0..1000 {
            lock.acquire(&mut ctx);
            lock.release(&mut ctx);
        }
    }

    #[test]
    #[should_panic(expected = "without a matching acquire")]
    fn release_without_acquire_panics() {
        let lock = ClhLock::new();
        let mut ctx = ClhContext::default();
        lock.release(&mut ctx);
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        const THREADS: usize = 4;
        const ITERS: usize = 2_000;
        let lock = Arc::new(ClhLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut ctx = ClhContext::default();
                for _ in 0..ITERS {
                    lock.acquire(&mut ctx);
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.release(&mut ctx);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS * ITERS);
    }

    #[test]
    fn thread_oblivious_release() {
        let lock = Arc::new(ClhLock::new());
        let mut ctx = ClhContext::default();
        lock.acquire(&mut ctx);
        let lock2 = Arc::clone(&lock);
        std::thread::scope(|s| {
            s.spawn(|| {
                lock2.release(&mut ctx);
            });
        });
        let mut ctx2 = ClhContext::default();
        lock.acquire(&mut ctx2);
        lock.release(&mut ctx2);
    }

    #[test]
    fn contexts_and_lock_drop_in_any_order() {
        // Exercises the node-ownership shuffle: contexts allocated, used,
        // and dropped before/after the lock without double frees (verified
        // under the default allocator; a double free would abort).
        let lock = ClhLock::new();
        let mut a = ClhContext::default();
        let mut b = ClhContext::default();
        lock.acquire(&mut a);
        lock.release(&mut a);
        lock.acquire(&mut b);
        lock.release(&mut b);
        drop(a);
        drop(lock);
        drop(b);
    }

    #[test]
    fn info_is_fair_local_spinning() {
        assert!(ClhLock::INFO.fair);
        assert!(ClhLock::INFO.local_spinning);
        assert!(ClhLock::INFO.needs_context);
    }
}
