//! Cache-line isolation: the [`CachePadded`] wrapper.
//!
//! Composed locks are all about keeping coherence traffic inside the
//! smallest hardware domain that can serve it. That effort is wasted if
//! logically-independent words share a cache line: a waiter spinning on
//! its own stripe still stalls the owner writing the grant word two
//! bytes away (false sharing). `CachePadded<T>` gives `T` a full
//! 128-byte line of its own — 128 rather than 64 because recent Intel
//! parts prefetch cache lines in adjacent pairs and Apple/ARM big cores
//! use 128-byte lines outright, so 64-byte isolation still ping-pongs
//! there. The same constant is used by crossbeam and by this crate's
//! Anderson slot ring.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Alignment (and therefore minimum size) of a [`CachePadded`] value.
pub const CACHE_LINE: usize = 128;

/// Pads and aligns `T` to [`CACHE_LINE`] bytes so it owns its cache
/// line(s) exclusively.
///
/// Use it to separate fields written by different parties — e.g. a
/// lock's waiter-written word from its owner-written word — so a write
/// to one never invalidates the other's line.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::AtomicU32;
/// use clof_locks::CachePadded;
///
/// struct Indicator {
///     stripes: [CachePadded<AtomicU32>; 4],
/// }
/// assert_eq!(std::mem::size_of::<CachePadded<AtomicU32>>(), 128);
/// assert_eq!(std::mem::align_of::<CachePadded<AtomicU32>>(), 128);
/// ```
#[derive(Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

// Layout contract: alignment is the pad constant, and size rounds up to
// a whole number of lines, so adjacent array elements never share one.
const _: () = {
    assert!(std::mem::align_of::<CachePadded<u8>>() == CACHE_LINE);
    assert!(std::mem::size_of::<CachePadded<u8>>() == CACHE_LINE);
    assert!(std::mem::size_of::<CachePadded<[u8; 129]>>() == 2 * CACHE_LINE);
};

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line(s).
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.value.fmt(f)
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn layout_is_line_exclusive() {
        assert_eq!(std::mem::size_of::<CachePadded<AtomicU32>>(), CACHE_LINE);
        assert_eq!(std::mem::align_of::<CachePadded<AtomicU32>>(), CACHE_LINE);
        // Arrays of padded values put each element on its own line.
        let arr = [CachePadded::new(0u8), CachePadded::new(1u8)];
        let a = &arr[0] as *const _ as usize;
        let b = &arr[1] as *const _ as usize;
        assert_eq!(b - a, CACHE_LINE);
    }

    #[test]
    fn value_semantics_pass_through() {
        let padded = CachePadded::new(AtomicU32::new(7));
        padded.store(9, Ordering::Relaxed);
        assert_eq!(padded.load(Ordering::Relaxed), 9);
        assert_eq!(padded.into_inner().into_inner(), 9);
        let from: CachePadded<u64> = 3u64.into();
        assert_eq!(*from, 3);
    }
}
