//! Ticketlock: fair, globally-spinning, no context (paper §2.1).

use std::sync::atomic::{AtomicU32, Ordering};

use crate::pad::CachePadded;
#[cfg(feature = "park")]
use crate::park::ParkSpot;
use crate::park::SPIN_FOREVER;
use crate::raw::{LockInfo, NoContext, RawLock};
#[cfg(any(not(feature = "park"), feature = "deadline"))]
use crate::spin::Backoff;

/// The classic two-counter ticket lock.
///
/// To acquire, a thread atomically takes the next `ticket` and spins until
/// `grant` equals it; to release, the owner increments `grant`. The lock
/// is FIFO-fair, but all waiters spin on the single `grant` word, which
/// pressures the memory subsystem as contention grows — the property that
/// makes it the *best* basic lock at the system level (2 contenders) and
/// among the *worst* at the NUMA level (many contenders) in the paper's
/// Figure 3.
///
/// # Examples
///
/// ```
/// use clof_locks::{RawLock, TicketLock};
///
/// let lock = TicketLock::default();
/// let mut ctx = Default::default();
/// lock.acquire(&mut ctx);
/// // ... critical section ...
/// lock.release(&mut ctx);
/// ```
#[derive(Debug, Default)]
pub struct TicketLock {
    /// Waiter-written: every acquire RMWs it. Padded so the dispenser
    /// line never invalidates `grant`, which all waiters spin on.
    ticket: CachePadded<AtomicU32>,
    /// Owner-written, waiter-read.
    grant: CachePadded<AtomicU32>,
    /// Eventcount budget-exhausted waiters park on. Grant order is a
    /// total order over *different* awaited values, so the releaser must
    /// wake everyone and let the grant word pick the winner (`wake_all`).
    #[cfg(feature = "park")]
    park: CachePadded<ParkSpot>,
}

#[cfg(not(feature = "park"))]
const _: () = assert!(std::mem::size_of::<TicketLock>() == 2 * crate::pad::CACHE_LINE);
#[cfg(feature = "park")]
const _: () = assert!(std::mem::size_of::<TicketLock>() == 3 * crate::pad::CACHE_LINE);

impl TicketLock {
    /// Creates an unlocked ticket lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current number of threads holding or waiting for the lock.
    ///
    /// Racy by nature; intended for diagnostics and waiter hints.
    pub fn queue_len(&self) -> u32 {
        self.ticket
            .load(Ordering::Relaxed)
            .wrapping_sub(self.grant.load(Ordering::Relaxed))
    }

    /// Whether the lock is currently held (racy; for tests/diagnostics).
    pub fn is_locked(&self) -> bool {
        self.queue_len() != 0
    }

    fn acquire_inner(&self, budget: u32) {
        let my = self.ticket.fetch_add(1, Ordering::Relaxed);
        crate::chaos::point("tkt-acquire-ticketed");
        // The Acquire load synchronizes with the Release store in
        // `release`, ordering the critical section after the previous one.
        #[cfg(feature = "park")]
        self.park
            .wait_until(budget, || self.grant.load(Ordering::Acquire) == my);
        #[cfg(not(feature = "park"))]
        {
            let _ = budget;
            let mut backoff = Backoff::new();
            while self.grant.load(Ordering::Acquire) != my {
                backoff.snooze();
            }
        }
    }

    /// Deadline-bounded acquire. A granted ticket cannot be abandoned —
    /// the FIFO hand-off is positional — so a timed-out waiter has two
    /// exits:
    ///
    /// * **Cancel** — if its ticket is still the youngest, a CAS on the
    ///   dispenser retracts it as if it was never issued. (A grant that
    ///   races the cancel is harmless: the next ticket taker draws the
    ///   same number and finds it already granted.)
    /// * **Hand forward** — otherwise later tickets exist and the
    ///   numbering cannot be compacted; the waiter waits out its turn
    ///   and immediately releases, passing the grant on. This bounds
    ///   the *damage* (no wedged queue), not the wait — the turn
    ///   arrives only after all earlier tickets run.
    #[cfg(feature = "deadline")]
    fn try_acquire_inner(&self, deadline: std::time::Instant) -> bool {
        let my = self.ticket.fetch_add(1, Ordering::Relaxed);
        crate::chaos::point("tkt-acquire-ticketed");
        let mut backoff = Backoff::new();
        let mut poll = crate::deadline::DeadlinePoll::new(deadline, "tkt-wait");
        loop {
            if self.grant.load(Ordering::Acquire) == my {
                return true;
            }
            if poll.expired() {
                break;
            }
            backoff.snooze();
        }
        // Expired. Retract the ticket if nobody drew a later one.
        if self
            .ticket
            .compare_exchange(
                my.wrapping_add(1),
                my,
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            crate::deadline::on_abandon();
            return false;
        }
        // Later tickets exist: wait out the turn, hand it forward.
        crate::chaos::point("tkt-hand-forward");
        let mut backoff = Backoff::new();
        while self.grant.load(Ordering::Acquire) != my {
            backoff.snooze();
        }
        let mut ctx = NoContext;
        self.release(&mut ctx);
        crate::deadline::on_abandon();
        false
    }
}

impl RawLock for TicketLock {
    type Context = NoContext;

    const INFO: LockInfo = LockInfo {
        name: "tkt",
        full_name: "Ticketlock",
        fair: true,
        local_spinning: false,
        needs_context: false,
        waiter_hint: true,
    };

    fn acquire(&self, _ctx: &mut NoContext) {
        self.acquire_inner(SPIN_FOREVER);
    }

    #[cfg(feature = "park")]
    fn acquire_budgeted(&self, _ctx: &mut NoContext, budget: u32) {
        self.acquire_inner(budget);
    }

    #[cfg(feature = "deadline")]
    fn try_acquire_until(&self, _ctx: &mut NoContext, deadline: std::time::Instant) -> bool {
        self.try_acquire_inner(deadline)
    }

    fn release(&self, _ctx: &mut NoContext) {
        // Only the owner writes `grant`, so a plain load + store suffices;
        // the Release store publishes the critical section to the next
        // owner's Acquire load.
        let g = self.grant.load(Ordering::Relaxed);
        crate::chaos::point("tkt-release-window");
        self.grant.store(g.wrapping_add(1), Ordering::Release);
        // The wake must follow the grant store (the waiters' condition);
        // ParkSpot's asymmetric barrier pairing makes this race-free
        // without taxing the store.
        #[cfg(feature = "park")]
        self.park.wake_all();
    }

    fn has_waiters_hint(&self, _ctx: &NoContext) -> Option<bool> {
        // The owner accounts for one outstanding ticket; anything beyond
        // that is a waiter (paper §4.1.2: "check if the difference between
        // grant and ticket is larger than 1").
        Some(self.queue_len() > 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn uncontended_acquire_release() {
        let lock = TicketLock::new();
        let mut ctx = NoContext;
        assert!(!lock.is_locked());
        lock.acquire(&mut ctx);
        assert!(lock.is_locked());
        assert_eq!(lock.has_waiters_hint(&ctx), Some(false));
        lock.release(&mut ctx);
        assert!(!lock.is_locked());
    }

    #[test]
    fn reacquire_many_times() {
        let lock = TicketLock::new();
        let mut ctx = NoContext;
        for _ in 0..1000 {
            lock.acquire(&mut ctx);
            lock.release(&mut ctx);
        }
        assert_eq!(lock.queue_len(), 0);
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        const THREADS: usize = 4;
        const ITERS: usize = 2_000;
        let lock = Arc::new(TicketLock::new());
        let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut ctx = NoContext;
                for _ in 0..ITERS {
                    lock.acquire(&mut ctx);
                    // Non-atomic increment protected by the lock: a
                    // mutual-exclusion violation would lose updates.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.release(&mut ctx);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS * ITERS);
    }

    #[test]
    fn waiter_hint_sees_contender() {
        let lock = Arc::new(TicketLock::new());
        let mut ctx = NoContext;
        lock.acquire(&mut ctx);
        let waiter = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                let mut ctx = NoContext;
                lock.acquire(&mut ctx);
                lock.release(&mut ctx);
            })
        };
        crate::spin::spin_until(|| lock.queue_len() > 1);
        assert_eq!(lock.has_waiters_hint(&ctx), Some(true));
        lock.release(&mut ctx);
        waiter.join().unwrap();
    }

    #[test]
    fn ticket_counter_wraps_safely() {
        let lock = TicketLock::new();
        lock.ticket.store(u32::MAX, Ordering::Relaxed);
        lock.grant.store(u32::MAX, Ordering::Relaxed);
        let mut ctx = NoContext;
        lock.acquire(&mut ctx);
        assert_eq!(lock.queue_len(), 1);
        lock.release(&mut ctx);
        assert_eq!(lock.grant.load(Ordering::Relaxed), 0);
        lock.acquire(&mut ctx);
        lock.release(&mut ctx);
    }

    #[test]
    fn info_is_fair_global_spinning() {
        assert!(TicketLock::INFO.fair);
        assert!(!TicketLock::INFO.local_spinning);
        assert!(!TicketLock::INFO.needs_context);
        assert_eq!(TicketLock::INFO.name, "tkt");
    }

    #[cfg(feature = "deadline")]
    mod deadline {
        use super::*;
        use std::time::{Duration, Instant};

        fn soon() -> Instant {
            Instant::now() + Duration::from_millis(5)
        }

        #[test]
        fn try_acquire_uncontended_succeeds() {
            let lock = TicketLock::new();
            let mut ctx = NoContext;
            assert!(lock.try_acquire_until(&mut ctx, soon()));
            lock.release(&mut ctx);
            assert!(!lock.is_locked());
        }

        #[test]
        fn youngest_ticket_timeout_cancels_cleanly() {
            let lock = TicketLock::new();
            let mut holder = NoContext;
            lock.acquire(&mut holder);
            let mut waiter = NoContext;
            assert!(!lock.try_acquire_until(&mut waiter, soon()));
            // The ticket was retracted: the holder is the sole
            // outstanding entry and release leaves the lock free.
            assert_eq!(lock.queue_len(), 1);
            lock.release(&mut holder);
            assert!(!lock.is_locked());
            assert!(lock.try_acquire_until(&mut waiter, soon()));
            lock.release(&mut waiter);
        }

        #[test]
        fn buried_ticket_hands_its_turn_forward() {
            // holder <- w1 (times out) <- w2 (blocks): w1's turn must
            // pass through to w2 rather than wedging the grant counter.
            let lock = Arc::new(TicketLock::new());
            let mut holder = NoContext;
            lock.acquire(&mut holder);
            // w1 takes its ticket first (short deadline)...
            let w1 = {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    let mut ctx = NoContext;
                    let d = Instant::now() + Duration::from_millis(5);
                    lock.try_acquire_until(&mut ctx, d)
                })
            };
            crate::spin::spin_until(|| lock.queue_len() >= 2);
            // ...then w2 buries it, so w1 cannot cancel.
            let w2 = {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    let mut ctx = NoContext;
                    lock.acquire(&mut ctx);
                    lock.release(&mut ctx);
                })
            };
            crate::spin::spin_until(|| lock.queue_len() >= 3);
            // Let w1's deadline expire while buried, then release: the
            // grant must flow holder -> w1 (handed forward) -> w2.
            std::thread::sleep(Duration::from_millis(50));
            lock.release(&mut holder);
            assert!(!w1.join().unwrap(), "buried w1 times out");
            w2.join().expect("w2 acquires after the handed-forward turn");
            assert!(!lock.is_locked());
        }

        #[test]
        fn timeout_leaves_other_traffic_unharmed() {
            const THREADS: usize = 4;
            const ITERS: usize = 300;
            let lock = Arc::new(TicketLock::new());
            let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let mut handles = Vec::new();
            for i in 0..THREADS {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                handles.push(std::thread::spawn(move || {
                    let mut ctx = NoContext;
                    let mut held = 0usize;
                    for _ in 0..ITERS {
                        if i % 2 == 0 {
                            let d = Instant::now() + Duration::from_micros(50);
                            if !lock.try_acquire_until(&mut ctx, d) {
                                continue;
                            }
                        } else {
                            lock.acquire(&mut ctx);
                        }
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        held += 1;
                        lock.release(&mut ctx);
                    }
                    held
                }));
            }
            let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(counter.load(Ordering::Relaxed), total);
            assert!(!lock.is_locked());
        }
    }
}
