//! Ticketlock: fair, globally-spinning, no context (paper §2.1).

use std::sync::atomic::{AtomicU32, Ordering};

use crate::pad::CachePadded;
#[cfg(feature = "park")]
use crate::park::ParkSpot;
use crate::park::SPIN_FOREVER;
use crate::raw::{LockInfo, NoContext, RawLock};
#[cfg(not(feature = "park"))]
use crate::spin::Backoff;

/// The classic two-counter ticket lock.
///
/// To acquire, a thread atomically takes the next `ticket` and spins until
/// `grant` equals it; to release, the owner increments `grant`. The lock
/// is FIFO-fair, but all waiters spin on the single `grant` word, which
/// pressures the memory subsystem as contention grows — the property that
/// makes it the *best* basic lock at the system level (2 contenders) and
/// among the *worst* at the NUMA level (many contenders) in the paper's
/// Figure 3.
///
/// # Examples
///
/// ```
/// use clof_locks::{RawLock, TicketLock};
///
/// let lock = TicketLock::default();
/// let mut ctx = Default::default();
/// lock.acquire(&mut ctx);
/// // ... critical section ...
/// lock.release(&mut ctx);
/// ```
#[derive(Debug, Default)]
pub struct TicketLock {
    /// Waiter-written: every acquire RMWs it. Padded so the dispenser
    /// line never invalidates `grant`, which all waiters spin on.
    ticket: CachePadded<AtomicU32>,
    /// Owner-written, waiter-read.
    grant: CachePadded<AtomicU32>,
    /// Eventcount budget-exhausted waiters park on. Grant order is a
    /// total order over *different* awaited values, so the releaser must
    /// wake everyone and let the grant word pick the winner (`wake_all`).
    #[cfg(feature = "park")]
    park: CachePadded<ParkSpot>,
}

#[cfg(not(feature = "park"))]
const _: () = assert!(std::mem::size_of::<TicketLock>() == 2 * crate::pad::CACHE_LINE);
#[cfg(feature = "park")]
const _: () = assert!(std::mem::size_of::<TicketLock>() == 3 * crate::pad::CACHE_LINE);

impl TicketLock {
    /// Creates an unlocked ticket lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current number of threads holding or waiting for the lock.
    ///
    /// Racy by nature; intended for diagnostics and waiter hints.
    pub fn queue_len(&self) -> u32 {
        self.ticket
            .load(Ordering::Relaxed)
            .wrapping_sub(self.grant.load(Ordering::Relaxed))
    }

    /// Whether the lock is currently held (racy; for tests/diagnostics).
    pub fn is_locked(&self) -> bool {
        self.queue_len() != 0
    }

    fn acquire_inner(&self, budget: u32) {
        let my = self.ticket.fetch_add(1, Ordering::Relaxed);
        crate::chaos::point("tkt-acquire-ticketed");
        // The Acquire load synchronizes with the Release store in
        // `release`, ordering the critical section after the previous one.
        #[cfg(feature = "park")]
        self.park
            .wait_until(budget, || self.grant.load(Ordering::Acquire) == my);
        #[cfg(not(feature = "park"))]
        {
            let _ = budget;
            let mut backoff = Backoff::new();
            while self.grant.load(Ordering::Acquire) != my {
                backoff.snooze();
            }
        }
    }
}

impl RawLock for TicketLock {
    type Context = NoContext;

    const INFO: LockInfo = LockInfo {
        name: "tkt",
        full_name: "Ticketlock",
        fair: true,
        local_spinning: false,
        needs_context: false,
        waiter_hint: true,
    };

    fn acquire(&self, _ctx: &mut NoContext) {
        self.acquire_inner(SPIN_FOREVER);
    }

    #[cfg(feature = "park")]
    fn acquire_budgeted(&self, _ctx: &mut NoContext, budget: u32) {
        self.acquire_inner(budget);
    }

    fn release(&self, _ctx: &mut NoContext) {
        // Only the owner writes `grant`, so a plain load + store suffices;
        // the Release store publishes the critical section to the next
        // owner's Acquire load.
        let g = self.grant.load(Ordering::Relaxed);
        crate::chaos::point("tkt-release-window");
        self.grant.store(g.wrapping_add(1), Ordering::Release);
        // The wake must follow the grant store (the waiters' condition);
        // ParkSpot's asymmetric barrier pairing makes this race-free
        // without taxing the store.
        #[cfg(feature = "park")]
        self.park.wake_all();
    }

    fn has_waiters_hint(&self, _ctx: &NoContext) -> Option<bool> {
        // The owner accounts for one outstanding ticket; anything beyond
        // that is a waiter (paper §4.1.2: "check if the difference between
        // grant and ticket is larger than 1").
        Some(self.queue_len() > 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn uncontended_acquire_release() {
        let lock = TicketLock::new();
        let mut ctx = NoContext;
        assert!(!lock.is_locked());
        lock.acquire(&mut ctx);
        assert!(lock.is_locked());
        assert_eq!(lock.has_waiters_hint(&ctx), Some(false));
        lock.release(&mut ctx);
        assert!(!lock.is_locked());
    }

    #[test]
    fn reacquire_many_times() {
        let lock = TicketLock::new();
        let mut ctx = NoContext;
        for _ in 0..1000 {
            lock.acquire(&mut ctx);
            lock.release(&mut ctx);
        }
        assert_eq!(lock.queue_len(), 0);
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        const THREADS: usize = 4;
        const ITERS: usize = 2_000;
        let lock = Arc::new(TicketLock::new());
        let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut ctx = NoContext;
                for _ in 0..ITERS {
                    lock.acquire(&mut ctx);
                    // Non-atomic increment protected by the lock: a
                    // mutual-exclusion violation would lose updates.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.release(&mut ctx);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS * ITERS);
    }

    #[test]
    fn waiter_hint_sees_contender() {
        let lock = Arc::new(TicketLock::new());
        let mut ctx = NoContext;
        lock.acquire(&mut ctx);
        let waiter = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                let mut ctx = NoContext;
                lock.acquire(&mut ctx);
                lock.release(&mut ctx);
            })
        };
        crate::spin::spin_until(|| lock.queue_len() > 1);
        assert_eq!(lock.has_waiters_hint(&ctx), Some(true));
        lock.release(&mut ctx);
        waiter.join().unwrap();
    }

    #[test]
    fn ticket_counter_wraps_safely() {
        let lock = TicketLock::new();
        lock.ticket.store(u32::MAX, Ordering::Relaxed);
        lock.grant.store(u32::MAX, Ordering::Relaxed);
        let mut ctx = NoContext;
        lock.acquire(&mut ctx);
        assert_eq!(lock.queue_len(), 1);
        lock.release(&mut ctx);
        assert_eq!(lock.grant.load(Ordering::Relaxed), 0);
        lock.acquire(&mut ctx);
        lock.release(&mut ctx);
    }

    #[test]
    fn info_is_fair_global_spinning() {
        assert!(TicketLock::INFO.fair);
        assert!(!TicketLock::INFO.local_spinning);
        assert!(!TicketLock::INFO.needs_context);
        assert_eq!(TicketLock::INFO.name, "tkt");
    }
}
