//! MCS queue lock (Mellor-Crummey & Scott \[31\]): fair, local spinning.

use std::ptr::{self, NonNull};
use std::sync::atomic::{AtomicPtr, Ordering};

#[cfg(feature = "deadline")]
use crate::park::ABANDONED;
use crate::park::{WaitWord, SPIN_FOREVER};
use crate::raw::{LockInfo, RawLock};
use crate::spin::Backoff;

/// A node in the MCS queue.
///
/// Nodes are heap-allocated and owned by an [`McsContext`]; they are
/// reached by other threads only through raw pointers published via the
/// lock's `tail`, and all shared fields are atomics.
#[derive(Debug)]
struct McsNode {
    /// Armed while the owning thread must keep waiting; with the `park`
    /// feature the waiter blocks on this word once its spin budget runs
    /// out and the releaser futex-wakes exactly this successor.
    locked: WaitWord,
    /// Successor in the queue, set by the enqueueing successor itself.
    next: AtomicPtr<McsNode>,
}

impl McsNode {
    fn boxed() -> NonNull<McsNode> {
        let node = Box::new(McsNode {
            locked: WaitWord::new_go(),
            next: AtomicPtr::new(ptr::null_mut()),
        });
        // `Box::into_raw` never returns null.
        NonNull::new(Box::into_raw(node)).expect("Box::into_raw returned null")
    }
}

/// Per-slot context of [`McsLock`]: one queue node with a stable address.
///
/// The node is kept behind a raw pointer (not a `Box` field) on purpose:
/// while enqueued, the node is concurrently written by the predecessor and
/// successor threads, so the context must not assert exclusive access to
/// the node memory even when the context itself is held by `&mut`.
#[derive(Debug)]
pub struct McsContext {
    node: NonNull<McsNode>,
}

// SAFETY: The context only carries a pointer to a heap node whose shared
// fields are atomics; moving or sharing the context across threads does
// not move the node.
unsafe impl Send for McsContext {}
// SAFETY: As above; all concurrent access to the pointee goes through
// atomic fields.
unsafe impl Sync for McsContext {}

impl Default for McsContext {
    fn default() -> Self {
        McsContext {
            node: McsNode::boxed(),
        }
    }
}

impl Drop for McsContext {
    fn drop(&mut self) {
        // SAFETY: By the `RawLock` contract the context is dropped only
        // when no operation is in flight and the lock is not held through
        // it, so the node is no longer linked in any queue and this is
        // the unique owner of the allocation.
        unsafe { drop(Box::from_raw(self.node.as_ptr())) };
    }
}

/// The MCS queue lock.
///
/// Each waiter appends its context node to a global `tail` and spins on a
/// flag *in its own node*; on release the owner hands over to its
/// successor by clearing the successor's flag. Local spinning keeps the
/// coherence traffic per handover constant, which is why MCS (and CLH)
/// tolerate high contention far better than the Ticketlock — at the cost
/// of a heavier uncontended path. MCS is the component HMCS uses at every
/// level (the paper's level-homogeneous baseline).
///
/// # Examples
///
/// ```
/// use clof_locks::{McsContext, McsLock, RawLock};
///
/// let lock = McsLock::default();
/// let mut ctx = McsContext::default();
/// lock.acquire(&mut ctx);
/// lock.release(&mut ctx);
/// ```
#[derive(Debug, Default)]
pub struct McsLock {
    tail: AtomicPtr<McsNode>,
}

impl McsLock {
    /// Creates an unlocked MCS lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the lock is currently held or queued (racy; diagnostics).
    pub fn is_locked(&self) -> bool {
        !self.tail.load(Ordering::Relaxed).is_null()
    }

    fn acquire_inner(&self, ctx: &mut McsContext, budget: u32) {
        let node = ctx.node.as_ptr();
        // SAFETY: `node` points to this context's live heap node; until
        // the swap below publishes it, no other thread can reach it.
        let node_ref = unsafe { &*node };
        node_ref.next.store(ptr::null_mut(), Ordering::Relaxed);
        node_ref.locked.prime();

        // AcqRel: the Release half publishes our node initialization to
        // the successor that swaps after us; the Acquire half orders us
        // after the predecessor's initialization.
        let pred = self.tail.swap(node, Ordering::AcqRel);
        if pred.is_null() {
            return;
        }
        // The classic MCS window: we are in the queue but not yet linked
        // to our predecessor, whose release must wait for the link.
        crate::chaos::point("mcs-acquire-unlinked");
        // SAFETY: `pred` was published by its owner, whose release cannot
        // complete (and whose context cannot be legally reused or dropped)
        // before observing `pred.next != null`, which only happens via the
        // store below. Hence `pred` is alive here.
        unsafe { (*pred).next.store(node, Ordering::Release) };
        // The wait's Acquire pairs with the Release swap in the
        // predecessor's `release`, ordering the critical sections.
        node_ref.locked.wait(budget);
    }

    /// Deadline-bounded acquire with HMCS-T-style node abandonment: on
    /// expiry the waiter CASes its armed word to the abandoned marker
    /// and leaves — the node stays linked in the queue (a successor may
    /// be writing its `next` this very moment) and passes to whichever
    /// releaser grants into it, which skips and frees it (see
    /// `release`). The context gets a fresh node, so a timed-out
    /// context is immediately reusable.
    #[cfg(feature = "deadline")]
    fn try_acquire_inner(&self, ctx: &mut McsContext, deadline: std::time::Instant) -> bool {
        let node = ctx.node.as_ptr();
        // SAFETY: As in `acquire_inner`: private until the swap.
        let node_ref = unsafe { &*node };
        node_ref.next.store(ptr::null_mut(), Ordering::Relaxed);
        node_ref.locked.prime();
        let pred = self.tail.swap(node, Ordering::AcqRel);
        if pred.is_null() {
            return true;
        }
        crate::chaos::point("mcs-acquire-unlinked");
        // SAFETY: As in `acquire_inner`.
        unsafe { (*pred).next.store(node, Ordering::Release) };
        if node_ref.locked.wait_deadline(deadline, "mcs-wait").is_some() {
            // Only GO can appear on an own word: acquired.
            return true;
        }
        if !node_ref.locked.try_abandon() {
            // The grant landed between expiry and the CAS: we own the
            // lock at the deadline edge.
            return true;
        }
        // Abandoned: the node now belongs to the queue (freed by the
        // releaser that grants past it); never touch it again.
        crate::deadline::on_abandon();
        ctx.node = McsNode::boxed();
        false
    }
}

impl RawLock for McsLock {
    type Context = McsContext;

    const INFO: LockInfo = LockInfo {
        name: "mcs",
        full_name: "MCS lock",
        fair: true,
        local_spinning: true,
        needs_context: true,
        waiter_hint: true,
    };

    fn acquire(&self, ctx: &mut McsContext) {
        self.acquire_inner(ctx, SPIN_FOREVER);
    }

    #[cfg(feature = "park")]
    fn acquire_budgeted(&self, ctx: &mut McsContext, budget: u32) {
        self.acquire_inner(ctx, budget);
    }

    #[cfg(feature = "deadline")]
    fn try_acquire_until(&self, ctx: &mut McsContext, deadline: std::time::Instant) -> bool {
        self.try_acquire_inner(ctx, deadline)
    }

    #[cfg(not(feature = "deadline"))]
    fn release(&self, ctx: &mut McsContext) {
        let node = ctx.node.as_ptr();
        // SAFETY: We hold the lock through `ctx`, so our node is alive and
        // is the queue head.
        let node_ref = unsafe { &*node };
        let mut next = node_ref.next.load(Ordering::Acquire);
        crate::chaos::point("mcs-release-next-read");
        if next.is_null() {
            // No known successor: try to swing tail back to empty.
            // Release publishes the critical section to the next acquirer
            // that starts from an empty queue.
            if self
                .tail
                .compare_exchange(node, ptr::null_mut(), Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
            // A successor swapped the tail but has not linked yet; wait
            // for the link (it arrives promptly: the successor's very
            // next step is the `next` store — this loop never parks).
            let mut backoff = Backoff::new();
            loop {
                next = node_ref.next.load(Ordering::Acquire);
                if !next.is_null() {
                    break;
                }
                backoff.snooze();
            }
        }
        // SAFETY: `next` is a queue node whose owner waits on its
        // `locked` word and therefore keeps it alive until this release
        // grants it; the grant itself is the last access through the
        // pointer (`release_raw` wakes by address, never dereferencing
        // after the successor may have moved on).
        unsafe { WaitWord::release_raw(ptr::addr_of!((*next).locked)) };
    }

    #[cfg(feature = "deadline")]
    fn release(&self, ctx: &mut McsContext) {
        // As the plain release, but granting into an abandoned node
        // (grant_raw reports the marker) hands us that node instead of
        // the lock's ownership: we reclaim it and keep granting down
        // the queue until a live waiter takes over or the queue drains.
        // `owned` tracks whether `node` is an abandoned node we must
        // free once done reading its `next` (the context's own node
        // stays with the context).
        let mut node = ctx.node.as_ptr();
        let mut owned = false;
        loop {
            // SAFETY: Either our context's node (alive, queue head) or
            // an abandoned node whose grant transferred sole ownership
            // to us; enqueuers only ever write its `next`, which the
            // linger-for-link loop below is exactly waiting for.
            let node_ref = unsafe { &*node };
            let mut next = node_ref.next.load(Ordering::Acquire);
            crate::chaos::point("mcs-release-next-read");
            if next.is_null() {
                if self
                    .tail
                    .compare_exchange(node, ptr::null_mut(), Ordering::Release, Ordering::Relaxed)
                    .is_ok()
                {
                    // Queue drained. The tail CAS means no enqueuer
                    // holds a pointer to `node` anymore.
                    if owned {
                        // SAFETY: Sole owner, unreachable from the lock.
                        unsafe { drop(Box::from_raw(node)) };
                    }
                    return;
                }
                let mut backoff = Backoff::new();
                loop {
                    next = node_ref.next.load(Ordering::Acquire);
                    if !next.is_null() {
                        break;
                    }
                    backoff.snooze();
                }
            }
            // SAFETY: As the plain release; the Acquire `next` read
            // ordered us after the enqueuer's one-shot link store, so
            // nobody writes `node` again and (if owned) it is safe to
            // free after the grant below.
            let prev = unsafe { WaitWord::grant_raw(ptr::addr_of!((*next).locked)) };
            if owned {
                // SAFETY: Sole owner; the link store was the last write.
                unsafe { drop(Box::from_raw(node)) };
            }
            if prev & ABANDONED == 0 {
                // A live waiter took the lock.
                return;
            }
            // The successor abandoned before the grant landed; its node
            // is ours to reclaim and the hand-off continues past it.
            #[cfg(any(test, feature = "testkit"))]
            if crate::deadline::mutant::abandoned_skip_deleted() {
                // Mutant: the skip is "deleted" — this release returns
                // as if the abandoned waiter took the lock, so the
                // hand-off (and the abandoned node) are dropped, no
                // reclaim is counted, and every later waiter wedges.
                return;
            }
            crate::deadline::on_skip();
            node = next;
            owned = true;
        }
    }

    fn has_waiters_hint(&self, ctx: &Self::Context) -> Option<bool> {
        // The owner's node is the head; a set `next` pointer or a tail
        // that moved past our node means someone is queued behind us
        // (paper §4.1.2: "in MCS lock it suffices to check whether the
        // next pointer is set").
        let node = ctx.node.as_ptr();
        // SAFETY: We hold the lock through `ctx` (hint is only meaningful
        // for the owner), so our node is alive.
        let has_next = unsafe { !(*node).next.load(Ordering::Relaxed).is_null() };
        Some(has_next || self.tail.load(Ordering::Relaxed) != node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn uncontended_roundtrip() {
        let lock = McsLock::new();
        let mut ctx = McsContext::default();
        assert!(!lock.is_locked());
        lock.acquire(&mut ctx);
        assert!(lock.is_locked());
        assert_eq!(lock.has_waiters_hint(&ctx), Some(false));
        lock.release(&mut ctx);
        assert!(!lock.is_locked());
    }

    #[test]
    fn context_reuse_across_acquisitions() {
        let lock = McsLock::new();
        let mut ctx = McsContext::default();
        for _ in 0..1000 {
            lock.acquire(&mut ctx);
            lock.release(&mut ctx);
        }
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        const THREADS: usize = 4;
        const ITERS: usize = 2_000;
        let lock = Arc::new(McsLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut ctx = McsContext::default();
                for _ in 0..ITERS {
                    lock.acquire(&mut ctx);
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.release(&mut ctx);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS * ITERS);
    }

    #[test]
    fn thread_oblivious_release() {
        // Acquire on one thread, release on another, same context: the
        // property CLoF requires of high locks (paper §4.1.3).
        let lock = Arc::new(McsLock::new());
        let mut ctx = McsContext::default();
        lock.acquire(&mut ctx);
        let lock2 = Arc::clone(&lock);
        std::thread::scope(|s| {
            s.spawn(|| {
                lock2.release(&mut ctx);
            });
        });
        let mut ctx2 = McsContext::default();
        lock.acquire(&mut ctx2);
        lock.release(&mut ctx2);
    }

    #[test]
    fn waiter_hint_sees_contender() {
        let lock = Arc::new(McsLock::new());
        let mut ctx = McsContext::default();
        lock.acquire(&mut ctx);
        let waiter = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                let mut ctx = McsContext::default();
                lock.acquire(&mut ctx);
                lock.release(&mut ctx);
            })
        };
        crate::spin::spin_until(|| lock.has_waiters_hint(&ctx) == Some(true));
        lock.release(&mut ctx);
        waiter.join().unwrap();
    }

    #[test]
    fn info_is_fair_local_spinning() {
        assert!(McsLock::INFO.fair);
        assert!(McsLock::INFO.local_spinning);
        assert!(McsLock::INFO.needs_context);
    }

    #[cfg(feature = "deadline")]
    mod deadline {
        use super::*;
        use std::time::{Duration, Instant};

        fn soon() -> Instant {
            Instant::now() + Duration::from_millis(5)
        }

        #[test]
        fn try_acquire_uncontended_succeeds() {
            let lock = McsLock::new();
            let mut ctx = McsContext::default();
            assert!(lock.try_acquire_until(&mut ctx, soon()));
            lock.release(&mut ctx);
            assert!(!lock.is_locked());
        }

        #[test]
        fn timeout_abandons_and_releaser_reclaims() {
            let lock = McsLock::new();
            let mut holder = McsContext::default();
            lock.acquire(&mut holder);
            let mut waiter = McsContext::default();
            let abandons = crate::deadline::abandons();
            let skips = crate::deadline::skips();
            assert!(
                !lock.try_acquire_until(&mut waiter, soon()),
                "contended try must time out"
            );
            assert!(crate::deadline::abandons() > abandons);
            // The release grants into the abandoned node, skips it, and
            // finds the queue empty.
            lock.release(&mut holder);
            assert!(crate::deadline::skips() > skips);
            assert!(!lock.is_locked(), "abandoned node fully reclaimed");
            // The timed-out context is immediately reusable.
            lock.acquire(&mut waiter);
            lock.release(&mut waiter);
        }

        #[test]
        fn abandoned_node_between_live_waiters_is_skipped() {
            // holder <- w1 (abandons) <- w2 (blocks): the release must
            // grant through w1's abandoned node to w2.
            let lock = Arc::new(McsLock::new());
            let mut holder = McsContext::default();
            lock.acquire(&mut holder);
            let mut w1 = McsContext::default();
            assert!(!lock.try_acquire_until(&mut w1, soon()));
            let t = {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    let mut ctx = McsContext::default();
                    lock.acquire(&mut ctx);
                    lock.release(&mut ctx);
                })
            };
            // Make it likely w2 is enqueued behind the abandoned node.
            std::thread::sleep(Duration::from_millis(10));
            lock.release(&mut holder);
            t.join().expect("w2 acquires through the abandoned node");
            assert!(!lock.is_locked());
        }

        #[test]
        fn timeout_leaves_other_traffic_unharmed() {
            const THREADS: usize = 4;
            const ITERS: usize = 300;
            let lock = Arc::new(McsLock::new());
            let counter = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for i in 0..THREADS {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                handles.push(std::thread::spawn(move || {
                    let mut ctx = McsContext::default();
                    let mut held = 0usize;
                    for _ in 0..ITERS {
                        // Half the threads use tight deadlines, half block.
                        if i % 2 == 0 {
                            let d = Instant::now() + Duration::from_micros(50);
                            if !lock.try_acquire_until(&mut ctx, d) {
                                continue;
                            }
                        } else {
                            lock.acquire(&mut ctx);
                        }
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        held += 1;
                        lock.release(&mut ctx);
                    }
                    held
                }));
            }
            let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(counter.load(Ordering::Relaxed), total);
            assert!(!lock.is_locked(), "no abandoned node left queued");
        }
    }
}
