//! Spin-then-park waiting: the off-by-default `park` cargo feature.
//!
//! Every lock in this crate busy-waits, which is right for the paper's
//! dedicated-core setup (§6) and wrong the moment the host runs more
//! runnable threads than cores: spinners burn the very timeslices the
//! owner needs to finish its critical section. This module adds a
//! *waiting policy* in the style of Fissile and Malthusian locks — spin
//! a bounded budget, then block in the kernel — while keeping the
//! default build bit-for-bit free of it:
//!
//! * [`Waiter`] — the budget accountant: one bounded spin phase
//!   (exponential [`Backoff`] rounds) before the caller may park.
//! * [`WaitWord`] — a one-waiter wait/grant word for the queue locks
//!   (MCS/CLH node words): the waiter spins, then sets a `PARKED` bit
//!   and sleeps on the word; the releaser swaps in `GO` and wakes the
//!   word only if the swapped-out value carried the bit. The wake takes
//!   only the *address*, never dereferencing the (possibly already
//!   recycled) node — see [`WaitWord::release_raw`].
//! * [`ParkSpot`] — an eventcount for the polling locks (ticket, TTAS,
//!   Anderson slots, TAS+backoff): waiters park on an epoch word after
//!   announcing themselves in a `parked` count; releasers make their
//!   condition true, then bump the epoch and `futex_wake` it if anyone
//!   announced. An *asymmetric* barrier closes the sleep/wake race: the
//!   waiter (about to syscall anyway) issues a process-wide
//!   `membarrier`, so a release with no sleepers pays only a Relaxed
//!   load (the Dekker argument in the type's docs and [`asym`]).
//!
//! Blocking uses a raw `SYS_futex` on Linux (x86_64/aarch64, no libc
//! dependency); elsewhere it degrades to bounded [`std::thread::park_timeout`]
//! naps, which need no wake side at all (waiters re-poll on expiry).
//!
//! Without the `park` feature the types still exist (the queue locks
//! embed [`WaitWord`] unconditionally), but every budget is effectively
//! [`SPIN_FOREVER`], no parking code is compiled, and a wait compiles to
//! the same load-and-[`Backoff`] loop the crate always had.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::spin::Backoff;

/// Spin budget meaning "spin forever, never park".
///
/// This is the implicit budget of every plain `acquire` and the default
/// per-level budget before a composition installs topology-derived ones.
pub const SPIN_FOREVER: u32 = u32::MAX;

/// Marker literal proving spin-then-park code is linked in: it appears
/// in the futex failure panics and the `clof` CLI's policy banner, and
/// CI greps for its *absence* in the default binary.
#[cfg(feature = "park")]
pub const PARK_MARKER: &str = "clof-park-v1";

/// Whether this build parks on a native futex (Linux x86_64/aarch64).
///
/// When `false`, parking degrades to bounded timed naps: still correct,
/// still yields the core, but wakes arrive by re-poll rather than by
/// releaser notification. The no-lost-wakeup stall detector only runs
/// on native futex hosts.
#[cfg(feature = "park")]
pub fn has_native_futex() -> bool {
    futex::NATIVE
}

/// Whether releases get the zero-cost side of the asymmetric sleep/wake
/// barrier (`membarrier(PRIVATE_EXPEDITED)` probed and registered).
///
/// When `false`, both sides fall back to symmetric `SeqCst` fences:
/// still correct, but every `ParkSpot` release pays a full barrier.
#[cfg(feature = "park")]
pub fn has_asym_barrier() -> bool {
    asym::is_native()
}

// ---------------------------------------------------------------------
// Waiter: the spin-budget accountant.
// ---------------------------------------------------------------------

/// Tracks one bounded spin phase before its owner is allowed to park.
///
/// [`Waiter::spin`] burns exponential-backoff rounds while the budget
/// lasts and reports when it is exhausted; the caller then parks (with
/// the `park` feature) or keeps spinning (without it, budgets are always
/// [`SPIN_FOREVER`], so exhaustion never happens).
#[derive(Debug)]
pub struct Waiter {
    backoff: Backoff,
    spins: u32,
    budget: u32,
}

impl Waiter {
    /// A fresh waiter with `budget` spin rounds before parking.
    ///
    /// The burst ceiling of the underlying [`Backoff`] is derived from
    /// the budget: a waiter with only a handful of rounds before it
    /// parks (a cross-socket waiter at a contended level) caps its
    /// bursts low, so it never sits in a long `spin_loop` burst while
    /// the grant it is about to miss goes by. An infinite budget keeps
    /// the default ceiling.
    #[inline]
    pub fn new(budget: u32) -> Self {
        let backoff = if budget == SPIN_FOREVER {
            Backoff::new()
        } else {
            // ~log2(budget), clamped: budget 4 → bursts ≤ 2^2, budget
            // 64 → bursts ≤ 2^6 (with_limit clamps to the default cap).
            Backoff::with_limit((32 - budget.leading_zeros()).clamp(2, 31))
        };
        Waiter {
            backoff,
            spins: 0,
            budget,
        }
    }

    /// Burns one backoff round. Returns `false` once the budget is
    /// exhausted — the signal to park. A [`SPIN_FOREVER`] budget never
    /// exhausts.
    #[inline]
    pub fn spin(&mut self) -> bool {
        if self.spins >= self.budget {
            return false;
        }
        if self.budget != SPIN_FOREVER {
            self.spins += 1;
        }
        self.backoff.snooze();
        true
    }

    /// Restarts the spin phase (after a wake, before re-checking a
    /// condition that may need another bounded spin).
    #[inline]
    pub fn reset(&mut self) {
        self.spins = 0;
        self.backoff.reset();
    }
}

// ---------------------------------------------------------------------
// WaitWord: one-waiter wait/grant word (queue-lock nodes).
// ---------------------------------------------------------------------

/// Word value: released — the waiter may proceed.
const GO: u32 = 0;
/// Word value: armed — the waiter spins or parks on it.
const WAIT: u32 = 1;
/// Bit a waiter ORs in before sleeping, so the releaser knows a
/// `futex_wake` is owed. Never set while the word is `GO`.
#[cfg(feature = "park")]
const PARKED_BIT: u32 = 2;
/// Bit a timed-out waiter publishes in its node's word to abandon the
/// queue position (the `deadline` feature's HMCS-T-style marker). Set
/// either by the waiter CASing its own armed word (MCS) or by swapping
/// its word outright for the successor to observe (CLH); never combined
/// with `GO`. A granter that swaps out this bit knows the position's
/// owner left and must skip (and reclaim) the node.
#[cfg(feature = "deadline")]
pub(crate) const ABANDONED: u32 = 4;

/// The wait/grant word of one queue-lock node (MCS/CLH `locked` field).
///
/// Exactly one thread waits on a `WaitWord` at a time (queue locks give
/// every waiter a private node), which is what makes the hand-off
/// *precise*: the releaser wakes its successor and nobody else.
///
/// Protocol: the owner-to-be [`prime`](WaitWord::prime)s the word, links
/// it into the queue, and [`wait`](WaitWord::wait)s; the releaser calls
/// [`release_raw`](WaitWord::release_raw), which swaps in `GO` with
/// `Release` ordering and, if the swapped-out value carried
/// `PARKED_BIT`, wakes the address. The swap is safe because the waiter
/// cannot free its node before observing `GO` (that observation is the
/// very thing the swap causes); the wake after it never dereferences.
#[derive(Debug)]
#[repr(transparent)]
pub struct WaitWord(AtomicU32);

impl WaitWord {
    /// A word born released (e.g. an unowned CLH dummy node).
    pub const fn new_go() -> Self {
        WaitWord(AtomicU32::new(GO))
    }

    /// A word born armed.
    pub const fn new_wait() -> Self {
        WaitWord(AtomicU32::new(WAIT))
    }

    /// Re-arms the word for a new wait. Owner-side, before the node is
    /// published to any other thread, hence `Relaxed`.
    #[inline]
    pub fn prime(&self) {
        self.0.store(WAIT, Ordering::Relaxed);
    }

    /// Whether the word has been released (`Acquire`).
    #[inline]
    pub fn is_go(&self) -> bool {
        self.0.load(Ordering::Acquire) == GO
    }

    /// Blocks until the word is released: spins `budget` rounds, then —
    /// with the `park` feature — parks on the word until the releaser's
    /// wake. Returns with `Acquire` ordering against the release.
    ///
    /// Without the `park` feature there is nothing to do when a budget
    /// exhausts, so any finite budget is treated as [`SPIN_FOREVER`]:
    /// the loop always keeps its [`Backoff`] instead of degenerating
    /// into a tight load.
    #[inline]
    pub fn wait(&self, budget: u32) {
        let budget = if cfg!(feature = "park") {
            budget
        } else {
            SPIN_FOREVER
        };
        let mut waiter = Waiter::new(budget);
        loop {
            if self.0.load(Ordering::Acquire) == GO {
                return;
            }
            if waiter.spin() {
                continue;
            }
            #[cfg(feature = "park")]
            return self.park_until_go();
        }
    }

    /// The blocking tail of [`wait`](WaitWord::wait): announce with
    /// `PARKED_BIT`, then sleep on the word until it reads `GO`.
    #[cfg(feature = "park")]
    #[cold]
    fn park_until_go(&self) {
        // fetch_or is an RMW: if the releaser's swap(GO) lands first we
        // see GO here and never sleep; if ours lands first the releaser
        // is guaranteed to see the bit and owes us a wake.
        let prev = self.0.fetch_or(PARKED_BIT, Ordering::Acquire);
        if prev == GO {
            return;
        }
        let t0 = std::time::Instant::now();
        stats::on_park();
        loop {
            let cur = self.0.load(Ordering::Acquire);
            if cur == GO {
                break;
            }
            #[cfg(any(test, feature = "testkit"))]
            {
                // Stall-detector evidence (see `testkit`): a timed-out
                // sleep that finds the word already GO with no wake
                // issued anywhere since we slept is a timeout rescue.
                // The loop's own GO check above decides the exit, so
                // nothing observed here is swallowed.
                let wakes_before = stats::WAKES.load(Ordering::SeqCst);
                if futex::wait(&self.0, cur) == futex::Unblock::TimedOut
                    && self.0.load(Ordering::Acquire) == GO
                    && stats::WAKES.load(Ordering::SeqCst) == wakes_before
                {
                    testkit::record_rescue();
                }
            }
            #[cfg(not(any(test, feature = "testkit")))]
            let _ = futex::wait(&self.0, cur);
        }
        stats::on_unpark(t0.elapsed());
    }

    /// Owner-side release through a raw pointer: swaps in `GO`
    /// (`Release`) and wakes the address if the swapped-out value said a
    /// waiter parked.
    ///
    /// # Safety
    ///
    /// `this` must point to a live `WaitWord` *at the moment of the
    /// call*. Immediately after the internal swap the pointee may be
    /// freed or recycled by the woken thread (MCS successors free their
    /// node when their context drops); that is fine — the wake syscall
    /// takes only the address and the kernel never dereferences a
    /// `FUTEX_WAKE` target.
    #[inline]
    pub unsafe fn release_raw(this: *const WaitWord) {
        let prev = (*this).0.swap(GO, Ordering::Release);
        #[cfg(feature = "park")]
        if prev & PARKED_BIT != 0 {
            Self::wake_raw(this);
        }
        #[cfg(not(feature = "park"))]
        let _ = prev;
    }

    #[cfg(feature = "park")]
    #[cold]
    unsafe fn wake_raw(this: *const WaitWord) {
        #[cfg(any(test, feature = "testkit"))]
        if mutant::wakes_skipped() {
            return;
        }
        stats::on_wake();
        futex::wake_addr(this as *const u32, 1);
    }
}

/// Deadline-aware extensions of the wait/grant protocol (the `deadline`
/// feature). Two additions to the state machine: a waiter may leave by
/// publishing [`ABANDONED`], and waits must treat `GO` *or* an abandoned
/// marker as terminal (a CLH waiter watches its predecessor's word,
/// which the predecessor may abandon).
///
/// Deadline-bounded waits are **spin-only** — they never park, even
/// with the `park` feature. The deadline bounds how long the caller
/// burns, and a waiter that may stop listening at any moment cannot
/// safely share the parked-bit wake protocol with the releaser.
#[cfg(feature = "deadline")]
impl WaitWord {
    /// Whether `value` is terminal: the wait is over either way.
    #[inline]
    fn is_done(value: u32) -> bool {
        value == GO || value & ABANDONED != 0
    }

    /// Spin-only bounded wait: polls until the word is terminal
    /// (returning the terminal value) or the deadline expires
    /// (returning `None`). A grant that races the clock edge wins: the
    /// word is re-checked once after expiry before giving up.
    pub(crate) fn wait_deadline(
        &self,
        deadline: std::time::Instant,
        site: &'static str,
    ) -> Option<u32> {
        let mut backoff = Backoff::new();
        let mut poll = crate::deadline::DeadlinePoll::new(deadline, site);
        loop {
            let v = self.0.load(Ordering::Acquire);
            if Self::is_done(v) {
                return Some(v);
            }
            if poll.expired() {
                let v = self.0.load(Ordering::Acquire);
                return if Self::is_done(v) { Some(v) } else { None };
            }
            backoff.snooze();
        }
    }

    /// Waiter-side abandonment of an *armed own word* (MCS): CAS
    /// `WAIT → ABANDONED`. Returns `false` if the grant landed first —
    /// the caller owns the lock after all and must proceed as acquired.
    /// The CAS and the granter's swap serialize on the word, so exactly
    /// one side wins.
    pub(crate) fn try_abandon(&self) -> bool {
        // The failure value can only be GO: this waiter never parked
        // (deadline waits are spin-only) and nobody else writes WAIT.
        self.0
            .compare_exchange(WAIT, ABANDONED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Waiter-side abandonment of an own word a *successor* watches
    /// (CLH): swap in `ABANDONED` unconditionally — only this owner
    /// ever grants through the word, so there is no grant to race —
    /// and wake the successor if it parked on the word.
    pub(crate) fn abandon(&self) {
        let prev = self.0.swap(ABANDONED, Ordering::Release);
        debug_assert_ne!(prev, GO, "abandoning a word nobody waits through");
        #[cfg(feature = "park")]
        if prev & PARKED_BIT != 0 {
            // SAFETY: `self` is a live reference.
            unsafe { Self::wake_raw(self) };
        }
        #[cfg(not(feature = "park"))]
        let _ = prev;
    }

    /// [`release_raw`](WaitWord::release_raw) that also reports what it
    /// swapped out, so an MCS releaser can detect an abandoned
    /// successor (`ABANDONED` in the return) and keep granting down the
    /// queue.
    ///
    /// # Safety
    ///
    /// Same contract as [`release_raw`](WaitWord::release_raw).
    pub(crate) unsafe fn grant_raw(this: *const WaitWord) -> u32 {
        let prev = (*this).0.swap(GO, Ordering::Release);
        #[cfg(feature = "park")]
        if prev & PARKED_BIT != 0 {
            Self::wake_raw(this);
        }
        prev
    }

    /// [`wait`](WaitWord::wait) generalized to both terminal values:
    /// returns the terminal word (`GO`, or carrying [`ABANDONED`]).
    /// Unbounded; parks on budget exhaustion like `wait`. CLH waiters
    /// use this for their predecessor's word, which may be granted *or*
    /// abandoned under them.
    pub(crate) fn wait_observe(&self, budget: u32) -> u32 {
        let budget = if cfg!(feature = "park") {
            budget
        } else {
            SPIN_FOREVER
        };
        let mut waiter = Waiter::new(budget);
        loop {
            let v = self.0.load(Ordering::Acquire);
            if Self::is_done(v) {
                return v;
            }
            if waiter.spin() {
                continue;
            }
            #[cfg(feature = "park")]
            return self.park_until_done();
        }
    }

    /// The blocking tail of [`wait_observe`](WaitWord::wait_observe):
    /// [`park_until_go`](WaitWord::park_until_go) generalized to both
    /// terminal values. An abandoning owner's swap clears the parked
    /// bit and wakes us (see [`abandon`](WaitWord::abandon)).
    #[cfg(feature = "park")]
    #[cold]
    fn park_until_done(&self) -> u32 {
        let prev = self.0.fetch_or(PARKED_BIT, Ordering::Acquire);
        if Self::is_done(prev) {
            return prev;
        }
        let t0 = std::time::Instant::now();
        stats::on_park();
        let terminal;
        loop {
            let cur = self.0.load(Ordering::Acquire);
            if Self::is_done(cur) {
                terminal = cur;
                break;
            }
            #[cfg(any(test, feature = "testkit"))]
            {
                // Stall-detector evidence, as in `park_until_go`: a
                // timed-out sleep that finds the word already terminal
                // with no wake issued since we slept is a rescue.
                let wakes_before = stats::WAKES.load(Ordering::SeqCst);
                if futex::wait(&self.0, cur) == futex::Unblock::TimedOut
                    && Self::is_done(self.0.load(Ordering::Acquire))
                    && stats::WAKES.load(Ordering::SeqCst) == wakes_before
                {
                    testkit::record_rescue();
                }
            }
            #[cfg(not(any(test, feature = "testkit")))]
            let _ = futex::wait(&self.0, cur);
        }
        stats::on_unpark(t0.elapsed());
        terminal
    }
}

// ---------------------------------------------------------------------
// ParkSpot: an eventcount for polling locks.
// ---------------------------------------------------------------------

/// Eventcount a polling lock's waiters park on when their spin budget
/// runs out.
///
/// The waiter/releaser pairing is a store-buffering (Dekker) argument
/// with the barrier cost shifted onto the waiter (see [`asym`]):
///
/// * waiter: `parked += 1` → heavy barrier (`membarrier`, or a `SeqCst`
///   fence where unavailable) → re-check condition → only if still
///   false, `futex_wait(epoch, e)` with `e` read before the announce;
/// * releaser: make condition true (plain `Release` store) → light
///   barrier (nothing, or the paired `SeqCst` fence) → read `parked` →
///   if non-zero, `epoch += 1` and `futex_wake`.
///
/// The barrier pair means at least one side sees the other: either the
/// waiter's re-check sees the condition and it never sleeps, or the
/// releaser sees `parked > 0` and wakes. A wake that races the waiter's
/// descent into the kernel bumps `epoch` first, so the `futex_wait`
/// fails with `EAGAIN` instead of sleeping — the no-lost-wakeup
/// guarantee (DESIGN §11).
#[cfg(feature = "park")]
#[derive(Debug)]
pub struct ParkSpot {
    /// Wake-generation word the futex sleeps on.
    epoch: AtomicU32,
    /// Number of waiters announced as (possibly) sleeping.
    parked: AtomicU32,
}

#[cfg(feature = "park")]
impl Default for ParkSpot {
    fn default() -> Self {
        ParkSpot::new()
    }
}

#[cfg(feature = "park")]
impl ParkSpot {
    /// A fresh spot with no sleepers.
    pub const fn new() -> Self {
        ParkSpot {
            epoch: AtomicU32::new(0),
            parked: AtomicU32::new(0),
        }
    }

    /// Blocks until `cond()` is true: spins `budget` rounds, then parks
    /// until a releaser's wake (re-spinning a fresh budget after each
    /// wake, since another thread may have consumed the condition).
    ///
    /// `cond` must be a side-effect-free *pure read* of shared state
    /// (with at least `Acquire` ordering). The wait machinery re-invokes
    /// it freely — before sleeping, after timed-out test-build sleeps —
    /// so a *consuming* condition (a test-and-set, a CAS) does not
    /// belong here: wait on a pure read and retry the consuming step in
    /// an outer loop instead (see `TtasLock::acquire_inner`). As defence
    /// in depth, any `cond() == true` observed inside the park machinery
    /// propagates back here and returns without another invocation, so
    /// one successful call is never swallowed.
    ///
    /// Every writer that makes the condition true must call
    /// [`wake_one`] / [`wake_all`] afterwards (see the type docs for
    /// why that cannot lose a wakeup).
    ///
    /// [`wake_one`]: ParkSpot::wake_one
    /// [`wake_all`]: ParkSpot::wake_all
    #[inline]
    pub fn wait_until(&self, budget: u32, mut cond: impl FnMut() -> bool) {
        let mut waiter = Waiter::new(budget);
        loop {
            if cond() {
                return;
            }
            if waiter.spin() {
                continue;
            }
            if self.park(&mut cond) {
                // `cond` returned true inside `park`; that observation
                // already consumed the condition for us — re-invoking
                // could fail (and, for an impure cond, double-fire).
                return;
            }
            waiter.reset();
        }
    }

    /// One park episode: announce, re-check, sleep, retract. Returns
    /// `true` iff `cond()` was invoked in here and returned true; the
    /// caller must treat the condition as satisfied and must not invoke
    /// `cond` again.
    #[cold]
    fn park(&self, cond: &mut impl FnMut() -> bool) -> bool {
        let e = self.epoch.load(Ordering::Relaxed);
        self.parked.fetch_add(1, Ordering::SeqCst);
        asym::heavy();
        if cond() {
            self.parked.fetch_sub(1, Ordering::SeqCst);
            return true;
        }
        let t0 = std::time::Instant::now();
        stats::on_park();
        #[cfg(any(test, feature = "testkit"))]
        let wakes_before = stats::WAKES.load(Ordering::SeqCst);
        let outcome = futex::wait(&self.epoch, e);
        // A wake consumes the announce on the waker's side (see
        // `wake_slow`); only an unwoken return — stale epoch, signal,
        // timeout — retracts it here. The split keeps `parked` accurate
        // the instant the wake is issued, not when this thread next gets
        // CPU: on an oversubscribed host that lag had every subsequent
        // release re-reading `parked > 0` and paying a wake syscall for
        // a sleeper that was already gone.
        let cond_hit = match outcome {
            futex::Unblock::Woken => false,
            futex::Unblock::Spurious => {
                self.parked.fetch_sub(1, Ordering::SeqCst);
                false
            }
            #[cfg(any(test, feature = "testkit"))]
            futex::Unblock::TimedOut => {
                self.parked.fetch_sub(1, Ordering::SeqCst);
                // Stall-detector evidence (see `testkit`): a timed-out
                // sleep whose condition is already true, with no wake
                // issued anywhere since we slept, means a releaser-side
                // wake went missing. The `cond` result propagates to the
                // caller — never swallowed as detector-only evidence.
                let hit = cond();
                if hit && stats::WAKES.load(Ordering::SeqCst) == wakes_before {
                    testkit::record_rescue();
                }
                hit
            }
        };
        stats::on_unpark(t0.elapsed());
        cond_hit
    }

    /// Wakes one parked waiter, if any. Call *after* making the waiters'
    /// condition true. No sleeper means no syscall.
    #[inline]
    pub fn wake_one(&self) {
        self.wake(1);
    }

    /// Wakes every parked waiter — for grant-word locks (ticket) where
    /// sleepers wait for different values and only the right one can
    /// proceed.
    #[inline]
    pub fn wake_all(&self) {
        self.wake(i32::MAX as u32);
    }

    #[inline]
    fn wake(&self, n: u32) {
        // The asymmetric barrier (see [`asym`]) completes the Dekker
        // pairing: either the waiter's `parked` increment is visible
        // here, or the waiter's post-membarrier re-check observes the
        // condition the caller just published and never sleeps. With a
        // native membarrier `light()` is a predicted-not-taken branch,
        // so a release with no sleepers costs one Relaxed load.
        asym::light();
        if self.parked.load(Ordering::Relaxed) == 0 {
            return;
        }
        self.wake_slow(n);
    }

    #[cold]
    fn wake_slow(&self, n: u32) {
        #[cfg(any(test, feature = "testkit"))]
        if mutant::wakes_skipped() {
            return;
        }
        stats::on_wake();
        // The bump must be ordered before the wake so a waiter racing
        // into futex_wait sees a changed epoch (EAGAIN) instead of
        // sleeping through the wake.
        self.epoch.fetch_add(1, Ordering::SeqCst);
        // Consume the announce for every sleeper the kernel dequeued:
        // they stop being wake-worthy the moment the syscall returns,
        // not when they are next scheduled. Sleepers that left the queue
        // by other means (stale epoch, signal, timeout) retract their
        // own announce in `park`, so the two never double-count.
        let dequeued = futex::wake(&self.epoch, n);
        if dequeued > 0 {
            self.parked.fetch_sub(dequeued, Ordering::SeqCst);
        }
    }
}

// ---------------------------------------------------------------------
// Park/wake accounting.
// ---------------------------------------------------------------------

/// Total parks (kernel blocks) since process start.
#[cfg(feature = "park")]
pub fn parks() -> u64 {
    stats::PARKS.load(Ordering::Relaxed)
}

/// Total releaser-side wakes issued since process start.
#[cfg(feature = "park")]
pub fn wakes() -> u64 {
    stats::WAKES.load(Ordering::Relaxed)
}

/// Installs (or clears) a parked-duration recorder, called with the
/// nanoseconds a waiter spent blocked, once per park episode, on the
/// woken thread. `clof-core` uses this to feed the `clof-obs` histogram
/// and the profiler's per-site park attribution.
#[cfg(feature = "park")]
pub fn set_parked_recorder(f: Option<fn(u64)>) {
    stats::PARKED_RECORDER.store(f.map_or(0, |f| f as usize), Ordering::Release);
}

/// Installs (or clears) a wake recorder, called once per releaser-side
/// wake (after the counter bump, before the syscall).
#[cfg(feature = "park")]
pub fn set_wake_recorder(f: Option<fn()>) {
    stats::WAKE_RECORDER.store(f.map_or(0, |f| f as usize), Ordering::Release);
}

#[cfg(feature = "park")]
mod stats {
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    pub static PARKS: AtomicU64 = AtomicU64::new(0);
    pub static WAKES: AtomicU64 = AtomicU64::new(0);
    pub static PARKED_RECORDER: AtomicUsize = AtomicUsize::new(0);
    pub static WAKE_RECORDER: AtomicUsize = AtomicUsize::new(0);

    #[inline]
    pub fn on_park() {
        PARKS.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn on_unpark(parked_for: std::time::Duration) {
        let p = PARKED_RECORDER.load(Ordering::Acquire);
        if p != 0 {
            let f: fn(u64) = unsafe { std::mem::transmute(p) };
            f(parked_for.as_nanos() as u64);
        }
    }

    #[inline]
    pub fn on_wake() {
        WAKES.fetch_add(1, Ordering::Relaxed);
        let p = WAKE_RECORDER.load(Ordering::Acquire);
        if p != 0 {
            let f: fn() = unsafe { std::mem::transmute(p) };
            f();
        }
    }
}

// ---------------------------------------------------------------------
// Mutant hooks + stall detector (test builds only).
// ---------------------------------------------------------------------

/// Deleted-wake mutant switch for the mutant-kill suite: with wakes
/// skipped, every releaser still publishes its condition but never
/// issues the futex wake — exactly the bug class the stall detector
/// must catch.
#[cfg(all(feature = "park", any(test, feature = "testkit")))]
pub mod mutant {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SKIP_WAKE: AtomicBool = AtomicBool::new(false);

    /// Arms (or disarms) the deleted-wake mutant.
    pub fn skip_wake(on: bool) {
        SKIP_WAKE.store(on, Ordering::SeqCst);
    }

    pub(crate) fn wakes_skipped() -> bool {
        SKIP_WAKE.load(Ordering::Relaxed)
    }
}

/// No-lost-wakeup stall detector (native-futex test builds).
///
/// Test builds park with a bounded timeout instead of forever. A waiter
/// whose timed wait expires *while its condition is already true* and
/// *while the process-wide wake counter has not moved since it slept*
/// was woken by the timeout, not by a releaser — a **timeout rescue**,
/// possible only when a releaser-side wake went missing (the Dekker
/// pairing rules out benign lost wakes, and a wake anywhere in the
/// process since the sleep voids the evidence). Enough rescues panic
/// with a `clof-park stall` message, which the oracle converts into a
/// failure; the deleted-wake mutant dies here within milliseconds.
#[cfg(all(feature = "park", any(test, feature = "testkit")))]
pub mod testkit {
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Timed-wait quantum test builds use instead of sleeping forever.
    pub const WAIT_TIMEOUT_NS: u64 = 2_000_000;

    /// Default rescue budget before the stall panic.
    pub const DEFAULT_STALL_BOUND: u32 = 4;

    static STALL_BOUND: AtomicU32 = AtomicU32::new(DEFAULT_STALL_BOUND);
    static RESCUES: AtomicU32 = AtomicU32::new(0);

    /// Sets the rescue budget (and forgets rescues seen so far).
    pub fn set_stall_bound(bound: u32) {
        STALL_BOUND.store(bound.max(1), Ordering::SeqCst);
        RESCUES.store(0, Ordering::SeqCst);
    }

    /// Timeout rescues observed since the last reset.
    pub fn rescues() -> u32 {
        RESCUES.load(Ordering::SeqCst)
    }

    /// Forgets recorded rescues (test hygiene between cases).
    pub fn reset_rescues() {
        RESCUES.store(0, Ordering::SeqCst);
    }

    pub(crate) fn record_rescue() {
        let n = RESCUES.fetch_add(1, Ordering::SeqCst) + 1;
        let bound = STALL_BOUND.load(Ordering::Relaxed);
        if n >= bound {
            panic!(
                "clof-park stall: {n} timeout rescue(s) — a parked waiter's \
                 condition came true but no releaser-side wake was issued \
                 (deleted-wake bug class)"
            );
        }
    }
}

// ---------------------------------------------------------------------
// The futex backend.
// ---------------------------------------------------------------------

#[cfg(feature = "park")]
mod futex {
    #![allow(clippy::missing_safety_doc)]

    pub(super) const NATIVE: bool = cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ));

    /// How a [`wait`] came back. The backend never invokes caller code
    /// (conditions stay with the caller — see `ParkSpot::wait_until`'s
    /// purity contract); it only reports what the kernel said.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub(super) enum Unblock {
        /// A `FUTEX_WAKE` dequeued this thread: the waker counted us
        /// (and, for `ParkSpot`, consumed our parked announce).
        Woken,
        /// Stale expected value, signal, or a degraded-nap expiry — no
        /// waker counted us; the waiter retracts its own announce.
        Spurious,
        /// The bounded test-build sleep expired (native futex test
        /// builds only); the caller runs the stall-detector rescue
        /// check.
        #[cfg(any(test, feature = "testkit"))]
        TimedOut,
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    mod imp {
        use std::sync::atomic::AtomicU32;

        const FUTEX_WAIT: u64 = 0;
        const FUTEX_WAKE: u64 = 1;
        const FUTEX_PRIVATE_FLAG: u64 = 128;

        const EAGAIN: isize = -11;
        const EINTR: isize = -4;
        #[cfg(any(test, feature = "testkit"))]
        const ETIMEDOUT: isize = -110;

        /// Relative timeout for `FUTEX_WAIT` (the kernel's timespec ABI
        /// on both supported 64-bit targets).
        #[repr(C)]
        struct Timespec {
            tv_sec: i64,
            tv_nsec: i64,
        }

        #[cfg(target_arch = "x86_64")]
        #[inline]
        unsafe fn sys_futex(uaddr: *const u32, op: u64, val: u32, timeout: *const Timespec) -> isize {
            let ret: isize;
            core::arch::asm!(
                "syscall",
                inlateout("rax") 202u64 => ret, // __NR_futex
                in("rdi") uaddr,
                in("rsi") op,
                in("rdx") val as u64,
                in("r10") timeout,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
            ret
        }

        #[cfg(target_arch = "aarch64")]
        #[inline]
        unsafe fn sys_futex(uaddr: *const u32, op: u64, val: u32, timeout: *const Timespec) -> isize {
            let ret: isize;
            core::arch::asm!(
                "svc 0",
                in("x8") 98u64, // __NR_futex
                inlateout("x0") uaddr as u64 => ret,
                in("x1") op,
                in("x2") val as u64,
                in("x3") timeout,
                options(nostack),
            );
            ret
        }

        /// Sleeps while `*word == expected`. Production builds sleep
        /// untimed; test builds use a bounded timeout so the caller can
        /// run the stall detector's rescue check on expiry.
        ///
        /// A plain 0 return from the kernel means a `FUTEX_WAKE`
        /// dequeued this thread; a signal or stale expected value means
        /// no waker counted us — the caller uses the distinction to
        /// decide who retracts the parked announce.
        pub(crate) fn wait(word: &AtomicU32, expected: u32) -> super::Unblock {
            #[cfg(not(any(test, feature = "testkit")))]
            {
                let r = unsafe {
                    sys_futex(
                        word.as_ptr(),
                        FUTEX_WAIT | FUTEX_PRIVATE_FLAG,
                        expected,
                        std::ptr::null(),
                    )
                };
                match r {
                    0 => super::Unblock::Woken,
                    EAGAIN | EINTR => super::Unblock::Spurious,
                    e => panic!("{}: futex wait failed ({e})", super::super::PARK_MARKER),
                }
            }
            #[cfg(any(test, feature = "testkit"))]
            {
                let ts = Timespec {
                    tv_sec: 0,
                    tv_nsec: super::super::testkit::WAIT_TIMEOUT_NS as i64,
                };
                let r = unsafe {
                    sys_futex(word.as_ptr(), FUTEX_WAIT | FUTEX_PRIVATE_FLAG, expected, &ts)
                };
                match r {
                    0 => super::Unblock::Woken,
                    EAGAIN | EINTR => super::Unblock::Spurious,
                    ETIMEDOUT => super::Unblock::TimedOut,
                    e => panic!("{}: futex wait failed ({e})", super::super::PARK_MARKER),
                }
            }
        }

        /// Wakes up to `n` sleepers on `addr`. Never dereferences.
        pub(crate) unsafe fn wake_addr(addr: *const u32, n: u32) {
            let r = sys_futex(addr, FUTEX_WAKE | FUTEX_PRIVATE_FLAG, n, std::ptr::null());
            if r < 0 {
                panic!("{}: futex wake failed ({r})", super::super::PARK_MARKER);
            }
        }

        /// Wakes up to `n` sleepers on `word`, returning how many
        /// threads the kernel actually dequeued.
        pub(crate) fn wake(word: &AtomicU32, n: u32) -> u32 {
            let r = unsafe {
                sys_futex(
                    word.as_ptr(),
                    FUTEX_WAKE | FUTEX_PRIVATE_FLAG,
                    n,
                    std::ptr::null(),
                )
            };
            if r < 0 {
                panic!("{}: futex wake failed ({r})", super::super::PARK_MARKER);
            }
            r as u32
        }
    }

    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    mod imp {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::time::Duration;

        /// Degraded parking: a bounded nap instead of a futex sleep.
        /// The caller's outer loop re-checks on expiry, so no wake side
        /// is needed — waiters poll at ~10 kHz while blocked, which
        /// still frees the core for the lock owner. Nappers are never
        /// dequeued by a waker, so this always reports `Spurious` (the
        /// waiter retracts its own announce); it never reports
        /// `TimedOut`, which keeps the stall detector off degraded
        /// hosts where timeouts are routine rather than evidence.
        pub(crate) fn wait(word: &AtomicU32, expected: u32) -> super::Unblock {
            if word.load(Ordering::Acquire) != expected {
                return super::Unblock::Spurious;
            }
            std::thread::park_timeout(Duration::from_micros(100));
            super::Unblock::Spurious
        }

        pub(crate) unsafe fn wake_addr(_addr: *const u32, _n: u32) {}

        pub(crate) fn wake(_word: &AtomicU32, _n: u32) -> u32 {
            0
        }
    }

    pub(super) use imp::{wait, wake, wake_addr};
}

// ---------------------------------------------------------------------
// Asymmetric Dekker barrier: free releases, waiter pays.
// ---------------------------------------------------------------------

/// The sleep/wake race needs a StoreLoad barrier between the releaser's
/// condition-publish store and its read of the `parked` count — but a
/// symmetric `SeqCst` fence (or `SeqCst` publish) taxes *every* release
/// ~10 ns for a race that only matters when someone is about to sleep.
/// This module makes the barrier asymmetric: releases run plain
/// Release-store + Relaxed-load, and the *waiter* — already on a
/// syscall-bound path — issues `membarrier(PRIVATE_EXPEDITED)`, which
/// IPIs every core running a thread of this process into a full barrier.
/// If the releaser's `parked` read had already committed when the IPI
/// landed, the same barrier flushed its publish store, so the waiter's
/// post-membarrier re-check sees the condition; otherwise the read
/// happens after the waiter's announce and the releaser wakes. Same
/// guarantee as two `SeqCst` fences, paid only by the side that sleeps
/// (the folly `AsymmetricMemoryBarrier` / .NET `FlushProcessWriteBuffers`
/// pattern). Hosts without the expedited command fall back to symmetric
/// fences on both sides.
#[cfg(feature = "park")]
mod asym {
    use std::sync::atomic::{AtomicU8, Ordering};

    const UNKNOWN: u8 = 0;
    const NATIVE: u8 = 1;
    const FALLBACK: u8 = 2;

    /// One-shot probe result; transitions `UNKNOWN` → one of the other
    /// two exactly once, so waiters and releasers can never disagree on
    /// which protocol is live (a stale `UNKNOWN` read just takes the
    /// conservative fence).
    static STATE: AtomicU8 = AtomicU8::new(UNKNOWN);

    /// Releaser side: runs before the `parked` read, after the
    /// condition-publish store.
    #[inline]
    pub(super) fn light() {
        match STATE.load(Ordering::Relaxed) {
            NATIVE => {} // waiters' membarrier carries the ordering
            FALLBACK => std::sync::atomic::fence(Ordering::SeqCst),
            _ => light_cold(),
        }
    }

    #[cold]
    fn light_cold() {
        init();
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    /// Waiter side: runs between the `parked` announce and the condition
    /// re-check. Cold by construction — callers only get here with an
    /// exhausted spin budget, about to enter the kernel anyway.
    pub(super) fn heavy() {
        let state = match STATE.load(Ordering::Relaxed) {
            UNKNOWN => init(),
            s => s,
        };
        if state == NATIVE {
            imp::expedited();
        } else {
            std::sync::atomic::fence(Ordering::SeqCst);
        }
    }

    /// Probes and (if available) registers the expedited command.
    /// Registration is per-process and idempotent, so racing
    /// initializers all land on the same value.
    #[cold]
    fn init() -> u8 {
        let state = if imp::register() { NATIVE } else { FALLBACK };
        STATE.store(state, Ordering::Relaxed);
        state
    }

    /// Whether the one-syscall probe found the expedited command (for
    /// diagnostics; forced by the first park or wake).
    pub(super) fn is_native() -> bool {
        let state = match STATE.load(Ordering::Relaxed) {
            UNKNOWN => init(),
            s => s,
        };
        state == NATIVE
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    mod imp {
        const MEMBARRIER_CMD_QUERY: u64 = 0;
        const MEMBARRIER_CMD_PRIVATE_EXPEDITED: u64 = 1 << 3;
        const MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED: u64 = 1 << 4;

        #[cfg(target_arch = "x86_64")]
        #[inline]
        unsafe fn sys_membarrier(cmd: u64) -> isize {
            let ret: isize;
            core::arch::asm!(
                "syscall",
                inlateout("rax") 324u64 => ret, // __NR_membarrier
                in("rdi") cmd,
                in("rsi") 0u64, // flags
                in("rdx") 0u64, // cpu_id (unused without RSEQ flag)
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
            ret
        }

        #[cfg(target_arch = "aarch64")]
        #[inline]
        unsafe fn sys_membarrier(cmd: u64) -> isize {
            let ret: isize;
            core::arch::asm!(
                "svc 0",
                in("x8") 283u64, // __NR_membarrier
                inlateout("x0") cmd => ret,
                in("x1") 0u64, // flags
                in("x2") 0u64, // cpu_id
                options(nostack),
            );
            ret
        }

        /// Probes for and registers the private-expedited command.
        pub(super) fn register() -> bool {
            let mask = unsafe { sys_membarrier(MEMBARRIER_CMD_QUERY) };
            if mask < 0 || (mask as u64) & MEMBARRIER_CMD_PRIVATE_EXPEDITED == 0 {
                return false;
            }
            unsafe { sys_membarrier(MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED) == 0 }
        }

        /// Full barrier on every core running a thread of this process.
        /// Only called after a successful [`register`], so a failure
        /// means the protocol's ordering guarantee is gone — fail loudly
        /// like the futex paths do.
        pub(super) fn expedited() {
            let r = unsafe { sys_membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED) };
            if r != 0 {
                panic!("{}: membarrier failed ({r})", super::super::PARK_MARKER);
            }
        }
    }

    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    mod imp {
        pub(super) fn register() -> bool {
            false
        }

        pub(super) fn expedited() {
            unreachable!("expedited barrier without a native membarrier")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn waiter_spins_within_budget_then_reports_exhaustion() {
        let mut w = Waiter::new(3);
        assert!(w.spin());
        assert!(w.spin());
        assert!(w.spin());
        assert!(!w.spin(), "budget of 3 exhausts on the fourth round");
        w.reset();
        assert!(w.spin(), "reset restores the budget");
    }

    #[test]
    fn spin_forever_budget_never_exhausts() {
        let mut w = Waiter::new(SPIN_FOREVER);
        for _ in 0..10_000 {
            assert!(w.spin());
        }
    }

    #[test]
    fn wait_word_handoff_spin_only() {
        let word = Arc::new(WaitWord::new_wait());
        let w2 = Arc::clone(&word);
        let t = std::thread::spawn(move || w2.wait(SPIN_FOREVER));
        std::thread::yield_now();
        unsafe { WaitWord::release_raw(&*word) };
        t.join().expect("waiter returns after release");
        assert!(word.is_go());
    }

    #[cfg(feature = "park")]
    #[test]
    fn wait_word_parks_and_is_woken() {
        testkit::reset_rescues();
        let word = Arc::new(WaitWord::new_wait());
        let parks_before = parks();
        let w2 = Arc::clone(&word);
        // Budget 0: the waiter parks immediately.
        let t = std::thread::spawn(move || w2.wait(0));
        // Give the waiter time to actually block.
        std::thread::sleep(std::time::Duration::from_millis(5));
        unsafe { WaitWord::release_raw(&*word) };
        t.join().expect("parked waiter returns after release");
        assert!(parks() > parks_before, "the waiter really parked");
        assert_eq!(testkit::rescues(), 0, "no rescue on a correct hand-off");
    }

    #[cfg(feature = "park")]
    #[test]
    fn asym_barrier_probe_is_stable() {
        // Forces the membarrier probe and checks it settles on one
        // answer; which answer depends on the host kernel, and both
        // protocol modes are exercised by the park/wake tests around
        // this one in whichever mode the probe picked.
        let first = has_asym_barrier();
        for _ in 0..3 {
            assert_eq!(first, has_asym_barrier(), "probe result is stable");
        }
    }

    #[cfg(feature = "park")]
    #[test]
    fn park_spot_wakes_parked_waiter() {
        testkit::reset_rescues();
        let spot = Arc::new(ParkSpot::new());
        let flag = Arc::new(AtomicBool::new(false));
        let (s2, f2) = (Arc::clone(&spot), Arc::clone(&flag));
        let t = std::thread::spawn(move || {
            s2.wait_until(0, || f2.load(Ordering::Acquire));
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        flag.store(true, Ordering::Release);
        spot.wake_one();
        t.join().expect("waiter observes the condition");
        assert_eq!(testkit::rescues(), 0, "no rescue on a correct wake");
    }

    #[cfg(feature = "park")]
    #[test]
    fn park_spot_consuming_cond_is_never_swallowed() {
        // Defence in depth for the purity contract: a condition that can
        // fire only once (a TAS-like consuming step, which callers are
        // told to keep out of `wait_until`) must still not be stranded.
        // Budget 0 sends the waiter straight into `park`, whose
        // pre-sleep re-check is the second invocation; the old code
        // discarded that `true` and re-invoked (now false) forever.
        let spot = ParkSpot::new();
        let mut calls = 0u32;
        spot.wait_until(0, || {
            calls += 1;
            calls == 2
        });
        assert_eq!(calls, 2, "the true result propagated without a re-call");
        assert_eq!(spot.parked.load(Ordering::SeqCst), 0);
    }

    #[cfg(feature = "park")]
    #[test]
    fn park_spot_cond_true_before_sleep_skips_the_kernel() {
        let spot = ParkSpot::new();
        // Condition true from the start: wait_until must return without
        // announcing or sleeping.
        spot.wait_until(0, || true);
        assert_eq!(spot.parked.load(Ordering::SeqCst), 0);
    }
}
