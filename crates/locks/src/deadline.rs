//! Deadline-bounded acquisition: the off-by-default `deadline` feature.
//!
//! Every lock in this crate blocks forever by design — right for the
//! paper's dedicated-core experiments, wrong for a service that must
//! bound its worst case: one stalled (or panicked) holder wedges every
//! waiter transitively. This module adds the shared machinery behind
//! [`RawLock::try_acquire_until`](crate::RawLock::try_acquire_until):
//!
//! * [`DeadlinePoll`] — the per-wait expiry accountant: a cheap
//!   `expired()` check folded into each lock's wait loop, which also
//!   consults the [`forced`] injection stream so the testkit can open
//!   abandonment windows deterministically.
//! * Abandon/skip accounting ([`abandons`], [`skips`]) with recorder
//!   hooks `clof-core` uses to feed `clof-obs`, mirroring the park
//!   layer's counters.
//! * The [`mutant`] switch for the mutant-kill suite (deleting the
//!   abandoned-node skip in the MCS release path).
//!
//! The abandonment protocols themselves live with their locks:
//!
//! * **MCS/CLH/Hemlock** (queue locks): HMCS-T-style *node
//!   abandonment* (Chabbi et al.) — the timed-out waiter marks its
//!   queue node abandoned and leaves; a later releaser (or redirected
//!   successor) skips and reclaims the node. The waiter's context gets
//!   a fresh node, so a timeout never blocks and never leaks a live
//!   queue position.
//! * **Ticket/Anderson** (slot locks): a granted slot cannot be
//!   abandoned — FIFO hand-off is positional — so a timed-out waiter
//!   first tries to *cancel* its ticket (a tail CAS, possible only for
//!   the youngest ticket) and otherwise waits for its turn and
//!   immediately hands it forward (release-on-grant).
//! * **TTAS/backoff** (unqueued): plain bounded retry; there is no
//!   queue state to abandon.
//!
//! Deadline waits never park, even with the `park` feature: a deadline
//! bounds how long the caller burns, and the bounded spin is itself the
//! timeout mechanism (parking would need a third wake path for a waiter
//! that may stop listening at any moment).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Marker literal proving deadline code is linked in: it appears in the
/// `clof deadline` CLI banner, and CI greps for its *absence* in the
/// default binary.
pub const DEADLINE_MARKER: &str = "clof-deadline-v1";

/// Polls one wait's deadline, folding in forced-timeout injection.
///
/// Each lock's deadline wait loop calls [`expired`](DeadlinePoll::expired)
/// once per spin round. The forced stream fires first so injected
/// timeouts open abandonment windows at schedule points wall clocks
/// almost never hit.
#[derive(Debug)]
pub struct DeadlinePoll {
    deadline: Instant,
    site: &'static str,
}

impl DeadlinePoll {
    /// A poller for one wait, tagged with the lock's injection site.
    #[inline]
    pub fn new(deadline: Instant, site: &'static str) -> Self {
        DeadlinePoll { deadline, site }
    }

    /// Whether this wait's budget is gone (by clock or by injection).
    #[inline]
    pub fn expired(&mut self) -> bool {
        if forced_fire(self.site) {
            return true;
        }
        Instant::now() >= self.deadline
    }
}

// ---------------------------------------------------------------------
// Abandon/skip accounting.
// ---------------------------------------------------------------------

/// Waiter-side bailouts since process start: queue nodes abandoned
/// (MCS/CLH/Hemlock) plus turns handed forward (ticket/Anderson).
pub fn abandons() -> u64 {
    ABANDONS.load(Ordering::Relaxed)
}

/// Releaser-side reclaims since process start: abandoned queue nodes a
/// releaser (or redirected successor) skipped past and freed.
pub fn skips() -> u64 {
    SKIPS.load(Ordering::Relaxed)
}

/// Installs (or clears) an abandon recorder, called once per waiter-side
/// bailout. `clof-core` uses this to feed the `clof-obs` counters.
pub fn set_abandon_recorder(f: Option<fn()>) {
    ABANDON_RECORDER.store(f.map_or(0, |f| f as usize), Ordering::Release);
}

/// Installs (or clears) a skip recorder, called once per releaser-side
/// abandoned-node reclaim.
pub fn set_skip_recorder(f: Option<fn()>) {
    SKIP_RECORDER.store(f.map_or(0, |f| f as usize), Ordering::Release);
}

/// Records one waiter-side bailout originating *outside* the basic
/// locks — the composition layers' own bounded waits (the fast-path
/// TAS gate, the adaptation baton) give up through this so all
/// bailouts land in one stream. Basic locks use the internal hook.
pub fn note_abandon() {
    on_abandon();
}

static ABANDONS: AtomicU64 = AtomicU64::new(0);
static SKIPS: AtomicU64 = AtomicU64::new(0);
static ABANDON_RECORDER: AtomicUsize = AtomicUsize::new(0);
static SKIP_RECORDER: AtomicUsize = AtomicUsize::new(0);

#[inline]
pub(crate) fn on_abandon() {
    ABANDONS.fetch_add(1, Ordering::Relaxed);
    let p = ABANDON_RECORDER.load(Ordering::Acquire);
    if p != 0 {
        let f: fn() = unsafe { std::mem::transmute(p) };
        f();
    }
}

#[inline]
pub(crate) fn on_skip() {
    SKIPS.fetch_add(1, Ordering::Relaxed);
    let p = SKIP_RECORDER.load(Ordering::Acquire);
    if p != 0 {
        let f: fn() = unsafe { std::mem::transmute(p) };
        f();
    }
}

// ---------------------------------------------------------------------
// Forced-timeout injection (test builds only).
// ---------------------------------------------------------------------

/// Seeded forced-timeout stream, in the style of [`crate::chaos`]: when
/// enabled, each deadline wait round consults a global SplitMix64 stream
/// and, with probability `1/denom`, *pretends the deadline expired* —
/// which is the only way to open abandonment races (a waiter giving up
/// exactly as the grant lands) deterministically on a fast host. The
/// same caveats as chaos apply: decisions are a pure function of seed
/// and global arrival order, so a seed replays a failure class, not an
/// exact trace.
#[cfg(any(test, feature = "testkit"))]
pub mod forced {
    use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static STATE: AtomicU64 = AtomicU64::new(0);
    /// Forced-fire probability is `1/DENOM` per wait round.
    static DENOM: AtomicU32 = AtomicU32::new(64);
    /// Number of timeouts actually forced (diagnostics).
    static FIRES: AtomicU64 = AtomicU64::new(0);

    /// SplitMix64 output function over a Weyl-sequence state.
    #[inline]
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Enables injection: each wait round forces a timeout with
    /// probability `1/denom`.
    pub fn configure(seed: u64, denom: u32) {
        STATE.store(seed, Ordering::Relaxed);
        DENOM.store(denom.max(1), Ordering::Relaxed);
        FIRES.store(0, Ordering::Relaxed);
        ENABLED.store(true, Ordering::Relaxed);
    }

    /// Disables injection; polls return to a single relaxed load.
    pub fn disable() {
        ENABLED.store(false, Ordering::Relaxed);
    }

    /// Whether injection is currently enabled.
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Timeouts forced since the last [`configure`].
    pub fn fires() -> u64 {
        FIRES.load(Ordering::Relaxed)
    }

    #[inline]
    pub(super) fn fire(_site: &'static str) -> bool {
        if !ENABLED.load(Ordering::Relaxed) {
            return false;
        }
        fire_cold()
    }

    #[cold]
    fn fire_cold() -> bool {
        let s = STATE.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        let z = mix(s);
        let denom = DENOM.load(Ordering::Relaxed) as u64;
        if z % denom != 0 {
            return false;
        }
        FIRES.fetch_add(1, Ordering::Relaxed);
        true
    }
}

/// One forced-timeout poll. No-op (false) unless injection is compiled
/// in *and* enabled.
#[inline(always)]
fn forced_fire(site: &'static str) -> bool {
    #[cfg(any(test, feature = "testkit"))]
    {
        forced::fire(site)
    }
    #[cfg(not(any(test, feature = "testkit")))]
    {
        let _ = site;
        false
    }
}

// ---------------------------------------------------------------------
// Mutant hooks (test builds only).
// ---------------------------------------------------------------------

/// Deleted-skip mutant switch for the mutant-kill suite: with the skip
/// deleted, an MCS releaser that grants into an abandoned node simply
/// returns — the hand-off dies with the abandoned waiter and every
/// later waiter wedges. Exactly the bug class the stress oracle and the
/// acceptance deadline bound must catch.
#[cfg(any(test, feature = "testkit"))]
pub mod mutant {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SKIP_DELETED: AtomicBool = AtomicBool::new(false);

    /// Arms (or disarms) the deleted-abandoned-node-skip mutant.
    pub fn delete_abandoned_skip(on: bool) {
        SKIP_DELETED.store(on, Ordering::SeqCst);
    }

    pub(crate) fn abandoned_skip_deleted() -> bool {
        SKIP_DELETED.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn poll_expires_by_clock() {
        let mut p = DeadlinePoll::new(Instant::now() - Duration::from_millis(1), "test-past");
        assert!(p.expired(), "a past deadline is expired");
        let mut p = DeadlinePoll::new(Instant::now() + Duration::from_secs(3600), "test-future");
        assert!(!p.expired(), "a far-future deadline is not expired");
    }

    // One test for the injection lifecycle, not several: the forced
    // stream is global state and the harness runs tests concurrently.
    #[test]
    fn forced_lifecycle_disabled_noop_enabled_fires() {
        forced::disable();
        assert!(!forced::is_enabled());
        let mut p = DeadlinePoll::new(Instant::now() + Duration::from_secs(3600), "test-site");
        for _ in 0..100 {
            assert!(!p.expired());
        }
        forced::configure(7, 2);
        assert!(forced::is_enabled());
        let mut fired = false;
        for _ in 0..10_000 {
            if p.expired() {
                fired = true;
                break;
            }
        }
        assert!(fired, "no forced timeout in 10k polls at p=1/2");
        assert!(forced::fires() > 0);
        forced::disable();
    }
}
