//! Spin-wait policy shared by all locks in this crate.

use std::hint;
use std::thread;

/// Exponential spin backoff that degrades to yielding.
///
/// The paper's evaluation pins one thread per CPU on idle servers, where
/// pure spinning is appropriate. This library must also behave on
/// oversubscribed hosts (CI machines, laptops, the 1-CPU box this
/// reproduction was built on), where a spinning waiter can prevent the
/// lock holder from ever running. `Backoff` therefore spins with
/// [`core::hint::spin_loop`] for exponentially growing bursts and, once
/// the burst limit is reached, calls [`std::thread::yield_now`] so the
/// holder can make progress.
///
/// # Examples
///
/// ```
/// use clof_locks::Backoff;
/// use std::sync::atomic::{AtomicBool, Ordering};
///
/// let flag = AtomicBool::new(true);
/// let mut backoff = Backoff::new();
/// while !flag.load(Ordering::Acquire) {
///     backoff.snooze();
/// }
/// ```
#[derive(Debug)]
pub struct Backoff {
    step: u32,
    limit: u32,
}

impl Backoff {
    /// Default maximum exponent: bursts of up to `2^SPIN_LIMIT` spin hints.
    const SPIN_LIMIT: u32 = 7;

    /// Creates a fresh backoff in its shortest-burst state.
    #[inline]
    pub fn new() -> Self {
        Self::with_limit(Self::SPIN_LIMIT)
    }

    /// Creates a backoff whose burst ceiling is capped at `2^limit` spin
    /// hints (clamped to the default ceiling). Contended levels cap the
    /// ceiling low so a waiter that is about to lose the hand-off race
    /// does not sit in a long burst while the grant goes by.
    #[inline]
    pub fn with_limit(limit: u32) -> Self {
        Backoff {
            step: 0,
            limit: limit.min(Self::SPIN_LIMIT),
        }
    }

    /// Waits one round: a burst of spin hints, or a yield once saturated.
    #[inline]
    pub fn snooze(&mut self) {
        if self.step <= self.limit {
            for _ in 0..(1u32 << self.step) {
                hint::spin_loop();
            }
            self.step += 1;
        } else {
            thread::yield_now();
        }
    }

    /// Resets to the shortest-burst state.
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Whether the backoff has saturated and is now yielding.
    #[inline]
    pub fn is_yielding(&self) -> bool {
        self.step > self.limit
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

/// Spins until `cond` returns `true`, using [`Backoff`].
#[inline]
pub fn spin_until(mut cond: impl FnMut() -> bool) {
    let mut backoff = Backoff::new();
    while !cond() {
        backoff.snooze();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn backoff_saturates_to_yielding() {
        let mut b = Backoff::new();
        assert!(!b.is_yielding());
        for _ in 0..64 {
            b.snooze();
        }
        assert!(b.is_yielding());
        b.reset();
        assert!(!b.is_yielding());
    }

    #[test]
    fn spin_until_observes_concurrent_store() {
        let flag = Arc::new(AtomicBool::new(false));
        let setter = {
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || flag.store(true, Ordering::Release))
        };
        spin_until(|| flag.load(Ordering::Acquire));
        setter.join().unwrap();
    }

    #[test]
    fn spin_until_returns_immediately_when_true() {
        spin_until(|| true);
    }
}
