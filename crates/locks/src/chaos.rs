//! Seeded schedule perturbation for deterministic interleaving fuzzing.
//!
//! Hierarchical-lock bugs live in rare interleavings of the hand-off
//! paths — windows a free-running `cargo test` on a small host almost
//! never opens. This module plants *injection points* inside the
//! acquire/release paths of every lock (and, via `clof-core`'s `testkit`
//! feature, inside the composition protocol). When enabled, each point
//! consults a global SplitMix64 stream seeded by the test harness and,
//! with configured probability, perturbs the schedule: either
//! [`std::thread::yield_now`] (descheduling the current thread exactly
//! inside the race window) or a bounded `spin_loop` delay (stretching the
//! window without a syscall).
//!
//! The whole machinery is compiled only under `cfg(any(test, feature =
//! "testkit"))`; production builds of `clof-locks` see an empty inline
//! function and pay nothing. When compiled in but *disabled* (the
//! default), a point costs one relaxed atomic load.
//!
//! Determinism caveat: the injection *decisions* are a pure function of
//! the seed and the global arrival order of points, so a seed reliably
//! reproduces a failure class on the same host, but the OS scheduler
//! still owns thread placement. The oracle in `clof-testkit` therefore
//! treats a seed as the replay key for a whole stress run, not for one
//! exact trace.

#[cfg(any(test, feature = "testkit"))]
mod imp {
    use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static STATE: AtomicU64 = AtomicU64::new(0);
    /// Perturbation probability is `1/DENOM` per point.
    static DENOM: AtomicU32 = AtomicU32::new(8);
    /// Upper bound on injected spin-delay bursts.
    static MAX_SPIN: AtomicU32 = AtomicU32::new(128);
    /// Number of perturbations actually injected (diagnostics).
    static HITS: AtomicU64 = AtomicU64::new(0);

    /// SplitMix64 output function over a Weyl-sequence state.
    #[inline]
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn configure(seed: u64, denom: u32, max_spin: u32) {
        STATE.store(seed, Ordering::Relaxed);
        DENOM.store(denom.max(1), Ordering::Relaxed);
        MAX_SPIN.store(max_spin.max(1), Ordering::Relaxed);
        HITS.store(0, Ordering::Relaxed);
        ENABLED.store(true, Ordering::Relaxed);
    }

    pub fn disable() {
        ENABLED.store(false, Ordering::Relaxed);
    }

    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    pub fn hits() -> u64 {
        HITS.load(Ordering::Relaxed)
    }

    #[inline]
    pub fn point(_site: &'static str) {
        if !ENABLED.load(Ordering::Relaxed) {
            return;
        }
        perturb();
    }

    #[cold]
    fn perturb() {
        // Each arrival advances the Weyl sequence; the golden-ratio
        // increment keeps successive draws decorrelated even though the
        // fetch_add interleaving is scheduler-dependent.
        let s = STATE.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        let z = mix(s);
        let denom = DENOM.load(Ordering::Relaxed) as u64;
        if z % denom != 0 {
            return;
        }
        HITS.fetch_add(1, Ordering::Relaxed);
        if z & 0x100 != 0 {
            std::thread::yield_now();
        } else {
            let burst = (z >> 9) as u32 % MAX_SPIN.load(Ordering::Relaxed) + 1;
            for _ in 0..burst {
                std::hint::spin_loop();
            }
        }
    }
}

/// Enables injection with the given seed.
///
/// `denom` sets the perturbation probability to `1/denom` per point;
/// `max_spin` bounds injected spin-delay bursts. Typically driven through
/// `clof-testkit`'s oracle, which also serializes chaos-using tests so
/// concurrent tests don't share the stream.
#[cfg(any(test, feature = "testkit"))]
pub fn configure(seed: u64, denom: u32, max_spin: u32) {
    imp::configure(seed, denom, max_spin);
}

/// Disables injection; points return to a single relaxed load.
#[cfg(any(test, feature = "testkit"))]
pub fn disable() {
    imp::disable();
}

/// Whether injection is currently enabled.
#[cfg(any(test, feature = "testkit"))]
pub fn is_enabled() -> bool {
    imp::is_enabled()
}

/// Perturbations injected since the last [`configure`].
#[cfg(any(test, feature = "testkit"))]
pub fn hits() -> u64 {
    imp::hits()
}

/// An injection point. No-op unless chaos is compiled in *and* enabled.
///
/// Placed inside the race windows of every lock's acquire/release path
/// (e.g. between MCS's tail swap and predecessor link, between a ticket
/// release's grant load and store) and, in `clof-core`, around the
/// high-lock hand-off protocol.
#[inline(always)]
pub fn point(site: &'static str) {
    #[cfg(any(test, feature = "testkit"))]
    imp::point(site);
    #[cfg(not(any(test, feature = "testkit")))]
    let _ = site;
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: the chaos stream is global state, and the
    // test harness runs tests of this module concurrently.
    #[test]
    fn lifecycle_disabled_noop_enabled_perturbs() {
        disable();
        assert!(!is_enabled());
        for _ in 0..100 {
            point("test-site");
        }
        configure(42, 2, 16);
        assert!(is_enabled());
        for _ in 0..10_000 {
            point("test-site");
        }
        assert!(hits() > 0, "no perturbation in 10k points at p=1/2");
        disable();
    }
}
