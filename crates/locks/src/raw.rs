//! The common spinlock interface: the CLoF *context abstraction*.

/// Static capability description of a lock algorithm.
///
/// Used by the composition framework for naming generated locks (paper
/// §5.2 notation, e.g. `tkt-clh-tkt`) and by the benchmark harness to
/// regenerate the paper's Table 1 (key-aspect coverage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockInfo {
    /// Short name used in composition strings, e.g. `"tkt"`.
    pub name: &'static str,
    /// Human-readable name, e.g. `"Ticketlock"`.
    pub full_name: &'static str,
    /// Whether the lock is starvation-free (FIFO or equivalent).
    ///
    /// CLoF compositions are fair iff every component is fair
    /// (paper Theorem 4.1); unfair components are rejected by the
    /// generator unless explicitly allowed.
    pub fair: bool,
    /// Whether waiters spin on thread-local memory (MCS/CLH) rather than
    /// on a single shared location (Ticketlock/TTAS).
    pub local_spinning: bool,
    /// Whether the lock requires a per-thread context object
    /// (`CtxLockType` in the paper's grammar).
    pub needs_context: bool,
    /// Whether [`RawLock::has_waiters_hint`] always returns `Some` for
    /// this algorithm (the paper's optional custom `has_waiters`,
    /// §4.1.2).
    ///
    /// The composition layer uses this constant to skip the generic
    /// read-indicator counter entirely — maintaining `inc_waiters` /
    /// `dec_waiters` when the release path will consult the native hint
    /// anyway is pure wasted coherence traffic. Must agree with the
    /// run-time behaviour of `has_waiters_hint`; `clof-core`'s
    /// `native_hint_matches_info` test pins the two together.
    pub waiter_hint: bool,
}

/// Context of a no-context lock (`NoCtxLockType` in the paper's grammar).
///
/// Zero-sized; exists so that every lock can be driven through the same
/// interface, which is exactly the paper's context-abstraction trick: the
/// generator "initially assumes all locks require a context and eventually
/// removes the context" — in Rust the removal is monomorphization of a
/// zero-sized type.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoContext;

/// A NUMA-oblivious spinlock usable as a CLoF component.
///
/// # Contract
///
/// * **Mutual exclusion**: between a successful [`acquire`] and the
///   matching [`release`], no other `acquire` on the same lock returns.
/// * **Thread-obliviousness**: `release` may be called by a different
///   thread than the one that called `acquire`, provided it passes the
///   *same* context (paper §4.1.3). All locks in this crate satisfy this.
/// * **Context invariant**: a context must not be used for two
///   overlapping acquire/release operations, even on different locks.
///   Taking `&mut Self::Context` enforces this statically for safe code;
///   the composition layer re-establishes it by protocol (only the owner
///   of the low lock touches the high lock's context) and documents the
///   single `unsafe` hand-off it needs.
/// * Contexts must outlive every operation they participate in; a context
///   may be dropped only when no acquire/release using it is in flight
///   and the thread does not hold the lock through it.
///
/// [`acquire`]: RawLock::acquire
/// [`release`]: RawLock::release
pub trait RawLock: Default + Send + Sync + 'static {
    /// Per-slot context. Use [`NoContext`] if none is needed.
    type Context: Default + Send + Sync + 'static;

    /// Capability metadata for this algorithm.
    const INFO: LockInfo;

    /// Acquires the lock, spinning until ownership is obtained.
    fn acquire(&self, ctx: &mut Self::Context);

    /// Acquires the lock with a bounded spin budget: the waiter spins at
    /// most `budget` backoff rounds and then parks until the releaser's
    /// wake (see `clof_locks::park`). A budget of
    /// [`SPIN_FOREVER`](crate::SPIN_FOREVER) is equivalent to
    /// [`acquire`](RawLock::acquire).
    ///
    /// The default implementation ignores the budget and spins; locks
    /// with a parking path override it. The composition layer passes
    /// each level's topology-derived budget through here.
    #[cfg(feature = "park")]
    fn acquire_budgeted(&self, ctx: &mut Self::Context, budget: u32) {
        let _ = budget;
        self.acquire(ctx);
    }

    /// Attempts to acquire the lock, giving up (and fully undoing any
    /// queue state, see `clof_locks::deadline`) once `deadline` passes.
    ///
    /// Returns `true` if acquired — including at the deadline edge,
    /// when a grant races the clock and lands first — and `false` on
    /// timeout. After a `false` return the context is clean and
    /// immediately reusable, and no queue position is left live: queue
    /// locks abandon their node HMCS-T-style (marked for the releaser
    /// to skip and reclaim), slot locks cancel their ticket or wait out
    /// their turn and hand it forward. Deadline waits never park.
    ///
    /// The default implementation is for locks with no bounded path
    /// wired up yet: it acquires unboundedly and reports `true`. Every
    /// lock in this crate overrides it.
    #[cfg(feature = "deadline")]
    fn try_acquire_until(&self, ctx: &mut Self::Context, deadline: std::time::Instant) -> bool {
        let _ = deadline;
        self.acquire(ctx);
        true
    }

    /// Releases the lock.
    ///
    /// Must only be called while the lock is held through `ctx`.
    fn release(&self, ctx: &mut Self::Context);

    /// Lock-specific fast waiter detection (paper §4.1.2).
    ///
    /// Returns `Some(true)` if another thread is certainly waiting to
    /// acquire this lock, `Some(false)` if certainly not, and `None` if
    /// this algorithm cannot tell cheaply (the composition then falls
    /// back to its generic read-indicator counter). `ctx` is the context
    /// through which the *owner* holds the lock.
    fn has_waiters_hint(&self, ctx: &Self::Context) -> Option<bool> {
        let _ = ctx;
        None
    }
}
