//! Test-and-test-and-set lock: simple, *unfair* (paper §4.2.1).

use std::sync::atomic::{AtomicBool, Ordering};

use crate::pad::CachePadded;
#[cfg(feature = "park")]
use crate::park::ParkSpot;
use crate::park::SPIN_FOREVER;
use crate::raw::{LockInfo, NoContext, RawLock};
#[cfg(any(not(feature = "park"), feature = "deadline"))]
use crate::spin::Backoff;

/// Test-and-test-and-set (TTAS) spinlock.
///
/// Waiters first spin reading the flag (cheap, cache-friendly) and only
/// attempt the atomic swap once it reads unlocked. TTAS is **unfair**: a
/// thread can lose the race indefinitely. The paper uses TTAS as the
/// canonical unfair lock when discussing Theorem 4.1 — composing it at
/// any level makes the whole CLoF lock unfair (a NUMA-node cohort can
/// starve if the system lock is TTAS).
///
/// # Examples
///
/// ```
/// use clof_locks::{RawLock, TtasLock};
///
/// let lock = TtasLock::default();
/// let mut ctx = Default::default();
/// lock.acquire(&mut ctx);
/// lock.release(&mut ctx);
/// ```
#[derive(Debug, Default)]
pub struct TtasLock {
    /// The single flag every contender spins on and swaps; padded so a
    /// TTAS embedded in larger lock state (a composed-lock node, the
    /// `FastClof` gate) does not drag neighbouring fields into the
    /// contenders' coherence storm.
    locked: CachePadded<AtomicBool>,
    /// Eventcount budget-exhausted waiters park on; each release wakes
    /// one parked contender to retry the swap.
    #[cfg(feature = "park")]
    park: CachePadded<ParkSpot>,
}

#[cfg(not(feature = "park"))]
const _: () = assert!(std::mem::size_of::<TtasLock>() == crate::pad::CACHE_LINE);
#[cfg(feature = "park")]
const _: () = assert!(std::mem::size_of::<TtasLock>() == 2 * crate::pad::CACHE_LINE);

impl TtasLock {
    /// Creates an unlocked TTAS lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attempts to acquire without spinning.
    pub fn try_acquire(&self) -> bool {
        !self.locked.load(Ordering::Relaxed) && !self.locked.swap(true, Ordering::Acquire)
    }

    /// Whether the lock is currently held (racy; for tests/diagnostics).
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }

    #[cfg(feature = "park")]
    fn acquire_inner(&self, budget: u32) {
        loop {
            // Test phase: wait (spin, then park) for an unlocked read.
            // The Relaxed load is the traditional TTAS test; mutual
            // exclusion comes from the swap below, and the park/wake
            // pairing is ordered by ParkSpot's fences, not by this load.
            self.park
                .wait_until(budget, || !self.locked.load(Ordering::Relaxed));
            // Window between observing unlocked and attempting the swap;
            // the swap makes losing the race safe, merely wasteful.
            crate::chaos::point("ttas-acquire-window");
            // Test-and-set phase; Acquire pairs with the Release in
            // `release` to order the critical sections.
            if !self.locked.swap(true, Ordering::Acquire) {
                return;
            }
        }
    }

    /// Deadline-bounded acquire. TTAS keeps no queue state, so a
    /// timeout needs no undo: stop retrying and report failure. The
    /// deadline wait never parks.
    #[cfg(feature = "deadline")]
    fn try_acquire_inner_deadline(&self, deadline: std::time::Instant) -> bool {
        let mut poll = crate::deadline::DeadlinePoll::new(deadline, "ttas-wait");
        let mut backoff = Backoff::new();
        loop {
            while self.locked.load(Ordering::Relaxed) {
                if poll.expired() {
                    crate::deadline::on_abandon();
                    return false;
                }
                backoff.snooze();
            }
            crate::chaos::point("ttas-acquire-window");
            if !self.locked.swap(true, Ordering::Acquire) {
                return true;
            }
        }
    }

    #[cfg(not(feature = "park"))]
    fn acquire_inner(&self, _budget: u32) {
        let mut backoff = Backoff::new();
        loop {
            // Test phase: spin on a (locally cached) load.
            while self.locked.load(Ordering::Relaxed) {
                backoff.snooze();
            }
            // Window between observing unlocked and attempting the swap;
            // the swap makes losing the race safe, merely wasteful.
            crate::chaos::point("ttas-acquire-window");
            // Test-and-set phase; Acquire pairs with the Release in
            // `release` to order the critical sections.
            if !self.locked.swap(true, Ordering::Acquire) {
                return;
            }
        }
    }
}

impl RawLock for TtasLock {
    type Context = NoContext;

    const INFO: LockInfo = LockInfo {
        name: "ttas",
        full_name: "Test-and-test-and-set",
        fair: false,
        local_spinning: false,
        needs_context: false,
        waiter_hint: false,
    };

    fn acquire(&self, _ctx: &mut NoContext) {
        self.acquire_inner(SPIN_FOREVER);
    }

    #[cfg(feature = "park")]
    fn acquire_budgeted(&self, _ctx: &mut NoContext, budget: u32) {
        self.acquire_inner(budget);
    }

    #[cfg(feature = "deadline")]
    fn try_acquire_until(&self, _ctx: &mut NoContext, deadline: std::time::Instant) -> bool {
        self.try_acquire_inner_deadline(deadline)
    }

    fn release(&self, _ctx: &mut NoContext) {
        self.locked.store(false, Ordering::Release);
        // Wake after the flag store (the waiters' condition).
        #[cfg(feature = "park")]
        self.park.wake_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn uncontended_roundtrip() {
        let lock = TtasLock::new();
        let mut ctx = NoContext;
        lock.acquire(&mut ctx);
        assert!(lock.is_locked());
        lock.release(&mut ctx);
        assert!(!lock.is_locked());
    }

    #[test]
    fn try_acquire_fails_when_held() {
        let lock = TtasLock::new();
        let mut ctx = NoContext;
        assert!(lock.try_acquire());
        assert!(!lock.try_acquire());
        lock.release(&mut ctx);
        assert!(lock.try_acquire());
        lock.release(&mut ctx);
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        const THREADS: usize = 4;
        const ITERS: usize = 2_000;
        let lock = Arc::new(TtasLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut ctx = NoContext;
                for _ in 0..ITERS {
                    lock.acquire(&mut ctx);
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.release(&mut ctx);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS * ITERS);
    }

    #[test]
    fn info_marks_unfair() {
        assert!(!TtasLock::INFO.fair);
    }

    #[cfg(feature = "deadline")]
    mod deadline {
        use super::*;
        use std::time::{Duration, Instant};

        #[test]
        fn try_acquire_uncontended_succeeds() {
            let lock = TtasLock::new();
            let mut ctx = NoContext;
            assert!(lock.try_acquire_until(&mut ctx, Instant::now() + Duration::from_secs(5)));
            assert!(lock.is_locked());
            lock.release(&mut ctx);
        }

        #[test]
        fn timeout_while_held_is_clean() {
            let lock = TtasLock::new();
            let mut holder = NoContext;
            lock.acquire(&mut holder);
            let before = crate::deadline::abandons();
            let mut w = NoContext;
            assert!(!lock.try_acquire_until(&mut w, Instant::now()));
            assert!(crate::deadline::abandons() > before);
            assert!(lock.is_locked(), "timeout must not perturb the flag");
            lock.release(&mut holder);
            assert!(lock.try_acquire_until(&mut w, Instant::now() + Duration::from_secs(5)));
            lock.release(&mut w);
        }

        #[test]
        fn timeout_leaves_other_traffic_unharmed() {
            const THREADS: usize = 4;
            const ITERS: usize = 300;
            let lock = Arc::new(TtasLock::new());
            let held = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for t in 0..THREADS {
                let lock = Arc::clone(&lock);
                let held = Arc::clone(&held);
                handles.push(std::thread::spawn(move || {
                    let mut ctx = NoContext;
                    for _ in 0..ITERS {
                        let got = if t % 2 == 0 {
                            lock.try_acquire_until(
                                &mut ctx,
                                Instant::now() + Duration::from_micros(50),
                            )
                        } else {
                            lock.acquire(&mut ctx);
                            true
                        };
                        if got {
                            held.fetch_add(1, Ordering::Relaxed);
                            lock.release(&mut ctx);
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert!(!lock.is_locked());
        }
    }
}
