//! Hemlock (Dice & Kogan, SPAA'21 \[13\]): compact queue lock with an
//! optional x86 Coherence-Traffic-Reduction (CTR) codepath.
//!
//! The original Hemlock keeps one implicit *thread-local* context and is
//! advertised as "context-free". As the paper observes (§4.1.3), making
//! the context explicit and passing it through the normal acquire/release
//! interface is exactly what turns Hemlock *thread-oblivious*, which CLoF
//! requires of high locks. This implementation takes the explicit-context
//! form.
//!
//! Hemlock is deliberately **not** wired into the `park` waiting layer:
//! its grant word is a *multi-writer* mailbox (the same cell is granted
//! through by successive releasers and reset by acknowledging
//! successors), so a parked waiter could be woken for a grant addressed
//! to a different lock, and the release side itself spins on the
//! acknowledgement. Hemlock waiters always spin; compose MCS/CLH at
//! oversubscribed levels instead (DESIGN §11).

use std::ptr::NonNull;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::raw::{LockInfo, RawLock};
use crate::spin::Backoff;

/// The shared cell of a Hemlock context: a single `grant` word.
///
/// The releaser writes the *lock's address* into its own cell's `grant`;
/// the successor spins on its predecessor's cell until it sees that
/// address, then resets it to 0 as an acknowledgement.
#[derive(Debug)]
struct HemCell {
    grant: AtomicUsize,
}

impl HemCell {
    fn boxed() -> NonNull<HemCell> {
        let cell = Box::new(HemCell {
            grant: AtomicUsize::new(0),
        });
        NonNull::new(Box::into_raw(cell)).expect("Box::into_raw returned null")
    }
}

/// Per-slot context of [`Hemlock`]/[`HemlockCtr`].
#[derive(Debug)]
pub struct HemContext {
    cell: NonNull<HemCell>,
}

// SAFETY: The context carries a pointer to a heap cell whose only field is
// an atomic; sharing/moving the context does not move the cell.
unsafe impl Send for HemContext {}
// SAFETY: As above.
unsafe impl Sync for HemContext {}

impl Default for HemContext {
    fn default() -> Self {
        HemContext {
            cell: HemCell::boxed(),
        }
    }
}

impl Drop for HemContext {
    fn drop(&mut self) {
        // SAFETY: Contract: contexts are dropped only when idle, so no
        // thread can still reach this cell through a lock's tail.
        unsafe { drop(Box::from_raw(self.cell.as_ptr())) };
    }
}

/// Hemlock with the CTR codepath selected at compile time.
///
/// `CTR = true` replaces the release-side spin load with
/// `fetch_add(0)` and the acknowledgement store with a `compare_exchange`
/// loop — the x86 trick that avoids MESI shared→modified upgrades
/// (paper §2.1). On Armv8-class LL/SC machines this same trick makes the
/// two sides repeatedly kill each other's exclusive reservations,
/// collapsing throughput (paper Figure 3b); the simulator models that
/// pathology, and the named aliases [`Hemlock`]/[`HemlockCtr`] let callers
/// choose per target architecture as the paper does ("hem on x86 denotes
/// Hemlock with CTR enabled, whereas hem on Armv8 denotes Hemlock with
/// CTR disabled").
///
/// # Examples
///
/// ```
/// use clof_locks::{HemContext, Hemlock, RawLock};
///
/// let lock = Hemlock::default();
/// let mut ctx = HemContext::default();
/// lock.acquire(&mut ctx);
/// lock.release(&mut ctx);
/// ```
#[derive(Debug, Default)]
pub struct HemlockGeneric<const CTR: bool> {
    tail: AtomicUsize,
}

/// Hemlock without the CTR optimization (the paper's `hem` on Armv8).
pub type Hemlock = HemlockGeneric<false>;

/// Hemlock with the CTR optimization (the paper's `hem-ctr` / `hem` on
/// x86).
pub type HemlockCtr = HemlockGeneric<true>;

impl<const CTR: bool> HemlockGeneric<CTR> {
    /// Creates an unlocked Hemlock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the lock is currently held or queued (racy; diagnostics).
    pub fn is_locked(&self) -> bool {
        self.tail.load(Ordering::Relaxed) != 0
    }

    /// The value the releaser publishes in its cell: this lock's address.
    fn lock_token(&self) -> usize {
        self as *const _ as usize
    }

    /// CTR-aware load of a grant word.
    fn grant_load(grant: &AtomicUsize, order: Ordering) -> usize {
        if CTR {
            // CTR: read via an RMW that leaves the value unchanged, so the
            // line is acquired directly in modified/exclusive state.
            grant.fetch_add(0, rmw_order(order))
        } else {
            grant.load(order)
        }
    }

    /// CTR-aware store of a grant word.
    fn grant_store(grant: &AtomicUsize, value: usize, order: Ordering) {
        if CTR {
            // CTR: write via compare-exchange; retries mimic the x86
            // cmpxchg loop of the original (on x86 cmpxchg always makes
            // progress; the loop form keeps the code portable).
            let mut cur = grant.load(Ordering::Relaxed);
            loop {
                match grant.compare_exchange_weak(cur, value, rmw_order(order), Ordering::Relaxed)
                {
                    Ok(_) => return,
                    Err(seen) => cur = seen,
                }
            }
        } else {
            grant.store(value, order);
        }
    }
}

/// Maps a load/store ordering to an equivalent RMW ordering for CTR ops.
fn rmw_order(order: Ordering) -> Ordering {
    match order {
        Ordering::Relaxed => Ordering::Relaxed,
        Ordering::Acquire => Ordering::Acquire,
        Ordering::Release => Ordering::Release,
        _ => Ordering::AcqRel,
    }
}

impl<const CTR: bool> RawLock for HemlockGeneric<CTR> {
    type Context = HemContext;

    const INFO: LockInfo = LockInfo {
        name: if CTR { "hem-ctr" } else { "hem" },
        full_name: if CTR {
            "Hemlock (CTR enabled)"
        } else {
            "Hemlock"
        },
        fair: true,
        local_spinning: true,
        needs_context: true,
        waiter_hint: true,
    };

    fn acquire(&self, ctx: &mut HemContext) {
        let me = ctx.cell.as_ptr() as usize;
        // AcqRel as in MCS: publish our cell, order after the predecessor.
        let pred = self.tail.swap(me, Ordering::AcqRel);
        if pred == 0 {
            return;
        }
        let token = self.lock_token();
        crate::chaos::point("hem-acquire-queued");
        // SAFETY: `pred` is a cell published by its owner; the owner's
        // release spins until our acknowledgement below, so the cell stays
        // alive (and its context may not be dropped) until then.
        let pred_grant = unsafe { &(*(pred as *const HemCell)).grant };
        let mut backoff = Backoff::new();
        // Acquire pairs with the releaser's Release publication of the
        // token, ordering the critical sections.
        while Self::grant_load(pred_grant, Ordering::Acquire) != token {
            backoff.snooze();
        }
        // Acknowledge: reset the predecessor's grant so it can proceed and
        // reuse its cell. Release so the (relaxed) observer cannot see the
        // reset reordered before our spin completed.
        Self::grant_store(pred_grant, 0, Ordering::Release);
    }

    fn release(&self, ctx: &mut HemContext) {
        let me = ctx.cell.as_ptr() as usize;
        // Fast path: no successor, swing tail back to empty.
        if self.tail.load(Ordering::Relaxed) == me
            && self
                .tail
                .compare_exchange(me, 0, Ordering::Release, Ordering::Relaxed)
                .is_ok()
        {
            return;
        }
        // SAFETY: Our own cell, alive while the context is.
        let grant = unsafe { &(*ctx.cell.as_ptr()).grant };
        crate::chaos::point("hem-release-pre-grant");
        // Publish the grant: our successor identifies the lock by address.
        Self::grant_store(grant, self.lock_token(), Ordering::Release);
        let mut backoff = Backoff::new();
        // Wait for the successor's acknowledgement (reset to 0); this is
        // the wait the CTR optimization targets on x86 and the one that
        // livelocks under LL/SC interference on Armv8 (simulated, §3.2).
        while Self::grant_load(grant, Ordering::Acquire) != 0 {
            backoff.snooze();
        }
    }

    fn has_waiters_hint(&self, ctx: &Self::Context) -> Option<bool> {
        // Someone swapped the tail after us.
        Some(self.tail.load(Ordering::Relaxed) != ctx.cell.as_ptr() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    use std::sync::Arc;

    fn roundtrip<const CTR: bool>() {
        let lock = HemlockGeneric::<CTR>::new();
        let mut ctx = HemContext::default();
        assert!(!lock.is_locked());
        lock.acquire(&mut ctx);
        assert!(lock.is_locked());
        assert_eq!(lock.has_waiters_hint(&ctx), Some(false));
        lock.release(&mut ctx);
        assert!(!lock.is_locked());
    }

    #[test]
    fn uncontended_roundtrip_plain() {
        roundtrip::<false>();
    }

    #[test]
    fn uncontended_roundtrip_ctr() {
        roundtrip::<true>();
    }

    fn contention<const CTR: bool>() {
        const THREADS: usize = 4;
        const ITERS: usize = 1_500;
        let lock = Arc::new(HemlockGeneric::<CTR>::new());
        let counter = Arc::new(StdAtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut ctx = HemContext::default();
                for _ in 0..ITERS {
                    lock.acquire(&mut ctx);
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.release(&mut ctx);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS * ITERS);
    }

    #[test]
    fn mutual_exclusion_under_contention_plain() {
        contention::<false>();
    }

    #[test]
    fn mutual_exclusion_under_contention_ctr() {
        contention::<true>();
    }

    #[test]
    fn one_context_on_two_locks_sequentially() {
        // A context may serve different locks as long as uses do not
        // overlap (the context invariant) — Hemlock identifies the lock by
        // address in the grant word.
        let a = Hemlock::new();
        let b = Hemlock::new();
        let mut ctx = HemContext::default();
        a.acquire(&mut ctx);
        a.release(&mut ctx);
        b.acquire(&mut ctx);
        b.release(&mut ctx);
    }

    #[test]
    fn thread_oblivious_release() {
        let lock = Arc::new(Hemlock::new());
        let mut ctx = HemContext::default();
        lock.acquire(&mut ctx);
        let lock2 = Arc::clone(&lock);
        std::thread::scope(|s| {
            s.spawn(|| {
                lock2.release(&mut ctx);
            });
        });
        let mut ctx2 = HemContext::default();
        lock.acquire(&mut ctx2);
        lock.release(&mut ctx2);
    }

    #[test]
    fn info_distinguishes_ctr() {
        assert_eq!(Hemlock::INFO.name, "hem");
        assert_eq!(HemlockCtr::INFO.name, "hem-ctr");
        assert!(Hemlock::INFO.fair);
    }
}
