//! Hemlock (Dice & Kogan, SPAA'21 \[13\]): compact queue lock with an
//! optional x86 Coherence-Traffic-Reduction (CTR) codepath.
//!
//! The original Hemlock keeps one implicit *thread-local* context and is
//! advertised as "context-free". As the paper observes (§4.1.3), making
//! the context explicit and passing it through the normal acquire/release
//! interface is exactly what turns Hemlock *thread-oblivious*, which CLoF
//! requires of high locks. This implementation takes the explicit-context
//! form.
//!
//! Hemlock is deliberately **not** wired into the `park` waiting layer:
//! its grant word is a *multi-writer* mailbox (the same cell is granted
//! through by successive releasers and reset by acknowledging
//! successors), so a parked waiter could be woken for a grant addressed
//! to a different lock, and the release side itself spins on the
//! acknowledgement. Hemlock waiters always spin; compose MCS/CLH at
//! oversubscribed levels instead (DESIGN §11).

use std::ptr::NonNull;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::raw::{LockInfo, RawLock};
use crate::spin::Backoff;

/// The shared cell of a Hemlock context: a single `grant` word.
///
/// The releaser writes the *lock's address* into its own cell's `grant`;
/// the successor spins on its predecessor's cell until it sees that
/// address, then resets it to 0 as an acknowledgement.
#[derive(Debug)]
struct HemCell {
    grant: AtomicUsize,
    /// Escape pointer for deadline abandonment: when this cell is marked
    /// [`ABANDONED_GRANT`], `pred` names the cell its owner was spinning
    /// on, so the successor can re-target its wait past us. Only valid
    /// while the sentinel is set; published by the `Release` store of
    /// the sentinel.
    #[cfg(feature = "deadline")]
    pred: AtomicUsize,
}

/// Sentinel grant value marking an abandoned cell (deadline timeouts).
///
/// Distinguishable from every real token: tokens are lock addresses
/// (aligned, never 1) and `0` means empty/acknowledged.
#[cfg(feature = "deadline")]
const ABANDONED_GRANT: usize = 1;

impl HemCell {
    fn boxed() -> NonNull<HemCell> {
        let cell = Box::new(HemCell {
            grant: AtomicUsize::new(0),
            #[cfg(feature = "deadline")]
            pred: AtomicUsize::new(0),
        });
        NonNull::new(Box::into_raw(cell)).expect("Box::into_raw returned null")
    }
}

/// Per-slot context of [`Hemlock`]/[`HemlockCtr`].
#[derive(Debug)]
pub struct HemContext {
    cell: NonNull<HemCell>,
}

// SAFETY: The context carries a pointer to a heap cell whose only field is
// an atomic; sharing/moving the context does not move the cell.
unsafe impl Send for HemContext {}
// SAFETY: As above.
unsafe impl Sync for HemContext {}

impl Default for HemContext {
    fn default() -> Self {
        HemContext {
            cell: HemCell::boxed(),
        }
    }
}

impl Drop for HemContext {
    fn drop(&mut self) {
        // SAFETY: Contract: contexts are dropped only when idle, so no
        // thread can still reach this cell through a lock's tail.
        unsafe { drop(Box::from_raw(self.cell.as_ptr())) };
    }
}

/// Hemlock with the CTR codepath selected at compile time.
///
/// `CTR = true` replaces the release-side spin load with
/// `fetch_add(0)` and the acknowledgement store with a `compare_exchange`
/// loop — the x86 trick that avoids MESI shared→modified upgrades
/// (paper §2.1). On Armv8-class LL/SC machines this same trick makes the
/// two sides repeatedly kill each other's exclusive reservations,
/// collapsing throughput (paper Figure 3b); the simulator models that
/// pathology, and the named aliases [`Hemlock`]/[`HemlockCtr`] let callers
/// choose per target architecture as the paper does ("hem on x86 denotes
/// Hemlock with CTR enabled, whereas hem on Armv8 denotes Hemlock with
/// CTR disabled").
///
/// # Examples
///
/// ```
/// use clof_locks::{HemContext, Hemlock, RawLock};
///
/// let lock = Hemlock::default();
/// let mut ctx = HemContext::default();
/// lock.acquire(&mut ctx);
/// lock.release(&mut ctx);
/// ```
#[derive(Debug, Default)]
pub struct HemlockGeneric<const CTR: bool> {
    tail: AtomicUsize,
}

/// Hemlock without the CTR optimization (the paper's `hem` on Armv8).
pub type Hemlock = HemlockGeneric<false>;

/// Hemlock with the CTR optimization (the paper's `hem-ctr` / `hem` on
/// x86).
pub type HemlockCtr = HemlockGeneric<true>;

impl<const CTR: bool> HemlockGeneric<CTR> {
    /// Creates an unlocked Hemlock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the lock is currently held or queued (racy; diagnostics).
    pub fn is_locked(&self) -> bool {
        self.tail.load(Ordering::Relaxed) != 0
    }

    /// The value the releaser publishes in its cell: this lock's address.
    fn lock_token(&self) -> usize {
        self as *const _ as usize
    }

    /// CTR-aware load of a grant word.
    fn grant_load(grant: &AtomicUsize, order: Ordering) -> usize {
        if CTR {
            // CTR: read via an RMW that leaves the value unchanged, so the
            // line is acquired directly in modified/exclusive state.
            grant.fetch_add(0, rmw_order(order))
        } else {
            grant.load(order)
        }
    }

    /// CTR-aware store of a grant word.
    fn grant_store(grant: &AtomicUsize, value: usize, order: Ordering) {
        if CTR {
            // CTR: write via compare-exchange; retries mimic the x86
            // cmpxchg loop of the original (on x86 cmpxchg always makes
            // progress; the loop form keeps the code portable).
            let mut cur = grant.load(Ordering::Relaxed);
            loop {
                match grant.compare_exchange_weak(cur, value, rmw_order(order), Ordering::Relaxed)
                {
                    Ok(_) => return,
                    Err(seen) => cur = seen,
                }
            }
        } else {
            grant.store(value, order);
        }
    }

    /// Conditional grant transition, used by the deadline protocol's
    /// acknowledge-and-retract races (CTR-indifferent: a CAS is a CAS).
    #[cfg(feature = "deadline")]
    fn grant_cas(grant: &AtomicUsize, expect: usize, value: usize) -> bool {
        grant
            .compare_exchange(expect, value, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }

    /// Steps the wait past an abandoned cell: follows its escape pointer
    /// and frees the sentinel (ownership transferred to us, its unique
    /// observer). The caller's `Acquire` read of [`ABANDONED_GRANT`]
    /// published the escape pointer.
    #[cfg(feature = "deadline")]
    fn adopt_abandoned(cell: *mut HemCell) -> *mut HemCell {
        let pred = unsafe { (*cell).pred.load(Ordering::Relaxed) } as *mut HemCell;
        debug_assert!(
            !pred.is_null(),
            "abandoned Hemlock cell without an escape pointer"
        );
        crate::deadline::on_skip();
        // SAFETY: A sentinel cell is owned by whoever observes it; no
        // other thread can reach it once we re-target past it.
        unsafe { drop(Box::from_raw(cell)) };
        pred
    }

    #[cfg(not(feature = "deadline"))]
    fn acquire_inner(&self, ctx: &mut HemContext) {
        let me = ctx.cell.as_ptr() as usize;
        // AcqRel as in MCS: publish our cell, order after the predecessor.
        let pred = self.tail.swap(me, Ordering::AcqRel);
        if pred == 0 {
            return;
        }
        let token = self.lock_token();
        crate::chaos::point("hem-acquire-queued");
        // SAFETY: `pred` is a cell published by its owner; the owner's
        // release spins until our acknowledgement below, so the cell stays
        // alive (and its context may not be dropped) until then.
        let pred_grant = unsafe { &(*(pred as *const HemCell)).grant };
        let mut backoff = Backoff::new();
        // Acquire pairs with the releaser's Release publication of the
        // token, ordering the critical sections.
        while Self::grant_load(pred_grant, Ordering::Acquire) != token {
            backoff.snooze();
        }
        // Acknowledge: reset the predecessor's grant so it can proceed and
        // reuse its cell. Release so the (relaxed) observer cannot see the
        // reset reordered before our spin completed.
        Self::grant_store(pred_grant, 0, Ordering::Release);
    }

    /// Deadline-build acquire: the spin must additionally recognise
    /// abandoned-cell sentinels (re-target past them) and acknowledge
    /// with a CAS — a releaser whose successor vanished may *retract* a
    /// published token, and a plain-store ack could then ack a token
    /// that is about to be re-published, stranding the releaser.
    #[cfg(feature = "deadline")]
    fn acquire_inner(&self, ctx: &mut HemContext) {
        let me = ctx.cell.as_ptr() as usize;
        let pred = self.tail.swap(me, Ordering::AcqRel);
        if pred == 0 {
            return;
        }
        let token = self.lock_token();
        crate::chaos::point("hem-acquire-queued");
        let mut pred = pred as *mut HemCell;
        let mut backoff = Backoff::new();
        loop {
            // SAFETY: `pred` is either a live cell (owner cannot retire
            // it until acknowledged) or a sentinel we now uniquely own.
            let g = Self::grant_load(unsafe { &(*pred).grant }, Ordering::Acquire);
            if g == ABANDONED_GRANT {
                pred = Self::adopt_abandoned(pred);
                continue;
            }
            if g == token && Self::grant_cas(unsafe { &(*pred).grant }, token, 0) {
                return;
            }
            backoff.snooze();
        }
    }

    #[cfg(not(feature = "deadline"))]
    fn release_inner(&self, ctx: &mut HemContext) {
        let me = ctx.cell.as_ptr() as usize;
        // Fast path: no successor, swing tail back to empty.
        if self.tail.load(Ordering::Relaxed) == me
            && self
                .tail
                .compare_exchange(me, 0, Ordering::Release, Ordering::Relaxed)
                .is_ok()
        {
            return;
        }
        // SAFETY: Our own cell, alive while the context is.
        let grant = unsafe { &(*ctx.cell.as_ptr()).grant };
        crate::chaos::point("hem-release-pre-grant");
        // Publish the grant: our successor identifies the lock by address.
        Self::grant_store(grant, self.lock_token(), Ordering::Release);
        let mut backoff = Backoff::new();
        // Wait for the successor's acknowledgement (reset to 0); this is
        // the wait the CTR optimization targets on x86 and the one that
        // livelocks under LL/SC interference on Armv8 (simulated, §3.2).
        while Self::grant_load(grant, Ordering::Acquire) != 0 {
            backoff.snooze();
        }
    }

    /// Deadline-build release: the acknowledgement wait must not strand
    /// us when our only successor abandons. A timed-out tail waiter
    /// restores the tail to its predecessor — us — so whenever we see
    /// ourselves back at the tail we *retract* the token (CAS, racing
    /// any late acknowledger) and try to leave empty; if a new waiter
    /// slipped in meanwhile the token is re-published for it.
    #[cfg(feature = "deadline")]
    fn release_inner(&self, ctx: &mut HemContext) {
        let me = ctx.cell.as_ptr() as usize;
        if self.tail.load(Ordering::Relaxed) == me
            && self
                .tail
                .compare_exchange(me, 0, Ordering::Release, Ordering::Relaxed)
                .is_ok()
        {
            return;
        }
        // SAFETY: Our own cell, alive while the context is.
        let grant = unsafe { &(*ctx.cell.as_ptr()).grant };
        crate::chaos::point("hem-release-pre-grant");
        Self::grant_store(grant, self.lock_token(), Ordering::Release);
        let mut backoff = Backoff::new();
        loop {
            if Self::grant_load(grant, Ordering::Acquire) == 0 {
                return;
            }
            if self.tail.load(Ordering::Relaxed) == me
                && Self::grant_cas(grant, self.lock_token(), 0)
            {
                crate::chaos::point("hem-release-retracted");
                if self
                    .tail
                    .compare_exchange(me, 0, Ordering::Release, Ordering::Relaxed)
                    .is_ok()
                {
                    return;
                }
                // A waiter enqueued between the retract and the empty
                // swing: re-publish before resuming the wait, or we
                // would mistake our own retraction for its ack.
                Self::grant_store(grant, self.lock_token(), Ordering::Release);
            }
            backoff.snooze();
        }
    }

    /// Deadline-bounded acquire (HMCS-T-style abandonment, adapted to
    /// Hemlock's pull-based grants). A timed-out tail waiter swings the
    /// tail back to its predecessor and simply leaves (the releaser's
    /// retraction loop retires any already-published token). A buried
    /// waiter publishes an escape pointer and marks its cell with the
    /// [`ABANDONED_GRANT`] sentinel; the successor re-targets past the
    /// cell and frees it, so the hand-off chain stays connected.
    #[cfg(feature = "deadline")]
    fn try_acquire_inner(&self, ctx: &mut HemContext, deadline: std::time::Instant) -> bool {
        let me = ctx.cell.as_ptr();
        let first = self.tail.swap(me as usize, Ordering::AcqRel);
        if first == 0 {
            return true;
        }
        let token = self.lock_token();
        crate::chaos::point("hem-acquire-queued");
        let mut pred = first as *mut HemCell;
        // Deadline waits never park (Hemlock never parks anyway); the
        // bounded spin mirrors `acquire_inner`.
        let mut poll = crate::deadline::DeadlinePoll::new(deadline, "hem-wait");
        let mut backoff = Backoff::new();
        loop {
            // SAFETY: As in `acquire_inner`.
            let g = Self::grant_load(unsafe { &(*pred).grant }, Ordering::Acquire);
            if g == ABANDONED_GRANT {
                pred = Self::adopt_abandoned(pred);
                continue;
            }
            if g == token && Self::grant_cas(unsafe { &(*pred).grant }, token, 0) {
                return true;
            }
            if poll.expired() {
                break;
            }
            backoff.snooze();
        }
        // Timed out. Tail case: swing the tail back to the predecessor.
        // After the CAS nobody can reach our cell, so we keep it. If the
        // predecessor already published its token, its retraction loop
        // (see `release_inner`) notices it is the tail once more and
        // retires the grant — we do not have to consume it.
        if self
            .tail
            .compare_exchange(me as usize, pred as usize, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            crate::chaos::point("hem-restore-tail");
            crate::deadline::on_abandon();
            return false;
        }
        // Buried: a successor spins on our cell. Publish the escape
        // route, then the sentinel (Release publishes the escape). Cell
        // ownership transfers to the successor (or the next enqueuer,
        // or the lock's drop walk), so the context takes a fresh one.
        unsafe {
            (*me).pred.store(pred as usize, Ordering::Relaxed);
        }
        Self::grant_store(unsafe { &(*me).grant }, ABANDONED_GRANT, Ordering::Release);
        ctx.cell = HemCell::boxed();
        crate::deadline::on_abandon();
        false
    }
}

/// Maps a load/store ordering to an equivalent RMW ordering for CTR ops.
fn rmw_order(order: Ordering) -> Ordering {
    match order {
        Ordering::Relaxed => Ordering::Relaxed,
        Ordering::Acquire => Ordering::Acquire,
        Ordering::Release => Ordering::Release,
        _ => Ordering::AcqRel,
    }
}

impl<const CTR: bool> RawLock for HemlockGeneric<CTR> {
    type Context = HemContext;

    const INFO: LockInfo = LockInfo {
        name: if CTR { "hem-ctr" } else { "hem" },
        full_name: if CTR {
            "Hemlock (CTR enabled)"
        } else {
            "Hemlock"
        },
        fair: true,
        local_spinning: true,
        needs_context: true,
        waiter_hint: true,
    };

    fn acquire(&self, ctx: &mut HemContext) {
        self.acquire_inner(ctx);
    }

    #[cfg(feature = "deadline")]
    fn try_acquire_until(&self, ctx: &mut HemContext, deadline: std::time::Instant) -> bool {
        self.try_acquire_inner(ctx, deadline)
    }

    fn release(&self, ctx: &mut HemContext) {
        self.release_inner(ctx);
    }

    fn has_waiters_hint(&self, ctx: &Self::Context) -> Option<bool> {
        // Someone swapped the tail after us.
        Some(self.tail.load(Ordering::Relaxed) != ctx.cell.as_ptr() as usize)
    }
}

/// Reclaims orphaned abandoned cells: a timed-out waiter that restored
/// the tail onto a sentinel (its predecessor abandoned in the same
/// window) leaves that sentinel chain with no observer. The next
/// enqueuer normally adopts and frees it; if the lock dies first, this
/// walk does. Live cells (no sentinel) are owned by their contexts and
/// are not touched.
#[cfg(feature = "deadline")]
impl<const CTR: bool> Drop for HemlockGeneric<CTR> {
    fn drop(&mut self) {
        let mut cell = self.tail.load(Ordering::Relaxed) as *mut HemCell;
        while !cell.is_null() {
            // SAFETY: `&mut self` means no thread still races on this
            // lock; sentinel cells reachable from the tail are exactly
            // the observer-less ones (every freed cell is unreachable).
            let cref = unsafe { &*cell };
            if cref.grant.load(Ordering::Relaxed) != ABANDONED_GRANT {
                break;
            }
            let pred = cref.pred.load(Ordering::Relaxed) as *mut HemCell;
            unsafe { drop(Box::from_raw(cell)) };
            cell = pred;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as StdAtomicUsize;
    use std::sync::Arc;

    fn roundtrip<const CTR: bool>() {
        let lock = HemlockGeneric::<CTR>::new();
        let mut ctx = HemContext::default();
        assert!(!lock.is_locked());
        lock.acquire(&mut ctx);
        assert!(lock.is_locked());
        assert_eq!(lock.has_waiters_hint(&ctx), Some(false));
        lock.release(&mut ctx);
        assert!(!lock.is_locked());
    }

    #[test]
    fn uncontended_roundtrip_plain() {
        roundtrip::<false>();
    }

    #[test]
    fn uncontended_roundtrip_ctr() {
        roundtrip::<true>();
    }

    fn contention<const CTR: bool>() {
        const THREADS: usize = 4;
        const ITERS: usize = 1_500;
        let lock = Arc::new(HemlockGeneric::<CTR>::new());
        let counter = Arc::new(StdAtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut ctx = HemContext::default();
                for _ in 0..ITERS {
                    lock.acquire(&mut ctx);
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.release(&mut ctx);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS * ITERS);
    }

    #[test]
    fn mutual_exclusion_under_contention_plain() {
        contention::<false>();
    }

    #[test]
    fn mutual_exclusion_under_contention_ctr() {
        contention::<true>();
    }

    #[test]
    fn one_context_on_two_locks_sequentially() {
        // A context may serve different locks as long as uses do not
        // overlap (the context invariant) — Hemlock identifies the lock by
        // address in the grant word.
        let a = Hemlock::new();
        let b = Hemlock::new();
        let mut ctx = HemContext::default();
        a.acquire(&mut ctx);
        a.release(&mut ctx);
        b.acquire(&mut ctx);
        b.release(&mut ctx);
    }

    #[test]
    fn thread_oblivious_release() {
        let lock = Arc::new(Hemlock::new());
        let mut ctx = HemContext::default();
        lock.acquire(&mut ctx);
        let lock2 = Arc::clone(&lock);
        std::thread::scope(|s| {
            s.spawn(|| {
                lock2.release(&mut ctx);
            });
        });
        let mut ctx2 = HemContext::default();
        lock.acquire(&mut ctx2);
        lock.release(&mut ctx2);
    }

    #[test]
    fn info_distinguishes_ctr() {
        assert_eq!(Hemlock::INFO.name, "hem");
        assert_eq!(HemlockCtr::INFO.name, "hem-ctr");
        assert!(Hemlock::INFO.fair);
    }

    #[cfg(feature = "deadline")]
    mod deadline {
        use super::*;
        use std::time::{Duration, Instant};

        fn try_uncontended<const CTR: bool>() {
            let lock = HemlockGeneric::<CTR>::new();
            let mut ctx = HemContext::default();
            assert!(lock.try_acquire_until(&mut ctx, Instant::now() + Duration::from_secs(5)));
            assert!(lock.is_locked());
            lock.release(&mut ctx);
            assert!(!lock.is_locked());
        }

        #[test]
        fn try_acquire_uncontended_succeeds_plain() {
            try_uncontended::<false>();
        }

        #[test]
        fn try_acquire_uncontended_succeeds_ctr() {
            try_uncontended::<true>();
        }

        fn tail_restore<const CTR: bool>() {
            let lock = HemlockGeneric::<CTR>::new();
            let mut holder = HemContext::default();
            lock.acquire(&mut holder);
            let before = crate::deadline::abandons();
            let mut w = HemContext::default();
            assert!(!lock.try_acquire_until(&mut w, Instant::now()));
            assert!(crate::deadline::abandons() > before);
            // The tail points back at the holder: release is the plain
            // empty swing and the queue is healthy afterwards.
            assert_eq!(lock.has_waiters_hint(&holder), Some(false));
            lock.release(&mut holder);
            assert!(!lock.is_locked());
            lock.acquire(&mut w);
            lock.release(&mut w);
        }

        #[test]
        fn tail_timeout_restores_the_tail_plain() {
            tail_restore::<false>();
        }

        #[test]
        fn tail_timeout_restores_the_tail_ctr() {
            tail_restore::<true>();
        }

        #[test]
        fn pending_token_is_retracted_when_sole_waiter_leaves() {
            // White-box: the releaser must not be stranded in its
            // acknowledgement wait when its only successor times out
            // after the token was published.
            let lock = Arc::new(Hemlock::new());
            let mut holder = HemContext::default();
            lock.acquire(&mut holder);
            let w = HemCell::boxed().as_ptr();
            let pred = lock.tail.swap(w as usize, Ordering::AcqRel);
            assert_eq!(pred, holder.cell.as_ptr() as usize);
            let releaser = {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    // Sees the fake successor, publishes the token, and
                    // waits for an ack that will never come.
                    lock.release(&mut holder);
                })
            };
            std::thread::sleep(Duration::from_millis(20));
            // The timed-out waiter's exit: swing the tail back.
            assert!(lock
                .tail
                .compare_exchange(w as usize, pred, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok());
            // Only the retraction path can finish this join.
            releaser.join().unwrap();
            assert!(!lock.is_locked());
            unsafe { drop(Box::from_raw(w)) };
        }

        #[test]
        fn abandoned_cell_redirects_blocked_successor() {
            let lock = Arc::new(Hemlock::new());
            let mut holder = HemContext::default();
            lock.acquire(&mut holder);
            let skips_before = crate::deadline::skips();
            let t0 = lock.tail.load(Ordering::Relaxed);
            let w1 = {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    let mut ctx = HemContext::default();
                    let d = Instant::now() + Duration::from_millis(300);
                    lock.try_acquire_until(&mut ctx, d)
                })
            };
            crate::spin::spin_until(|| lock.tail.load(Ordering::Relaxed) != t0);
            let t1 = lock.tail.load(Ordering::Relaxed);
            let w2 = {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    let mut ctx = HemContext::default();
                    lock.acquire(&mut ctx);
                    lock.release(&mut ctx);
                })
            };
            crate::spin::spin_until(|| lock.tail.load(Ordering::Relaxed) != t1);
            // w1 expires buried behind w2 and leaves a sentinel; w2
            // re-targets onto the holder's cell and frees it.
            std::thread::sleep(Duration::from_millis(450));
            lock.release(&mut holder);
            assert!(!w1.join().unwrap(), "buried w1 times out");
            w2.join().expect("w2 acquires through the redirect");
            assert!(crate::deadline::skips() > skips_before);
            assert!(!lock.is_locked());
        }

        #[test]
        fn orphaned_sentinel_is_adopted_by_next_enqueuer() {
            let lock = Arc::new(Hemlock::new());
            let mut holder = HemContext::default();
            lock.acquire(&mut holder);
            // Plant an observer-less sentinel at the tail, as left by a
            // buried waiter whose successor then tail-restored onto it.
            let cell = HemCell::boxed().as_ptr();
            let old = lock.tail.swap(cell as usize, Ordering::AcqRel);
            unsafe {
                (*cell).pred.store(old, Ordering::Relaxed);
                (*cell).grant.store(ABANDONED_GRANT, Ordering::Release);
            }
            let skips_before = crate::deadline::skips();
            let w = {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    let mut ctx = HemContext::default();
                    lock.acquire(&mut ctx);
                    lock.release(&mut ctx);
                })
            };
            crate::spin::spin_until(|| crate::deadline::skips() > skips_before);
            lock.release(&mut holder);
            w.join().expect("adopter acquires through the sentinel");
            assert!(!lock.is_locked());
        }

        #[test]
        fn orphaned_sentinel_chain_is_reclaimed_on_drop() {
            let lock = Hemlock::new();
            let a = HemCell::boxed().as_ptr();
            let b = HemCell::boxed().as_ptr();
            unsafe {
                (*a).grant.store(ABANDONED_GRANT, Ordering::Relaxed);
                (*b).pred.store(a as usize, Ordering::Relaxed);
                (*b).grant.store(ABANDONED_GRANT, Ordering::Relaxed);
            }
            lock.tail.store(b as usize, Ordering::Relaxed);
            // The drop walk frees b then a and stops at the chain end.
            drop(lock);
        }

        #[test]
        fn timeout_leaves_other_traffic_unharmed() {
            const THREADS: usize = 4;
            const ITERS: usize = 300;
            let lock = Arc::new(Hemlock::new());
            let held = Arc::new(StdAtomicUsize::new(0));
            let mut handles = Vec::new();
            for t in 0..THREADS {
                let lock = Arc::clone(&lock);
                let held = Arc::clone(&held);
                handles.push(std::thread::spawn(move || {
                    let mut ctx = HemContext::default();
                    for _ in 0..ITERS {
                        let got = if t % 2 == 0 {
                            lock.try_acquire_until(
                                &mut ctx,
                                Instant::now() + Duration::from_micros(50),
                            )
                        } else {
                            lock.acquire(&mut ctx);
                            true
                        };
                        if got {
                            held.fetch_add(1, Ordering::Relaxed);
                            lock.release(&mut ctx);
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert!(!lock.is_locked());
            let mut ctx = HemContext::default();
            lock.acquire(&mut ctx);
            lock.release(&mut ctx);
        }
    }
}
