//! Test-and-set lock with exponential backoff (Agarwal & Cherian \[1\]).
//!
//! The paper cites this lock ("BO") as the unfair component of the Lock
//! Cohorting work's C-BO-MCS composition (§2.3). We include it so that the
//! cohorting comparison and the fairness ablation can be reproduced.

use std::sync::atomic::{AtomicBool, Ordering};

#[cfg(feature = "park")]
use crate::park::ParkSpot;
use crate::park::SPIN_FOREVER;
use crate::raw::{LockInfo, NoContext, RawLock};
use crate::spin::Backoff;

/// Test-and-set lock with exponential backoff between attempts.
///
/// Unlike [`TtasLock`](crate::TtasLock), a waiter that *loses* a swap
/// race backs off for an exponentially growing period before retesting,
/// which reduces coherence traffic under contention at the cost of
/// latency and fairness (the lock is **unfair**). Between attempts the
/// waiter polls the flag with a plain relaxed load and `spin_loop`
/// hints, like every other polling lock in this crate — an earlier
/// version swapped on every round, dirtying the line even while the lock
/// was visibly held.
///
/// # Examples
///
/// ```
/// use clof_locks::{BackoffLock, RawLock};
///
/// let lock = BackoffLock::default();
/// let mut ctx = Default::default();
/// lock.acquire(&mut ctx);
/// lock.release(&mut ctx);
/// ```
#[derive(Debug, Default)]
pub struct BackoffLock {
    locked: AtomicBool,
    /// Eventcount budget-exhausted waiters park on.
    #[cfg(feature = "park")]
    park: ParkSpot,
}

impl BackoffLock {
    /// Ceiling exponent for the between-attempt backoff: bursts are
    /// capped at `2^BACKOFF_CEILING` spin hints so an unlucky waiter's
    /// penalty stays bounded (uncapped exponential backoff is exactly
    /// what starves cross-socket waiters on deep topologies).
    pub const BACKOFF_CEILING: u32 = 6;

    /// Creates an unlocked backoff lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the lock is currently held (racy; for tests/diagnostics).
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }

    fn acquire_inner(&self, budget: u32) {
        // Between-attempt penalty, kept across test phases so repeated
        // race losses keep growing it (up to the capped ceiling).
        let mut penalty = Backoff::with_limit(Self::BACKOFF_CEILING);
        loop {
            // Test phase: poll with relaxed loads until the flag reads
            // unlocked (parking once the budget runs out).
            #[cfg(feature = "park")]
            self.park
                .wait_until(budget, || !self.locked.load(Ordering::Relaxed));
            #[cfg(not(feature = "park"))]
            {
                let _ = budget;
                let mut test = Backoff::with_limit(Self::BACKOFF_CEILING);
                while self.locked.load(Ordering::Relaxed) {
                    test.snooze();
                }
            }
            // Attempt phase; Acquire pairs with the Release in `release`.
            if !self.locked.swap(true, Ordering::Acquire) {
                return;
            }
            // Lost the race: exponential backoff before the next test.
            penalty.snooze();
        }
    }

    /// Deadline-bounded acquire. Like TTAS the backoff lock keeps no
    /// queue state, so a timeout needs no undo; the bounded wait keeps
    /// the capped exponential penalty between lost races and never
    /// parks.
    #[cfg(feature = "deadline")]
    fn try_acquire_inner_deadline(&self, deadline: std::time::Instant) -> bool {
        let mut poll = crate::deadline::DeadlinePoll::new(deadline, "bo-wait");
        let mut penalty = Backoff::with_limit(Self::BACKOFF_CEILING);
        loop {
            let mut test = Backoff::with_limit(Self::BACKOFF_CEILING);
            while self.locked.load(Ordering::Relaxed) {
                if poll.expired() {
                    crate::deadline::on_abandon();
                    return false;
                }
                test.snooze();
            }
            if !self.locked.swap(true, Ordering::Acquire) {
                return true;
            }
            penalty.snooze();
        }
    }
}

impl RawLock for BackoffLock {
    type Context = NoContext;

    const INFO: LockInfo = LockInfo {
        name: "bo",
        full_name: "Test-and-set with exponential backoff",
        fair: false,
        local_spinning: false,
        needs_context: false,
        waiter_hint: false,
    };

    fn acquire(&self, _ctx: &mut NoContext) {
        self.acquire_inner(SPIN_FOREVER);
    }

    #[cfg(feature = "park")]
    fn acquire_budgeted(&self, _ctx: &mut NoContext, budget: u32) {
        self.acquire_inner(budget);
    }

    #[cfg(feature = "deadline")]
    fn try_acquire_until(&self, _ctx: &mut NoContext, deadline: std::time::Instant) -> bool {
        self.try_acquire_inner_deadline(deadline)
    }

    fn release(&self, _ctx: &mut NoContext) {
        self.locked.store(false, Ordering::Release);
        // Wake after the flag store (the waiters' condition).
        #[cfg(feature = "park")]
        self.park.wake_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn uncontended_roundtrip() {
        let lock = BackoffLock::new();
        let mut ctx = NoContext;
        lock.acquire(&mut ctx);
        assert!(lock.is_locked());
        lock.release(&mut ctx);
        assert!(!lock.is_locked());
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        const THREADS: usize = 4;
        const ITERS: usize = 2_000;
        let lock = Arc::new(BackoffLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut ctx = NoContext;
                for _ in 0..ITERS {
                    lock.acquire(&mut ctx);
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.release(&mut ctx);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS * ITERS);
    }

    #[test]
    fn info_marks_unfair() {
        assert!(!BackoffLock::INFO.fair);
        assert_eq!(BackoffLock::INFO.name, "bo");
    }

    #[cfg(feature = "deadline")]
    mod deadline {
        use super::*;
        use std::time::{Duration, Instant};

        #[test]
        fn try_acquire_uncontended_succeeds() {
            let lock = BackoffLock::new();
            let mut ctx = NoContext;
            assert!(lock.try_acquire_until(&mut ctx, Instant::now() + Duration::from_secs(5)));
            assert!(lock.is_locked());
            lock.release(&mut ctx);
        }

        #[test]
        fn timeout_while_held_is_clean() {
            let lock = BackoffLock::new();
            let mut holder = NoContext;
            lock.acquire(&mut holder);
            let before = crate::deadline::abandons();
            let mut w = NoContext;
            assert!(!lock.try_acquire_until(&mut w, Instant::now()));
            assert!(crate::deadline::abandons() > before);
            assert!(lock.is_locked(), "timeout must not perturb the flag");
            lock.release(&mut holder);
            assert!(lock.try_acquire_until(&mut w, Instant::now() + Duration::from_secs(5)));
            lock.release(&mut w);
        }
    }
}
