//! Test-and-set lock with exponential backoff (Agarwal & Cherian \[1\]).
//!
//! The paper cites this lock ("BO") as the unfair component of the Lock
//! Cohorting work's C-BO-MCS composition (§2.3). We include it so that the
//! cohorting comparison and the fairness ablation can be reproduced.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::raw::{LockInfo, NoContext, RawLock};
use crate::spin::Backoff;

/// Test-and-set lock with exponential backoff between attempts.
///
/// Unlike [`TtasLock`](crate::TtasLock), every wait round attempts the
/// swap and then backs off for an exponentially growing period, which
/// reduces coherence traffic under contention at the cost of latency and
/// fairness (the lock is **unfair**).
///
/// # Examples
///
/// ```
/// use clof_locks::{BackoffLock, RawLock};
///
/// let lock = BackoffLock::default();
/// let mut ctx = Default::default();
/// lock.acquire(&mut ctx);
/// lock.release(&mut ctx);
/// ```
#[derive(Debug, Default)]
pub struct BackoffLock {
    locked: AtomicBool,
}

impl BackoffLock {
    /// Creates an unlocked backoff lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the lock is currently held (racy; for tests/diagnostics).
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }
}

impl RawLock for BackoffLock {
    type Context = NoContext;

    const INFO: LockInfo = LockInfo {
        name: "bo",
        full_name: "Test-and-set with exponential backoff",
        fair: false,
        local_spinning: false,
        needs_context: false,
        waiter_hint: false,
    };

    fn acquire(&self, _ctx: &mut NoContext) {
        let mut backoff = Backoff::new();
        // Acquire pairs with the Release store in `release`.
        while self.locked.swap(true, Ordering::Acquire) {
            backoff.snooze();
        }
    }

    fn release(&self, _ctx: &mut NoContext) {
        self.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn uncontended_roundtrip() {
        let lock = BackoffLock::new();
        let mut ctx = NoContext;
        lock.acquire(&mut ctx);
        assert!(lock.is_locked());
        lock.release(&mut ctx);
        assert!(!lock.is_locked());
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        const THREADS: usize = 4;
        const ITERS: usize = 2_000;
        let lock = Arc::new(BackoffLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut ctx = NoContext;
                for _ in 0..ITERS {
                    lock.acquire(&mut ctx);
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.release(&mut ctx);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS * ITERS);
    }

    #[test]
    fn info_marks_unfair() {
        assert!(!BackoffLock::INFO.fair);
        assert_eq!(BackoffLock::INFO.name, "bo");
    }
}
